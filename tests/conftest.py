"""Pytest fixtures (cluster-building helpers live in tests/helpers.py)."""

import pytest

from repro.net.lan import Lan
from repro.sim.simulation import Simulation


@pytest.fixture
def sim():
    """A fresh deterministic simulation."""
    return Simulation(seed=0)


@pytest.fixture
def lan(sim):
    """A default LAN segment on the fixture simulation."""
    return Lan(sim, "lan0", "10.0.0.0/24")
