"""Unit tests for the Figure 2 state machine."""

import pytest

from repro.core.state import (
    BALANCE,
    GATHER,
    RUN,
    TRANSITIONS,
    IllegalTransition,
    StateMachine,
)


def test_initial_state_is_run():
    assert StateMachine().state == RUN


def test_view_change_moves_run_to_gather():
    machine = StateMachine()
    assert machine.fire("VIEW_CHANGE") == GATHER


def test_cascading_view_change_stays_in_gather():
    machine = StateMachine()
    machine.fire("VIEW_CHANGE")
    assert machine.fire("VIEW_CHANGE") == GATHER


def test_reallocation_complete_returns_to_run():
    machine = StateMachine()
    machine.fire("VIEW_CHANGE")
    assert machine.fire("REALLOCATION_COMPLETE") == RUN


def test_balance_round_trip():
    machine = StateMachine()
    assert machine.fire("BALANCE_TIMEOUT") == BALANCE
    assert machine.fire("BALANCE_COMPLETE") == RUN


def test_balance_msg_keeps_run():
    machine = StateMachine()
    assert machine.fire("BALANCE_MSG") == RUN


def test_balance_msg_in_gather_is_ignored_transition():
    machine = StateMachine()
    machine.fire("VIEW_CHANGE")
    assert machine.fire("BALANCE_MSG") == GATHER


def test_illegal_transitions_rejected():
    machine = StateMachine()
    with pytest.raises(IllegalTransition):
        machine.fire("REALLOCATION_COMPLETE")
    machine.fire("BALANCE_TIMEOUT")
    with pytest.raises(IllegalTransition):
        machine.fire("VIEW_CHANGE")  # BALANCE is atomic (§3.4)


def test_balance_timeout_illegal_in_gather():
    machine = StateMachine()
    machine.fire("VIEW_CHANGE")
    with pytest.raises(IllegalTransition):
        machine.fire("BALANCE_TIMEOUT")


def test_can_fire_matches_transition_table():
    machine = StateMachine()
    assert machine.can_fire("VIEW_CHANGE")
    assert not machine.can_fire("BALANCE_COMPLETE")


def test_history_records_transitions():
    machine = StateMachine()
    machine.fire("VIEW_CHANGE")
    machine.fire("REALLOCATION_COMPLETE")
    assert machine.history == [
        (RUN, "VIEW_CHANGE", GATHER),
        (GATHER, "REALLOCATION_COMPLETE", RUN),
    ]


def test_trace_callback_invoked():
    seen = []
    machine = StateMachine(trace=lambda event, state: seen.append((event, state)))
    machine.fire("VIEW_CHANGE")
    assert seen == [("VIEW_CHANGE", GATHER)]


def test_transition_set_matches_figure2_exactly():
    expected = {
        (RUN, "VIEW_CHANGE", GATHER),
        (GATHER, "VIEW_CHANGE", GATHER),
        (GATHER, "REALLOCATION_COMPLETE", RUN),
        (RUN, "BALANCE_TIMEOUT", BALANCE),
        (BALANCE, "BALANCE_COMPLETE", RUN),
        (RUN, "BALANCE_MSG", RUN),
        (GATHER, "BALANCE_MSG", GATHER),
    }
    assert set(TRANSITIONS) == expected
