"""Property tests for rendezvous (HRW) VIP placement.

The properties ISSUE 6 demands of the scale-tier strategy:

* determinism — the allocation is a pure function of the (unordered)
  membership and slot set;
* full coverage and single ownership — the shared invariants in
  ``tests/helpers.py``, identical to the linear strategy's contract;
* minimal disruption — a leave remaps exactly the leaver's slots and
  a join moves slots only *to* the joiner (≤ O(V/N) expected moves);
* the incremental :class:`RendezvousMap` always agrees with the
  direct :func:`rendezvous_allocation` computation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import assert_allocation_ok

from repro.core.placement import (
    RendezvousMap,
    compute_rendezvous_allocation,
    reallocate_ips_rendezvous,
    rendezvous_allocation,
    rendezvous_owner,
)
from repro.core.table import AllocationTable

names = st.text(alphabet="abcdefghij0123456789-", min_size=1, max_size=12)
member_lists = st.lists(names, min_size=1, max_size=24, unique=True)
slot_lists = st.lists(names.map("vip-{}".format), min_size=1, max_size=64, unique=True)


@given(members=member_lists, slots=slot_lists)
def test_allocation_is_deterministic_and_order_independent(members, slots):
    base = rendezvous_allocation(members, slots)
    again = rendezvous_allocation(members, slots)
    reversed_members = rendezvous_allocation(list(reversed(members)), slots)
    assert base == again == reversed_members


@given(members=member_lists, slots=slot_lists)
def test_allocation_covers_every_slot_once(members, slots):
    allocation = rendezvous_allocation(members, slots)
    assert_allocation_ok(allocation, members, slots)


@given(members=member_lists, slots=slot_lists, data=st.data())
def test_leave_moves_only_the_leavers_slots(members, slots, data):
    allocation = rendezvous_allocation(members, slots)
    leaver = data.draw(st.sampled_from(members))
    survivors = [m for m in members if m != leaver]
    if not survivors:
        return
    after = rendezvous_allocation(survivors, slots)
    owned_by_leaver = {s for s, m in allocation.items() if m == leaver}
    moved = {s for s in slots if allocation[s] != after[s]}
    assert moved == owned_by_leaver
    for slot in moved:
        assert after[slot] in survivors


@given(members=member_lists, slots=slot_lists, joiner=names)
def test_join_moves_slots_only_to_the_joiner(members, slots, joiner):
    if joiner in members:
        return
    before = rendezvous_allocation(members, slots)
    after = rendezvous_allocation(members + [joiner], slots)
    moved = {s for s in slots if before[s] != after[s]}
    assert all(after[s] == joiner for s in moved)


@given(members=member_lists, slots=slot_lists)
def test_owner_matches_allocation(members, slots):
    allocation = rendezvous_allocation(members, slots)
    for slot in slots:
        assert rendezvous_owner(slot, members) == allocation[slot]


@given(
    slots=slot_lists,
    memberships=st.lists(member_lists, min_size=1, max_size=6),
)
@settings(max_examples=50)
def test_rendezvous_map_agrees_with_direct_computation(slots, memberships):
    # Walking a sequence of memberships through one map exercises the
    # incremental join/leave delta paths against cached bases.
    placement = RendezvousMap(slots)
    for members in memberships:
        assert placement.allocation_for(members) == rendezvous_allocation(members, slots)


@given(members=member_lists, slots=slot_lists)
def test_rendezvous_map_owned_index_partitions_the_slots(members, slots):
    placement = RendezvousMap(slots)
    index = placement.owned_index_for(members)
    rebuilt = {}
    for member, owned in index.items():
        assert member in members
        for slot in owned:
            assert slot not in rebuilt
            rebuilt[slot] = member
    assert rebuilt == placement.allocation_for(members)
    assert placement.owned_by(members, members[0]) == index.get(members[0], ())


@given(members=member_lists, slots=slot_lists, data=st.data())
def test_reallocate_fills_exactly_the_holes(members, slots, data):
    table = AllocationTable(slots, members)
    pre_owned = {}
    for slot in slots:
        if data.draw(st.booleans(), label="preassign {}".format(slot)):
            owner = data.draw(st.sampled_from(members), label="owner {}".format(slot))
            table.set_owner(slot, owner)
            pre_owned[slot] = owner
    grants = reallocate_ips_rendezvous(table)
    assert set(grants) == set(slots) - set(pre_owned)
    current = table.as_dict()
    for slot, owner in pre_owned.items():
        assert current[slot] == owner  # existing ownership is never disturbed
    assert_allocation_ok(current, members, slots)
    for slot, owner in grants.items():
        assert owner == rendezvous_owner(slot, members)


@given(members=member_lists, slots=slot_lists, data=st.data())
def test_preferences_pin_slots(members, slots, data):
    preferring = data.draw(st.sampled_from(members))
    pinned = data.draw(st.sampled_from(slots))
    preferences = {preferring: (pinned,)}
    allocation = compute_rendezvous_allocation(members, slots, {}, preferences)
    assert allocation[pinned] == preferring
    assert_allocation_ok(allocation, members, slots)


@given(members=member_lists, slots=slot_lists)
def test_equal_weights_match_unweighted(members, slots):
    weights = {m: 2.5 for m in members}
    assert rendezvous_allocation(members, slots, weights) == rendezvous_allocation(
        members, slots
    )


def test_weighted_share_skews_toward_heavy_member():
    members = ["heavy", "light-a", "light-b", "light-c"]
    slots = ["vip-{}".format(i) for i in range(400)]
    weights = {"heavy": 3.0, "light-a": 1.0, "light-b": 1.0, "light-c": 1.0}
    allocation = rendezvous_allocation(members, slots, weights)
    counts = {m: 0 for m in members}
    for owner in allocation.values():
        counts[owner] += 1
    # heavy carries weight 3 of 6 : half the pool in expectation.
    assert counts["heavy"] > len(slots) // 3
    assert_allocation_ok(allocation, members, slots)
