"""Unit tests for the coverage auditor itself (it must catch bugs)."""

from helpers import build_wack_cluster, settle_wack


def test_clean_cluster_has_no_violations():
    cluster = build_wack_cluster(3)
    assert settle_wack(cluster)
    assert cluster.auditor.check() == []


def test_detects_artificial_duplicate_coverage():
    cluster = build_wack_cluster(3, n_vips=3)
    assert settle_wack(cluster)
    # Bind a VIP on a second host behind the protocol's back.
    vip = cluster.wconfig.slot_ids()[0]
    holders = [w for w in cluster.wacks if w.iface.owns(vip)]
    other = next(w for w in cluster.wacks if w not in holders)
    other.host.nics[0].bind_ip(vip)
    violations = cluster.auditor.check()
    assert any(v.kind == "duplicate" and v.slot == vip for v in violations)


def test_detects_artificial_hole():
    cluster = build_wack_cluster(3, n_vips=3)
    assert settle_wack(cluster)
    vip = cluster.wconfig.slot_ids()[0]
    holder = next(w for w in cluster.wacks if w.iface.owns(vip))
    holder.host.nics[0].unbind_ip(vip)
    violations = cluster.auditor.check()
    assert any(v.kind == "uncovered" and v.slot == vip for v in violations)


def test_components_follow_partitions():
    cluster = build_wack_cluster(4)
    assert settle_wack(cluster)
    assert len(cluster.auditor.components()) == 1
    cluster.faults.partition(cluster.lan, [cluster.hosts[:1], cluster.hosts[1:]])
    components = sorted(len(c) for c in cluster.auditor.components())
    assert components == [1, 3]


def test_dead_daemons_excluded_from_components():
    cluster = build_wack_cluster(3)
    assert settle_wack(cluster)
    cluster.faults.crash_host(cluster.hosts[0])
    assert sorted(len(c) for c in cluster.auditor.components()) == [2]


def test_assert_ok_raises_with_details():
    import pytest

    cluster = build_wack_cluster(2, n_vips=2)
    assert settle_wack(cluster)
    vip = cluster.wconfig.slot_ids()[0]
    holder = next(w for w in cluster.wacks if w.iface.owns(vip))
    holder.host.nics[0].unbind_ip(vip)
    with pytest.raises(AssertionError):
        cluster.auditor.assert_ok()


def test_duplicate_coverage_helper():
    cluster = build_wack_cluster(2, n_vips=2)
    assert settle_wack(cluster)
    vip = cluster.wconfig.slot_ids()[0]
    for wack in cluster.wacks:
        wack.host.nics[0].bind_ip(vip)
    duplicates = cluster.auditor.duplicate_coverage()
    assert vip in duplicates
    assert len(duplicates[vip]) == 2


def test_gathering_components_not_audited():
    cluster = build_wack_cluster(3)
    assert settle_wack(cluster)
    # Freeze one daemon in GATHER artificially; auditor must skip the
    # component rather than report spurious violations.
    cluster.wacks[0].machine.fire("VIEW_CHANGE")
    assert cluster.auditor.check() == []
