"""Unit tests for the coverage auditor itself (it must catch bugs)."""

from helpers import build_wack_cluster, settle_wack


def test_clean_cluster_has_no_violations():
    cluster = build_wack_cluster(3)
    assert settle_wack(cluster)
    assert cluster.auditor.check() == []


def test_detects_artificial_duplicate_coverage():
    cluster = build_wack_cluster(3, n_vips=3)
    assert settle_wack(cluster)
    # Bind a VIP on a second host behind the protocol's back.
    vip = cluster.wconfig.slot_ids()[0]
    holders = [w for w in cluster.wacks if w.iface.owns(vip)]
    other = next(w for w in cluster.wacks if w not in holders)
    other.host.nics[0].bind_ip(vip)
    violations = cluster.auditor.check()
    assert any(v.kind == "duplicate" and v.slot == vip for v in violations)


def test_detects_artificial_hole():
    cluster = build_wack_cluster(3, n_vips=3)
    assert settle_wack(cluster)
    vip = cluster.wconfig.slot_ids()[0]
    holder = next(w for w in cluster.wacks if w.iface.owns(vip))
    holder.host.nics[0].unbind_ip(vip)
    violations = cluster.auditor.check()
    assert any(v.kind == "uncovered" and v.slot == vip for v in violations)


def test_components_follow_partitions():
    cluster = build_wack_cluster(4)
    assert settle_wack(cluster)
    assert len(cluster.auditor.components()) == 1
    cluster.faults.partition(cluster.lan, [cluster.hosts[:1], cluster.hosts[1:]])
    components = sorted(len(c) for c in cluster.auditor.components())
    assert components == [1, 3]


def test_dead_daemons_excluded_from_components():
    cluster = build_wack_cluster(3)
    assert settle_wack(cluster)
    cluster.faults.crash_host(cluster.hosts[0])
    assert sorted(len(c) for c in cluster.auditor.components()) == [2]


def test_assert_ok_raises_with_details():
    import pytest

    cluster = build_wack_cluster(2, n_vips=2)
    assert settle_wack(cluster)
    vip = cluster.wconfig.slot_ids()[0]
    holder = next(w for w in cluster.wacks if w.iface.owns(vip))
    holder.host.nics[0].unbind_ip(vip)
    with pytest.raises(AssertionError):
        cluster.auditor.assert_ok()


def test_duplicate_coverage_helper():
    cluster = build_wack_cluster(2, n_vips=2)
    assert settle_wack(cluster)
    vip = cluster.wconfig.slot_ids()[0]
    for wack in cluster.wacks:
        wack.host.nics[0].bind_ip(vip)
    duplicates = cluster.auditor.duplicate_coverage()
    assert vip in duplicates
    assert len(duplicates[vip]) == 2


def test_zero_live_daemons_yields_no_components_or_violations():
    cluster = build_wack_cluster(3)
    assert settle_wack(cluster)
    for host in cluster.hosts:
        cluster.faults.crash_host(host)
    assert cluster.auditor.components() == []
    # No components -> nothing to audit; a dead cluster is not a
    # Property 1 violation (there is no RUN component to cover VIPs).
    assert cluster.auditor.check() == []
    assert cluster.auditor.check_by_view() == []
    assert cluster.auditor.duplicate_coverage() == {}


def test_fully_partitioned_singletons_each_cover_everything():
    cluster = build_wack_cluster(3, n_vips=4)
    assert settle_wack(cluster)
    cluster.faults.partition(cluster.lan, [[h] for h in cluster.hosts])
    components = cluster.auditor.components()
    assert sorted(len(c) for c in components) == [1, 1, 1]
    # After stabilization every singleton component must have taken
    # over the complete VIP set itself — audited per component.
    cluster.sim.run_for(10.0)
    assert cluster.auditor.check() == []
    for component in cluster.auditor.components():
        daemon = component[0]
        assert all(
            daemon.host.owns_ip(a)
            for slot in cluster.wconfig.slot_ids()
            for a in daemon.config.group(slot).addresses
        )


def test_double_coverage_inside_one_partition_component():
    cluster = build_wack_cluster(4, n_vips=4)
    assert settle_wack(cluster)
    cluster.faults.partition(cluster.lan, [cluster.hosts[:2]])
    cluster.sim.run_for(10.0)
    assert cluster.auditor.check() == []
    vip = cluster.wconfig.slot_ids()[0]
    # Bind the same VIP on both members of the two-server component.
    for wack in cluster.wacks[:2]:
        wack.host.nics[0].bind_ip(vip)
    violations = [v for v in cluster.auditor.check() if v.kind == "duplicate"]
    assert len(violations) == 1
    assert set(violations[0].covering) == {"node0", "node1"}
    # The other component is untouched and must not be reported.
    assert all(set(v.component) <= {"node0", "node1"} for v in violations)


def test_vip_covered_in_one_component_but_not_another():
    cluster = build_wack_cluster(4, n_vips=4)
    assert settle_wack(cluster)
    cluster.faults.partition(cluster.lan, [cluster.hosts[:1]])
    cluster.sim.run_for(10.0)
    assert cluster.auditor.check() == []
    vip = cluster.wconfig.slot_ids()[0]
    # Poke a hole in the three-server component only; the singleton
    # still covers the VIP, which must not mask the other side's hole.
    trio = [w for w in cluster.wacks[1:] if w.iface.owns(vip)]
    assert trio
    trio[0].host.nics[0].unbind_ip(vip)
    violations = cluster.auditor.check()
    uncovered = [v for v in violations if v.kind == "uncovered" and v.slot == vip]
    assert len(uncovered) == 1
    assert set(uncovered[0].component) == {"node1", "node2", "node3"}


def test_check_by_view_skips_physically_stale_views():
    """Regression for a repro.check campaign finding.

    Inside the failure-detection window after an interface drop, every
    daemon still has the old view installed, and the disconnected
    member can (via a locally delivered BALANCE) bind addresses that
    others hold. That transient duplicate is inherent §4.2 behaviour,
    so the view-relative oracle must skip views that are no longer
    physically intact — and still report duplicates in healthy views.
    """
    cluster = build_wack_cluster(3, n_vips=3)
    assert settle_wack(cluster)
    vip = cluster.wconfig.slot_ids()[0]
    victim = next(w for w in cluster.wacks if not w.iface.owns(vip))
    cluster.faults.nic_down(victim.host.nics[0])
    # No simulated time passes: all three daemons still share the old
    # view, alive + RUN + mature, but the victim is dark.
    victim.host.nics[0].bind_ip(vip)
    assert cluster.auditor.check_by_view() == []
    # The same duplicate inside a physically intact view IS a bug.
    cluster.faults.nic_up(victim.host.nics[0])
    violations = cluster.auditor.check_by_view()
    assert any(v.kind == "duplicate" and v.slot == vip for v in violations)


def test_components_are_deterministically_ordered():
    cluster = build_wack_cluster(4)
    assert settle_wack(cluster)
    cluster.faults.partition(cluster.lan, [cluster.hosts[2:]])
    first = [[d.host.name for d in c] for c in cluster.auditor.components()]
    second = [[d.host.name for d in c] for c in cluster.auditor.components()]
    assert first == second
    # Host-name order within and across components (replay relies on it).
    assert first == [["node0", "node1"], ["node2", "node3"]]


def test_gathering_components_not_audited():
    cluster = build_wack_cluster(3)
    assert settle_wack(cluster)
    # Freeze one daemon in GATHER artificially; auditor must skip the
    # component rather than report spurious violations.
    cluster.wacks[0].machine.fire("VIEW_CHANGE")
    assert cluster.auditor.check() == []
