"""Edge-case tests for the Wackamole daemon's message handling."""

from helpers import build_wack_cluster, settle_wack

from repro.core.messages import AllocMsg, BalanceMsg, MatureMsg, StateMsg
from repro.core.state import RUN


def stable_cluster(**kwargs):
    cluster = build_wack_cluster(3, **kwargs)
    assert settle_wack(cluster)
    return cluster


def test_stale_balance_msg_from_old_view_ignored():
    cluster = stable_cluster()
    wack = cluster.wacks[0]
    before = wack.table.as_dict()
    stale = BalanceMsg("wack@node1", ("old", "view", 0), {s: None for s in before})
    wack._on_balance_msg(stale)
    assert wack.table.as_dict() == before
    assert wack.machine.state == RUN


def test_balance_msg_with_unknown_slot_or_owner_is_sanitised():
    cluster = stable_cluster()
    wack = cluster.wacks[0]
    before = wack.table.as_dict()
    allocation = dict(before)
    allocation["not-a-slot"] = wack.member_name
    first_slot = next(iter(before))
    allocation[first_slot] = "wack@stranger"
    message = BalanceMsg(wack.member_name, wack.view.view_id, allocation)
    wack._on_balance_msg(message)
    # Unknown slot dropped, unknown owner not applied.
    assert "not-a-slot" not in wack.table.slots
    assert wack.table.owner(first_slot) == before[first_slot]


def test_alloc_msg_ignored_in_distributed_mode_outside_gather():
    cluster = stable_cluster()
    wack = cluster.wacks[0]
    before = wack.table.as_dict()
    flipped = {slot: wack.member_name for slot in before}
    wack._on_alloc_msg(AllocMsg(wack.member_name, wack.view.view_id, flipped))
    # Accepted (RUN-state application is legal) — table now all-mine...
    assert wack.table.owned_by(wack.member_name) == wack.table.slots
    # ...but a stale-view AllocMsg is not.
    wack._on_alloc_msg(AllocMsg(wack.member_name, ("x", "y", 0), before))
    assert wack.table.owned_by(wack.member_name) == wack.table.slots


def test_mature_msg_from_other_view_ignored():
    cluster = stable_cluster()
    wack = cluster.wacks[0]
    wack.mature = False
    wack._on_mature_msg(MatureMsg("wack@node1", ("other", "view", 9)))
    assert not wack.mature
    wack.mature = True


def test_state_msg_from_non_member_ignored():
    cluster = stable_cluster()
    wack = cluster.wacks[0]
    cluster.faults.crash_host(cluster.hosts[2])
    cluster.sim.run_for(
        cluster.config.fault_detection_timeout + cluster.config.discovery_timeout + 0.3
    )
    # Now in the new view's GATHER/RUN; inject a STATE from a stranger.
    stranger = StateMsg("wack@stranger", wack.view.view_id, (), (), True)
    before = dict(wack._state_msgs)
    wack._on_state_msg(stranger)
    assert "wack@stranger" not in wack._state_msgs or wack.machine.state == RUN
    assert settle_wack(cluster)


def test_state_msg_claim_for_unknown_slot_skipped():
    cluster = stable_cluster()
    wack = cluster.wacks[0]
    # Enter GATHER synchronously via a synthetic view change, then
    # replay a STATE message carrying a bogus claim.
    from repro.core.state import GATHER
    from repro.gcs.messages import GroupView

    synthetic = GroupView(
        wack.config.group_name, ("synthetic", "view", 1), wack.view.members, "network"
    )
    wack._on_group_view(synthetic)
    assert wack.machine.state == GATHER
    bogus = StateMsg("wack@node1", synthetic.view_id, ("no-such-slot",), (), True)
    wack._on_state_msg(bogus)
    assert "no-such-slot" not in wack.table.slots
    assert "wack@node1" in wack._state_msgs


def test_messages_have_informative_reprs():
    state = StateMsg("m", (1, "a", 0), ("v1",), (), True)
    assert "m" in repr(state) and "v1" in repr(state)
    balance = BalanceMsg("m", (1, "a", 0), {"v1": "m"})
    assert "1 slots" in repr(balance)
    alloc = AllocMsg("m", (1, "a", 0), {"v1": "m"})
    assert "1 slots" in repr(alloc)
    mature = MatureMsg("m", (1, "a", 0))
    assert "m" in repr(mature)


def test_reconnect_attempts_counted_when_daemon_down():
    cluster = build_wack_cluster(2)
    assert settle_wack(cluster)
    wack = cluster.wacks[0]
    cluster.spreads[0].crash()
    cluster.sim.run_for(wack.config.reconnect_interval * 3.5)
    # No replacement daemon: the reconnect cycle keeps retrying.
    assert wack.reconnect_attempts >= 3
    assert wack.client is None


def test_wackamole_repr():
    cluster = stable_cluster()
    text = repr(cluster.wacks[0])
    assert "node0" in text
    assert "RUN" in text
