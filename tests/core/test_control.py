"""Unit tests for the administrative control channel (§4.2)."""

from helpers import build_wack_cluster, settle_wack

from repro.core.control import AdminControl


def test_status_reports_cluster_view():
    cluster = build_wack_cluster(2)
    assert settle_wack(cluster)
    admin = AdminControl(cluster.wacks[0])
    status = admin.status()
    assert status["state"] == "RUN"
    assert len(status["members"]) == 2


def test_list_vips_shows_configured_addresses():
    cluster = build_wack_cluster(2, n_vips=3)
    assert settle_wack(cluster)
    admin = AdminControl(cluster.wacks[0])
    vips = admin.list_vips()
    assert len(vips) == 3
    for slot, addresses in vips.items():
        assert addresses == [slot]  # single-address groups named by IP


def test_release_vip_drops_local_binding():
    cluster = build_wack_cluster(2, n_vips=4)
    assert settle_wack(cluster)
    wack = cluster.wacks[0]
    admin = AdminControl(wack)
    slot = wack.iface.owned_slots()[0]
    admin.release_vip(slot)
    assert not wack.iface.owns(slot)
    assert wack.table.owner(slot) is None


def test_released_vip_recovered_by_balance():
    cluster = build_wack_cluster(2, n_vips=4, wack_overrides={"balance_timeout": 0.3})
    assert settle_wack(cluster)
    wack = cluster.wacks[0]
    slot = wack.iface.owned_slots()[0]
    AdminControl(wack).release_vip(slot)
    cluster.sim.run_for(2.0)
    owners = [w for w in cluster.wacks if w.iface.owns(slot)]
    assert len(owners) == 1


def test_set_preferences_validates_and_applies():
    cluster = build_wack_cluster(2, n_vips=4)
    assert settle_wack(cluster)
    admin = AdminControl(cluster.wacks[0])
    slot = cluster.wconfig.slot_ids()[0]
    admin.set_preferences([slot])
    assert cluster.wacks[0].config.prefer == (slot,)


def test_admin_shutdown_is_graceful():
    cluster = build_wack_cluster(3, n_vips=6)
    assert settle_wack(cluster)
    AdminControl(cluster.wacks[0]).shutdown()
    cluster.sim.run_for(0.2)
    assert cluster.wacks[0].iface.owned_slots() == ()
    assert settle_wack(cluster)
    assert cluster.auditor.check() == []


def test_admin_kill_leaves_bindings_for_takeover():
    cluster = build_wack_cluster(3, n_vips=6)
    assert settle_wack(cluster)
    wack = cluster.wacks[0]
    owned = wack.iface.owned_slots()
    AdminControl(wack).kill()
    # Abrupt: bindings still on the NIC (until GCS notices via the
    # client disconnection and the survivors take over).
    assert wack.iface.owned_slots() == owned


# ----------------------------------------------------------------------
# the line-oriented console (§4.2's input channel)

from repro.core.control import AdminConsole


def console_cluster():
    cluster = build_wack_cluster(2, n_vips=3)
    assert settle_wack(cluster)
    return cluster, AdminConsole(cluster.wacks[0])


def test_console_status_line():
    cluster, console = console_cluster()
    line = console.execute("status")
    assert "state=RUN" in line
    assert "mature=True" in line
    assert "members=2" in line


def test_console_table_lists_every_slot():
    cluster, console = console_cluster()
    output = console.execute("table")
    for slot in cluster.wconfig.slot_ids():
        assert slot in output


def test_console_vips_and_owned():
    cluster, console = console_cluster()
    vips = console.execute("vips")
    assert all(slot in vips for slot in cluster.wconfig.slot_ids())
    owned = console.execute("owned")
    assert owned == ",".join(cluster.wacks[0].iface.owned_slots()) or owned == "-"


def test_console_release_known_slot():
    cluster, console = console_cluster()
    slot = cluster.wacks[0].iface.owned_slots()[0]
    response = console.execute("release {}".format(slot))
    assert response == "released {}".format(slot)
    assert not cluster.wacks[0].iface.owns(slot)


def test_console_release_unknown_slot_is_error():
    cluster, console = console_cluster()
    assert console.execute("release nope").startswith("error:")


def test_console_release_usage():
    cluster, console = console_cluster()
    assert console.execute("release").startswith("usage:")


def test_console_prefer_updates_config():
    cluster, console = console_cluster()
    slot = cluster.wconfig.slot_ids()[0]
    response = console.execute("prefer {}".format(slot))
    assert slot in response
    assert cluster.wacks[0].config.prefer == (slot,)


def test_console_prefer_unknown_slot_is_error():
    cluster, console = console_cluster()
    assert console.execute("prefer bogus").startswith("error:")


def test_console_unknown_command():
    cluster, console = console_cluster()
    assert "unknown command" in console.execute("frobnicate")


def test_console_empty_line():
    cluster, console = console_cluster()
    assert console.execute("   ") == ""


def test_console_help_lists_commands():
    cluster, console = console_cluster()
    text = console.execute("help")
    for command in ("status", "table", "release", "prefer", "shutdown"):
        assert command in text


def test_console_shutdown_is_graceful():
    cluster, console = console_cluster()
    assert console.execute("shutdown") == "shutting down"
    cluster.sim.run_for(0.2)
    assert cluster.wacks[0].iface.owned_slots() == ()
