"""Unit tests for the VIP allocation table."""

import pytest

from repro.core.table import AllocationTable


@pytest.fixture
def table():
    return AllocationTable(["v1", "v2", "v3"], members=["a", "b"])


def test_starts_with_all_holes(table):
    assert table.holes() == ("v1", "v2", "v3")
    assert not table.is_complete()


def test_set_and_read_owner(table):
    table.set_owner("v1", "a")
    assert table.owner("v1") == "a"
    assert table.holes() == ("v2", "v3")


def test_release_clears_owner(table):
    table.set_owner("v1", "a")
    table.release("v1")
    assert table.owner("v1") is None


def test_owned_by_lists_in_slot_order(table):
    table.set_owner("v3", "a")
    table.set_owner("v1", "a")
    table.set_owner("v2", "b")
    assert table.owned_by("a") == ("v1", "v3")


def test_counts_cover_all_members(table):
    table.set_owner("v1", "a")
    assert table.counts() == {"a": 1, "b": 0}


def test_position_reflects_membership_order(table):
    assert table.position("a") == 0
    assert table.position("b") == 1


def test_unknown_slot_rejected(table):
    with pytest.raises(KeyError):
        table.set_owner("nope", "a")
    with pytest.raises(KeyError):
        table.owner("nope")


def test_unknown_owner_rejected(table):
    with pytest.raises(ValueError):
        table.set_owner("v1", "stranger")


def test_is_complete(table):
    for slot in table.slots:
        table.set_owner(slot, "a")
    assert table.is_complete()


def test_copy_is_independent(table):
    table.set_owner("v1", "a")
    clone = table.copy()
    clone.set_owner("v1", "b")
    assert table.owner("v1") == "a"
    assert clone.members == table.members


def test_as_dict_snapshot(table):
    table.set_owner("v1", "a")
    snapshot = table.as_dict()
    snapshot["v1"] = "b"
    assert table.owner("v1") == "a"


def test_equality(table):
    other = AllocationTable(["v1", "v2", "v3"], members=["a", "b"])
    assert table == other
    other.set_owner("v1", "a")
    assert table != other
