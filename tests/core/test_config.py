"""Unit tests for Wackamole configuration."""

import pytest

from repro.core.config import VipGroup, WackamoleConfig
from repro.net.addresses import IPAddress


def test_for_vips_builds_single_address_groups():
    config = WackamoleConfig.for_vips(["10.0.0.1", "10.0.0.2"])
    assert config.slot_ids() == ("10.0.0.1", "10.0.0.2")
    assert config.group("10.0.0.1").addresses == (IPAddress("10.0.0.1"),)


def test_vip_group_holds_multiple_addresses():
    group = VipGroup("router", ["10.0.0.1", "192.168.0.1"])
    assert len(group.addresses) == 2


def test_empty_vip_group_rejected():
    with pytest.raises(ValueError):
        VipGroup("empty", [])


def test_duplicate_group_ids_rejected():
    with pytest.raises(ValueError):
        WackamoleConfig([VipGroup("x", ["10.0.0.1"]), VipGroup("x", ["10.0.0.2"])])


def test_unknown_preference_rejected():
    with pytest.raises(ValueError):
        WackamoleConfig.for_vips(["10.0.0.1"], prefer=("10.0.0.9",))


def test_known_preference_accepted():
    config = WackamoleConfig.for_vips(["10.0.0.1"], prefer=("10.0.0.1",))
    assert config.prefer == ("10.0.0.1",)


def test_unknown_group_lookup_raises():
    config = WackamoleConfig.for_vips(["10.0.0.1"])
    with pytest.raises(KeyError):
        config.group("nope")


def test_copy_for_overrides_selected_fields():
    config = WackamoleConfig.for_vips(["10.0.0.1"], balance_timeout=10.0)
    clone = config.copy_for(balance_timeout=99.0)
    assert clone.balance_timeout == 99.0
    assert clone.vip_groups == config.vip_groups
    assert config.balance_timeout == 10.0


def test_vip_group_equality_and_hash():
    a = VipGroup("g", ["10.0.0.1"])
    b = VipGroup("g", ["10.0.0.1"])
    assert a == b
    assert len({a, b}) == 1


def test_notify_ips_parsed():
    config = WackamoleConfig.for_vips(["10.0.0.1"], notify_ips=("10.0.0.254",))
    assert config.notify_ips == (IPAddress("10.0.0.254"),)


def test_stabilization_defaults_off_and_rides_copy_for():
    from repro.stabilization import StabilizationConfig

    config = WackamoleConfig.for_vips(["10.0.0.1"])
    assert not config.stabilization.enabled
    assert config.stabilization.interval == 0.0
    audited = WackamoleConfig.for_vips(
        ["10.0.0.1"], stabilization=StabilizationConfig(interval=0.5)
    )
    assert audited.stabilization.enabled
    clone = audited.copy_for(balance_timeout=9.0)
    assert clone.stabilization is audited.stabilization
    with pytest.raises(ValueError):
        StabilizationConfig(interval=-1.0)
    with pytest.raises(TypeError):
        WackamoleConfig.for_vips(["10.0.0.1"], stabilization=0.5)
