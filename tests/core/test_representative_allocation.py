"""Tests for the §4.2 representative-allocation variant.

"The way Wackamole handles network failures can be modified, such that
all decisions are made by a deterministically chosen representative
and imposed upon the other daemons, rather than made independently by
each daemon through a deterministic decision process."
"""

from helpers import build_wack_cluster, settle_wack

from repro.core.state import RUN

REP_OVERRIDES = {"representative_allocation": True, "maturity_timeout": 0.5}


def test_boot_covers_every_vip_exactly_once():
    cluster = build_wack_cluster(3, n_vips=6, wack_overrides=REP_OVERRIDES)
    assert settle_wack(cluster)
    for vip in cluster.wconfig.slot_ids():
        owners = [w for w in cluster.wacks if w.iface.owns(vip)]
        assert len(owners) == 1
    assert cluster.auditor.check() == []


def test_crash_reallocation_still_works():
    cluster = build_wack_cluster(3, n_vips=6, wack_overrides=REP_OVERRIDES)
    assert settle_wack(cluster)
    cluster.faults.crash_host(cluster.hosts[0])
    assert settle_wack(cluster)
    assert cluster.auditor.check() == []
    assert all(w.machine.state == RUN for w in cluster.wacks if w.alive)


def test_representative_crash_mid_epoch_recovers():
    cluster = build_wack_cluster(3, n_vips=6, wack_overrides=REP_OVERRIDES)
    assert settle_wack(cluster)
    # The representative is the first member of the sorted list: node0.
    rep = cluster.wacks[0]
    assert rep.member_name == rep.view.members[0]
    cluster.faults.crash_host(rep.host)
    assert settle_wack(cluster)
    assert cluster.auditor.check() == []


def test_partition_and_merge():
    cluster = build_wack_cluster(4, n_vips=8, wack_overrides=REP_OVERRIDES)
    assert settle_wack(cluster)
    cluster.faults.partition(cluster.lan, [cluster.hosts[:2], cluster.hosts[2:]])
    assert settle_wack(cluster)
    for side in (cluster.wacks[:2], cluster.wacks[2:]):
        for vip in cluster.wconfig.slot_ids():
            assert len([w for w in side if w.iface.owns(vip)]) == 1
    cluster.faults.heal(cluster.lan)
    assert settle_wack(cluster)
    assert cluster.auditor.check() == []


def test_allocation_identical_to_distributed_mode():
    """Both decision styles must produce the same allocation (the
    representative runs the same deterministic procedure)."""
    rep_cluster = build_wack_cluster(3, n_vips=6, wack_overrides=REP_OVERRIDES)
    assert settle_wack(rep_cluster)
    dist_cluster = build_wack_cluster(
        3, n_vips=6, wack_overrides={"maturity_timeout": 0.5}
    )
    assert settle_wack(dist_cluster)
    assert (
        rep_cluster.wacks[0].table.as_dict() == dist_cluster.wacks[0].table.as_dict()
    )


def test_non_representatives_never_compute_allocations():
    cluster = build_wack_cluster(3, n_vips=6, wack_overrides=REP_OVERRIDES)
    assert settle_wack(cluster)
    cluster.faults.crash_host(cluster.hosts[2])
    assert settle_wack(cluster)
    # Every member applies the same number of imposed allocations; the
    # reallocations counter counts AllocMsg applications only.
    live = [w for w in cluster.wacks if w.alive]
    assert len({w.reallocations for w in live}) == 1


def test_maturity_timeout_path_uses_representative():
    cluster = build_wack_cluster(
        2, n_vips=4, wack_overrides=dict(REP_OVERRIDES, maturity_timeout=1.0)
    )
    assert settle_wack(cluster)
    for vip in cluster.wconfig.slot_ids():
        assert len([w for w in cluster.wacks if w.iface.owns(vip)]) == 1
