"""Integration tests for the BALANCE procedure (Algorithm 3, §3.4)."""

from helpers import build_wack_cluster, settle_wack

from repro.core.state import RUN


def test_rebalance_after_merge_evens_allocation():
    cluster = build_wack_cluster(4, n_vips=8, wack_overrides={"balance_timeout": 0.5})
    assert settle_wack(cluster)
    cluster.faults.crash_host(cluster.hosts[3])
    assert settle_wack(cluster)
    # After the crash reallocation may be uneven; balance evens it out.
    cluster.sim.run_for(2.0)
    counts = sorted(len(w.iface.owned_slots()) for w in cluster.wacks[:3])
    assert max(counts) - min(counts) <= 1
    assert cluster.auditor.check() == []


def test_only_representative_sends_balance():
    cluster = build_wack_cluster(3, n_vips=9, wack_overrides={"balance_timeout": 0.3})
    assert settle_wack(cluster)
    cluster.sim.run_for(2.0)
    senders = [w for w in cluster.wacks if w.balances_sent > 0]
    for wack in senders:
        assert wack.member_name == wack.view.members[0]


def test_balance_is_noop_when_already_even():
    cluster = build_wack_cluster(3, n_vips=6, wack_overrides={"balance_timeout": 0.3})
    assert settle_wack(cluster)
    applied_before = sum(w.balances_applied for w in cluster.wacks)
    cluster.sim.run_for(3.0)
    # Boot allocation is already even; no BALANCE_MSG should be needed.
    assert sum(w.balances_applied for w in cluster.wacks) == applied_before
    assert cluster.auditor.check() == []


def test_balance_disabled_keeps_uneven_allocation():
    cluster = build_wack_cluster(
        3, n_vips=6, wack_overrides={"balance_enabled": False}
    )
    assert settle_wack(cluster)
    cluster.faults.crash_host(cluster.hosts[0])
    assert settle_wack(cluster)
    cluster.sim.run_for(3.0)
    assert all(w.balances_sent == 0 for w in cluster.wacks)


def test_balance_respects_preferences():
    cluster = build_wack_cluster(
        2,
        n_vips=4,
        wack_overrides={"balance_timeout": 0.3},
    )
    # node1 prefers the first two vips.
    prefer = tuple(cluster.wconfig.slot_ids()[:2])
    cluster.wacks[1].config = cluster.wacks[1].config.copy_for(prefer=prefer)
    assert settle_wack(cluster)
    cluster.sim.run_for(3.0)
    for slot in prefer:
        assert cluster.wacks[1].iface.owns(slot)
    assert cluster.auditor.check() == []


def test_coverage_invariant_holds_through_balance_moves():
    cluster = build_wack_cluster(4, n_vips=10, wack_overrides={"balance_timeout": 0.2})
    assert settle_wack(cluster)
    cluster.faults.crash_host(cluster.hosts[3])
    assert settle_wack(cluster)
    # Sample the invariant repeatedly while balance rounds run.
    for _ in range(20):
        cluster.sim.run_for(0.25)
        live = [w for w in cluster.wacks if w.alive]
        if all(w.machine.state == RUN for w in live):
            assert cluster.auditor.check() == []
