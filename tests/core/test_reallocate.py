"""Unit tests for the deterministic Reallocate_IPs procedure."""

from repro.core.reallocate import reallocate_ips
from repro.core.table import AllocationTable


def make_table(slots, members):
    return AllocationTable(slots, members=members)


def test_covers_every_hole():
    table = make_table(["v1", "v2", "v3"], ["a", "b"])
    reallocate_ips(table)
    assert table.is_complete()


def test_spreads_load_evenly():
    table = make_table(["v{}".format(i) for i in range(6)], ["a", "b", "c"])
    reallocate_ips(table)
    assert set(table.counts().values()) == {2}


def test_respects_existing_ownership():
    table = make_table(["v1", "v2", "v3"], ["a", "b"])
    table.set_owner("v1", "a")
    assignments = reallocate_ips(table)
    assert "v1" not in assignments
    assert table.owner("v1") == "a"


def test_least_loaded_member_gets_holes():
    table = make_table(["v1", "v2", "v3", "v4"], ["a", "b"])
    table.set_owner("v1", "a")
    table.set_owner("v2", "a")
    table.set_owner("v3", "a")
    reallocate_ips(table)
    assert table.owner("v4") == "b"


def test_ties_broken_by_membership_order():
    # The table preserves the uniquely ordered list it is given; ties go
    # to the earliest position in that list.
    table = make_table(["v1"], ["b", "a", "c"])
    reallocate_ips(table)
    assert table.owner("v1") == "b"


def test_preferences_override_load():
    table = make_table(["v1", "v2"], ["a", "b"])
    assignments = reallocate_ips(table, {"b": ("v1",)})
    assert table.owner("v1") == "b"


def test_contested_preference_goes_to_least_loaded_preferring_member():
    table = make_table(["v1", "v2", "v3"], ["a", "b"])
    table.set_owner("v2", "b")
    table.set_owner("v3", "b")
    reallocate_ips(table, {"a": ("v1",), "b": ("v1",)})
    assert table.owner("v1") == "a"


def test_determinism_across_equal_inputs():
    def run():
        table = make_table(["v{}".format(i) for i in range(7)], ["n1", "n2", "n3"])
        table.set_owner("v0", "n2")
        reallocate_ips(table, {"n3": ("v5",)})
        return table.as_dict()

    assert run() == run()


def test_returns_only_new_assignments():
    table = make_table(["v1", "v2"], ["a"])
    table.set_owner("v1", "a")
    assignments = reallocate_ips(table)
    assert assignments == {"v2": "a"}


def test_single_member_takes_everything():
    table = make_table(["v1", "v2", "v3"], ["only"])
    reallocate_ips(table)
    assert table.counts() == {"only": 3}
