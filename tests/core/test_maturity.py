"""Integration tests for the maturity bootstrap optimisation (§3.4)."""

from helpers import build_wack_cluster, settle_wack

from repro.core.state import RUN


def test_fresh_cluster_starts_immature_and_covers_nothing():
    cluster = build_wack_cluster(3, wack_overrides={"maturity_timeout": 5.0})
    # Before any maturity timeout fires: RUN but no coverage.
    cluster.sim.run_for(3.0)
    assert all(not w.mature for w in cluster.wacks)
    assert all(w.iface.owned_slots() == () for w in cluster.wacks)
    # The auditor deliberately skips all-immature components.
    assert cluster.auditor.check() == []


def test_maturity_timeout_triggers_cluster_wide_allocation():
    cluster = build_wack_cluster(3, wack_overrides={"maturity_timeout": 1.0})
    assert settle_wack(cluster)
    assert all(w.mature for w in cluster.wacks)
    assert all(w.table.is_complete() for w in cluster.wacks)
    assert cluster.auditor.check() == []


def test_maturity_spreads_via_state_messages():
    cluster = build_wack_cluster(2, wack_overrides={"maturity_timeout": 0.5})
    assert settle_wack(cluster)
    # A new immature server joins the mature cluster.
    from repro.core.daemon import WackamoleDaemon
    from repro.gcs.daemon import SpreadDaemon
    from repro.net.host import Host

    host = Host(cluster.sim, "node9")
    host.add_nic(cluster.lan, "10.0.0.99")
    spread = SpreadDaemon(host, cluster.lan, cluster.config)
    late_config = cluster.wconfig.copy_for(maturity_timeout=60.0)
    wack = WackamoleDaemon(host, spread, late_config)
    spread.start()
    wack.start()
    cluster.wacks.append(wack)
    cluster.hosts.append(host)
    cluster.auditor.daemons.append(wack)
    assert settle_wack(cluster)
    # It matured from a STATE message, far before its own 60s timeout.
    assert wack.mature
    mature_record = cluster.sim.trace.last(
        category="wackamole", source=wack.name, event="mature"
    )
    assert "state message" in mature_record.details["reason"]


def test_reboot_avoids_vip_churn_until_timeout():
    """The stated purpose: no quick IP reallocations while booting."""
    cluster = build_wack_cluster(
        3, wack_overrides={"maturity_timeout": 2.0}, stagger=0.3
    )
    cluster.sim.run_for(1.5)
    acquisitions = sum(w.iface.acquisitions for w in cluster.wacks)
    assert acquisitions == 0
    assert settle_wack(cluster)
    assert sum(w.iface.acquisitions for w in cluster.wacks) >= len(
        cluster.wconfig.slot_ids()
    )


def test_exactly_one_allocation_wave_after_joint_maturity():
    cluster = build_wack_cluster(3, n_vips=6, wack_overrides={"maturity_timeout": 0.5})
    assert settle_wack(cluster)
    for vip in cluster.wconfig.slot_ids():
        owners = [w for w in cluster.wacks if w.iface.owns(vip)]
        assert len(owners) == 1


def test_mature_flag_survives_view_changes():
    cluster = build_wack_cluster(3, wack_overrides={"maturity_timeout": 0.5})
    assert settle_wack(cluster)
    cluster.faults.crash_host(cluster.hosts[2])
    assert settle_wack(cluster)
    assert all(w.mature for w in cluster.wacks[:2])
