"""Tests for load-based (weighted) reallocation — §3.4.

"…we can modify the Reallocate_IPs() procedure to perform load-based
reallocation of IP addresses."
"""

from helpers import build_wack_cluster, settle_wack

from repro.core.balance import compute_balanced_allocation, weighted_quotas
from repro.core.reallocate import reallocate_ips
from repro.core.table import AllocationTable


# ----------------------------------------------------------------------
# pure procedures


def test_quotas_proportional_to_weights():
    quotas = weighted_quotas(["a", "b"], 6, {"a": 2.0, "b": 1.0})
    assert quotas == {"a": 4, "b": 2}


def test_quotas_largest_remainder_is_deterministic():
    quotas = weighted_quotas(["a", "b", "c"], 4, {"a": 1.0, "b": 1.0, "c": 1.0})
    assert sum(quotas.values()) == 4
    assert quotas == weighted_quotas(["a", "b", "c"], 4, {"a": 1.0, "b": 1.0, "c": 1.0})
    # The extra slot goes to the earliest member on a tie.
    assert quotas["a"] == 2


def test_reallocate_respects_weights():
    table = AllocationTable(["v{}".format(i) for i in range(6)], members=["a", "b"])
    reallocate_ips(table, weights={"a": 2.0, "b": 1.0})
    counts = table.counts()
    assert counts["a"] == 4
    assert counts["b"] == 2


def test_reallocate_equal_weights_match_unweighted():
    def run(weights):
        table = AllocationTable(["v{}".format(i) for i in range(7)], members=["a", "b", "c"])
        table.set_owner("v0", "b")
        reallocate_ips(table, weights=weights)
        return table.as_dict()

    assert run(None) == run({"a": 1.0, "b": 1.0, "c": 1.0})


def test_balance_moves_toward_weighted_quotas():
    slots = ["v{}".format(i) for i in range(6)]
    current = {slot: "b" for slot in slots}
    allocation = compute_balanced_allocation(
        ["a", "b"], slots, current, weights={"a": 2.0, "b": 1.0}
    )
    counts = {m: sum(1 for o in allocation.values() if o == m) for m in "ab"}
    assert counts == {"a": 4, "b": 2}


def test_balance_weighted_is_minimal_movement():
    slots = ["v{}".format(i) for i in range(6)]
    # Already at quota: nothing should move.
    current = {"v0": "a", "v1": "a", "v2": "a", "v3": "a", "v4": "b", "v5": "b"}
    allocation = compute_balanced_allocation(
        ["a", "b"], slots, current, weights={"a": 2.0, "b": 1.0}
    )
    assert allocation == current


def test_balance_weighted_respects_preferences():
    slots = ["v0", "v1", "v2"]
    current = {slot: "a" for slot in slots}
    allocation = compute_balanced_allocation(
        ["a", "b"], slots, current,
        preferences={"a": ("v0", "v1", "v2")},
        weights={"a": 1.0, "b": 2.0},
    )
    # All pinned by preference: quotas cannot be met by moving them.
    assert allocation == current


def test_balance_equal_weights_use_unweighted_path():
    slots = ["v0", "v1", "v2", "v3"]
    current = {"v0": "a", "v1": "a", "v2": "b", "v3": "b"}
    with_weights = compute_balanced_allocation(
        ["a", "b"], slots, current, weights={"a": 1.0, "b": 1.0}
    )
    without = compute_balanced_allocation(["a", "b"], slots, current)
    assert with_weights == without


# ----------------------------------------------------------------------
# end to end


def test_cluster_allocates_by_weight():
    cluster = build_wack_cluster(2, n_vips=6, wack_overrides={"balance_timeout": 0.5})
    # node0 advertises double capacity.
    cluster.wacks[0].config = cluster.wacks[0].config.copy_for(weight=2.0)
    assert settle_wack(cluster)
    cluster.sim.run_for(2.0)  # a balance round under the weighted quota
    counts = {
        w.host.name: len(w.iface.owned_slots()) for w in cluster.wacks
    }
    assert counts["node0"] == 4
    assert counts["node1"] == 2
    assert cluster.auditor.check() == []


def test_weight_travels_in_state_messages():
    cluster = build_wack_cluster(2, n_vips=2)
    cluster.wacks[1].config = cluster.wacks[1].config.copy_for(weight=3.0)
    assert settle_wack(cluster)
    observed = cluster.wacks[0]._weights
    assert observed[cluster.wacks[1].member_name] == 3.0


def test_invalid_weight_rejected():
    import pytest

    from repro.core.config import WackamoleConfig

    with pytest.raises(ValueError):
        WackamoleConfig.for_vips(["10.0.0.1"], weight=0.0)
