"""Integration tests for the Wackamole daemon (Algorithms 1-3)."""

from helpers import build_wack_cluster, settle_wack

from repro.core.state import GATHER, RUN


def test_boot_reaches_run_with_full_coverage():
    cluster = build_wack_cluster(3)
    assert settle_wack(cluster)
    for wack in cluster.wacks:
        assert wack.machine.state == RUN
        assert wack.table.is_complete()
    assert cluster.auditor.check() == []


def test_every_vip_covered_exactly_once_at_boot():
    cluster = build_wack_cluster(4, n_vips=8)
    assert settle_wack(cluster)
    for vip in cluster.wconfig.slot_ids():
        owners = [w.host.name for w in cluster.wacks if w.iface.owns(vip)]
        assert len(owners) == 1, "vip {} covered by {}".format(vip, owners)


def test_allocation_spread_evenly_at_boot():
    cluster = build_wack_cluster(3, n_vips=6)
    assert settle_wack(cluster)
    counts = sorted(len(w.iface.owned_slots()) for w in cluster.wacks)
    assert counts == [2, 2, 2]


def test_tables_identical_across_members():
    cluster = build_wack_cluster(4)
    assert settle_wack(cluster)
    reference = cluster.wacks[0].table.as_dict()
    assert all(w.table.as_dict() == reference for w in cluster.wacks)


def test_crash_reallocates_victims_vips():
    cluster = build_wack_cluster(3, n_vips=6)
    assert settle_wack(cluster)
    victim = cluster.wacks[0]
    lost = set(victim.iface.owned_slots())
    assert lost
    cluster.faults.crash_host(victim.host)
    assert settle_wack(cluster)
    survivors = cluster.wacks[1:]
    for vip in lost:
        owners = [w.host.name for w in survivors if w.iface.owns(vip)]
        assert len(owners) == 1
    assert cluster.auditor.check() == []


def test_last_server_covers_everything():
    cluster = build_wack_cluster(3, n_vips=5)
    assert settle_wack(cluster)
    cluster.faults.crash_host(cluster.hosts[0].nics[0].host)
    cluster.faults.crash_host(cluster.hosts[1])
    assert settle_wack(cluster)
    survivor = cluster.wacks[2]
    assert len(survivor.iface.owned_slots()) == 5


def test_partition_both_sides_cover_full_set():
    cluster = build_wack_cluster(4, n_vips=6)
    assert settle_wack(cluster)
    cluster.faults.partition(cluster.lan, [cluster.hosts[:2], cluster.hosts[2:]])
    assert settle_wack(cluster)
    for side in (cluster.wacks[:2], cluster.wacks[2:]):
        for vip in cluster.wconfig.slot_ids():
            owners = [w for w in side if w.iface.owns(vip)]
            assert len(owners) == 1
    assert cluster.auditor.check() == []


def test_merge_resolves_all_conflicts():
    cluster = build_wack_cluster(4, n_vips=6)
    assert settle_wack(cluster)
    cluster.faults.partition(cluster.lan, [cluster.hosts[:2], cluster.hosts[2:]])
    assert settle_wack(cluster)
    cluster.faults.heal(cluster.lan)
    assert settle_wack(cluster)
    for vip in cluster.wconfig.slot_ids():
        owners = [w for w in cluster.wacks if w.iface.owns(vip)]
        assert len(owners) == 1
    assert sum(w.conflicts_dropped for w in cluster.wacks) > 0
    assert cluster.auditor.check() == []


def test_conflict_loser_is_earlier_member():
    cluster = build_wack_cluster(2, n_vips=4)
    assert settle_wack(cluster)
    cluster.faults.partition(cluster.lan, [[cluster.hosts[0]], [cluster.hosts[1]]])
    assert settle_wack(cluster)
    cluster.faults.heal(cluster.lan)
    assert settle_wack(cluster)
    # node0 sorts first -> it must have released the contested slots.
    conflict_records = cluster.sim.trace.select(category="wackamole", event="conflict")
    assert conflict_records
    for record in conflict_records:
        assert record.details["loser"] < record.details["winner"]


def test_state_msgs_from_other_views_ignored():
    cluster = build_wack_cluster(3)
    assert settle_wack(cluster)
    wack = cluster.wacks[0]
    from repro.core.messages import StateMsg

    stale = StateMsg("wack@node1", ("bogus", "view", 0), ("10.0.0.100",), (), True)
    before = wack.table.as_dict()
    wack._on_state_msg(stale)
    assert wack.table.as_dict() == before


def test_nic_down_isolated_daemon_covers_all_in_its_component():
    cluster = build_wack_cluster(3, n_vips=4)
    assert settle_wack(cluster)
    cluster.faults.nic_down(cluster.hosts[0].nics[0])
    assert settle_wack(cluster)
    isolated = cluster.wacks[0]
    # Property 1 is per connected component: the singleton covers all.
    assert len(isolated.iface.owned_slots()) == 4
    for vip in cluster.wconfig.slot_ids():
        owners = [w for w in cluster.wacks[1:] if w.iface.owns(vip)]
        assert len(owners) == 1


def test_gcs_disconnect_drops_all_vips_and_reconnects():
    cluster = build_wack_cluster(3, n_vips=6)
    assert settle_wack(cluster)
    wack = cluster.wacks[0]
    assert wack.iface.owned_slots()
    # Kill only the GCS daemon; the host (and Wackamole) stay up.
    cluster.spreads[0].crash()
    cluster.sim.run_for(0.2)
    assert wack.iface.owned_slots() == ()
    assert wack.client is None
    # A replacement GCS daemon comes up; Wackamole reconnects by itself.
    from repro.gcs.daemon import SpreadDaemon

    replacement = SpreadDaemon(
        cluster.hosts[0], cluster.lan, cluster.config, daemon_id="node0b"
    )
    replacement.start()
    cluster.sim.run_for(wack.config.reconnect_interval * 3)
    assert settle_wack(cluster)
    assert wack.client is not None and wack.client.connected
    assert cluster.auditor.check() == []


def test_graceful_shutdown_releases_before_leaving():
    cluster = build_wack_cluster(3, n_vips=6)
    assert settle_wack(cluster)
    victim = cluster.wacks[0]
    owned = set(victim.iface.owned_slots())
    installs_before = cluster.spreads[1].membership.views_installed
    victim.shutdown()
    cluster.sim.run_for(0.5)
    # No address is double-bound at any point, and the leave was
    # lightweight (no daemon-level reconfiguration).
    assert victim.iface.owned_slots() == ()
    assert cluster.spreads[1].membership.views_installed == installs_before
    assert settle_wack(cluster)
    for vip in owned:
        owners = [w for w in cluster.wacks[1:] if w.iface.owns(vip)]
        assert len(owners) == 1


def test_status_snapshot_fields():
    cluster = build_wack_cluster(2)
    assert settle_wack(cluster)
    status = cluster.wacks[0].status()
    assert status["state"] == RUN
    assert status["mature"] is True
    assert status["connected"] is True
    assert len(status["members"]) == 2
    assert set(status["table"]) == set(cluster.wconfig.slot_ids())


def test_view_change_enters_gather_and_backs_up_table():
    cluster = build_wack_cluster(3)
    assert settle_wack(cluster)
    wack = cluster.wacks[1]
    before = wack.table.as_dict()
    history_len = len(wack.machine.history)
    cluster.faults.crash_host(cluster.hosts[0])
    assert settle_wack(cluster)
    # The daemon passed through GATHER (RUN -> GATHER -> RUN) and
    # backed up the pre-change table.
    new_transitions = wack.machine.history[history_len:]
    assert (RUN, "VIEW_CHANGE", GATHER) in new_transitions
    assert (GATHER, "REALLOCATION_COMPLETE", RUN) in new_transitions
    assert wack.old_table.as_dict() == before
