"""Unit tests for the Balance_IPs computation."""

from repro.core.balance import compute_balanced_allocation


def test_balances_skewed_allocation():
    slots = ["v{}".format(i) for i in range(6)]
    current = {slot: "a" for slot in slots}
    allocation = compute_balanced_allocation(["a", "b", "c"], slots, current)
    counts = {m: sum(1 for o in allocation.values() if o == m) for m in "abc"}
    assert set(counts.values()) == {2}


def test_balanced_input_unchanged():
    slots = ["v1", "v2", "v3", "v4"]
    current = {"v1": "a", "v2": "a", "v3": "b", "v4": "b"}
    allocation = compute_balanced_allocation(["a", "b"], slots, current)
    assert allocation == current


def test_moves_minimum_number_of_slots():
    slots = ["v1", "v2", "v3", "v4"]
    current = {"v1": "a", "v2": "a", "v3": "a", "v4": "b"}
    allocation = compute_balanced_allocation(["a", "b"], slots, current)
    moved = [slot for slot in slots if allocation[slot] != current[slot]]
    assert len(moved) == 1


def test_imbalance_of_one_is_tolerated():
    slots = ["v1", "v2", "v3"]
    current = {"v1": "a", "v2": "a", "v3": "b"}
    allocation = compute_balanced_allocation(["a", "b"], slots, current)
    assert allocation == current


def test_preferences_pull_slots_to_preferring_member():
    slots = ["v1", "v2"]
    current = {"v1": "a", "v2": "a"}
    allocation = compute_balanced_allocation(
        ["a", "b"], slots, current, {"b": ("v1",)}
    )
    assert allocation["v1"] == "b"


def test_preferred_slots_not_moved_by_levelling():
    slots = ["v1", "v2", "v3"]
    current = {"v1": "a", "v2": "a", "v3": "a"}
    allocation = compute_balanced_allocation(
        ["a", "b"], slots, current, {"a": ("v1", "v2", "v3")}
    )
    # All three are pinned by preference; levelling cannot move them.
    assert allocation == current


def test_unassigned_slots_get_owners():
    slots = ["v1", "v2"]
    allocation = compute_balanced_allocation(["a", "b"], slots, {})
    assert None not in allocation.values()


def test_owner_outside_membership_is_replaced():
    slots = ["v1"]
    allocation = compute_balanced_allocation(["a"], slots, {"v1": "ghost"})
    assert allocation["v1"] == "a"


def test_empty_membership_returns_current():
    assert compute_balanced_allocation([], ["v1"], {"v1": "x"}) == {"v1": "x"}


def test_deterministic():
    slots = ["v{}".format(i) for i in range(9)]
    current = {slot: "a" for slot in slots}
    first = compute_balanced_allocation(["a", "b", "c", "d"], slots, current)
    second = compute_balanced_allocation(["a", "b", "c", "d"], slots, current)
    assert first == second
