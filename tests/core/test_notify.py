"""Unit tests for ARP spoof notification strategies."""

from repro.core.config import WackamoleConfig
from repro.core.notify import ArpNotifier
from repro.net.host import Host
from repro.net.lan import Lan
from repro.sim.simulation import Simulation


def build(**config_overrides):
    sim = Simulation(seed=0)
    lan = Lan(sim, "lan", "10.0.0.0/24")
    host = Host(sim, "h")
    nic = host.add_nic(lan, "10.0.0.1")
    router = Host(sim, "router")
    router.add_nic(lan, "10.0.0.254")
    config = WackamoleConfig.for_vips(["10.0.0.100"], **config_overrides)
    return sim, lan, host, nic, router, ArpNotifier(host, config)


def test_default_strategy_broadcasts():
    sim, lan, host, nic, router, notifier = build()
    nic.bind_ip("10.0.0.100")
    notifier.announce(nic, "10.0.0.100")
    sim.run_until_idle()
    # Broadcast reached the router and created/updated its entry.
    assert router.arp.cache.lookup("10.0.0.100") == nic.mac


def test_configured_target_resolved_from_cache_is_unicast():
    from repro.net.addresses import MACAddress

    sim, lan, host, nic, router, notifier = build(notify_ips=("10.0.0.254",))
    host.arp.cache.store("10.0.0.254", router.nics[0].mac)
    bystander = Host(sim, "bystander")
    bystander.add_nic(lan, "10.0.0.9")
    stale_mac = MACAddress(0x0DEAD00000001)
    bystander.arp.cache.store("10.0.0.100", stale_mac)
    nic.bind_ip("10.0.0.100")
    notifier.announce(nic, "10.0.0.100")
    sim.run_until_idle()
    assert router.arp.cache.lookup("10.0.0.100") == nic.mac
    # Unicast notification: the bystander's stale entry was not touched.
    assert bystander.arp.cache.lookup("10.0.0.100") == stale_mac
    assert host.arp.spoofs_sent == 1


def test_unresolved_target_falls_back_to_broadcast():
    sim, lan, host, nic, router, notifier = build(notify_ips=("10.0.0.254",))
    nic.bind_ip("10.0.0.100")
    notifier.announce(nic, "10.0.0.100")
    sim.run_until_idle()
    assert router.arp.cache.lookup("10.0.0.100") == nic.mac


def test_shared_cache_entries_become_targets():
    from repro.net.addresses import IPAddress

    sim, lan, host, nic, router, notifier = build(arp_share_interval=1.0)
    peer_mac = router.nics[0].mac
    notifier.integrate_share([(IPAddress("10.0.0.254"), peer_mac)], now=0.0)
    nic.bind_ip("10.0.0.100")
    notifier.announce(nic, "10.0.0.100")
    sim.run_until_idle()
    assert router.arp.cache.lookup("10.0.0.100") == nic.mac
    assert host.arp.spoofs_sent == 1


def test_shared_entries_garbage_collected_after_ttl():
    sim, lan, host, nic, router, notifier = build(
        arp_share_interval=1.0, arp_share_ttl=5.0
    )
    from repro.net.addresses import IPAddress

    notifier.integrate_share([(IPAddress("10.0.0.254"), router.nics[0].mac)], now=0.0)
    assert notifier.shared_size() == 1
    sim.run(until=10.0)
    nic.bind_ip("10.0.0.100")
    notifier.announce(nic, "10.0.0.100")
    assert notifier.shared_size() == 0


def test_collect_entries_snapshots_local_cache():
    sim, lan, host, nic, router, notifier = build()
    host.arp.cache.store("10.0.0.254", router.nics[0].mac)
    entries = notifier.collect_entries()
    assert len(entries) == 1
    ip, mac = entries[0]
    assert str(ip) == "10.0.0.254"


def test_announcement_counter():
    sim, lan, host, nic, router, notifier = build()
    nic.bind_ip("10.0.0.100")
    notifier.announce(nic, "10.0.0.100")
    notifier.announce(nic, "10.0.0.100")
    assert notifier.announcements == 2
