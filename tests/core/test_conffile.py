"""Tests for the wackamole.conf-style configuration parser."""

import pytest

from repro.core.conffile import ConfigError, parse_wackamole_conf

FULL_EXAMPLE = """
# A classic web-cluster configuration.
Spread = 4804
Group = wack1
Control = /var/run/wack.it
Mature = 7s
Arp-Cache = 90s
Balance {
    AcquisitionsPerRound = all
    Interval = 4s
}
Prefer 192.168.0.100
VirtualInterfaces {
    { eth0:192.168.0.100/32 }
    { eth0:192.168.0.101/32 }
}
Notify {
    eth0:192.168.0.1/32
}
"""


def test_full_example_parses():
    parsed = parse_wackamole_conf(FULL_EXAMPLE)
    assert parsed.spread_port == 4804
    assert parsed.group_name == "wack1"
    config = parsed.wackamole
    assert config.group_name == "wack1"
    assert config.maturity_timeout == 7.0
    assert config.balance_enabled
    assert config.balance_timeout == 4.0
    assert config.slot_ids() == ("192.168.0.100", "192.168.0.101")
    assert config.prefer == ("192.168.0.100",)
    assert [str(ip) for ip in config.notify_ips] == ["192.168.0.1"]
    assert config.arp_share_interval == 0.0


def test_defaults_when_sections_omitted():
    parsed = parse_wackamole_conf("VirtualInterfaces { { 10.0.0.1/32 } }")
    assert parsed.spread_port == 4803
    assert parsed.group_name == "wackamole"
    assert not parsed.wackamole.balance_enabled


def test_multi_address_group_is_indivisible():
    parsed = parse_wackamole_conf(
        """
        VirtualInterfaces {
            { eth0:10.0.0.1/32 eth1:192.168.0.1/32 }
        }
        """
    )
    groups = parsed.wackamole.vip_groups
    assert len(groups) == 1
    assert len(groups[0].addresses) == 2
    assert groups[0].group_id == "10.0.0.1+192.168.0.1"


def test_prefer_resolves_to_containing_group():
    parsed = parse_wackamole_conf(
        """
        Prefer 192.168.0.1
        VirtualInterfaces {
            { eth0:10.0.0.1/32 eth1:192.168.0.1/32 }
        }
        """
    )
    assert parsed.wackamole.prefer == ("10.0.0.1+192.168.0.1",)


def test_prefer_none_is_accepted():
    parsed = parse_wackamole_conf(
        "Prefer None\nVirtualInterfaces { { 10.0.0.1/32 } }"
    )
    assert parsed.wackamole.prefer == ()


def test_notify_arp_cache_enables_sharing():
    parsed = parse_wackamole_conf(
        """
        VirtualInterfaces { { 10.0.0.1/32 } }
        Notify {
            eth0:10.0.0.254/32
            arp-cache
        }
        """
    )
    assert parsed.wackamole.arp_share_interval > 0
    assert [str(ip) for ip in parsed.wackamole.notify_ips] == ["10.0.0.254"]


def test_seconds_suffix_optional():
    parsed = parse_wackamole_conf(
        "Mature = 3\nVirtualInterfaces { { 10.0.0.1/32 } }"
    )
    assert parsed.wackamole.maturity_timeout == 3.0


def test_comments_ignored():
    parsed = parse_wackamole_conf(
        """
        # leading comment
        Mature = 2s  # trailing comment
        VirtualInterfaces { { 10.0.0.1/32 } }  # and here
        """
    )
    assert parsed.wackamole.maturity_timeout == 2.0


@pytest.mark.parametrize(
    "bad",
    [
        "",  # no VirtualInterfaces
        "VirtualInterfaces { }",  # no groups
        "VirtualInterfaces { { } }",  # empty group
        "Mature 5\nVirtualInterfaces { { 10.0.0.1/32 } }",  # missing '='
        "Prefer\nVirtualInterfaces { { 10.0.0.1/32 } }",  # dangling Prefer
        "Prefer 9.9.9.9\nVirtualInterfaces { { 10.0.0.1/32 } }",  # unknown
        "Bogus = 1\nVirtualInterfaces { { 10.0.0.1/32 } }",  # unknown key
        "Mature = soon\nVirtualInterfaces { { 10.0.0.1/32 } }",  # bad value
        "Balance { Bogus = 1 }\nVirtualInterfaces { { 10.0.0.1/32 } }",
    ],
)
def test_malformed_configs_rejected(bad):
    with pytest.raises(ConfigError):
        parse_wackamole_conf(bad)


def test_parsed_config_drives_a_real_cluster():
    """End to end: a conf file, a cluster, a fail-over."""
    from helpers import settle_wack, build_wack_cluster

    parsed = parse_wackamole_conf(
        """
        Group = wack1
        Mature = 0.5s
        Balance { Interval = 1s }
        VirtualInterfaces {
            { eth0:10.0.0.100/32 }
            { eth0:10.0.0.101/32 }
            { eth0:10.0.0.102/32 }
        }
        """
    )
    cluster = build_wack_cluster(2, n_vips=1)  # placeholder config below
    # Rebuild daemons with the parsed config.
    from repro.core.daemon import WackamoleDaemon

    for wack in cluster.wacks:
        wack.stop()
    replacements = [
        WackamoleDaemon(host, spread, parsed.wackamole)
        for host, spread in zip(cluster.hosts, cluster.spreads)
    ]
    cluster.wacks[:] = replacements
    cluster.auditor.daemons[:] = replacements
    for wack in cluster.wacks:
        cluster.sim.after(0.01, wack.start)
    assert settle_wack(cluster)
    covered = [
        [w.host.name for w in cluster.wacks if w.iface.owns(slot)]
        for slot in parsed.wackamole.slot_ids()
    ]
    assert all(len(owners) == 1 for owners in covered)


def test_repr():
    parsed = parse_wackamole_conf("VirtualInterfaces { { 10.0.0.1/32 } }")
    assert "1 vip groups" in repr(parsed)
