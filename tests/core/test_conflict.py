"""Unit tests for ResolveConflicts' deterministic drop rule."""

from repro.core.conflict import resolve_claim
from repro.core.table import AllocationTable


def make_table():
    return AllocationTable(["vip"], members=["a", "b", "c"])


def test_first_claim_accepted():
    table = make_table()
    winner, loser = resolve_claim(table, "vip", "b")
    assert (winner, loser) == ("b", None)
    assert table.owner("vip") == "b"


def test_reclaim_by_same_owner_is_noop():
    table = make_table()
    resolve_claim(table, "vip", "b")
    winner, loser = resolve_claim(table, "vip", "b")
    assert (winner, loser) == ("b", None)


def test_later_member_wins_conflict():
    """The paper's rule: the earlier member in the uniquely ordered
    membership list releases the address (proof of Lemma 1)."""
    table = make_table()
    resolve_claim(table, "vip", "a")
    winner, loser = resolve_claim(table, "vip", "c")
    assert winner == "c"
    assert loser == "a"
    assert table.owner("vip") == "c"


def test_earlier_claimant_loses_even_when_claiming_second():
    table = make_table()
    resolve_claim(table, "vip", "c")
    winner, loser = resolve_claim(table, "vip", "a")
    assert winner == "c"
    assert loser == "a"
    assert table.owner("vip") == "c"


def test_resolution_is_arrival_order_independent():
    """Whatever order claims arrive in, the final owner is the same."""
    import itertools

    for order in itertools.permutations(["a", "b", "c"]):
        table = make_table()
        for claimant in order:
            resolve_claim(table, "vip", claimant)
        assert table.owner("vip") == "c", "order {} diverged".format(order)
