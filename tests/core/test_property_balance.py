"""Property tests for the paper's linear placement procedures.

ISSUE 6 satellite: the historical strategy — ``reallocate_ips``
hole-filling and the RUN-state ``compute_balanced_allocation`` pass —
is held to the same coverage and single-owner invariants as the new
rendezvous strategy, via the shared helpers in ``tests/helpers.py``.
"""

from hypothesis import given
from hypothesis import strategies as st

from helpers import assert_allocation_ok

from repro.core.balance import compute_balanced_allocation
from repro.core.reallocate import reallocate_ips
from repro.core.table import AllocationTable

names = st.text(alphabet="abcdefghij0123456789-", min_size=1, max_size=12)
member_lists = st.lists(names, min_size=1, max_size=16, unique=True)
slot_lists = st.lists(names.map("vip-{}".format), min_size=1, max_size=48, unique=True)


def random_current(members, slots, data):
    """A partial/stale {slot: owner} map as GATHER would accumulate it."""
    current = {}
    stale = ["ghost-1", "ghost-2"]
    for slot in slots:
        choice = data.draw(
            st.sampled_from(["hole", "member", "stale"]), label="state {}".format(slot)
        )
        if choice == "member":
            current[slot] = data.draw(
                st.sampled_from(members), label="owner {}".format(slot)
            )
        elif choice == "stale":
            current[slot] = stale[len(current) % 2]
    return current


@given(members=member_lists, slots=slot_lists, data=st.data())
def test_balanced_allocation_invariants(members, slots, data):
    current = random_current(members, slots, data)
    allocation = compute_balanced_allocation(members, slots, current)
    assert_allocation_ok(allocation, members, slots)
    # Determinism: same inputs, same answer.
    assert allocation == compute_balanced_allocation(members, slots, current)


@given(members=member_lists, slots=slot_lists, data=st.data())
def test_balanced_allocation_levels_load(members, slots, data):
    current = random_current(members, slots, data)
    allocation = compute_balanced_allocation(members, slots, current)
    counts = {member: 0 for member in members}
    for owner in allocation.values():
        counts[owner] += 1
    assert max(counts.values()) - min(counts.values()) <= 1


@given(members=member_lists, slots=slot_lists, data=st.data())
def test_reallocate_covers_holes_without_disturbing_owners(members, slots, data):
    table = AllocationTable(slots, members)
    pre_owned = {}
    for slot in slots:
        if data.draw(st.booleans(), label="preassign {}".format(slot)):
            owner = data.draw(st.sampled_from(members), label="owner {}".format(slot))
            table.set_owner(slot, owner)
            pre_owned[slot] = owner
    grants = reallocate_ips(table)
    assert set(grants) == set(slots) - set(pre_owned)
    current = table.as_dict()
    for slot, owner in pre_owned.items():
        assert current[slot] == owner
    assert_allocation_ok(current, members, slots)


@given(members=member_lists, slots=slot_lists, data=st.data())
def test_reallocate_honours_preferences(members, slots, data):
    preferring = data.draw(st.sampled_from(members))
    pinned = data.draw(st.sampled_from(slots))
    table = AllocationTable(slots, members)
    grants = reallocate_ips(table, preferences={preferring: (pinned,)})
    assert grants[pinned] == preferring
    assert_allocation_ok(table.as_dict(), members, slots)


@given(members=member_lists, slots=slot_lists, data=st.data())
def test_both_strategies_satisfy_the_same_contract(members, slots, data):
    """The old and new strategies are interchangeable w.r.t. invariants."""
    from repro.core.placement import compute_rendezvous_allocation

    current = random_current(members, slots, data)
    linear = compute_balanced_allocation(members, slots, current)
    rendezvous = compute_rendezvous_allocation(members, slots, current)
    assert_allocation_ok(linear, members, slots)
    assert_allocation_ok(rendezvous, members, slots)
