"""Unit tests for the interface manager (IP address control)."""

import pytest

from repro.core.config import VipGroup, WackamoleConfig
from repro.core.iface import InterfaceError, InterfaceManager
from repro.core.notify import ArpNotifier
from repro.net.host import Host
from repro.net.lan import Lan
from repro.sim.simulation import Simulation


def build(vip_groups=None, multi_lan=False):
    sim = Simulation(seed=0)
    lan_a = Lan(sim, "a", "10.0.0.0/24")
    host = Host(sim, "h")
    host.add_nic(lan_a, "10.0.0.1")
    if multi_lan:
        lan_b = Lan(sim, "b", "192.168.0.0/24")
        host.add_nic(lan_b, "192.168.0.1")
    groups = vip_groups or [VipGroup("v1", ["10.0.0.100"])]
    config = WackamoleConfig(groups)
    notifier = ArpNotifier(host, config)
    return sim, host, InterfaceManager(host, config, notifier)


def test_acquire_binds_address():
    sim, host, iface = build()
    iface.acquire("v1")
    assert host.owns_ip("10.0.0.100")
    assert iface.owns("v1")
    assert iface.owned_slots() == ("v1",)


def test_acquire_is_idempotent():
    sim, host, iface = build()
    iface.acquire("v1")
    iface.acquire("v1")
    assert iface.acquisitions == 1


def test_release_unbinds():
    sim, host, iface = build()
    iface.acquire("v1")
    iface.release("v1")
    assert not host.owns_ip("10.0.0.100")
    assert not iface.owns("v1")


def test_release_unowned_is_noop():
    sim, host, iface = build()
    iface.release("v1")
    assert iface.releases == 0


def test_acquire_announces_via_arp():
    sim, host, iface = build()
    iface.acquire("v1")
    assert host.arp.spoofs_sent >= 1


def test_multi_address_group_binds_on_matching_nics():
    groups = [VipGroup("router", ["10.0.0.100", "192.168.0.100"])]
    sim, host, iface = build(groups, multi_lan=True)
    iface.acquire("router")
    assert host.owns_ip("10.0.0.100")
    assert host.owns_ip("192.168.0.100")
    iface.release("router")
    assert not host.owns_ip("10.0.0.100")
    assert not host.owns_ip("192.168.0.100")


def test_unmatchable_address_raises_before_any_binding():
    groups = [VipGroup("bad", ["10.0.0.100", "172.16.0.1"])]
    sim, host, iface = build(groups)
    with pytest.raises(InterfaceError):
        iface.acquire("bad")
    # All-or-nothing: the matching address was not bound either.
    assert not host.owns_ip("10.0.0.100")


def test_release_all():
    groups = [VipGroup("v1", ["10.0.0.100"]), VipGroup("v2", ["10.0.0.101"])]
    sim, host, iface = build(groups)
    iface.acquire("v1")
    iface.acquire("v2")
    iface.release_all()
    assert iface.owned_slots() == ()
    assert not host.owns_ip("10.0.0.100")


def test_owned_slots_in_config_order():
    groups = [VipGroup("b", ["10.0.0.101"]), VipGroup("a", ["10.0.0.100"])]
    sim, host, iface = build(groups)
    iface.acquire("a")
    iface.acquire("b")
    assert iface.owned_slots() == ("b", "a")
