"""Unit tests for the bench harness: trajectory file and comparisons."""

import json

import pytest

# bench_names is aliased: the project's pytest config collects bench_*
# functions (for benchmarks/), and a bare import would be run as a test.
from repro.bench import (
    BENCH_FORMAT,
    BenchRun,
    compare_runs,
    load_trajectory,
    run_suite,
    save_trajectory,
)
from repro.bench import bench_names as _bench_names
from repro.bench.runner import HISTORY_LIMIT, previous_run, run_bench
from repro.bench.suite import SCALES, build_workload


def make_run(mode="quick", rev="abc1234", **medians):
    benches = {
        name: {
            "median_s": median,
            "per_s": 1000.0,
            "unit": "events",
            "units": 100,
            "samples": [median],
        }
        for name, median in medians.items()
    }
    return BenchRun(mode, rev, benches)


def test_bench_names_cover_required_hot_paths():
    names = _bench_names()
    assert "kernel_timer_churn" in names
    assert "campaign_parallel" in names
    assert names == sorted(names)
    # Every kernel bench has both a quick and a full scale; the n256/
    # n1024 benches live only in the scale mode (their own CI job).
    scale_only = set(SCALES["scale"])
    assert scale_only == {
        "membership_change_n256",
        "balance_n1024",
        "kernel_serial_n256",
        "kernel_sharded_n256",
    }
    for mode in ("quick", "full"):
        assert set(SCALES[mode]) == set(names) - scale_only
    assert _bench_names(mode="scale") == sorted(scale_only)


def test_build_workload_returns_runnable_and_unit():
    run, unit, scale = build_workload("lan_fanout", "quick")
    assert unit == "frames"
    units = run()
    # Every round broadcasts to all other hosts (plus their ARP replies,
    # delivered as unicast frames) — deterministic, so pin the count.
    assert units == run()
    assert units >= scale["rounds"] * (scale["n_hosts"] - 1)


def test_lint_full_project_workload_counts_files():
    run, unit, scale = build_workload("lint_full_project", "quick")
    assert unit == "files"
    assert scale["subtree"] == "gcs"
    files = run()
    # The quick scale lints the gcs subtree; the file count is exact
    # and repeatable, so a drifting count means the workload changed.
    assert files > 0
    assert files == run()


def test_run_bench_records_samples_and_median():
    result = run_bench("lan_fanout", mode="quick", repeats=3)
    assert len(result["samples"]) == 3
    assert result["median_s"] == sorted(result["samples"])[1]
    assert result["units"] > 0
    assert result["per_s"] > 0


def test_run_suite_selects_names_and_rejects_unknown():
    run = run_suite(mode="quick", names=["lan_fanout"], repeats=1)
    assert set(run.benches) == {"lan_fanout"}
    assert run.mode == "quick"
    with pytest.raises(ValueError):
        run_suite(mode="quick", names=["no_such_bench"], repeats=1)


def test_run_suite_records_host_cpu_count():
    import os

    run = run_suite(mode="quick", names=["lan_fanout"], repeats=1)
    assert run.host == {"cpus": os.cpu_count() or 1}
    assert run.to_dict()["host"] == run.host
    # Serial benches carry no workers key; multi-process ones do.
    assert "workers" not in run.benches["lan_fanout"]


def test_run_bench_records_worker_count_for_parallel_benches():
    result = run_bench("campaign_parallel", mode="quick", repeats=1)
    assert result["workers"] == SCALES["quick"]["campaign_parallel"]["workers"]


def test_run_bench_scale_overrides_apply():
    # The override path behind `repro bench --shards N`: retarget the
    # recorded worker count without touching the committed scales.
    result = run_bench(
        "campaign_parallel", mode="quick", repeats=1, overrides={"workers": 1}
    )
    assert result["workers"] == 1
    assert SCALES["quick"]["campaign_parallel"]["workers"] == 2


def test_bench_run_from_dict_tolerates_missing_host():
    # Trajectory entries recorded before host metadata existed.
    run = BenchRun.from_dict({"benches": {}})
    assert run.host == {}
    assert "cpus=?" in run.format()


def test_trajectory_roundtrip(tmp_path):
    path = tmp_path / "BENCH.json"
    runs = [make_run(kernel_events=0.5), make_run(kernel_events=0.4)]
    save_trajectory(path, runs)
    data = json.loads(path.read_text())
    assert data["format"] == BENCH_FORMAT
    loaded = load_trajectory(path)
    assert [r.benches["kernel_events"]["median_s"] for r in loaded] == [0.5, 0.4]
    assert loaded[0].mode == "quick" and loaded[0].rev == "abc1234"


def test_load_trajectory_missing_file_is_empty(tmp_path):
    assert load_trajectory(tmp_path / "missing.json") == []


def test_load_trajectory_rejects_foreign_format(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"format": "something-else", "runs": []}))
    with pytest.raises(ValueError):
        load_trajectory(path)


def test_save_trajectory_caps_history(tmp_path):
    path = tmp_path / "BENCH.json"
    runs = [make_run(kernel_events=float(i)) for i in range(HISTORY_LIMIT + 7)]
    save_trajectory(path, runs)
    loaded = load_trajectory(path)
    assert len(loaded) == HISTORY_LIMIT
    # Oldest entries are dropped, most recent kept.
    assert loaded[-1].benches["kernel_events"]["median_s"] == float(HISTORY_LIMIT + 6)


def test_previous_run_matches_mode_only():
    runs = [
        make_run(mode="full", kernel_events=0.9),
        make_run(mode="quick", kernel_events=0.2),
    ]
    assert previous_run(runs, "full").benches["kernel_events"]["median_s"] == 0.9
    assert previous_run(runs, "quick").benches["kernel_events"]["median_s"] == 0.2
    assert previous_run(runs, "full").mode == "full"
    assert previous_run([], "full") is None


def test_compare_runs_flags_regressions_over_threshold():
    baseline = make_run(kernel_events=0.100, lan_fanout=0.100)
    current = make_run(kernel_events=0.124, lan_fanout=0.126)
    comparison = compare_runs([baseline], current, threshold=0.25)
    assert comparison.regressions == ["lan_fanout"]
    assert not comparison.ok
    assert "REGRESSION" in comparison.format()


def test_compare_runs_ok_when_faster_or_within_threshold():
    baseline = make_run(kernel_events=0.100)
    current = make_run(kernel_events=0.060)
    comparison = compare_runs([baseline], current, threshold=0.25)
    assert comparison.ok
    (name, old_s, new_s, speedup) = comparison.rows[0]
    assert name == "kernel_events"
    assert speedup == pytest.approx(0.100 / 0.060)


def test_compare_runs_without_baseline_is_ok():
    comparison = compare_runs([], make_run(kernel_events=0.1), threshold=0.25)
    assert comparison.ok
    assert comparison.rows == []
    assert "no previous" in comparison.format()


def test_compare_ignores_other_mode_baselines():
    baseline = make_run(mode="full", kernel_events=0.001)  # would be a regression
    current = make_run(mode="quick", kernel_events=1.0)
    comparison = compare_runs([baseline], current, threshold=0.25)
    assert comparison.ok and comparison.rows == []
