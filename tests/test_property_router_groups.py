"""Property tests for indivisible VIP groups (router mode, §5.2).

"A set of virtual IP addresses must be considered as a single entity."
Hypothesis builds clusters whose slots are multi-address groups across
several networks and checks the atomicity invariant: at any observed
instant, a host holds *all* addresses of a group or *none* of them —
through crashes, partitions and merges.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.audit import CoverageAuditor
from repro.core.config import VipGroup, WackamoleConfig
from repro.core.daemon import WackamoleDaemon
from repro.core.state import RUN
from repro.gcs.daemon import SpreadDaemon
from repro.net.fault import FaultInjector
from repro.net.host import Host
from repro.net.lan import Lan
from repro.sim.simulation import Simulation

from helpers import fast_spread_config

SUBNETS = ("10.0.0.0/24", "10.1.0.0/24", "10.2.0.0/24")


def build_router_cluster(seed, n_groups, addresses_per_group, n_routers=3):
    sim = Simulation(seed=seed, trace_enabled=False)
    lans = [
        Lan(sim, "lan{}".format(i), subnet) for i, subnet in enumerate(SUBNETS)
    ]
    groups = []
    for g in range(n_groups):
        addresses = [
            "10.{}.0.{}".format(a, 100 + g) for a in range(addresses_per_group)
        ]
        groups.append(VipGroup("set{}".format(g), addresses))
    config = WackamoleConfig(groups, maturity_timeout=0.5, balance_timeout=1.0)

    hosts, wacks = [], []
    for index in range(n_routers):
        host = Host(sim, "r{}".format(index))
        for lan_index, lan in enumerate(lans[:addresses_per_group]):
            host.add_nic(lan, "10.{}.0.{}".format(lan_index, 2 + index))
        spread = SpreadDaemon(host, lans[0], fast_spread_config())
        wack = WackamoleDaemon(host, spread, config)
        sim.after(0.02 * index, spread.start)
        sim.after(0.02 * index + 0.005, wack.start)
        hosts.append(host)
        wacks.append(wack)
    return sim, lans, hosts, wacks, config, FaultInjector(sim)


def assert_groups_atomic(hosts, config):
    for host in hosts:
        for group in config.vip_groups:
            held = [
                any(nic.owns_ip(a) for nic in host.nics) for a in group.addresses
            ]
            assert all(held) or not any(held), (
                "group {} partially bound on {}: {}".format(
                    group.group_id, host.name, held
                )
            )


@given(
    st.integers(1, 4),      # groups
    st.integers(2, 3),      # addresses per group
    st.integers(0, 2**16),  # seed
    st.lists(st.sampled_from(["crash", "partition", "heal"]), max_size=3),
)
@settings(max_examples=15, deadline=None)
def test_vip_groups_move_atomically(n_groups, per_group, seed, actions):
    sim, lans, hosts, wacks, config, faults = build_router_cluster(
        seed, n_groups, per_group
    )
    sim.run_for(5.0)
    assert_groups_atomic(hosts, config)
    for action in actions:
        live = [h for h in hosts if h.alive]
        if action == "crash" and len(live) > 1:
            faults.crash_host(live[0])
        elif action == "partition":
            faults.partition(lans[0], [live[:1], live[1:]])
        elif action == "heal":
            faults.heal(lans[0])
        for _ in range(4):
            sim.run_for(1.0)
            assert_groups_atomic(hosts, config)
    faults.heal(lans[0])
    sim.run_for(10.0)
    assert_groups_atomic(hosts, config)
    # Final sanity: all live daemons RUN, no Property 1 violations.
    auditor = CoverageAuditor(wacks)
    live_wacks = [w for w in wacks if w.alive]
    assert all(w.machine.state == RUN for w in live_wacks)
    assert auditor.check() == []
