"""Tests for the packet-capture debugging tool."""

from repro.net.capture import PacketCapture, decode_frame
from repro.net.host import Host
from repro.net.lan import Lan
from repro.net.packet import ARP_ETHERTYPE
from repro.sim.simulation import Simulation


def build():
    sim = Simulation(seed=8)
    lan = Lan(sim, "lan", "10.0.0.0/24")
    a = Host(sim, "a")
    a.add_nic(lan, "10.0.0.1")
    b = Host(sim, "b")
    b.add_nic(lan, "10.0.0.2")
    b.open_udp(100, lambda p, s, d: None)
    return sim, lan, a, b


def test_capture_records_arp_and_udp():
    sim, lan, a, b = build()
    capture = PacketCapture(lan)
    a.send_udp("hello", "10.0.0.2", 100, src_port=1)
    sim.run_until_idle()
    summary = capture.summary()
    assert summary.get("arp", 0) >= 2  # request + reply
    assert summary.get("udp", 0) == 1


def test_predicate_filters_frames():
    sim, lan, a, b = build()
    capture = PacketCapture(lan, predicate=lambda f: f.ethertype == ARP_ETHERTYPE)
    a.send_udp("hello", "10.0.0.2", 100, src_port=1)
    sim.run_until_idle()
    assert set(capture.summary()) == {"arp"}


def test_capture_does_not_perturb_delivery():
    sim, lan, a, b = build()
    got = []
    b.open_udp(200, lambda p, s, d: got.append(p))
    PacketCapture(lan)
    a.send_udp("x", "10.0.0.2", 200, src_port=1)
    sim.run_until_idle()
    assert got == ["x"]


def test_stop_detaches():
    sim, lan, a, b = build()
    capture = PacketCapture(lan)
    a.send_udp("x", "10.0.0.2", 100, src_port=1)
    sim.run_until_idle()
    count = len(capture)
    capture.stop()
    a.send_udp("y", "10.0.0.2", 100, src_port=1)
    sim.run_until_idle()
    assert len(capture) == count


def test_capacity_bounds_memory():
    sim, lan, a, b = build()
    capture = PacketCapture(lan, capacity=2)
    for index in range(5):
        a.send_udp(index, "10.0.0.2", 100, src_port=1)
    sim.run_until_idle()
    assert len(capture) == 2
    assert capture.dropped > 0


def test_select_by_kind_and_time():
    sim, lan, a, b = build()
    capture = PacketCapture(lan)
    a.send_udp("x", "10.0.0.2", 100, src_port=1)
    sim.run_until_idle()
    udp_frames = capture.select(kind="udp")
    assert len(udp_frames) == 1
    assert capture.select(since=sim.now + 1) == []


def test_format_renders_lines():
    sim, lan, a, b = build()
    capture = PacketCapture(lan)
    a.send_udp("x", "10.0.0.2", 100, src_port=1)
    sim.run_until_idle()
    text = capture.format()
    assert "udp" in text
    assert "10.0.0.2:100" in text
    assert capture.format(last=1).count("\n") == 0


def test_decode_gratuitous_arp():
    from repro.net.addresses import IPAddress, MACAddress
    from repro.net.packet import ArpOp, ArpPacket, EthernetFrame

    vip = IPAddress("10.0.0.50")
    mac = MACAddress(5)
    frame = EthernetFrame(
        mac, mac, ARP_ETHERTYPE, ArpPacket(ArpOp.REPLY, vip, mac, vip, mac)
    )
    kind, info = decode_frame(frame)
    assert kind == "arp"
    assert "gratuitous" in info


def test_decode_unknown_ethertype():
    from repro.net.addresses import MACAddress
    from repro.net.packet import EthernetFrame

    frame = EthernetFrame(MACAddress(1), MACAddress(2), 0x9999, None)
    kind, info = decode_frame(frame)
    assert kind == "other"
    assert "0x9999" in info
