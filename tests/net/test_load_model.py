"""Unit tests for the host scheduling-load model."""

from repro.net.host import Host
from repro.net.lan import Lan
from repro.sim.simulation import Simulation


def build():
    sim = Simulation(seed=12)
    lan = Lan(sim, "lan", "10.0.0.0/24")
    a = Host(sim, "a")
    a.add_nic(lan, "10.0.0.1")
    b = Host(sim, "b")
    b.add_nic(lan, "10.0.0.2")
    return sim, a, b


def test_load_delays_normal_socket_delivery():
    sim, a, b = build()
    times = []
    b.open_udp(100, lambda p, s, d: times.append(sim.now))
    b.set_load(0.5)
    for _ in range(20):
        a.send_udp("x", "10.0.0.2", 100, src_port=1)
    sim.run_until_idle()
    assert len(times) == 20
    # Mean of Exp(0.5) draws: comfortably above the wire latency.
    assert sum(times) / len(times) > 0.05


def test_realtime_socket_bypasses_load():
    sim, a, b = build()
    times = []
    b.open_udp(100, lambda p, s, d: times.append(sim.now), realtime=True)
    b.set_load(5.0)
    a.send_udp("x", "10.0.0.2", 100, src_port=1)
    sim.run_until_idle()
    assert times and times[0] < 0.01


def test_zero_load_is_immediate():
    sim, a, b = build()
    times = []
    b.open_udp(100, lambda p, s, d: times.append(sim.now))
    b.set_load(0.0)
    a.send_udp("x", "10.0.0.2", 100, src_port=1)
    sim.run_until_idle()
    assert times and times[0] < 0.01


def test_arp_resolution_unaffected_by_load():
    """Kernel work (ARP) never waits on user-space scheduling."""
    sim, a, b = build()
    b.set_load(10.0)
    b.open_udp(100, lambda p, s, d: None)
    a.send_udp("x", "10.0.0.2", 100, src_port=1)
    sim.run_for(1.0)
    # The ARP exchange completed promptly despite b's load.
    assert a.arp.cache.lookup("10.0.0.2") is not None


def test_load_is_deterministic_per_seed():
    def run():
        sim, a, b = build()
        times = []
        b.open_udp(100, lambda p, s, d: times.append(sim.now))
        b.set_load(0.2)
        for _ in range(5):
            a.send_udp("x", "10.0.0.2", 100, src_port=1)
        sim.run_until_idle()
        return times

    assert run() == run()
