"""Unit tests for the fault injector."""

from repro.net.fault import FaultInjector
from repro.net.host import Host
from repro.net.lan import Lan
from repro.sim.simulation import Simulation


def build():
    sim = Simulation(seed=6)
    lan = Lan(sim, "lan0", "10.0.0.0/24")
    hosts = []
    for index in range(3):
        host = Host(sim, "h{}".format(index))
        host.add_nic(lan, "10.0.0.{}".format(1 + index))
        hosts.append(host)
    return sim, lan, hosts, FaultInjector(sim)


def test_crash_and_recover():
    sim, lan, hosts, injector = build()
    injector.crash_host(hosts[0])
    assert not hosts[0].alive
    injector.recover_host(hosts[0])
    assert hosts[0].alive


def test_nic_down_up():
    sim, lan, hosts, injector = build()
    nic = hosts[0].nics[0]
    injector.nic_down(nic)
    assert not nic.up
    injector.nic_up(nic)
    assert nic.up


def test_partition_and_heal():
    sim, lan, hosts, injector = build()
    injector.partition(lan, [[hosts[0]], [hosts[1], hosts[2]]])
    assert not lan.connected(hosts[0].nics[0], hosts[1].nics[0])
    injector.heal(lan)
    assert lan.connected(hosts[0].nics[0], hosts[1].nics[0])


def test_scheduled_faults_fire_at_requested_times():
    sim, lan, hosts, injector = build()
    injector.after(1.0, injector.crash_host, hosts[0])
    injector.at(2.0, injector.recover_host, hosts[0])
    sim.run(until=0.5)
    assert hosts[0].alive
    sim.run(until=1.5)
    assert not hosts[0].alive
    sim.run(until=2.5)
    assert hosts[0].alive


def test_fault_log_records_everything():
    sim, lan, hosts, injector = build()
    injector.crash_host(hosts[0])
    injector.nic_down(hosts[1].nics[0])
    injector.partition(lan, [[hosts[2]]])
    injector.heal(lan)
    kinds = [kind for _, kind, _ in injector.log]
    assert kinds == ["crash", "nic_down", "partition", "heal"]


def test_faults_traced():
    sim, lan, hosts, injector = build()
    injector.crash_host(hosts[0])
    assert sim.trace.last(category="fault", event="crash") is not None


# ----------------------------------------------------------------------
# fault-log records (check-artifact form)


def test_log_records_unpack_as_legacy_triples():
    sim, lan, hosts, injector = build()
    injector.crash_host(hosts[0])
    time, kind, target = injector.log[0]
    assert (time, kind, target) == (sim.now, "crash", "h0")


def test_log_records_serialise_to_dicts():
    sim, lan, hosts, injector = build()
    injector.crash_host(hosts[0])
    injector.slow_host(hosts[1], 2.5)
    dicts = injector.log_as_dicts()
    assert dicts[0] == {"time": sim.now, "kind": "crash", "target": "h0"}
    assert dicts[1] == {
        "time": sim.now,
        "kind": "slow_host",
        "target": "h1",
        "param": 2.5,
    }
    # param is omitted, not null, when a fault has no magnitude.
    assert "param" not in dicts[0]


# ----------------------------------------------------------------------
# gray repertoire (docs/FAULTS.md)


def test_asym_partition_is_one_way():
    sim, lan, hosts, injector = build()
    deaf, talker = hosts[0].nics[0], hosts[1].nics[0]
    injector.asym_partition(lan, [hosts[0]])
    # The deaf host's own transmissions still flow...
    assert lan.reaches(deaf, talker)
    # ...but nothing reaches it, so the pair audits as disconnected.
    assert not lan.reaches(talker, deaf)
    assert not lan.connected(deaf, talker)
    injector.asym_heal(lan)
    assert lan.connected(deaf, talker)


def test_asym_partition_log_names_lan_and_deaf_hosts():
    sim, lan, hosts, injector = build()
    injector.asym_partition(lan, [hosts[2], hosts[0]])
    _, kind, target = injector.log[-1]
    assert kind == "asym_partition"
    assert target == "lan0:h0,h2"  # deaf side sorted by host name


def test_burst_loss_installs_and_removes_the_link_model():
    from repro.net.linkfault import GilbertElliott

    sim, lan, hosts, injector = build()
    model = GilbertElliott(loss_bad=0.9)
    injector.burst_loss_on(lan, model)
    assert lan.link_model is model
    assert injector.log[-1].param == model.describe()
    injector.burst_loss_off(lan)
    assert lan.link_model is None


def test_slow_and_unslow_host():
    sim, lan, hosts, injector = build()
    injector.slow_host(hosts[0], 3.0)
    assert hosts[0].time_scale == 3.0
    injector.unslow_host(hosts[0])
    assert hosts[0].time_scale == 1.0


def test_skew_and_unskew_clock():
    sim, lan, hosts, injector = build()
    injector.skew_clock(hosts[0], -2.5)
    assert hosts[0].local_time == sim.now - 2.5
    injector.unskew_clock(hosts[0])
    assert hosts[0].local_time == sim.now
    kinds = [kind for _, kind, _ in injector.log]
    assert kinds == ["clock_skew", "clock_unskew"]


# ----------------------------------------------------------------------
# state corruption (docs/FAULTS.md, "State corruption")


def test_dict_params_serialise_with_sorted_keys_and_plain_lists():
    """Corruption params are dicts; to_dict must normalise them so a
    JSON round trip compares equal to a fresh run byte-for-byte."""
    import json

    from repro.net.fault import FaultRecord

    record = FaultRecord(
        1.5,
        "corrupt_vip_table",
        "wack@h0",
        param={"slot": "10.0.0.100", "mutation": "drop", "extra": ("a", "b")},
    )
    data = record.to_dict()
    assert list(data["param"]) == ["extra", "mutation", "slot"]
    assert data["param"]["extra"] == ["a", "b"]
    dumped = json.dumps(data, sort_keys=True)
    assert json.loads(dumped) == data


def test_nested_param_serialisation_is_recursive():
    from repro.net.fault import _serialize_param

    value = {"b": {"z": 1, "a": (2, 3)}, "a": [{"y": 0, "x": 1}]}
    normalised = _serialize_param(value)
    assert list(normalised) == ["a", "b"]
    assert list(normalised["b"]) == ["a", "z"]
    assert normalised["b"]["a"] == [2, 3]
    assert list(normalised["a"][0]) == ["x", "y"]


def test_corruption_draws_come_from_dedicated_stream():
    """A trial that never corrupts must not fork fault/corrupt at all,
    and corruption draws must not perturb any other stream."""
    sim, lan, hosts, injector = build()
    assert injector._corrupt_stream is None
    rng = injector._corrupt_rng()
    assert injector._corrupt_stream is rng
    assert rng is sim.rng.stream("fault/corrupt")
