"""Unit tests for the fault injector."""

from repro.net.fault import FaultInjector
from repro.net.host import Host
from repro.net.lan import Lan
from repro.sim.simulation import Simulation


def build():
    sim = Simulation(seed=6)
    lan = Lan(sim, "lan0", "10.0.0.0/24")
    hosts = []
    for index in range(3):
        host = Host(sim, "h{}".format(index))
        host.add_nic(lan, "10.0.0.{}".format(1 + index))
        hosts.append(host)
    return sim, lan, hosts, FaultInjector(sim)


def test_crash_and_recover():
    sim, lan, hosts, injector = build()
    injector.crash_host(hosts[0])
    assert not hosts[0].alive
    injector.recover_host(hosts[0])
    assert hosts[0].alive


def test_nic_down_up():
    sim, lan, hosts, injector = build()
    nic = hosts[0].nics[0]
    injector.nic_down(nic)
    assert not nic.up
    injector.nic_up(nic)
    assert nic.up


def test_partition_and_heal():
    sim, lan, hosts, injector = build()
    injector.partition(lan, [[hosts[0]], [hosts[1], hosts[2]]])
    assert not lan.connected(hosts[0].nics[0], hosts[1].nics[0])
    injector.heal(lan)
    assert lan.connected(hosts[0].nics[0], hosts[1].nics[0])


def test_scheduled_faults_fire_at_requested_times():
    sim, lan, hosts, injector = build()
    injector.after(1.0, injector.crash_host, hosts[0])
    injector.at(2.0, injector.recover_host, hosts[0])
    sim.run(until=0.5)
    assert hosts[0].alive
    sim.run(until=1.5)
    assert not hosts[0].alive
    sim.run(until=2.5)
    assert hosts[0].alive


def test_fault_log_records_everything():
    sim, lan, hosts, injector = build()
    injector.crash_host(hosts[0])
    injector.nic_down(hosts[1].nics[0])
    injector.partition(lan, [[hosts[2]]])
    injector.heal(lan)
    kinds = [kind for _, kind, _ in injector.log]
    assert kinds == ["crash", "nic_down", "partition", "heal"]


def test_faults_traced():
    sim, lan, hosts, injector = build()
    injector.crash_host(hosts[0])
    assert sim.trace.last(category="fault", event="crash") is not None
