"""Unit tests for ARP: resolution, caching, staleness, spoofing."""

from repro.net.fault import FaultInjector
from repro.net.host import Host
from repro.net.lan import Lan
from repro.sim.simulation import Simulation


def build(n=3):
    sim = Simulation(seed=2)
    lan = Lan(sim, "lan0", "10.0.0.0/24")
    hosts = []
    for index in range(n):
        host = Host(sim, "h{}".format(index))
        host.add_nic(lan, "10.0.0.{}".format(1 + index))
        hosts.append(host)
    return sim, lan, hosts


def test_resolution_happens_on_first_send():
    sim, lan, hosts = build()
    got = []
    hosts[1].open_udp(100, lambda p, s, d: got.append(p))
    hosts[0].send_udp("x", "10.0.0.2", 100, src_port=1)
    sim.run_until_idle()
    assert got == ["x"]
    assert hosts[0].arp.requests_sent == 1
    assert hosts[0].arp.cache.lookup("10.0.0.2") == hosts[1].nics[0].mac


def test_second_send_uses_cache():
    sim, lan, hosts = build()
    hosts[1].open_udp(100, lambda p, s, d: None)
    hosts[0].send_udp("x", "10.0.0.2", 100, src_port=1)
    sim.run_until_idle()
    hosts[0].send_udp("y", "10.0.0.2", 100, src_port=1)
    sim.run_until_idle()
    assert hosts[0].arp.requests_sent == 1


def test_pending_packets_flushed_in_order():
    sim, lan, hosts = build()
    got = []
    hosts[1].open_udp(100, lambda p, s, d: got.append(p))
    for payload in ("a", "b", "c"):
        hosts[0].send_udp(payload, "10.0.0.2", 100, src_port=1)
    sim.run_until_idle()
    assert got == ["a", "b", "c"]


def test_resolution_failure_drops_packets():
    sim, lan, hosts = build()
    hosts[0].send_udp("x", "10.0.0.99", 100, src_port=1)
    sim.run_until_idle()
    assert hosts[0].arp.cache.lookup("10.0.0.99") is None
    failure = sim.trace.last(category="arp", event="resolution_failed")
    assert failure is not None
    assert failure.details["dropped"] == 1


def test_retries_bounded():
    sim, lan, hosts = build()
    hosts[0].send_udp("x", "10.0.0.99", 100, src_port=1)
    sim.run_until_idle()
    assert hosts[0].arp.requests_sent == 1 + hosts[0].arp.MAX_RETRIES


def test_cache_entry_expires():
    sim, lan, hosts = build()
    hosts[1].open_udp(100, lambda p, s, d: None)
    hosts[0].send_udp("x", "10.0.0.2", 100, src_port=1)
    sim.run_until_idle()
    sim.run(until=sim.now + hosts[0].arp.cache.lifetime + 1)
    assert hosts[0].arp.cache.lookup("10.0.0.2") is None


def test_stale_entry_blackholes_after_owner_crash():
    sim, lan, hosts = build()
    got = []
    hosts[1].open_udp(100, lambda p, s, d: got.append(p))
    hosts[1].nics[0].bind_ip("10.0.0.50")
    hosts[0].send_udp("x", "10.0.0.50", 100, src_port=1)
    sim.run_until_idle()
    FaultInjector(sim).crash_host(hosts[1])
    hosts[0].send_udp("y", "10.0.0.50", 100, src_port=1)
    sim.run_until_idle()
    assert got == ["x"]


def test_spoofed_announce_repoints_traffic():
    sim, lan, hosts = build()
    got = []
    hosts[1].open_udp(100, lambda p, s, d: got.append(("h1", p)))
    hosts[2].open_udp(100, lambda p, s, d: got.append(("h2", p)))
    hosts[1].nics[0].bind_ip("10.0.0.50")
    hosts[0].send_udp("x", "10.0.0.50", 100, src_port=1)
    sim.run_until_idle()
    FaultInjector(sim).crash_host(hosts[1])
    hosts[2].nics[0].bind_ip("10.0.0.50")
    hosts[2].arp.announce(hosts[2].nics[0], "10.0.0.50")
    sim.run_until_idle()
    hosts[0].send_udp("y", "10.0.0.50", 100, src_port=1)
    sim.run_until_idle()
    assert got == [("h1", "x"), ("h2", "y")]


def test_targeted_announce_updates_only_targets():
    sim, lan, hosts = build()
    hosts[1].nics[0].bind_ip("10.0.0.50")
    # Seed caches on h0 and h2 with the old binding.
    for sender in (hosts[0], hosts[2]):
        sender.send_udp("x", "10.0.0.50", 100, src_port=1)
    sim.run_until_idle()
    old_mac = hosts[1].nics[0].mac
    # h2 takes over, notifying only h0.
    hosts[2].nics[0].bind_ip("10.0.0.50")
    hosts[2].arp.announce(
        hosts[2].nics[0], "10.0.0.50", target_macs=[hosts[0].nics[0].mac]
    )
    sim.run_until_idle()
    assert hosts[0].arp.cache.lookup("10.0.0.50") == hosts[2].nics[0].mac
    assert hosts[2].arp.cache.lookup("10.0.0.50") in (old_mac, None)


def test_request_for_unowned_ip_not_answered():
    sim, lan, hosts = build()
    hosts[0].send_udp("x", "10.0.0.77", 100, src_port=1)
    sim.run_until_idle()
    assert hosts[1].arp.replies_sent == 0


def test_any_arp_traffic_refreshes_sender_entry():
    sim, lan, hosts = build()
    hosts[1].open_udp(100, lambda p, s, d: None)
    hosts[0].send_udp("x", "10.0.0.2", 100, src_port=1)
    sim.run_until_idle()
    # The request itself taught h1 (and h2) about h0.
    assert hosts[1].arp.cache.lookup("10.0.0.1") == hosts[0].nics[0].mac


def test_cache_snapshot_and_known_ips():
    sim, lan, hosts = build()
    hosts[1].open_udp(100, lambda p, s, d: None)
    hosts[0].send_udp("x", "10.0.0.2", 100, src_port=1)
    sim.run_until_idle()
    snapshot = hosts[0].arp.cache.snapshot()
    assert set(snapshot) == hosts[0].arp.cache.known_ips()
    assert len(hosts[0].arp.cache) == len(snapshot)


def test_drop_removes_entry():
    sim, lan, hosts = build()
    hosts[0].arp.cache.store("10.0.0.2", hosts[1].nics[0].mac)
    hosts[0].arp.cache.drop("10.0.0.2")
    assert hosts[0].arp.cache.lookup("10.0.0.2") is None
