"""Unit tests for IP/MAC address and subnet value types."""

import pytest

from repro.net.addresses import BROADCAST_MAC, IPAddress, MACAddress, Subnet


class TestIPAddress:
    def test_parse_and_format_roundtrip(self):
        assert str(IPAddress("192.168.0.1")) == "192.168.0.1"

    def test_from_int(self):
        assert str(IPAddress(0xC0A80001)) == "192.168.0.1"

    def test_value_property(self):
        assert IPAddress("0.0.0.255").value == 255

    def test_copy_constructor(self):
        original = IPAddress("10.0.0.1")
        assert IPAddress(original) == original

    def test_equality_with_string(self):
        assert IPAddress("10.0.0.1") == "10.0.0.1"

    def test_hashable_as_dict_key(self):
        table = {IPAddress("10.0.0.1"): "a"}
        assert table[IPAddress("10.0.0.1")] == "a"

    def test_ordering(self):
        assert IPAddress("10.0.0.1") < IPAddress("10.0.0.2")
        assert IPAddress("9.255.255.255") < "10.0.0.0"

    def test_addition_offsets(self):
        assert IPAddress("10.0.0.1") + 5 == IPAddress("10.0.0.6")

    @pytest.mark.parametrize("bad", ["10.0.0", "10.0.0.256", "a.b.c.d", "1.2.3.4.5"])
    def test_malformed_strings_rejected(self, bad):
        with pytest.raises(ValueError):
            IPAddress(bad)

    def test_out_of_range_int_rejected(self):
        with pytest.raises(ValueError):
            IPAddress(2**32)

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            IPAddress(1.5)


class TestMACAddress:
    def test_parse_and_format_roundtrip(self):
        assert str(MACAddress("02:00:00:00:00:0a")) == "02:00:00:00:00:0a"

    def test_broadcast_detection(self):
        assert BROADCAST_MAC.is_broadcast
        assert not MACAddress(1).is_broadcast

    def test_equality_and_hash(self):
        assert MACAddress(7) == MACAddress(7)
        assert len({MACAddress(7), MACAddress(7)}) == 1

    def test_string_equality(self):
        assert MACAddress("ff:ff:ff:ff:ff:ff") == BROADCAST_MAC

    def test_ordering(self):
        assert MACAddress(1) < MACAddress(2)

    @pytest.mark.parametrize("bad", ["ff:ff", "zz:00:00:00:00:00"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            MACAddress(bad)


class TestSubnet:
    def test_membership(self):
        subnet = Subnet("192.168.1.0/24")
        assert IPAddress("192.168.1.200") in subnet
        assert IPAddress("192.168.2.1") not in subnet

    def test_network_is_masked(self):
        assert Subnet("192.168.1.77/24").network == IPAddress("192.168.1.0")

    def test_broadcast_address(self):
        assert Subnet("10.0.0.0/24").broadcast_address == IPAddress("10.0.0.255")

    def test_broadcast_address_odd_prefix(self):
        assert Subnet("10.0.0.0/30").broadcast_address == IPAddress("10.0.0.3")

    def test_host_indexing(self):
        assert Subnet("10.0.0.0/24").host(5) == IPAddress("10.0.0.5")

    def test_host_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Subnet("10.0.0.0/30").host(9)

    def test_requires_prefix(self):
        with pytest.raises(ValueError):
            Subnet("10.0.0.0")

    def test_bad_prefix_rejected(self):
        with pytest.raises(ValueError):
            Subnet("10.0.0.0/40")

    def test_equality_and_hash(self):
        assert Subnet("10.0.0.0/24") == Subnet("10.0.0.99/24")
        assert len({Subnet("10.0.0.0/24"), Subnet("10.0.0.1/24")}) == 1

    def test_copy_constructor(self):
        base = Subnet("10.0.0.0/16")
        assert Subnet(base) == base

    def test_str(self):
        assert str(Subnet("10.0.0.0/16")) == "10.0.0.0/16"
