"""Unit tests for hosts: sockets, routing, crash/recovery, services."""

import pytest

from repro.net.host import Host
from repro.net.lan import Lan
from repro.sim.process import Process
from repro.sim.simulation import Simulation


def build_pair():
    sim = Simulation(seed=3)
    lan = Lan(sim, "lan0", "10.0.0.0/24")
    a = Host(sim, "a")
    a.add_nic(lan, "10.0.0.1")
    b = Host(sim, "b")
    b.add_nic(lan, "10.0.0.2")
    return sim, lan, a, b


def test_udp_roundtrip_with_addressing_info():
    sim, lan, a, b = build_pair()
    seen = []
    b.open_udp(100, lambda p, src, dst: seen.append((p, str(src[0]), src[1], str(dst[0]), dst[1])))
    a.send_udp("hi", "10.0.0.2", 100, src_port=55)
    sim.run_until_idle()
    assert seen == [("hi", "10.0.0.1", 55, "10.0.0.2", 100)]


def test_socket_reply_path():
    sim, lan, a, b = build_pair()
    replies = []
    a.open_udp(55, lambda p, src, dst: replies.append(p))

    def echo(payload, src, dst):
        b.send_udp(payload + "!", src[0], src[1], src_port=100)

    b.open_udp(100, echo)
    a.send_udp("hi", "10.0.0.2", 100, src_port=55)
    sim.run_until_idle()
    assert replies == ["hi!"]


def test_subnet_broadcast_reaches_all_listeners():
    sim, lan, a, b = build_pair()
    c = Host(sim, "c")
    c.add_nic(lan, "10.0.0.3")
    seen = []
    b.open_udp(100, lambda p, s, d: seen.append("b"))
    c.open_udp(100, lambda p, s, d: seen.append("c"))
    a.send_udp("x", "10.0.0.255", 100, src_port=1)
    sim.run_until_idle()
    assert sorted(seen) == ["b", "c"]


def test_bind_ip_specific_socket():
    sim, lan, a, b = build_pair()
    b.nics[0].bind_ip("10.0.0.50")
    hits = {"any": 0, "vip": 0}
    b.open_udp(100, lambda p, s, d: hits.__setitem__("vip", hits["vip"] + 1), bind_ip="10.0.0.50")
    b.open_udp(100, lambda p, s, d: hits.__setitem__("any", hits["any"] + 1))
    a.send_udp("x", "10.0.0.50", 100, src_port=1)
    a.send_udp("y", "10.0.0.2", 100, src_port=1)
    sim.run_until_idle()
    assert hits == {"vip": 1, "any": 1}


def test_duplicate_bind_rejected():
    sim, lan, a, b = build_pair()
    a.open_udp(100, lambda p, s, d: None)
    with pytest.raises(ValueError):
        a.open_udp(100, lambda p, s, d: None)


def test_closed_socket_stops_receiving():
    sim, lan, a, b = build_pair()
    seen = []
    socket = b.open_udp(100, lambda p, s, d: seen.append(p))
    socket.close()
    a.send_udp("x", "10.0.0.2", 100, src_port=1)
    sim.run_until_idle()
    assert seen == []
    assert b.packets_dropped >= 1


def test_send_on_closed_socket_raises():
    sim, lan, a, b = build_pair()
    socket = a.open_udp(100, lambda p, s, d: None)
    socket.close()
    with pytest.raises(RuntimeError):
        socket.sendto("x", "10.0.0.2", 100)


def test_unbound_port_drops_packet():
    sim, lan, a, b = build_pair()
    a.send_udp("x", "10.0.0.2", 999, src_port=1)
    sim.run_until_idle()
    assert b.packets_dropped == 1


def test_crashed_host_sends_and_receives_nothing():
    sim, lan, a, b = build_pair()
    seen = []
    b.open_udp(100, lambda p, s, d: seen.append(p))
    a.crash()
    a.send_udp("x", "10.0.0.2", 100, src_port=1)
    sim.run_until_idle()
    assert seen == []


def test_crash_stops_registered_services():
    sim, lan, a, b = build_pair()
    service = Process(sim, "svc")
    a.register_service(service)
    a.crash()
    assert not service.alive


def test_recover_clears_arp_cache():
    sim, lan, a, b = build_pair()
    b.open_udp(100, lambda p, s, d: None)
    a.send_udp("x", "10.0.0.2", 100, src_port=1)
    sim.run_until_idle()
    a.crash()
    a.recover()
    assert a.arp.cache.lookup("10.0.0.2") is None
    assert a.alive


def test_no_route_drops_packet():
    sim, lan, a, b = build_pair()
    a.send_udp("x", "192.168.9.9", 100, src_port=1)
    sim.run_until_idle()
    assert a.packets_dropped == 1
    assert sim.trace.last(category="ip", event="no_route") is not None


def test_default_gateway_used_for_offlink():
    sim, lan, a, b = build_pair()
    a.set_default_gateway("10.0.0.2")
    seen = []
    # b pretends to be a router; capture the raw frame payload.
    b.ip_forwarding = True
    original = b.forward_packet
    b.forward_packet = lambda packet: seen.append(str(packet.dst_ip))
    a.send_udp("x", "192.168.9.9", 100, src_port=1)
    sim.run_until_idle()
    assert seen == ["192.168.9.9"]


def test_local_ips_spans_all_up_nics():
    sim = Simulation(seed=0)
    lan_a = Lan(sim, "a", "10.0.0.0/24")
    lan_b = Lan(sim, "b", "10.1.0.0/24")
    host = Host(sim, "h")
    host.add_nic(lan_a, "10.0.0.1")
    nic_b = host.add_nic(lan_b, "10.1.0.1")
    assert len(host.local_ips()) == 2
    nic_b.set_up(False)
    assert len(host.local_ips()) == 1


def test_nic_on_finds_interface_by_lan():
    sim, lan, a, b = build_pair()
    assert a.nic_on(lan) is a.nics[0]
    other = Lan(sim, "other", "172.16.0.0/24")
    assert a.nic_on(other) is None


def test_ttl_exhaustion_drops_instead_of_looping():
    sim, lan, a, b = build_pair()
    from repro.net.packet import IpPacket, UdpDatagram

    a.ip_forwarding = True
    b.ip_forwarding = True
    packet = IpPacket("10.0.0.1", "10.0.0.99", UdpDatagram(1, 2, "x"), ttl=3)
    a.send_ip(packet)
    sim.run_for(30.0)
    # The packet must die out; no infinite event storm.
    assert sim.scheduler.pending_count < 100
