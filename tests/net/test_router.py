"""Unit tests for IP routers: forwarding, route tables, LPM."""

import pytest

from repro.net.host import Host
from repro.net.lan import Lan
from repro.net.router import Router, StaticRoute
from repro.sim.simulation import Simulation


def build_two_lans():
    """client --- lan_a --- router --- lan_b --- server"""
    sim = Simulation(seed=4)
    lan_a = Lan(sim, "a", "10.0.0.0/24")
    lan_b = Lan(sim, "b", "10.1.0.0/24")
    router = Router(sim, "r")
    router.add_nic(lan_a, "10.0.0.1")
    router.add_nic(lan_b, "10.1.0.1")
    client = Host(sim, "client")
    client.add_nic(lan_a, "10.0.0.10")
    client.set_default_gateway("10.0.0.1")
    server = Host(sim, "server")
    server.add_nic(lan_b, "10.1.0.10")
    server.set_default_gateway("10.1.0.1")
    return sim, router, client, server


def test_forwards_between_connected_subnets():
    sim, router, client, server = build_two_lans()
    seen = []
    server.open_udp(100, lambda p, s, d: seen.append((p, str(s[0]))))
    client.send_udp("x", "10.1.0.10", 100, src_port=1)
    sim.run_until_idle()
    assert seen == [("x", "10.0.0.10")]
    assert router.packets_forwarded == 1


def test_bidirectional_path():
    sim, router, client, server = build_two_lans()
    replies = []
    client.open_udp(55, lambda p, s, d: replies.append(p))
    server.open_udp(100, lambda p, s, d: server.send_udp("pong", s[0], s[1], src_port=100))
    client.send_udp("ping", "10.1.0.10", 100, src_port=55)
    sim.run_until_idle()
    assert replies == ["pong"]


def test_ttl_decrements_on_forward():
    sim, router, client, server = build_two_lans()
    ttls = []
    original = server._handle_ip

    def spy(nic, packet):
        ttls.append(packet.ttl)
        original(nic, packet)

    server._handle_ip = spy
    server.open_udp(100, lambda p, s, d: None)
    client.send_udp("x", "10.1.0.10", 100, src_port=1)
    sim.run_until_idle()
    from repro.net.packet import IpPacket

    assert ttls == [IpPacket.DEFAULT_TTL - 1]


def test_static_route_to_remote_subnet():
    # client -- lan_a -- r1 -- lan_m -- r2 -- lan_b -- server
    sim = Simulation(seed=5)
    lan_a = Lan(sim, "a", "10.0.0.0/24")
    lan_m = Lan(sim, "m", "10.5.0.0/24")
    lan_b = Lan(sim, "b", "10.1.0.0/24")
    r1 = Router(sim, "r1")
    r1.add_nic(lan_a, "10.0.0.1")
    r1.add_nic(lan_m, "10.5.0.1")
    r1.add_route("10.1.0.0/24", "10.5.0.2")
    r2 = Router(sim, "r2")
    r2.add_nic(lan_m, "10.5.0.2")
    r2.add_nic(lan_b, "10.1.0.1")
    r2.add_route("10.0.0.0/24", "10.5.0.1")
    client = Host(sim, "client")
    client.add_nic(lan_a, "10.0.0.10")
    client.set_default_gateway("10.0.0.1")
    server = Host(sim, "server")
    server.add_nic(lan_b, "10.1.0.10")
    server.set_default_gateway("10.1.0.1")
    seen = []
    server.open_udp(100, lambda p, s, d: seen.append(p))
    client.send_udp("x", "10.1.0.10", 100, src_port=1)
    sim.run_until_idle()
    assert seen == ["x"]


def test_longest_prefix_match_wins():
    sim, router, client, server = build_two_lans()
    router.add_route("0.0.0.0/0", "10.0.0.99")
    router.add_route("192.168.1.0/24", "10.1.0.10")
    nic, next_hop = router.lookup_route("192.168.1.5")
    assert str(next_hop) == "10.1.0.10"
    nic, next_hop = router.lookup_route("8.8.8.8")
    assert str(next_hop) == "10.0.0.99"


def test_connected_subnet_beats_shorter_route():
    sim, router, client, server = build_two_lans()
    router.add_route("10.0.0.0/8", "10.1.0.10")
    nic, next_hop = router.lookup_route("10.0.0.77")
    assert str(next_hop) == "10.0.0.77"


def test_add_route_replaces_same_subnet():
    sim, router, client, server = build_two_lans()
    router.add_route("192.168.0.0/24", "10.0.0.5", source="rip")
    router.add_route("192.168.0.0/24", "10.0.0.6", source="static")
    routes = [r for r in router.routes() if str(r.subnet) == "192.168.0.0/24"]
    assert len(routes) == 1
    assert str(routes[0].gateway) == "10.0.0.6"


def test_remove_routes_from_source():
    sim, router, client, server = build_two_lans()
    router.add_route("192.168.0.0/24", "10.0.0.5", source="rip")
    router.add_route("192.168.1.0/24", "10.0.0.5", source="static")
    router.remove_routes_from("rip")
    assert len(router.routes()) == 1


def test_remove_route_by_subnet():
    sim, router, client, server = build_two_lans()
    router.add_route("192.168.0.0/24", "10.0.0.5")
    router.remove_route("192.168.0.0/24")
    assert router.routes() == []


def test_route_without_reachable_gateway_is_skipped():
    sim, router, client, server = build_two_lans()
    router.add_route("192.168.0.0/24", "172.31.0.1")
    assert router.lookup_route("192.168.0.5") is None


def test_no_route_drops():
    sim, router, client, server = build_two_lans()
    client.send_udp("x", "172.31.0.9", 100, src_port=1)
    sim.run_until_idle()
    assert router.packets_dropped >= 1


def test_static_route_repr():
    route = StaticRoute("10.0.0.0/24", "10.1.0.1", source="rip")
    assert "10.0.0.0/24" in repr(route)
    assert "rip" in repr(route)
    onlink = StaticRoute("10.0.0.0/24")
    assert "on-link" in repr(onlink)
