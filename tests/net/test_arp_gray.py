"""ARP property tests under Gilbert-Elliott burst loss.

The gray repertoire's burst-loss channel defeats single-shot cache
repair: one spoofed announce lands inside a loss burst and every client
keeps routing to the old owner until its entry expires. The hardened
notifier (retries + periodic gratuitous re-announcement) must converge
the segment's caches anyway, and the wire-level duplicate-claim
resolver must leave every VIP with exactly one physical owner once the
network is stable again.

Loss parameters are bounded so each property is a near-certainty per
example: with ``loss_good=0`` and the default transition probabilities
the channel returns to its lossless GOOD state with probability 0.25
per frame, so the chance that *every* announce of a multi-second retry
campaign is swallowed is negligible — any failure hypothesis finds here
is a real protocol bug, reproducible from (loss, seed).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import build_wack_cluster, fast_spread_config, settle_wack

from repro.core.config import WackamoleConfig
from repro.core.iface import InterfaceManager
from repro.core.notify import ArpNotifier
from repro.core.state import RUN
from repro.net.fault import FaultInjector
from repro.net.host import Host
from repro.net.lan import Lan
from repro.net.linkfault import GilbertElliott
from repro.sim.simulation import Simulation

#: Lenient detection relative to the loss level, K=2 suspicion so a
#: single burst never flaps membership (the hardened check harness uses
#: the same shape).
GRAY_SPREAD = dict(
    fault_detection_timeout=1.5,
    heartbeat_timeout=0.2,
    discovery_timeout=0.6,
    suspicion_misses=2,
)

#: The check harness's hardening knobs (docs/FAULTS.md).
GRAY_WACK = {
    "arp_announce_retries": 2,
    "arp_announce_backoff": 0.3,
    "arp_reannounce_interval": 1.0,
    "conflict_reannounce": True,
    "arp_conflict_resolution": True,
    "arp_conflict_holddown": 0.5,
}


def build_segment(seed, vip="10.0.0.100"):
    """One owner and one client host, plus a hardened notifier stack."""
    sim = Simulation(seed=seed)
    lan = Lan(sim, "lan0", "10.0.0.0/24")
    owner = Host(sim, "owner")
    owner.add_nic(lan, "10.0.0.1")
    client = Host(sim, "client")
    client.add_nic(lan, "10.0.0.2")
    config = WackamoleConfig.for_vips([vip], **{
        k: GRAY_WACK[k]
        for k in ("arp_announce_retries", "arp_announce_backoff")
    })
    notifier = ArpNotifier(owner, config)
    manager = InterfaceManager(owner, config, notifier)
    return sim, lan, owner, client, manager, vip


@given(st.floats(0.5, 0.95), st.integers(0, 2**16))
@settings(max_examples=15, deadline=None)
def test_announce_campaign_converges_client_cache(loss_bad, seed):
    """Retries + periodic re-announcement repoint a bursty segment.

    The single paper-behaviour announce may vanish into a burst; the
    hardened campaign (2 retries with backoff, then a gratuitous pass
    every second for ten seconds) must land at least one copy, after
    which the client's cache maps the VIP to the owner's real MAC.
    """
    sim, lan, owner, client, manager, vip = build_segment(seed)
    lan.set_link_model(GilbertElliott(loss_good=0.0, loss_bad=loss_bad))
    manager.acquire(vip)
    for tick in range(1, 11):
        sim.at(float(tick), manager.reannounce_all)
    sim.run(until=11.0)
    assert client.arp.cache.lookup(vip) == owner.nics[0].mac
    # The retry series actually ran (it is scheduled unconditionally
    # while the address stays bound).
    assert manager.notifier.retries_sent >= 1


@given(st.floats(0.5, 0.9), st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_cache_converges_even_when_loss_persists(loss_bad, seed):
    """Convergence does not rely on the loss clearing.

    The channel stays installed for the whole run; the property holds
    because the campaign offers enough independent deliveries, not
    because the test quietly heals the network first.
    """
    sim, lan, owner, client, manager, vip = build_segment(seed)
    model = GilbertElliott(loss_good=0.0, loss_bad=loss_bad)
    lan.set_link_model(model)
    manager.acquire(vip)
    for tick in range(1, 16):
        sim.at(float(tick), manager.reannounce_all)
    sim.run(until=16.0)
    assert lan.link_model is model
    assert client.arp.cache.lookup(vip) == owner.nics[0].mac


@given(st.integers(0, 2), st.floats(2.0, 5.0), st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_conflict_resolution_single_owner_after_asym_heal(deaf, duration, seed):
    """Once stable, no VIP has zero or two physical owners.

    An asymmetric partition makes one host deaf: its peers suspect it
    and re-acquire its VIPs while the deaf host keeps its bindings and
    keeps announcing them — every VIP it held now has two owners. After
    the heal, wire-level duplicate-claim detection plus the hardened
    resolution rules (multi-member view keeps and re-announces; the
    singleton backs off) must return every VIP to exactly one owner.
    """
    cluster = build_wack_cluster(
        3,
        seed=seed,
        n_vips=4,
        config=fast_spread_config(**GRAY_SPREAD),
        wack_overrides=dict(GRAY_WACK, maturity_timeout=0.5),
    )
    assert settle_wack(cluster, timeout=30.0)
    injector = FaultInjector(cluster.sim)
    injector.asym_partition(cluster.lan, [cluster.hosts[deaf]])
    cluster.sim.run_for(duration)
    injector.asym_heal(cluster.lan)
    assert settle_wack(cluster, timeout=40.0)
    live = [w for w in cluster.wacks if w.alive]
    assert all(w.machine.state == RUN and w.mature for w in live)
    assert cluster.auditor.check() == []
    # Physical ground truth, independent of the auditor's grouping:
    # exactly one host binds each virtual address.
    for group in cluster.wconfig.vip_groups:
        for address in group.addresses:
            owners = [h.name for h in cluster.hosts if h.alive and h.owns_ip(address)]
            assert len(owners) == 1, "{} owned by {}".format(address, owners)


@given(st.floats(0.5, 0.9), st.floats(2.0, 4.0), st.integers(0, 2**16))
@settings(max_examples=8, deadline=None)
def test_single_owner_after_asym_heal_under_burst_loss(loss_bad, duration, seed):
    """The resolution rules survive burst loss layered on the heal.

    Same duplicate-VIP scenario, but the segment also runs a
    Gilbert-Elliott channel during the partition so announces and GCS
    traffic arrive in bursts. The channel is removed with the heal
    (eventual convergence is the contract on a lossy segment) and the
    single-owner property must then hold.
    """
    cluster = build_wack_cluster(
        3,
        seed=seed,
        n_vips=4,
        config=fast_spread_config(**GRAY_SPREAD),
        wack_overrides=dict(GRAY_WACK, maturity_timeout=0.5),
    )
    assert settle_wack(cluster, timeout=30.0)
    injector = FaultInjector(cluster.sim)
    injector.burst_loss_on(cluster.lan, GilbertElliott(loss_good=0.0, loss_bad=loss_bad))
    injector.asym_partition(cluster.lan, [cluster.hosts[0]])
    cluster.sim.run_for(duration)
    injector.asym_heal(cluster.lan)
    injector.burst_loss_off(cluster.lan)
    assert settle_wack(cluster, timeout=40.0)
    for group in cluster.wconfig.vip_groups:
        for address in group.addresses:
            owners = [h.name for h in cluster.hosts if h.alive and h.owns_ip(address)]
            assert len(owners) == 1, "{} owned by {}".format(address, owners)
