"""Property tests for the address value types."""

from hypothesis import given
from hypothesis import strategies as st

from repro.net.addresses import IPAddress, MACAddress, Subnet

ip_ints = st.integers(0, 2**32 - 1)
mac_ints = st.integers(0, 2**48 - 1)


@given(ip_ints)
def test_ip_string_roundtrip(value):
    address = IPAddress(value)
    assert IPAddress(str(address)) == address
    assert IPAddress(str(address)).value == value


@given(mac_ints)
def test_mac_string_roundtrip(value):
    address = MACAddress(value)
    assert MACAddress(str(address)) == address


@given(ip_ints, ip_ints)
def test_ip_ordering_matches_integers(a, b):
    assert (IPAddress(a) < IPAddress(b)) == (a < b)
    assert (IPAddress(a) == IPAddress(b)) == (a == b)


@given(ip_ints, st.integers(0, 32))
def test_subnet_contains_its_network_and_broadcast(value, prefix):
    subnet = Subnet("{}/{}".format(IPAddress(value), prefix))
    assert subnet.network in subnet
    assert subnet.broadcast_address in subnet


@given(ip_ints, st.integers(1, 31), ip_ints)
def test_subnet_membership_matches_mask_arithmetic(base, prefix, candidate):
    subnet = Subnet("{}/{}".format(IPAddress(base), prefix))
    mask = (0xFFFFFFFF << (32 - prefix)) & 0xFFFFFFFF
    expected = (candidate & mask) == subnet.network.value
    assert (IPAddress(candidate) in subnet) == expected


@given(ip_ints, st.integers(0, 32))
def test_subnet_string_roundtrip(value, prefix):
    subnet = Subnet("{}/{}".format(IPAddress(value), prefix))
    assert Subnet(str(subnet)) == subnet


@given(ip_ints, st.integers(0, 255))
def test_ip_addition_consistent(value, offset):
    if value + offset <= 0xFFFFFFFF:
        assert (IPAddress(value) + offset).value == value + offset
