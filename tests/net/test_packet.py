"""Unit tests for packet types."""

from repro.net.addresses import IPAddress, MACAddress
from repro.net.packet import (
    ArpOp,
    ArpPacket,
    EthernetFrame,
    IpPacket,
    UdpDatagram,
)


def test_ip_packet_forwarded_copy_decrements_ttl():
    packet = IpPacket(IPAddress("10.0.0.1"), IPAddress("10.0.0.2"), "x")
    hop = packet.forwarded_copy()
    assert hop.ttl == packet.ttl - 1
    assert hop.payload == "x"
    assert hop.src_ip == packet.src_ip


def test_ip_packet_default_ttl():
    packet = IpPacket(IPAddress(1), IPAddress(2), None)
    assert packet.ttl == IpPacket.DEFAULT_TTL


def test_gratuitous_arp_detection():
    vip = IPAddress("10.0.0.50")
    mac = MACAddress(1)
    packet = ArpPacket(ArpOp.REPLY, vip, mac, vip, mac)
    assert packet.is_gratuitous
    other = ArpPacket(ArpOp.REQUEST, IPAddress("10.0.0.1"), mac, vip)
    assert not other.is_gratuitous


def test_reprs_are_informative():
    frame = EthernetFrame(MACAddress(1), MACAddress(2), 0x0800, "p")
    assert "0x0800" in repr(frame)
    datagram = UdpDatagram(1, 2, "p")
    assert "1 -> 2" in repr(datagram)
    request = ArpPacket(ArpOp.REQUEST, IPAddress(1), MACAddress(1), IPAddress(2))
    assert "REQUEST" in repr(request)
    reply = ArpPacket(ArpOp.REPLY, IPAddress(1), MACAddress(1), IPAddress(2))
    assert "REPLY" in repr(reply)
