"""Unit tests for NIC IP binding — the fail-over control surface."""

import pytest

from repro.net.host import Host
from repro.net.lan import Lan
from repro.sim.simulation import Simulation


@pytest.fixture
def nic(sim, lan):
    host = Host(sim, "h")
    return host.add_nic(lan, "10.0.0.1")


def test_primary_ip_bound_at_creation(nic):
    assert nic.owns_ip("10.0.0.1")
    assert nic.primary_ip == "10.0.0.1"


def test_bind_virtual_ip(nic):
    from repro.net.addresses import IPAddress

    nic.bind_ip("10.0.0.100")
    assert nic.owns_ip("10.0.0.100")
    assert IPAddress("10.0.0.100") in nic.virtual_ips


def test_virtual_ips_excludes_primary(nic):
    nic.bind_ip("10.0.0.100")
    assert nic.primary_ip not in nic.virtual_ips
    assert len(nic.virtual_ips) == 1


def test_bind_is_idempotent(nic):
    nic.bind_ip("10.0.0.100")
    nic.bind_ip("10.0.0.100")
    assert len(nic.bound_ips) == 2


def test_unbind_releases(nic):
    nic.bind_ip("10.0.0.100")
    nic.unbind_ip("10.0.0.100")
    assert not nic.owns_ip("10.0.0.100")


def test_unbind_primary_rejected(nic):
    with pytest.raises(ValueError):
        nic.unbind_ip("10.0.0.1")


def test_bind_outside_subnet_rejected(nic):
    with pytest.raises(ValueError):
        nic.bind_ip("192.168.5.5")


def test_primary_outside_subnet_rejected(sim, lan):
    host = Host(sim, "h2")
    with pytest.raises(ValueError):
        host.add_nic(lan, "172.16.0.1")


def test_unique_macs_allocated(sim, lan):
    host = Host(sim, "h3")
    nic_a = host.add_nic(lan, "10.0.0.8")
    nic_b = host.add_nic(lan, "10.0.0.9")
    assert nic_a.mac != nic_b.mac


def test_mac_allocation_replays_per_simulation():
    """Two fresh simulations must hand out the *same* MAC sequence.

    Regression: MAC allocation used to advance a module-global counter,
    so the addresses a replay saw depended on every simulation built
    earlier in the process.
    """
    def macs(n):
        sim = Simulation(seed=0)
        lan = Lan(sim, "lan0", "10.0.0.0/24")
        host = Host(sim, "h")
        return [
            host.add_nic(lan, "10.0.0.{}".format(10 + i)).mac for i in range(n)
        ]

    assert macs(3) == macs(3)


def test_down_nic_not_counted_in_host_ips(sim, lan):
    host = Host(sim, "h4")
    nic = host.add_nic(lan, "10.0.0.7")
    nic.set_up(False)
    assert not host.owns_ip("10.0.0.7")


def test_nic_auto_attaches_to_lan(sim, lan):
    host = Host(sim, "h5")
    nic = host.add_nic(lan, "10.0.0.6")
    assert nic in lan.nics
