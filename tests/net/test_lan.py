"""Unit tests for the LAN segment: delivery, partitions, loss."""

from repro.net.addresses import BROADCAST_MAC
from repro.net.host import Host
from repro.net.lan import Lan
from repro.net.packet import EthernetFrame
from repro.sim.simulation import Simulation

# A test-only ethertype: real host handlers ignore it, so frames can
# carry plain strings without confusing the IP layer.
TEST_ETHERTYPE = 0x9999


def build(n=3, **lan_kwargs):
    sim = Simulation(seed=1)
    lan = Lan(sim, "lan0", "10.0.0.0/24", **lan_kwargs)
    hosts = []
    for index in range(n):
        host = Host(sim, "h{}".format(index))
        host.add_nic(lan, "10.0.0.{}".format(1 + index))
        hosts.append(host)
    return sim, lan, hosts


def capture_frames(host):
    received = []
    host.handle_frame = lambda nic, frame: received.append(frame)
    return received


def test_unicast_reaches_only_destination_mac():
    sim, lan, hosts = build()
    received_1 = capture_frames(hosts[1])
    received_2 = capture_frames(hosts[2])
    frame = EthernetFrame(hosts[0].nics[0].mac, hosts[1].nics[0].mac, TEST_ETHERTYPE, "x")
    hosts[0].nics[0].transmit(frame)
    sim.run_until_idle()
    assert len(received_1) == 1
    assert len(received_2) == 0


def test_broadcast_reaches_everyone_but_sender():
    sim, lan, hosts = build()
    received = [capture_frames(host) for host in hosts]
    frame = EthernetFrame(hosts[0].nics[0].mac, BROADCAST_MAC, TEST_ETHERTYPE, "x")
    hosts[0].nics[0].transmit(frame)
    sim.run_until_idle()
    assert [len(r) for r in received] == [0, 1, 1]


def test_delivery_is_delayed_by_latency():
    sim, lan, hosts = build()
    lan.latency = 0.005
    times = []
    hosts[1].handle_frame = lambda nic, frame: times.append(sim.now)
    frame = EthernetFrame(hosts[0].nics[0].mac, hosts[1].nics[0].mac, TEST_ETHERTYPE, "x")
    hosts[0].nics[0].transmit(frame)
    sim.run_until_idle()
    assert times == [0.005]


def test_partition_blocks_cross_group_frames():
    sim, lan, hosts = build()
    received = capture_frames(hosts[1])
    lan.partition([[hosts[0]], [hosts[1], hosts[2]]])
    frame = EthernetFrame(hosts[0].nics[0].mac, BROADCAST_MAC, TEST_ETHERTYPE, "x")
    hosts[0].nics[0].transmit(frame)
    sim.run_until_idle()
    assert received == []


def test_partition_allows_same_group_frames():
    sim, lan, hosts = build()
    received = capture_frames(hosts[2])
    lan.partition([[hosts[0]], [hosts[1], hosts[2]]])
    frame = EthernetFrame(hosts[1].nics[0].mac, BROADCAST_MAC, TEST_ETHERTYPE, "x")
    hosts[1].nics[0].transmit(frame)
    sim.run_until_idle()
    assert len(received) == 1


def test_heal_restores_full_connectivity():
    sim, lan, hosts = build()
    received = capture_frames(hosts[1])
    lan.partition([[hosts[0]], [hosts[1]]])
    lan.heal()
    frame = EthernetFrame(hosts[0].nics[0].mac, BROADCAST_MAC, TEST_ETHERTYPE, "x")
    hosts[0].nics[0].transmit(frame)
    sim.run_until_idle()
    assert len(received) == 1


def test_unlisted_hosts_stay_in_group_zero():
    sim, lan, hosts = build()
    lan.partition([[hosts[1]]])
    nic0, nic1, nic2 = (h.nics[0] for h in hosts)
    assert lan.connected(nic0, nic2)
    assert not lan.connected(nic0, nic1)


def test_connected_reflects_groups():
    sim, lan, hosts = build()
    nic0, nic1 = hosts[0].nics[0], hosts[1].nics[0]
    assert lan.connected(nic0, nic1)
    lan.partition([[hosts[0]], [hosts[1]]])
    assert not lan.connected(nic0, nic1)


def test_down_nic_receives_nothing():
    sim, lan, hosts = build()
    received = capture_frames(hosts[1])
    hosts[1].nics[0].set_up(False)
    frame = EthernetFrame(hosts[0].nics[0].mac, BROADCAST_MAC, TEST_ETHERTYPE, "x")
    hosts[0].nics[0].transmit(frame)
    sim.run_until_idle()
    assert received == []


def test_down_nic_sends_nothing():
    sim, lan, hosts = build()
    received = capture_frames(hosts[1])
    hosts[0].nics[0].set_up(False)
    frame = EthernetFrame(hosts[0].nics[0].mac, BROADCAST_MAC, TEST_ETHERTYPE, "x")
    hosts[0].nics[0].transmit(frame)
    sim.run_until_idle()
    assert received == []


def test_loss_drops_frames_deterministically_per_seed():
    sim, lan, hosts = build(loss=1.0)
    received = capture_frames(hosts[1])
    frame = EthernetFrame(hosts[0].nics[0].mac, hosts[1].nics[0].mac, TEST_ETHERTYPE, "x")
    hosts[0].nics[0].transmit(frame)
    sim.run_until_idle()
    assert received == []
    assert lan.frames_lost == 1


def test_jitter_spreads_delivery_times():
    sim, lan, hosts = build(jitter=0.01)
    times = []
    hosts[1].handle_frame = lambda nic, frame: times.append(sim.now)
    for _ in range(20):
        frame = EthernetFrame(
            hosts[0].nics[0].mac, hosts[1].nics[0].mac, TEST_ETHERTYPE, "x"
        )
        hosts[0].nics[0].transmit(frame)
    sim.run_until_idle()
    assert len(set(times)) > 1


def test_frame_counters():
    sim, lan, hosts = build()
    frame = EthernetFrame(hosts[0].nics[0].mac, BROADCAST_MAC, TEST_ETHERTYPE, "x")
    hosts[0].nics[0].transmit(frame)
    sim.run_until_idle()
    assert lan.frames_sent == 1
    assert lan.frames_delivered == 2


def test_detach_removes_nic():
    sim, lan, hosts = build()
    nic = hosts[2].nics[0]
    lan.detach(nic)
    assert nic not in lan.nics


# ----------------------------------------------------------------------
# cached recipient lists and invalidation


def test_broadcast_cache_invalidated_by_attach():
    sim, lan, hosts = build(n=2)
    src = hosts[0].nics[0]
    frame = EthernetFrame(src.mac, BROADCAST_MAC, TEST_ETHERTYPE, "x")
    src.transmit(frame)  # primes the cache for src
    late = Host(sim, "late")
    late.add_nic(lan, "10.0.0.99")
    received = capture_frames(late)
    src.transmit(frame)
    sim.run_until_idle()
    assert len(received) == 1


def test_broadcast_cache_invalidated_by_detach():
    sim, lan, hosts = build(n=3)
    src = hosts[0].nics[0]
    gone = hosts[2].nics[0]
    frame = EthernetFrame(src.mac, BROADCAST_MAC, TEST_ETHERTYPE, "x")
    src.transmit(frame)
    sim.run_until_idle()
    received = capture_frames(hosts[2])
    lan.detach(gone)
    src.transmit(frame)
    sim.run_until_idle()
    assert received == []


def test_broadcast_cache_invalidated_by_partition_and_heal():
    sim, lan, hosts = build(n=3)
    src = hosts[0].nics[0]
    frame = EthernetFrame(src.mac, BROADCAST_MAC, TEST_ETHERTYPE, "x")
    src.transmit(frame)  # prime with everyone reachable
    sim.run_until_idle()
    received = [capture_frames(host) for host in hosts]
    lan.partition([[hosts[0], hosts[1]], [hosts[2]]])
    src.transmit(frame)
    sim.run_until_idle()
    assert [len(r) for r in received] == [0, 1, 0]
    lan.heal()
    src.transmit(frame)
    sim.run_until_idle()
    assert [len(r) for r in received] == [0, 2, 1]


def test_mac_index_invalidated_by_detach():
    sim, lan, hosts = build(n=3)
    src = hosts[0].nics[0]
    dst = hosts[1].nics[0]
    frame = EthernetFrame(src.mac, dst.mac, TEST_ETHERTYPE, "x")
    src.transmit(frame)  # primes the unicast MAC index
    sim.run_until_idle()
    received = capture_frames(hosts[1])
    lan.detach(dst)
    src.transmit(frame)
    sim.run_until_idle()
    assert received == []


def test_cached_fanout_preserves_loss_rng_draw_order():
    # Two topologically identical LANs — one with caches primed by an
    # extra warm-up broadcast, one cold — must lose exactly the same
    # frames: the recipient iteration order (and with it the RNG draw
    # sequence) is part of the deterministic contract.
    def run(warmup):
        sim, lan, hosts = build(n=4, loss=0.5)
        src = hosts[0].nics[0]
        frame = EthernetFrame(src.mac, BROADCAST_MAC, TEST_ETHERTYPE, "x")
        received = [capture_frames(host) for host in hosts]
        if warmup:
            # Same number of RNG draws either way: warm the cache via a
            # second identical LAN sharing no RNG state.
            lan._broadcast_recipients(src)
        for _ in range(20):
            src.transmit(frame)
        sim.run_until_idle()
        return [len(r) for r in received]

    assert run(warmup=False) == run(warmup=True)
