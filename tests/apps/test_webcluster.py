"""Integration tests for the Figure 3 web-cluster scenario."""

import pytest

from repro.apps.webcluster import WebClusterScenario
from repro.gcs.config import SpreadConfig


def tuned_scenario(**kwargs):
    defaults = dict(
        seed=1,
        n_servers=3,
        n_vips=6,
        spread_config=SpreadConfig.tuned(),
        wackamole_overrides={"maturity_timeout": 1.0, "balance_enabled": False},
    )
    defaults.update(kwargs)
    return WebClusterScenario(**defaults)


def test_scenario_stabilises_with_full_coverage():
    scenario = tuned_scenario().start()
    assert scenario.run_until_stable(timeout=30.0)
    coverage = scenario.coverage()
    assert all(len(owners) == 1 for owners in coverage.values())


def test_probe_round_trip_through_vip():
    scenario = tuned_scenario().start()
    assert scenario.run_until_stable(timeout=30.0)
    probe = scenario.start_probe()
    scenario.sim.run_for(0.5)
    assert probe.responses
    assert probe.responses[-1].server.startswith("web")


def test_nic_down_failover_measured_within_tuned_window():
    scenario = tuned_scenario().start()
    assert scenario.run_until_stable(timeout=30.0)
    probe = scenario.start_probe()
    scenario.sim.run_for(0.5)
    fault_time = scenario.sim.now
    victim = scenario.kill_owner_of(scenario.vips[0], mode="nic_down")
    scenario.sim.run_for(6.0)
    gap = probe.failover_interruption(after=fault_time)
    lo, hi = SpreadConfig.tuned().notification_window()
    assert gap is not None
    assert lo - 0.1 <= gap <= hi + 1.0
    takeover = scenario.owner_of(scenario.vips[0])
    assert takeover is not None and takeover is not victim


def test_crash_failover():
    scenario = tuned_scenario().start()
    assert scenario.run_until_stable(timeout=30.0)
    probe = scenario.start_probe()
    scenario.sim.run_for(0.5)
    fault_time = scenario.sim.now
    scenario.kill_owner_of(scenario.vips[0], mode="crash")
    scenario.sim.run_for(6.0)
    assert probe.failover_interruption(after=fault_time) is not None
    assert scenario.auditor.check() == []


def test_graceful_shutdown_is_fast():
    scenario = tuned_scenario().start()
    assert scenario.run_until_stable(timeout=30.0)
    probe = scenario.start_probe()
    scenario.sim.run_for(0.5)
    fault_time = scenario.sim.now
    scenario.kill_owner_of(scenario.vips[0], mode="shutdown")
    scenario.sim.run_for(3.0)
    gap = probe.failover_interruption(after=fault_time)
    assert gap is not None
    assert gap <= 0.250


def test_unknown_fault_mode_rejected():
    scenario = tuned_scenario().start()
    assert scenario.run_until_stable(timeout=30.0)
    with pytest.raises(ValueError):
        scenario.kill_owner_of(scenario.vips[0], mode="meteor")


def test_router_notified_via_configured_target():
    scenario = tuned_scenario().start()
    # The web cluster config notifies the router's IP by default.
    assert scenario.wackamole_config.notify_ips
    assert scenario.run_until_stable(timeout=30.0)


def test_scenario_scales_to_larger_cluster():
    scenario = tuned_scenario(n_servers=8, n_vips=10).start()
    assert scenario.run_until_stable(timeout=60.0)
    counts = [len(w.iface.owned_slots()) for w in scenario.wacks]
    assert sum(counts) == 10
    assert max(counts) - min(counts) <= 1
