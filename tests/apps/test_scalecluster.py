"""The scale tier end to end: boot, faults, remap bounds, determinism.

Fast tests drive a 48-host cluster through kills and revivals and check
the managers' book-keeping against the actual NIC bindings. The
``scale``-marked tests are ISSUE 6's acceptance criteria at full size:
a 256-host / 2048-VIP cluster must reconverge after any single host
kill with at most ``ceil(V/N) + SLACK`` VIPs remapped (a hypothesis
property over the victim), and the whole run must be deterministic —
two identically-seeded clusters produce byte-identical fingerprints.
"""

import json
import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.scalecluster import ScaleClusterScenario

N_HOSTS = 256
N_VIPS = 2048
# HRW remaps exactly the dead host's slots: Binomial(V, 1/N) many,
# mean V/N = 8. The slack covers the max of N such draws:
# 3.5 * sqrt(V/N) ≈ 10 keeps the bound comfortably above the measured
# worst bucket (16 at this configuration) while still O(V/N)-tight.
REMAP_BOUND = math.ceil(N_VIPS / N_HOSTS) + math.ceil(3.5 * math.sqrt(N_VIPS / N_HOSTS))


def build_small(seed=11, n_hosts=48, n_vips=384, segment_size=16):
    scenario = ScaleClusterScenario(
        seed=seed, n_hosts=n_hosts, n_vips=n_vips, segment_size=segment_size
    )
    scenario.start()
    assert scenario.settle(timeout=20.0), "scale cluster failed to boot"
    return scenario


def test_boot_converges_with_full_single_owner_coverage():
    scenario = build_small()
    uncovered, duplicated = scenario.coverage_violations()
    assert not uncovered and not duplicated
    # Managers' book-keeping matches the actual interface state.
    for manager in scenario.managers:
        assert manager.bound == {str(ip) for ip in manager.nic.virtual_ips}


def test_kill_reconverges_and_moves_only_the_victims_vips():
    scenario = build_small()
    victim = 17
    owned_before = set(scenario.managers[victim].bound)
    assert owned_before
    scenario.reset_move_counters()
    scenario.kill(victim)
    assert scenario.settle(timeout=20.0)
    moved = {
        vip
        for manager in scenario.managers
        if manager.alive
        for vip in manager.bound
        if vip in owned_before
    }
    assert moved == owned_before
    assert scenario.moved_vips() == len(owned_before)


def test_crashed_host_keeps_stale_bindings_until_revival():
    scenario = build_small()
    victim = 5
    nic = scenario.managers[victim].nic
    assert scenario.managers[victim].bound
    scenario.kill(victim)
    assert scenario.settle(timeout=20.0)
    # Fail-stop semantics: the dead NIC still holds its addresses...
    assert nic.virtual_ips
    scenario.revive(victim)
    assert scenario.settle(timeout=20.0)
    # ...and a reboot resets them before the manager rebinds its share.
    manager = scenario.managers[victim]
    assert manager.bound == {str(ip) for ip in manager.nic.virtual_ips}


def test_leader_kill_and_revive_reconverges():
    scenario = build_small()
    scenario.kill(0)  # initial leader of segment 0
    assert scenario.settle(timeout=20.0)
    scenario.revive(0)
    assert scenario.settle(timeout=20.0)
    uncovered, duplicated = scenario.coverage_violations()
    assert not uncovered and not duplicated


# ----------------------------------------------------------------------
# acceptance tier: 256 hosts / 2048 VIPs (CI scale job)

_shared = {}


def shared_n256():
    if "scenario" not in _shared:
        scenario = ScaleClusterScenario(
            seed=20260808, n_hosts=N_HOSTS, n_vips=N_VIPS, segment_size=32
        )
        scenario.start()
        assert scenario.settle(timeout=30.0), "n256 cluster failed to boot"
        _shared["scenario"] = scenario
    return _shared["scenario"]


@pytest.mark.scale
@given(victim=st.integers(0, N_HOSTS - 1))
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_single_kill_remaps_at_most_v_over_n_plus_slack(victim):
    scenario = shared_n256()
    owned_before = set(scenario.managers[victim].bound)
    scenario.reset_move_counters()
    scenario.kill(victim)
    assert scenario.settle(timeout=30.0), "no reconvergence after kill"
    moved = scenario.moved_vips()
    assert moved == len(owned_before)
    assert moved <= REMAP_BOUND, "remapped {} > bound {}".format(moved, REMAP_BOUND)
    scenario.revive(victim)
    assert scenario.settle(timeout=30.0), "no reconvergence after revive"
    uncovered, duplicated = scenario.coverage_violations()
    assert not uncovered and not duplicated


@pytest.mark.scale
def test_n256_cluster_is_deterministic():
    def run_once():
        scenario = ScaleClusterScenario(
            seed=424242, n_hosts=N_HOSTS, n_vips=N_VIPS, segment_size=32
        )
        scenario.start()
        assert scenario.settle(timeout=30.0)
        scenario.kill(100)
        scenario.kill(0)
        assert scenario.settle(timeout=30.0)
        scenario.revive(100)
        assert scenario.settle(timeout=30.0)
        return json.dumps(scenario.fingerprint(), sort_keys=True)

    assert run_once() == run_once()
