"""Unit tests for the §6 measurement workload."""

from repro.apps.workload import ProbeClient, UdpEchoServer
from repro.net.host import Host
from repro.net.lan import Lan
from repro.sim.simulation import Simulation


def build():
    sim = Simulation(seed=4)
    lan = Lan(sim, "lan", "10.0.0.0/24")
    server_host = Host(sim, "server")
    server_host.add_nic(lan, "10.0.0.1")
    server = UdpEchoServer(server_host)
    client_host = Host(sim, "client")
    client_host.add_nic(lan, "10.0.0.2")
    return sim, lan, server_host, server, client_host


def test_probe_receives_hostname_replies():
    sim, lan, server_host, server, client_host = build()
    probe = ProbeClient(client_host, "10.0.0.1")
    probe.start()
    sim.run_for(0.1)
    assert probe.responses
    assert probe.responses[0].server == "server"


def test_probe_interval_is_10ms_by_default():
    sim, lan, server_host, server, client_host = build()
    probe = ProbeClient(client_host, "10.0.0.1")
    assert probe.interval == 0.010
    probe.start()
    sim.run_for(0.1)
    assert 9 <= probe.requests_sent <= 11


def test_reply_sent_from_requested_vip():
    sim, lan, server_host, server, client_host = build()
    server_host.nics[0].bind_ip("10.0.0.50")
    sources = []
    client_host.open_udp(
        9999, lambda p, s, d: sources.append(str(s[0]))
    )
    client_host.send_udp(("req", 1), "10.0.0.50", 8080, src_port=9999)
    sim.run_until_idle()
    assert sources == ["10.0.0.50"]


def test_failover_interruption_measures_server_change_gap():
    sim, lan, server_host, server, client_host = build()
    backup = Host(sim, "backup")
    backup.add_nic(lan, "10.0.0.3")
    server_host.nics[0].bind_ip("10.0.0.50")
    probe = ProbeClient(client_host, "10.0.0.50")
    probe.start()
    sim.run_for(0.5)
    fault_time = sim.now
    server_host.crash()
    # Backup takes over 0.3 s later.
    def takeover():
        UdpEchoServer(backup)
        backup.nics[0].bind_ip("10.0.0.50")
        backup.arp.announce(backup.nics[0], "10.0.0.50")

    sim.after(0.3, takeover)
    sim.run_for(1.0)
    gap = probe.failover_interruption(after=fault_time)
    assert gap is not None
    assert 0.29 <= gap <= 0.35
    assert probe.servers_seen() == ["server", "backup"]


def test_longest_gap_without_server_change():
    sim, lan, server_host, server, client_host = build()
    probe = ProbeClient(client_host, "10.0.0.1")
    probe.start()
    sim.run_for(0.3)
    server._socket.closed = True
    sim.after(0.2, lambda: setattr(server._socket, "closed", False))
    sim.run_for(1.0)
    gap = probe.longest_gap(after=0.0)
    assert 0.19 <= gap <= 0.25


def test_response_rate():
    sim, lan, server_host, server, client_host = build()
    probe = ProbeClient(client_host, "10.0.0.1")
    probe.start()
    sim.run_for(0.5)
    assert probe.response_rate() > 0.9


def test_stop_probing_halts_requests():
    sim, lan, server_host, server, client_host = build()
    probe = ProbeClient(client_host, "10.0.0.1")
    probe.start()
    sim.run_for(0.1)
    probe.stop_probing()
    sent = probe.requests_sent
    sim.run_for(0.2)
    assert probe.requests_sent == sent


def test_malformed_requests_are_counted_not_dropped_silently():
    sim, lan, server_host, server, client_host = build()
    client_host.send_udp("not-a-tuple", "10.0.0.1", 8080, src_port=9999)
    client_host.send_udp((), "10.0.0.1", 8080, src_port=9999)
    client_host.send_udp(("req",), "10.0.0.1", 8080, src_port=9999)
    client_host.send_udp(("other", 1), "10.0.0.1", 8080, src_port=9999)
    client_host.send_udp(("req", 1), "10.0.0.1", 8080, src_port=9999)
    sim.run_until_idle()
    assert server.requests_malformed == 4
    assert server.requests_served == 1
    totals = sim.metrics.totals()
    assert totals["workload.requests_malformed"] == 4
    assert totals["workload.requests_served"] == 1


def test_probe_interval_is_configurable():
    sim, lan, server_host, server, client_host = build()
    probe = ProbeClient(client_host, "10.0.0.1", interval=0.1)
    assert probe.interval == 0.1
    probe.start()
    sim.run_for(1.0)
    assert 9 <= probe.requests_sent <= 11


def test_no_failover_returns_none():
    sim, lan, server_host, server, client_host = build()
    probe = ProbeClient(client_host, "10.0.0.1")
    probe.start()
    sim.run_for(0.2)
    assert probe.failover_interruption(after=0.0) is None
