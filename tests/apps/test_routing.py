"""Unit tests for the simplified dynamic-routing protocol."""

from repro.apps.routing import RipSpeaker, RouteAdvertisement
from repro.net.host import Host
from repro.net.lan import Lan
from repro.net.router import Router
from repro.sim.simulation import Simulation


def build(interval=5.0, listening=True):
    sim = Simulation(seed=5)
    lan = Lan(sim, "lan", "10.0.0.0/24")
    upstream = Router(sim, "upstream")
    upstream.add_nic(lan, "10.0.0.254")
    speaker_up = RipSpeaker(
        upstream, lan, originate=("8.8.8.0/24",), interval=interval
    )
    learner = Router(sim, "learner")
    learner.add_nic(lan, "10.0.0.1")
    speaker = RipSpeaker(learner, lan, interval=interval, listening=listening)
    speaker_up.start()
    speaker.start()
    return sim, lan, upstream, learner, speaker, speaker_up


def test_routes_learned_from_advertisements():
    sim, lan, upstream, learner, speaker, _ = build()
    sim.run_for(1.0)
    match = learner.lookup_route("8.8.8.8")
    assert match is not None
    nic, gateway = match
    assert str(gateway) == "10.0.0.254"
    assert speaker.learned_subnets() == ["8.8.8.0/24"]


def test_not_listening_learns_nothing():
    sim, lan, upstream, learner, speaker, _ = build(listening=False)
    sim.run_for(10.0)
    assert learner.lookup_route("8.8.8.8") is None


def test_enabling_listening_learns_at_next_round():
    sim, lan, upstream, learner, speaker, _ = build(interval=5.0, listening=False)
    sim.run_for(7.0)
    speaker.set_listening(True)
    sim.run_for(1.0)
    assert learner.lookup_route("8.8.8.8") is None  # next round not yet
    sim.run_for(5.0)
    assert learner.lookup_route("8.8.8.8") is not None


def test_disabling_listening_flushes_learned_routes():
    sim, lan, upstream, learner, speaker, _ = build()
    sim.run_for(1.0)
    assert learner.lookup_route("8.8.8.8") is not None
    speaker.set_listening(False)
    assert learner.lookup_route("8.8.8.8") is None
    assert speaker.learned_subnets() == []


def test_routes_expire_without_refresh():
    sim, lan, upstream, learner, speaker, up_speaker = build(interval=5.0)
    sim.run_for(1.0)
    assert learner.lookup_route("8.8.8.8") is not None
    # Silence the advertiser; the learned route must eventually die.
    up_speaker.stop()
    sim.run_for(speaker.route_ttl + speaker.route_ttl / 2)
    assert learner.lookup_route("8.8.8.8") is None


def test_propagation_re_advertises_learned_routes_with_higher_metric():
    sim = Simulation(seed=6)
    lan = Lan(sim, "lan", "10.0.0.0/24")
    origin = Router(sim, "origin")
    origin.add_nic(lan, "10.0.0.254")
    RipSpeaker(origin, lan, originate=("8.8.8.0/24",), interval=2.0).start()
    middle = Router(sim, "middle")
    middle.add_nic(lan, "10.0.0.1")
    relay = RipSpeaker(middle, lan, interval=2.0, propagate=True)
    relay.start()
    # Capture what the relay broadcasts once it has learned the route.
    captured = []
    edge = Router(sim, "edge")
    edge.add_nic(lan, "10.0.0.2")
    edge.open_udp(520, lambda p, s, d: captured.append((str(s[0]), p)))
    sim.run_for(6.0)
    relayed = [
        advert
        for source, advert in captured
        if source == "10.0.0.1" and isinstance(advert, RouteAdvertisement)
    ]
    assert relayed, "relay never re-advertised"
    routes = dict(relayed[-1].routes)
    assert routes.get("8.8.8.0/24") == 2  # origin's metric 1, plus one hop


def test_advertisement_counters():
    sim, lan, upstream, learner, speaker, up_speaker = build(interval=1.0)
    sim.run_for(5.5)
    assert up_speaker.advertisements_sent >= 5
    assert speaker.routes_learned >= 1


def test_empty_originate_sends_nothing():
    sim, lan, upstream, learner, speaker, _ = build()
    sim.run_for(5.0)
    assert speaker.advertisements_sent == 0


def test_infinity_metric_ignored():
    sim, lan, upstream, learner, speaker, _ = build()
    advert = RouteAdvertisement("x", [("9.9.9.0/24", RipSpeaker.INFINITY)])
    speaker._on_advertisement(advert, ("10.0.0.254", 520), ("10.0.0.255", 520))
    assert learner.lookup_route("9.9.9.9") is None
