"""Serial-vs-sharded parity of the scale cluster (the tentpole claim).

The merged run artifact — trace fingerprint, metrics totals, per-cell
summaries, convergence verdict — must be byte-identical for every
(shards, workers) choice. Tier-1 pins it at n64 across the serial
kernel, an in-process multi-world run, and the forked worker pool; the
``scale``-marked test re-proves it at the n256 acceptance size.
"""

import pytest

from repro.apps.scalecluster import ShardedScaleScenario
from repro.sim.shard.merge import artifact_bytes

N64 = dict(
    seed=7,
    n_hosts=64,
    n_vips=512,
    segment_size=16,
    horizon=8.0,
    kills=((3.0, 5),),
    revives=((5.0, 5),),
    flow_users=2000,
    metrics_enabled=True,
)


def run_n64(shards, workers=0, **overrides):
    params = dict(N64)
    params.update(overrides)
    scenario = ShardedScaleScenario(shards=shards, workers=workers, **params)
    return scenario.run(), scenario


def test_parity_serial_vs_sharded_vs_forked_n64():
    serial, _ = run_n64(shards=1)
    sharded, _ = run_n64(shards=4)
    assert artifact_bytes(serial) == artifact_bytes(sharded)
    assert serial["converged"] is True
    assert serial["n_live"] == 64  # victim revived before the horizon
    assert serial["flow"]["offered"] > 0

    from repro.sim.shard.pool import fork_available

    if not fork_available():
        pytest.skip("fork start method unavailable")
    forked, scenario = run_n64(shards=4, workers=4)
    assert scenario.workers_used == 4
    assert artifact_bytes(serial) == artifact_bytes(forked)


def test_artifact_is_a_pure_function_of_params():
    first, _ = run_n64(shards=1)
    second, _ = run_n64(shards=1)
    assert artifact_bytes(first) == artifact_bytes(second)
    different_seed, _ = run_n64(shards=1, seed=8)
    assert artifact_bytes(first) != artifact_bytes(different_seed)


def test_artifact_meta_never_names_the_grouping():
    artifact, _ = run_n64(shards=2)
    assert "shards" not in artifact["meta"]
    assert "workers" not in artifact["meta"]
    assert artifact["meta"]["seed"] == 7


def test_kill_disturbs_only_the_victims_cell_bindings():
    # Segment scoping: a kill in cell 0 moves VIPs inside cell 0 only.
    # Other cells see the new global view but their scoped HRW
    # allocation — and therefore their bindings — is untouched.
    quiet, _ = run_n64(shards=1, kills=(), revives=())
    faulted, _ = run_n64(shards=1, revives=())  # kill host 5 (cell 0), no revive
    assert faulted["n_live"] == 63
    for cell in ("01", "02", "03"):
        assert (
            faulted["cells"][cell]["bindings_sha256"]
            == quiet["cells"][cell]["bindings_sha256"]
        )
    assert (
        faulted["cells"]["00"]["bindings_sha256"]
        != quiet["cells"]["00"]["bindings_sha256"]
    )
    assert faulted["cells"]["00"]["uncovered"] == 0


def test_validation_rejects_bad_parameters():
    with pytest.raises(TypeError):
        ShardedScaleScenario(no_such_param=1)
    with pytest.raises(ValueError):
        ShardedScaleScenario(**dict(N64, kills=((9.5, 5),)))  # past horizon
    with pytest.raises(ValueError):
        ShardedScaleScenario(**dict(N64, kills=((3.0, 64),)))  # index range
    with pytest.raises(ValueError):
        ShardedScaleScenario(**dict(N64, shards=5))  # > n_segments


@pytest.mark.scale
def test_parity_forked_n256_acceptance():
    params = dict(
        seed=11,
        n_hosts=256,
        n_vips=2048,
        segment_size=32,
        horizon=10.0,
        kills=((4.0, 17),),
        revives=((7.0, 17),),
        flow_users=100_000,
        trace_enabled=False,
    )
    serial = ShardedScaleScenario(shards=1, workers=0, **params).run()
    scenario = ShardedScaleScenario(shards=4, workers=4, **params)
    forked = scenario.run()
    assert artifact_bytes(serial) == artifact_bytes(forked)
    assert serial["converged"] is True
    if scenario.workers_used:
        assert scenario.workers_used == 4
