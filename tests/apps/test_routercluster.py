"""Integration tests for the Figure 4 virtual-router scenario."""

import pytest

from repro.apps.routercluster import VIRTUAL_ROUTER_SLOT, RouterClusterScenario
from repro.gcs.config import SpreadConfig


def scenario(mode="static", **kwargs):
    defaults = dict(
        seed=2,
        n_routers=2,
        routing_mode=mode,
        spread_config=SpreadConfig.tuned(),
        wackamole_overrides={"maturity_timeout": 1.0},
        rip_interval=10.0,
    )
    defaults.update(kwargs)
    return RouterClusterScenario(**defaults)


def test_one_router_holds_the_whole_virtual_set():
    sc = scenario().start()
    assert sc.run_until_stable(timeout=60.0)
    active = sc.active_router()
    assert active is not None
    router = active.host
    assert router.owns_ip("198.51.100.1")
    assert router.owns_ip("203.0.113.101")
    assert router.owns_ip("192.168.0.1")
    passive = next(w for w in sc.wacks if w is not active)
    assert not passive.host.owns_ip("198.51.100.1")


def test_internal_host_reaches_internet_through_virtual_router():
    sc = scenario().start()
    assert sc.run_until_stable(timeout=60.0)
    probe = sc.start_probe()
    sc.sim.run_for(0.5)
    assert probe.responses
    assert probe.responses[-1].server == "internet-host"


def test_web_host_path_also_works():
    sc = scenario().start()
    assert sc.run_until_stable(timeout=60.0)
    probe = sc.start_probe(source="web")
    sc.sim.run_for(0.5)
    assert probe.responses


def test_crash_moves_the_indivisible_set_atomically():
    sc = scenario().start()
    assert sc.run_until_stable(timeout=60.0)
    victim = sc.fail_active(mode="crash")
    sc.sim.run_for(10.0)
    active = sc.active_router()
    assert active is not None and active is not victim
    router = active.host
    for vip in ("198.51.100.1", "203.0.113.101", "192.168.0.1"):
        assert router.owns_ip(vip)
    assert sc.auditor.check() == []


def test_static_mode_failover_within_tuned_window():
    sc = scenario("static").start()
    assert sc.run_until_stable(timeout=60.0)
    probe = sc.start_probe()
    sc.sim.run_for(1.0)
    fault_time = sc.sim.now
    sc.fail_active(mode="crash")
    sc.sim.run_for(20.0)
    gap = probe.longest_gap(after=fault_time)
    assert gap <= SpreadConfig.tuned().notification_window()[1] + 1.0


def test_naive_mode_pays_routing_convergence():
    sc = scenario("naive").start()
    assert sc.run_until_stable(timeout=60.0)
    probe = sc.start_probe()
    sc.sim.run_for(1.0)
    fault_time = sc.sim.now
    sc.fail_active(mode="crash")
    sc.sim.run_for(40.0)
    gap = probe.longest_gap(after=fault_time)
    # Interruption includes waiting for the next advertisement round.
    _, failover_hi = SpreadConfig.tuned().notification_window()
    assert gap > failover_hi + 1.0
    assert gap <= failover_hi + sc.rip_interval + 2.0
    # Traffic did recover.
    assert any(r.time > fault_time + gap for r in probe.responses)


def test_advertise_all_mode_avoids_convergence_delay():
    sc = scenario("advertise_all").start()
    assert sc.run_until_stable(timeout=60.0)
    probe = sc.start_probe()
    sc.sim.run_for(1.0)
    fault_time = sc.sim.now
    sc.fail_active(mode="crash")
    sc.sim.run_for(40.0)
    gap = probe.longest_gap(after=fault_time)
    assert gap <= SpreadConfig.tuned().notification_window()[1] + 1.0


def test_unknown_routing_mode_rejected():
    with pytest.raises(ValueError):
        RouterClusterScenario(routing_mode="quantum")


def test_graceful_shutdown_hands_off_quickly():
    sc = scenario().start()
    assert sc.run_until_stable(timeout=60.0)
    probe = sc.start_probe()
    sc.sim.run_for(1.0)
    fault_time = sc.sim.now
    sc.fail_active(mode="shutdown")
    sc.sim.run_for(5.0)
    gap = probe.longest_gap(after=fault_time)
    assert gap <= 0.5
    assert sc.active_router() is not None


def test_vip_group_slot_name():
    sc = scenario()
    assert sc.wackamole_config.slot_ids() == (VIRTUAL_ROUTER_SLOT,)


def test_arp_sharing_builds_targeted_notification_sets():
    sc = scenario(arp_share=True).start()
    assert sc.run_until_stable(timeout=60.0)
    probe = sc.start_probe()
    sc.sim.run_for(12.0)  # a couple of share rounds with live traffic
    # Both routers now know (approximately) who resolved the virtual
    # router's addresses (§5.2).
    assert all(w.notifier.shared_size() > 0 for w in sc.wacks)
    fault_time = sc.sim.now
    sc.fail_active(mode="crash")
    sc.sim.run_for(15.0)
    # Fail-over still completes with targeted notifications.
    gap = probe.longest_gap(after=fault_time)
    assert gap is not None
    assert any(r.time > fault_time + 5.0 for r in probe.responses)
    assert sc.auditor.check() == []
