"""Property tests under message loss.

The GCS must keep its guarantees on an unreliable LAN (retransmission
via resubmit/NACK, membership retries) and Wackamole's properties must
survive on top. Loss also provokes the false-positive failure
detections the paper warns aggressive tuning causes — which the
protocol must absorb as ordinary cascading view changes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import (
    build_gcs_cluster,
    build_wack_cluster,
    fast_spread_config,
    settle_gcs,
    settle_wack,
)

from repro.core.state import RUN

# Keep fault detection lenient relative to loss so clusters can settle.
LOSSY_CONFIG = dict(
    fault_detection_timeout=1.5,
    heartbeat_timeout=0.2,
    discovery_timeout=0.6,
)


@given(st.floats(0.0, 0.15), st.integers(0, 2**16))
@settings(max_examples=15, deadline=None)
def test_gcs_total_order_survives_loss(loss, seed):
    cluster = build_gcs_cluster(3, seed=seed, config=fast_spread_config(**LOSSY_CONFIG))
    cluster.lan.loss = loss
    settle_gcs(cluster)
    settle_gcs(cluster)
    clients, logs = [], []
    for daemon in cluster.daemons:
        client = daemon.connect("app")
        log = []
        client.on_message = lambda m, log=log: log.append((m.view_id, m.payload))
        client.join("g")
        clients.append(client)
        logs.append(log)
    cluster.sim.run_for(1.0)
    for index in range(12):
        clients[index % 3].multicast("g", index)
    cluster.sim.run_for(10.0)
    cluster.lan.loss = 0.0
    cluster.sim.run_for(5.0)
    # Agreed delivery: per delivering view, identical ordered runs at
    # every member; no duplicates anywhere.
    for log in logs:
        payloads = [p for _, p in log]
        assert len(payloads) == len(set(payloads))
    # Members deliver per-view prefixes of one total order: group the
    # union by view and check each member's log is consistent with it.
    for view_id in {v for log in logs for v, _ in log}:
        runs = [
            [p for v, p in log if v == view_id]
            for log in logs
        ]
        longest = max(runs, key=len)
        for run in runs:
            assert run == longest[: len(run)]


@given(st.floats(0.0, 0.10), st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_wackamole_properties_survive_loss(loss, seed):
    cluster = build_wack_cluster(
        3,
        seed=seed,
        n_vips=4,
        config=fast_spread_config(**LOSSY_CONFIG),
        wack_overrides={"maturity_timeout": 0.5, "balance_enabled": False},
    )
    cluster.lan.loss = loss
    cluster.sim.run_for(20.0)
    cluster.faults.crash_host(cluster.hosts[0])
    cluster.sim.run_for(10.0)
    cluster.lan.loss = 0.0
    assert settle_wack(cluster, timeout=40.0)
    live = [w for w in cluster.wacks if w.alive]
    assert all(w.machine.state == RUN and w.mature for w in live)
    assert cluster.auditor.check() == []
