"""Trial runner: verdicts are deterministic functions of the spec."""

import pytest

from repro.check.schedule import FaultEvent, FaultSchedule, generate_schedule
from repro.check.trial import make_spec, result_signature, run_trial
from repro.sim.rng import RngRegistry


def small_spec(seed=42, fixture="standard", events=None, horizon=20.0):
    if events is None:
        schedule = generate_schedule(
            RngRegistry(seed).stream("schedule"), n_hosts=3, horizon=horizon, n_events=4
        )
    else:
        schedule = FaultSchedule(events, horizon)
    return make_spec(seed, schedule, n_servers=3, n_vips=4, fixture=fixture)


def test_empty_schedule_passes():
    spec = small_spec(events=[])
    result = run_trial(spec)
    assert result["verdict"] == "pass"
    assert result["events_fired"] > 0


def test_standard_daemon_survives_random_schedule():
    result = run_trial(small_spec(seed=77))
    assert result["verdict"] == "pass"


def test_trial_is_deterministic():
    spec = small_spec(seed=123)
    assert run_trial(spec) == run_trial(spec)


def test_single_crash_recovers_cleanly():
    spec = small_spec(events=[FaultEvent("crash", 2.0, host=0, duration=4.0)])
    result = run_trial(spec)
    assert result["verdict"] == "pass"
    assert result["restarts"] == 1


def test_broken_balance_fixture_fails_after_one_crash():
    spec = small_spec(
        fixture="broken-balance",
        events=[FaultEvent("crash", 2.0, host=0, duration=4.0)],
    )
    result = run_trial(spec)
    assert result["verdict"] == "violation"
    assert result["violation_kinds"] == ["duplicate"]
    assert result["violations"]
    assert result["trace_tail"]


def test_failure_results_carry_signature():
    spec = small_spec(
        fixture="broken-balance",
        events=[FaultEvent("crash", 2.0, host=0, duration=4.0)],
    )
    result = run_trial(spec)
    assert result_signature(result) == ("violation", ("duplicate",))


def test_unknown_fixture_rejected():
    with pytest.raises(ValueError):
        run_trial(small_spec(fixture="nonexistent", events=[]))


def test_unknown_spec_field_rejected():
    with pytest.raises(ValueError):
        make_spec(1, FaultSchedule([], 10.0), bogus_field=1)


# ----------------------------------------------------------------------
# gray trials (hardened cluster vs the gray repertoire)


def gray_spec(seed=42, horizon=25.0, events=6):
    schedule = generate_schedule(
        RngRegistry(seed).stream("schedule"),
        n_hosts=4,
        horizon=horizon,
        n_events=events,
        gray=True,
    )
    return make_spec(seed, schedule, n_servers=4, n_vips=6, gray=True)


def test_gray_trial_passes_and_is_deterministic():
    spec = gray_spec(seed=404)
    first = run_trial(spec)
    second = run_trial(spec)
    assert first["verdict"] == "pass"
    assert first == second


def test_gray_trial_records_fault_log_and_degraded_spans():
    result = run_trial(gray_spec(seed=404))
    assert result["verdict"] == "pass"
    # The applied timeline rides along in the artifact...
    assert result["fault_log"]
    assert all(set(r) >= {"time", "kind", "target"} for r in result["fault_log"])
    # ...and gray exposure windows are stitched into spans.
    assert isinstance(result["degraded"], list)


def test_gray_trial_spans_cover_applied_gray_faults():
    from repro.check.schedule import GRAY_KINDS

    # Hunt a seed whose schedule actually fires a gray onset (guards
    # can skip events against dead hosts); the draw is deterministic.
    for seed in range(300, 320):
        result = run_trial(gray_spec(seed=seed))
        assert result["verdict"] == "pass"
        gray_kinds_applied = {
            r["kind"]
            for r in result["fault_log"]
            if r["kind"] in ("asym_partition", "burst_loss_on", "slow_host",
                             "clock_skew", "daemon_wedge")
        }
        if gray_kinds_applied:
            span_kinds = {span["kind"] for span in result["degraded"]}
            assert gray_kinds_applied <= span_kinds
            return
    raise AssertionError("no seed in range applied a gray fault: {}".format(GRAY_KINDS))


def test_non_gray_spec_unchanged_by_gray_support():
    """The historical spec shape (no gray key set) still runs and its
    dict form carries gray=False — replay artifacts stay compatible."""
    spec = small_spec(seed=42, events=[])
    assert spec["gray"] is False
    assert run_trial(spec)["verdict"] == "pass"
