"""Unit tests for fault-schedule generation and serialization."""

import pytest

from repro.check.schedule import (
    ALL_KINDS,
    BURST_LOSS,
    CLOCK_SKEW,
    CORRUPT_KINDS,
    CRASH,
    GRAY_KINDS,
    KINDS,
    SLOW_HOST,
    FaultEvent,
    FaultSchedule,
    generate_schedule,
)
from repro.sim.rng import RngRegistry


def test_generation_is_deterministic():
    a = generate_schedule(RngRegistry(3).stream("s"), n_hosts=4, n_events=10)
    b = generate_schedule(RngRegistry(3).stream("s"), n_hosts=4, n_events=10)
    assert a == b
    assert len(a) == 10


def test_different_seeds_give_different_schedules():
    a = generate_schedule(RngRegistry(3).stream("s"), n_hosts=4, n_events=10)
    b = generate_schedule(RngRegistry(4).stream("s"), n_hosts=4, n_events=10)
    assert a != b


def test_events_sorted_by_time_and_within_horizon():
    schedule = generate_schedule(
        RngRegistry(9).stream("s"), n_hosts=5, horizon=40.0, n_events=20
    )
    times = [event.time for event in schedule.events]
    assert times == sorted(times)
    assert all(0.0 < t < 40.0 for t in times)
    assert all(event.kind in KINDS for event in schedule.events)


def test_json_round_trip_is_exact():
    schedule = generate_schedule(RngRegistry(5).stream("s"), n_hosts=4, n_events=12)
    restored = FaultSchedule.from_json(schedule.to_json())
    assert restored == schedule
    # Floats must survive exactly — byte-identical replay depends on it.
    assert [e.time for e in restored.events] == [e.time for e in schedule.events]


def test_tail_time_covers_every_healing_action():
    schedule = FaultSchedule(
        [
            FaultEvent(CRASH, 5.0, host=0, duration=10.0),
            FaultEvent(CRASH, 12.0, host=1, duration=2.0),
        ],
        horizon=20.0,
    )
    assert schedule.tail_time() == 15.0


def test_replace_events_keeps_horizon():
    schedule = FaultSchedule([FaultEvent(CRASH, 5.0, host=0, duration=1.0)], 30.0)
    reduced = schedule.replace_events([])
    assert reduced.horizon == 30.0
    assert len(reduced) == 0


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        FaultEvent("meteor", 1.0, host=0)


def test_partition_split_normalized_sorted():
    event = FaultEvent("partition", 1.0, duration=2.0, split=[3, 1, 2])
    assert event.split == (1, 2, 3)
    assert FaultEvent.from_dict(event.to_dict()) == event


# ----------------------------------------------------------------------
# gray-mix generation (docs/FAULTS.md)


def test_gray_generation_is_deterministic():
    a = generate_schedule(RngRegistry(3).stream("s"), n_hosts=4, n_events=20, gray=True)
    b = generate_schedule(RngRegistry(3).stream("s"), n_hosts=4, n_events=20, gray=True)
    assert a == b
    assert len(a) == 20


def test_gray_mix_draws_gray_kinds():
    schedule = generate_schedule(
        RngRegistry(8).stream("s"), n_hosts=4, n_events=40, gray=True
    )
    kinds = {event.kind for event in schedule.events}
    assert kinds & set(GRAY_KINDS)
    # The fail-stop backbone stays in the mix.
    assert kinds & set(KINDS)
    assert kinds <= set(ALL_KINDS)


def test_non_gray_generation_never_draws_gray_kinds():
    """gray=False must reproduce the historical repertoire exactly —
    existing campaign seeds depend on an unchanged draw sequence."""
    schedule = generate_schedule(
        RngRegistry(8).stream("s"), n_hosts=4, n_events=40, gray=False
    )
    assert all(event.kind in KINDS for event in schedule.events)
    assert all(event.param is None for event in schedule.events)
    # ...so their serialised form carries no "param" keys at all.
    assert all("param" not in e for e in schedule.to_dict()["events"])


def test_gray_params_survive_json_round_trip():
    schedule = generate_schedule(
        RngRegistry(5).stream("s"), n_hosts=4, n_events=30, gray=True
    )
    with_param = [e for e in schedule.events if e.param is not None]
    assert with_param  # burst loss / slowdown / skew magnitudes drawn
    restored = FaultSchedule.from_json(schedule.to_json())
    assert restored == schedule
    assert [e.param for e in restored.events] == [e.param for e in schedule.events]


def test_gray_event_params_are_bounded():
    schedule = generate_schedule(
        RngRegistry(13).stream("s"), n_hosts=5, n_events=60, gray=True
    )
    for event in schedule.events:
        if event.kind == BURST_LOSS:
            assert 0.5 <= event.param <= 0.95
        elif event.kind == SLOW_HOST:
            assert 1.5 <= event.param <= 3.0
        elif event.kind == CLOCK_SKEW:
            assert -5.0 <= event.param <= 5.0


# ----------------------------------------------------------------------
# corruption-mix generation (docs/FAULTS.md, "State corruption")


def test_corrupt_generation_is_deterministic():
    a = generate_schedule(
        RngRegistry(3).stream("s"), n_hosts=4, n_events=20, corrupt=True
    )
    b = generate_schedule(
        RngRegistry(3).stream("s"), n_hosts=4, n_events=20, corrupt=True
    )
    assert a == b
    assert len(a) == 20


def test_corrupt_mix_draws_all_regimes():
    schedule = generate_schedule(
        RngRegistry(8).stream("s"), n_hosts=4, n_events=60, corrupt=True
    )
    kinds = {event.kind for event in schedule.events}
    assert kinds & set(CORRUPT_KINDS)
    # The fail-stop and gray backbones stay in the mix.
    assert kinds & set(KINDS)
    assert kinds & set(GRAY_KINDS)
    assert kinds <= set(ALL_KINDS)


def test_corruption_events_are_instant_and_carry_no_param():
    """The concrete mutation is drawn at injection time from the
    injector's fault/corrupt stream; the schedule only carries
    (kind, time, host)."""
    schedule = generate_schedule(
        RngRegistry(8).stream("s"), n_hosts=4, n_events=60, corrupt=True
    )
    corruptions = [e for e in schedule.events if e.kind in CORRUPT_KINDS]
    assert corruptions
    for event in corruptions:
        assert event.duration == 0.0
        assert event.param is None
        assert event.host is not None
    restored = FaultSchedule.from_json(schedule.to_json())
    assert restored == schedule


def test_non_corrupt_generation_never_draws_corrupt_kinds():
    """gray and plain mixes must reproduce their historical sequences —
    existing campaign seeds depend on an unchanged draw order."""
    for gray in (False, True):
        schedule = generate_schedule(
            RngRegistry(8).stream("s"), n_hosts=4, n_events=40, gray=gray
        )
        assert not any(e.kind in CORRUPT_KINDS for e in schedule.events)
