"""Shrinker: ddmin must reduce failing schedules to a 1-minimal core."""

import pytest

from repro.check.schedule import FaultEvent, FaultSchedule, generate_schedule
from repro.check.shrink import shrink_spec
from repro.check.trial import make_spec, result_signature, run_trial
from repro.sim.rng import RngRegistry


def broken_spec(extra_noise_events=4, seed=42):
    """A broken-balance spec: one crash triggers the bug, plus noise."""
    noise = generate_schedule(
        RngRegistry(seed).stream("noise"),
        n_hosts=3,
        horizon=25.0,
        n_events=extra_noise_events,
    )
    events = list(noise.events) + [FaultEvent("crash", 2.0, host=0, duration=4.0)]
    return make_spec(
        seed,
        FaultSchedule(events, 25.0),
        n_servers=3,
        n_vips=4,
        fixture="broken-balance",
    )


def test_shrink_reaches_single_event():
    spec = broken_spec()
    shrunk, result, trials = shrink_spec(spec)
    assert result["verdict"] == "violation"
    assert len(shrunk["schedule"]["events"]) <= 3
    assert trials > 0
    # The shrunk schedule still fails identically on a fresh run.
    fresh = run_trial(shrunk)
    assert fresh == result


def test_shrunk_schedule_is_one_minimal():
    spec = broken_spec(extra_noise_events=3)
    shrunk, result, _ = shrink_spec(spec)
    events = [
        FaultEvent.from_dict(e) for e in shrunk["schedule"]["events"]
    ]
    schedule = FaultSchedule.from_dict(shrunk["schedule"])
    for index in range(len(events)):
        reduced = dict(shrunk)
        reduced["schedule"] = schedule.replace_events(
            events[:index] + events[index + 1:]
        ).to_dict()
        assert (
            result_signature(run_trial(reduced)) != result_signature(result)
            or len(events) == 1
        )


def test_shrink_refuses_passing_spec():
    spec = make_spec(
        1, FaultSchedule([], 10.0), n_servers=3, n_vips=4, fixture="standard"
    )
    with pytest.raises(ValueError):
        shrink_spec(spec)


def test_shrink_respects_trial_budget():
    spec = broken_spec(extra_noise_events=6)
    _, _, trials = shrink_spec(spec, max_trials=5)
    assert trials <= 5
