"""End-to-end campaigns: find the planted bug, shrink it, replay it.

This is the acceptance test for the whole repro.check pipeline: a
campaign against the deliberately broken balance variant must find an
invariant violation, minimize the schedule to a handful of events, and
the saved artifact must replay byte-identically — twice.
"""

import json
import os

from repro.check import build_specs, load_artifact, replay, run_campaign
from repro.check.campaign import run_specs


def test_planted_bug_found_shrunk_and_replayed(tmp_path):
    report = run_campaign(
        base_seed=1,
        trials=3,
        workers=1,
        fixture="broken-balance",
        horizon=30.0,
        events_per_trial=6,
        artifacts_dir=tmp_path,
    )
    # The campaign must find the planted bug.
    assert not report.passed
    assert "violation" in report.verdicts
    assert report.failures and report.artifacts

    artifact = load_artifact(report.artifacts[0])
    # ...shrink the schedule to at most 3 fault events...
    assert len(artifact["spec"]["schedule"]["events"]) <= 3
    assert artifact["original_events"] == 6
    assert artifact["result"]["verdict"] == "violation"
    assert artifact["result"]["trace_tail"]

    # ...and replay it byte-identically, twice in a row.
    first = replay(report.artifacts[0])
    second = replay(report.artifacts[0])
    assert first.match and second.match
    assert first.result == second.result
    assert first.result["trace_tail"] == artifact["result"]["trace_tail"]


def test_standard_fixture_campaign_is_clean(tmp_path):
    report = run_campaign(
        base_seed=7,
        trials=3,
        workers=1,
        fixture="standard",
        horizon=30.0,
        events_per_trial=6,
        artifacts_dir=tmp_path,
    )
    assert report.passed
    assert report.verdicts == ["pass"] * 3
    assert os.listdir(str(tmp_path)) == []


def test_serial_and_parallel_verdicts_identical():
    specs = build_specs(
        base_seed=5, trials=4, fixture="standard", horizon=25.0, events_per_trial=5
    )
    serial = run_specs(specs, workers=1)
    parallel = run_specs(specs, workers=2)
    assert serial == parallel


def test_specs_are_order_independent():
    specs = build_specs(base_seed=9, trials=4, horizon=25.0, events_per_trial=5)
    # Forked per-trial seeds: same spec regardless of batch size/order.
    alone = build_specs(base_seed=9, trials=2, horizon=25.0, events_per_trial=5)
    assert specs[:2] == alone
    assert len({spec["seed"] for spec in specs}) == len(specs)


def test_artifact_is_valid_json_on_disk(tmp_path):
    report = run_campaign(
        base_seed=1,
        trials=1,
        workers=1,
        fixture="broken-balance",
        horizon=30.0,
        events_per_trial=6,
        artifacts_dir=tmp_path,
    )
    with open(report.artifacts[0]) as handle:
        raw = json.load(handle)
    assert raw["format"] == "repro-check/1"
    assert raw["spec"]["fixture"] == "broken-balance"


def test_report_format_mentions_failures(tmp_path):
    report = run_campaign(
        base_seed=1,
        trials=1,
        workers=1,
        fixture="broken-balance",
        horizon=30.0,
        events_per_trial=6,
        artifacts_dir=tmp_path,
    )
    text = report.format()
    assert "FAILURE" in text
    assert "shrunk to" in text
