"""End-to-end campaigns: find the planted bug, shrink it, replay it.

This is the acceptance test for the whole repro.check pipeline: a
campaign against the deliberately broken balance variant must find an
invariant violation, minimize the schedule to a handful of events, and
the saved artifact must replay byte-identically — twice.
"""

import json
import os

from repro.check import build_specs, load_artifact, replay, run_campaign
from repro.check.campaign import run_specs


def test_planted_bug_found_shrunk_and_replayed(tmp_path):
    report = run_campaign(
        base_seed=1,
        trials=3,
        workers=1,
        fixture="broken-balance",
        horizon=30.0,
        events_per_trial=6,
        artifacts_dir=tmp_path,
    )
    # The campaign must find the planted bug.
    assert not report.passed
    assert "violation" in report.verdicts
    assert report.failures and report.artifacts

    artifact = load_artifact(report.artifacts[0])
    # ...shrink the schedule to at most 3 fault events...
    assert len(artifact["spec"]["schedule"]["events"]) <= 3
    assert artifact["original_events"] == 6
    assert artifact["result"]["verdict"] == "violation"
    assert artifact["result"]["trace_tail"]

    # ...and replay it byte-identically, twice in a row.
    first = replay(report.artifacts[0])
    second = replay(report.artifacts[0])
    assert first.match and second.match
    assert first.result == second.result
    assert first.result["trace_tail"] == artifact["result"]["trace_tail"]


def test_standard_fixture_campaign_is_clean(tmp_path):
    report = run_campaign(
        base_seed=7,
        trials=3,
        workers=1,
        fixture="standard",
        horizon=30.0,
        events_per_trial=6,
        artifacts_dir=tmp_path,
    )
    assert report.passed
    assert report.verdicts == ["pass"] * 3
    assert os.listdir(str(tmp_path)) == []


def test_serial_and_parallel_verdicts_identical():
    specs = build_specs(
        base_seed=5, trials=4, fixture="standard", horizon=25.0, events_per_trial=5
    )
    serial = run_specs(specs, workers=1)
    parallel = run_specs(specs, workers=2)
    assert serial == parallel


def test_specs_are_order_independent():
    specs = build_specs(base_seed=9, trials=4, horizon=25.0, events_per_trial=5)
    # Forked per-trial seeds: same spec regardless of batch size/order.
    alone = build_specs(base_seed=9, trials=2, horizon=25.0, events_per_trial=5)
    assert specs[:2] == alone
    assert len({spec["seed"] for spec in specs}) == len(specs)


def test_artifact_is_valid_json_on_disk(tmp_path):
    report = run_campaign(
        base_seed=1,
        trials=1,
        workers=1,
        fixture="broken-balance",
        horizon=30.0,
        events_per_trial=6,
        artifacts_dir=tmp_path,
    )
    with open(report.artifacts[0]) as handle:
        raw = json.load(handle)
    assert raw["format"] == "repro-check/1"
    assert raw["spec"]["fixture"] == "broken-balance"


def test_report_format_mentions_failures(tmp_path):
    report = run_campaign(
        base_seed=1,
        trials=1,
        workers=1,
        fixture="broken-balance",
        horizon=30.0,
        events_per_trial=6,
        artifacts_dir=tmp_path,
    )
    text = report.format()
    assert "FAILURE" in text
    assert "shrunk to" in text


# ----------------------------------------------------------------------
# warm-worker fan-out: spec purity and serial/parallel identity


def test_build_trial_spec_is_pure_and_matches_build_specs():
    from repro.check import build_trial_spec, campaign_params

    params = campaign_params(base_seed=11, trials=4, horizon=20.0, events_per_trial=4)
    specs = build_specs(base_seed=11, trials=4, horizon=20.0, events_per_trial=4)
    rebuilt = [build_trial_spec(params, index) for index in range(4)]
    assert rebuilt == specs
    # Same (params, index) -> same spec, regardless of build order.
    assert build_trial_spec(params, 2) == specs[2]


def test_parallel_verdicts_identical_to_serial():
    from repro.check import campaign_params, run_campaign_trials

    params = campaign_params(
        base_seed=5, trials=4, horizon=20.0, events_per_trial=4, fixture="standard"
    )
    serial = run_campaign_trials(params, workers=1)
    parallel = run_campaign_trials(params, workers=2)
    assert serial == parallel


def test_run_campaign_trials_accepts_raw_kwargs_dict():
    from repro.check import campaign_params, run_campaign_trials

    raw = {"base_seed": 5, "trials": 2, "horizon": 20.0, "events_per_trial": 4}
    normalized = campaign_params(**raw)
    assert run_campaign_trials(raw) == run_campaign_trials(normalized)


def test_run_specs_matches_campaign_trials_for_same_specs():
    from repro.check import build_trial_spec, campaign_params, run_campaign_trials

    params = campaign_params(base_seed=5, trials=2, horizon=20.0, events_per_trial=4)
    specs = [build_trial_spec(params, index) for index in range(2)]
    assert run_specs(specs) == run_campaign_trials(params)


# ----------------------------------------------------------------------
# gray campaigns (hardened cluster vs the gray repertoire)


def test_gray_campaign_is_clean_and_replays_identically(tmp_path):
    kwargs = dict(
        base_seed=20260806,
        trials=2,
        workers=1,
        horizon=30.0,
        events_per_trial=6,
        artifacts_dir=tmp_path,
        gray=True,
    )
    report = run_campaign(**kwargs)
    assert report.passed
    assert os.listdir(str(tmp_path)) == []
    # Gray trials carry the applied fault timeline in their results.
    assert all(result["fault_log"] for result in report.results)
    # Byte-identical re-run: the campaign is a pure function of kwargs.
    again = run_campaign(**kwargs)
    assert again.results == report.results


def test_gray_flag_changes_schedules_but_not_seeds():
    plain = build_specs(base_seed=3, trials=2, horizon=20.0, events_per_trial=5)
    gray = build_specs(
        base_seed=3, trials=2, horizon=20.0, events_per_trial=5, gray=True
    )
    assert [s["seed"] for s in plain] == [s["seed"] for s in gray]
    assert plain[0]["schedule"] != gray[0]["schedule"]
    assert plain[0]["gray"] is False and gray[0]["gray"] is True


# ----------------------------------------------------------------------
# corruption campaigns (self-stabilizing cluster vs arbitrary state)


def test_corrupt_campaign_is_clean_and_replays_identically(tmp_path):
    kwargs = dict(
        base_seed=20260806,
        trials=2,
        workers=1,
        horizon=30.0,
        events_per_trial=8,
        artifacts_dir=tmp_path,
        corrupt=True,
    )
    report = run_campaign(**kwargs)
    assert report.passed
    assert os.listdir(str(tmp_path)) == []
    # Corrupt trials carry the detect-and-repair spans in their results.
    assert all("stabilization" in result for result in report.results)
    # Byte-identical re-run: mutation choices come from the dedicated
    # fault/corrupt stream, so the campaign stays a pure function of
    # its kwargs — spans, fault params and all.
    again = run_campaign(**kwargs)
    assert again.results == report.results
    assert json.dumps(again.results, sort_keys=True) == json.dumps(
        report.results, sort_keys=True
    )


def test_corrupt_flag_changes_schedules_but_not_seeds():
    plain = build_specs(base_seed=3, trials=2, horizon=20.0, events_per_trial=5)
    corrupt = build_specs(
        base_seed=3, trials=2, horizon=20.0, events_per_trial=5, corrupt=True
    )
    assert [s["seed"] for s in plain] == [s["seed"] for s in corrupt]
    assert plain[0]["schedule"] != corrupt[0]["schedule"]
    assert plain[0]["corrupt"] is False and corrupt[0]["corrupt"] is True
