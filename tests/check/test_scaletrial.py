"""Scale-tier check trials: fault campaigns on segmented clusters.

The fast test runs a small trial end to end and replays it for byte
identity. The ``slow``-marked campaign is ISSUE 6 satellite 3: the
default 64-host segmented cluster survives a multi-fault schedule with
the single-owner-coverage invariant intact, and the recorded artifact
replays byte-identical.
"""

import json

import pytest

from repro.check.scaletrial import (
    SCALE_SPEC_DEFAULTS,
    make_scale_spec,
    run_scale_trial,
)


def replay_identical(spec):
    first = json.dumps(run_scale_trial(spec), sort_keys=True)
    second = json.dumps(run_scale_trial(spec), sort_keys=True)
    return first == second


def test_small_trial_passes_and_replays():
    spec = make_scale_spec(
        seed=3, n_hosts=32, n_vips=128, segment_size=8, n_faults=2
    )
    result = run_scale_trial(spec)
    assert result["verdict"] == "pass", result
    assert result["uncovered"] == 0 and result["duplicated"] == 0
    assert len(result["fault_log"]) >= spec["n_faults"]
    assert replay_identical(spec)


def test_spec_rejects_unknown_fields():
    with pytest.raises(ValueError):
        make_scale_spec(seed=1, bogus_knob=7)


def test_spec_defaults_are_complete():
    spec = make_scale_spec(seed=9)
    assert set(spec) == set(SCALE_SPEC_DEFAULTS) | {"seed"}


@pytest.mark.slow
def test_default_64_host_campaign_holds_single_owner_coverage():
    spec = make_scale_spec(seed=20260808)
    result = run_scale_trial(spec)
    assert result["verdict"] == "pass", result
    # The sampled auditor saw no persistent duplicate owner and the
    # final settled state covers every VIP exactly once.
    assert result["uncovered"] == 0 and result["duplicated"] == 0
    assert result["n_hosts"] == 64 and result["n_vips"] == 512
    assert replay_identical(spec)
