"""Corruption-churn soak: ten simulated minutes of state mutation.

The self-stabilization claim is asymptotic — from *any* reachable
state the cluster converges back to exactly-once VIP coverage — so
beyond the bounded ``repro check --corrupt`` campaigns this soak keeps
corrupting state on a random clock for the whole window, mixed with
the fail-stop churn of the chaos soak, and demands three things:

* no *persistent* view-relative coverage violation at any sample (a
  corruption may open a bounded window; the debounce mirrors the
  corrupt campaign's grace);
* full quiesce back to exactly-once physical coverage at the end;
* measured time-to-stabilize: the trace-derived spans for audited
  corruption kinds close, with a sane median.
"""

import statistics

import pytest

from helpers import fast_spread_config, settle_wack

from repro.check.harness import GRAY_WACK_OVERRIDES
from repro.core.audit import CoverageAuditor
from repro.core.config import WackamoleConfig
from repro.core.daemon import WackamoleDaemon
from repro.gcs.daemon import SpreadDaemon
from repro.net.fault import FaultInjector
from repro.net.host import Host
from repro.net.lan import Lan
from repro.obs.stabilization import stabilization_spans
from repro.sim.simulation import Simulation
from repro.stabilization import StabilizationConfig

pytestmark = pytest.mark.soak

SOAK_SECONDS = 600.0
N_SERVERS = 5
N_VIPS = 8
#: Mirrors CORRUPT_VIOLATION_GRACE: audit tick + repair round trip.
VIOLATION_GRACE = 2.5


class CorruptionMonkey:
    """Random corruption + fail-stop driver with eventual healing."""

    def __init__(self, sim, lan, hosts, spreads, wacks, spread_config, wconfig):
        self.sim = sim
        self.lan = lan
        self.hosts = hosts
        self.spreads = spreads
        self.wacks = wacks
        self.spread_config = spread_config
        self.wconfig = wconfig
        self.faults = FaultInjector(sim)
        self.rng = sim.rng.stream("corruption-chaos")
        self.actions = 0
        self.corruptions = 0

    def start(self):
        self._schedule_next()

    def _schedule_next(self):
        self.sim.after(self.rng.uniform(3.0, 12.0), self._act)

    def _act(self):
        if self.sim.now > SOAK_SECONDS - 60.0:
            # Quiet period: heal everything, stop acting.
            self.faults.heal(self.lan)
            for host in self.hosts:
                if host.alive:
                    for nic in host.nics:
                        if not nic.up:
                            self.faults.nic_up(nic)
            return
        self.actions += 1
        live = [i for i, w in enumerate(self.wacks) if w.alive and self.hosts[i].alive]
        choice = self.rng.random()
        if choice < 0.15 and len(live) > 2:
            index = self.rng.choice(live)
            self.faults.crash_host(self.hosts[index])
            self.sim.after(self.rng.uniform(15.0, 30.0), self._revive, index)
        elif choice < 0.30:
            index = self.rng.choice(range(len(self.hosts)))
            nic = self.hosts[index].nics[0]
            if nic.up:
                self.faults.nic_down(nic)
                self.sim.after(self.rng.uniform(8.0, 20.0), self.faults.nic_up, nic)
        elif choice < 0.40:
            split = self.rng.randint(1, len(self.hosts) - 1)
            self.faults.partition(self.lan, [self.hosts[:split]])
            self.sim.after(self.rng.uniform(8.0, 20.0), self.faults.heal, self.lan)
        elif live:
            self.corruptions += 1
            index = self.rng.choice(live)
            kind = self.rng.random()
            if kind < 0.30:
                self.faults.corrupt_vip_table(self.wacks[index])
            elif kind < 0.55:
                self.faults.corrupt_membership(self._spread(index))
            elif kind < 0.80:
                self.faults.corrupt_sequence(self._spread(index))
            else:
                self.faults.corrupt_epoch(self._spread(index))
        self._schedule_next()

    def _spread(self, index):
        return self.hosts[index].spread_daemon

    def _revive(self, index):
        host = self.hosts[index]
        if host.alive:
            return
        self.faults.recover_host(host)
        spread = SpreadDaemon(
            host,
            self.lan,
            self.spread_config,
            daemon_id="{}-r{}".format(host.name, self.actions),
        )
        wack = WackamoleDaemon(host, spread, self.wconfig)
        spread.start()
        wack.start()
        self.spreads[index] = spread
        self.wacks[index] = wack


def test_ten_minute_corruption_soak():
    stabilization = StabilizationConfig(interval=0.5)
    sim = Simulation(
        seed=20260808,
        trace_enabled=True,
        trace_categories=("fault", "stabilize", "membership", "supervisor"),
    )
    lan = Lan(sim, "lan", "10.0.0.0/24")
    spread_config = fast_spread_config(
        fault_detection_timeout=1.0,
        heartbeat_timeout=0.4,
        discovery_timeout=1.4,
        suspicion_misses=2,
        stabilization=stabilization,
    )
    vips = ["10.0.0.{}".format(100 + i) for i in range(N_VIPS)]
    wconfig = WackamoleConfig.for_vips(
        vips,
        maturity_timeout=1.0,
        balance_timeout=3.0,
        stabilization=stabilization,
        **GRAY_WACK_OVERRIDES
    )
    hosts, spreads, wacks = [], [], []
    for index in range(N_SERVERS):
        host = Host(sim, "s{}".format(index))
        host.add_nic(lan, "10.0.0.{}".format(10 + index))
        spread = SpreadDaemon(host, lan, spread_config)
        wack = WackamoleDaemon(host, spread, wconfig)
        sim.after(0.05 * index, spread.start)
        sim.after(0.05 * index + 0.01, wack.start)
        hosts.append(host)
        spreads.append(spread)
        wacks.append(wack)

    monkey = CorruptionMonkey(sim, lan, hosts, spreads, wacks, spread_config, wconfig)
    sim.after(10.0, monkey.start)

    auditor = CoverageAuditor(wacks)
    first_seen = {}
    while sim.now < SOAK_SECONDS:
        sim.run_for(0.5)
        auditor.daemons = list(monkey.wacks)
        violations = auditor.check_by_view()
        seen = {}
        for violation in violations:
            key = (violation.kind, violation.slot)
            seen[key] = first_seen.get(key, sim.now)
            age = sim.now - seen[key]
            assert age < VIOLATION_GRACE, "unrepaired at t={:.1f}: {}".format(
                sim.now, violation
            )
        first_seen = seen

    # Quiesced: exactly-once physical coverage and liveness restored.
    class FinalCluster:
        pass

    final = FinalCluster()
    final.sim = sim
    final.wacks = list(monkey.wacks)
    final.auditor = auditor
    assert settle_wack(final, timeout=60.0)
    assert auditor.check() == []
    assert monkey.actions >= 20
    assert monkey.corruptions >= 10

    # Time-to-stabilize: every audited corruption span closed, and the
    # detect-repair loop is fast (bounded by the audit cadence plus a
    # repair round, not by luck).
    spans = stabilization_spans(sim.trace.records)
    assert len(spans) >= 10
    open_spans = [s for s in spans if s.end is None and s.mutation != "poison_arp"]
    assert open_spans == [], "unstabilized corruptions: {}".format(open_spans)
    durations = [s.duration for s in spans if s.end is not None]
    assert durations and statistics.median(durations) < 5.0
    total_repairs = sum(
        getattr(d, "stabilize_repairs", 0) for d in monkey.spreads
    ) + sum(getattr(w, "stabilize_repairs", 0) for w in monkey.wacks)
    assert total_repairs >= 1
