"""Unit tests for time-to-stabilize span extraction from trace records."""

from repro.obs.stabilization import stabilization_spans, stabilization_spans_as_dicts
from repro.sim.trace import TraceRecord


def rec(time, category, source, event, **details):
    return TraceRecord(time, category, source, event, details)


def corrupt(time, kind, target, **param):
    return rec(time, "fault", "injector", kind, target=target, param=param)


def test_span_pairs_corruption_with_repair():
    spans = stabilization_spans(
        [
            corrupt(5.0, "corrupt_vip_table", "wack@s0", mutation="drop", slot="v1"),
            rec(5.4, "stabilize", "wack@s0", "repair", invariant="binding_lost", slot="v1"),
        ]
    )
    assert len(spans) == 1
    span = spans[0]
    assert span.kind == "corrupt_vip_table"
    assert span.target == "wack@s0"
    assert span.mutation == "drop"
    assert (span.start, span.end, span.duration) == (5.0, 5.4, 5.4 - 5.0)
    assert span.end_cause == "repair"
    assert span.invariant == "binding_lost"


def test_repair_only_closes_its_own_source():
    spans = stabilization_spans(
        [
            corrupt(1.0, "corrupt_sequence", "spread@s0", mutation="recv_ahead"),
            corrupt(2.0, "corrupt_sequence", "spread@s1", mutation="recv_behind"),
            rec(2.5, "stabilize", "spread@s1", "repair", invariant="recv_aru"),
        ]
    )
    by_target = {span.target: span for span in spans}
    assert by_target["spread@s1"].end == 2.5
    assert by_target["spread@s0"].end is None
    assert by_target["spread@s0"].duration is None


def test_noop_mutations_open_no_span():
    spans = stabilization_spans(
        [corrupt(1.0, "corrupt_vip_table", "wack@s0", mutation="noop")]
    )
    assert spans == []


def test_view_install_closes_view_scoped_spans():
    """A fresh install rewrites view, counters and orderer wholesale —
    a dropped member's own heartbeats trigger the gather before any
    audit tick fires."""
    spans = stabilization_spans(
        [
            corrupt(1.0, "corrupt_membership", "spread@s2", mutation="drop", member="s0"),
            corrupt(1.5, "corrupt_vip_table", "wack@s2", mutation="drop", slot="v1"),
            rec(3.0, "membership", "spread@s2", "install", view="(4, s0)"),
        ]
    )
    by_kind = {span.kind: span for span in spans}
    assert by_kind["corrupt_membership"].end == 3.0
    assert by_kind["corrupt_membership"].end_cause == "view_change"
    # vip-table corruption is not view-scoped: the install leaves it open.
    assert by_kind["corrupt_vip_table"].end is None


def test_crash_closes_spans_of_the_dead_host():
    spans = stabilization_spans(
        [
            corrupt(1.0, "corrupt_epoch", "spread@s1-r2", mutation="view_counter"),
            rec(2.0, "fault", "injector", "crash", target="s1"),
        ]
    )
    assert spans[0].end == 2.0
    assert spans[0].end_cause == "crash"


def test_supervisor_restart_closes_spans_of_replaced_daemon():
    spans = stabilization_spans(
        [
            corrupt(1.0, "corrupt_sequence", "spread@s1", mutation="delivered_ahead"),
            rec(4.0, "supervisor", "sup@s1", "restart_spread", old="s1", new="s1-s1"),
        ]
    )
    assert spans[0].end == 4.0
    assert spans[0].end_cause == "supervisor_restart"


def test_dict_form_is_json_ready_and_rounded():
    dicts = stabilization_spans_as_dicts(
        [
            corrupt(1.0, "corrupt_epoch", "spread@s0", mutation="view_counter"),
            rec(1.0000000001, "stabilize", "spread@s0", "repair", invariant="highest_counter"),
        ]
    )
    assert dicts == [
        {
            "kind": "corrupt_epoch",
            "target": "spread@s0",
            "mutation": "view_counter",
            "start": 1.0,
            "end": 1.0,
            "duration": 0.0,
            "end_cause": "repair",
            "invariant": "highest_counter",
        }
    ]
