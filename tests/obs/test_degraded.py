"""Unit tests for degraded-mode span extraction from trace records."""

from repro.obs.degraded import degraded_spans, degraded_spans_as_dicts
from repro.sim.trace import TraceRecord


def rec(time, category, source, event, **details):
    return TraceRecord(time, category, source, event, details)


def test_slow_host_span_pairs_onset_with_heal():
    spans = degraded_spans(
        [
            rec(5.0, "fault", "injector", "slow_host", target="web1", param=2.5),
            rec(9.0, "fault", "injector", "unslow_host", target="web1"),
        ]
    )
    assert len(spans) == 1
    span = spans[0]
    assert span.kind == "slow_host"
    assert span.target == "web1"
    assert span.param == 2.5
    assert (span.start, span.end, span.duration) == (5.0, 9.0, 4.0)
    assert span.end_cause == "unslow_host"


def test_heal_only_closes_its_own_target():
    spans = degraded_spans(
        [
            rec(1.0, "fault", "injector", "slow_host", target="web1", param=2.0),
            rec(2.0, "fault", "injector", "slow_host", target="web2", param=3.0),
            rec(4.0, "fault", "injector", "unslow_host", target="web2"),
        ]
    )
    by_target = {span.target: span for span in spans}
    assert by_target["web2"].end == 4.0
    assert by_target["web1"].end is None
    assert by_target["web1"].duration is None


def test_asym_partition_heal_matches_on_lan_prefix():
    """Onset targets are "<lan>:<deaf hosts>"; the heal names the LAN."""
    spans = degraded_spans(
        [
            rec(3.0, "fault", "injector", "asym_partition", target="lan0:h0,h2"),
            rec(8.5, "fault", "injector", "asym_heal", target="lan0"),
        ]
    )
    assert len(spans) == 1
    assert spans[0].end == 8.5
    assert spans[0].end_cause == "asym_heal"


def test_crash_closes_host_scoped_spans():
    """A reboot resets the slowdown and kills the wedged daemon."""
    spans = degraded_spans(
        [
            rec(1.0, "fault", "injector", "slow_host", target="web1", param=2.0),
            rec(1.5, "fault", "injector", "daemon_wedge", target="spread@web1"),
            rec(2.0, "fault", "injector", "burst_loss_on", target="lan0", param={}),
            rec(6.0, "fault", "injector", "crash", target="web1"),
        ]
    )
    by_kind = {span.kind: span for span in spans}
    assert by_kind["slow_host"].end_cause == "crash"
    assert by_kind["daemon_wedge"].end_cause == "crash"
    # The LAN-scoped channel outlives any single host.
    assert by_kind["burst_loss_on"].end is None


def test_supervisor_restart_closes_wedge_span():
    spans = degraded_spans(
        [
            rec(2.0, "fault", "injector", "daemon_wedge", target="spread@web3"),
            rec(
                4.5,
                "supervisor",
                "supervisor@web3",
                "restart_spread",
                cause="wedged",
                old="web3",
                new="web3-s1",
            ),
        ]
    )
    assert len(spans) == 1
    assert spans[0].end == 4.5
    assert spans[0].end_cause == "supervisor_restart"


def test_spans_serialise_to_stable_dicts():
    dicts = degraded_spans_as_dicts(
        [
            rec(1.0, "fault", "injector", "clock_skew", target="web1", param=-3.0),
            rec(2.5, "fault", "injector", "clock_unskew", target="web1"),
        ]
    )
    assert dicts == [
        {
            "kind": "clock_skew",
            "target": "web1",
            "param": -3.0,
            "start": 1.0,
            "end": 2.5,
            "duration": 1.5,
            "end_cause": "clock_unskew",
        }
    ]


def test_unrelated_records_are_ignored():
    assert degraded_spans(
        [
            rec(1.0, "fault", "injector", "crash", target="web1"),
            rec(2.0, "membership", "spread@web2", "gather"),
            rec(3.0, "fault", "injector", "recover", target="web1"),
        ]
    ) == []
