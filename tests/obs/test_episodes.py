"""Unit tests for fail-over episode extraction from trace records."""

import json

import pytest

from repro.obs.episodes import (
    episodes_as_dicts,
    extract_episodes,
    first_complete_episode,
)
from repro.sim.trace import TraceRecord


def rec(time, category, source, event, **details):
    return TraceRecord(time, category, source, event, details)


def crash_trace():
    """A canonical single-crash fail-over, victim web1."""
    return [
        rec(10.0, "fault", "injector", "crash", target="web1"),
        rec(10.5, "membership", "spread@web2", "gather", reason="suspected web1"),
        # The victim's own view of the world never counts as a milestone.
        rec(10.6, "membership", "spread@web1", "install", view=9, members=["web1"]),
        rec(11.0, "membership", "spread@web2", "install", view=10, members=["web2", "web3"]),
        rec(11.1, "wackamole", "wack@web2", "view_change"),
        rec(11.2, "wackamole", "wack@web2", "run"),
        rec(11.3, "wackamole", "wack@web3", "run"),
        rec(11.4, "wackamole", "wack@web2", "acquire", slot="vip:0"),
        rec(11.5, "arp", "web2", "announce", address="10.0.0.100"),
        rec(12.0, "workload", "probe@client", "server_change", old="web1", new="web2"),
    ]


def test_crash_trace_yields_one_complete_episode():
    episodes = extract_episodes(crash_trace())
    assert len(episodes) == 1
    episode = episodes[0]
    assert episode.trigger_kind == "fault:crash"
    assert episode.victim == "web1"
    assert episode.complete
    assert episode.detection_time == 10.5
    assert episode.install_time == 11.0  # victim's install was excluded
    assert episode.view == 10
    assert episode.members == ["web2", "web3"]
    assert episode.acquired == [("vip:0", "wack@web2")]
    assert episode.arp_announcements == 1
    assert episode.client_recovery_time == 12.0
    assert episode.end_time == 12.0


def test_phase_durations_of_crash_trace():
    episode = extract_episodes(crash_trace())[0]
    phases = episode.phase_durations()
    assert phases["detection"] == pytest.approx(0.5)
    assert phases["membership"] == pytest.approx(0.5)
    assert phases["gather"] == pytest.approx(0.2)
    assert phases["reallocation"] == 0.0
    assert phases["arp"] == 0.0
    assert phases["client_recovery"] == pytest.approx(2.0)
    assert phases["total"] == pytest.approx(2.0)


def test_missing_phases_report_none_not_zero():
    """A graceful leave skips detection; the phases stay None."""
    episodes = extract_episodes(
        [
            rec(5.0, "wackamole", "wack@web1", "shutdown"),
            rec(5.1, "wackamole", "wack@web2", "view_change"),
            rec(5.2, "wackamole", "wack@web2", "run"),
            rec(5.3, "wackamole", "wack@web2", "acquire", slot="vip:1"),
        ]
    )
    assert len(episodes) == 1
    episode = episodes[0]
    assert episode.victim == "web1"
    phases = episode.phase_durations()
    assert phases["detection"] is None
    assert phases["membership"] is None
    assert phases["client_recovery"] is None
    assert phases["gather"] == pytest.approx(0.1)
    assert episode.complete


def test_suspicion_gather_opens_episode_when_no_fault_was_traced():
    episodes = extract_episodes(
        [
            rec(3.0, "membership", "spread@web2", "gather", reason="suspected web1"),
            rec(3.5, "membership", "spread@web2", "install", view=4, members=["web2"]),
        ]
    )
    assert len(episodes) == 1
    assert episodes[0].trigger_kind == "membership:gather"
    assert episodes[0].detection_time == 3.0
    assert episodes[0].install_time == 3.5


def test_boot_time_gathers_are_not_triggers():
    episodes = extract_episodes(
        [
            rec(0.1, "membership", "spread@web1", "gather", reason="startup"),
            rec(0.2, "membership", "spread@web1", "install", view=1, members=["web1"]),
        ]
    )
    assert episodes == []


def test_cascading_faults_fold_into_one_episode():
    records = [
        rec(10.0, "fault", "injector", "crash", target="web1"),
        # Second fault lands before the cluster converged: same episode.
        rec(10.2, "fault", "injector", "nic_down", target="web2.cluster"),
        rec(10.9, "membership", "spread@web3", "gather", reason="suspected web1"),
        rec(11.0, "membership", "spread@web3", "install", view=7, members=["web3"]),
        rec(11.1, "wackamole", "wack@web3", "view_change"),
        rec(11.2, "wackamole", "wack@web3", "run"),
        rec(11.3, "wackamole", "wack@web3", "acquire", slot="vip:0"),
        # Third fault arrives after convergence: a fresh episode.
        rec(20.0, "fault", "injector", "crash", target="web3"),
    ]
    episodes = extract_episodes(records)
    assert len(episodes) == 2
    first, second = episodes
    assert [r.event for r in first.extra_triggers] == ["nic_down"]
    assert first.converged
    assert second.trigger_time == 20.0
    assert not second.converged


def test_first_complete_episode_honours_after():
    episodes = extract_episodes(crash_trace())
    assert first_complete_episode(episodes) is episodes[0]
    assert first_complete_episode(episodes, after=10.0) is episodes[0]
    assert first_complete_episode(episodes, after=10.5) is None
    assert first_complete_episode([]) is None


def test_to_dict_is_json_stable():
    records = crash_trace()
    first = json.dumps(episodes_as_dicts(records), sort_keys=True)
    second = json.dumps(episodes_as_dicts(list(records)), sort_keys=True)
    assert first == second
    payload = episodes_as_dicts(records)[0]
    assert payload["victim"] == "web1"
    assert payload["complete"] is True
    assert payload["milestones"]["install"] == 11.0
    assert payload["phases"]["total"] == 2.0
    assert payload["acquired"] == [["vip:0", "wack@web2"]]
