"""Unit tests for the dashboard renderers and the JSON-lines export."""

import json

from repro.obs.dashboard import (
    jsonl_export,
    metric_rows,
    render_dashboard,
    render_episodes,
)
from repro.obs.episodes import extract_episodes
from repro.obs.metrics import MetricsRegistry
from repro.sim.trace import TraceRecord


def small_registry():
    holder = {"t": 0.0}
    registry = MetricsRegistry(clock=lambda: holder["t"])
    registry.inc("net.frames_sent", node="lan0", amount=12)
    registry.set("core.vips_owned_target", 3, node="web1")
    series = registry.timeseries("sim.queue_depth", node="scheduler")
    series.observe(4)
    holder["t"] = 2.0
    series.observe(1)
    return registry


def crash_episode():
    records = [
        TraceRecord(10.0, "fault", "injector", "crash", {"target": "web1"}),
        TraceRecord(10.5, "membership", "spread@web2", "gather", {"reason": "suspected web1"}),
        TraceRecord(11.0, "membership", "spread@web2", "install", {"view": 3, "members": ["web2"]}),
        TraceRecord(11.1, "wackamole", "wack@web2", "view_change", {}),
        TraceRecord(11.2, "wackamole", "wack@web2", "run", {}),
        TraceRecord(11.3, "wackamole", "wack@web2", "acquire", {"slot": "vip:0"}),
    ]
    return extract_episodes(records)


def test_metric_rows_are_deterministic_dicts():
    rows = metric_rows(small_registry())
    assert [row["name"] for row in rows] == [
        "core.vips_owned_target",
        "net.frames_sent",
        "sim.queue_depth",
    ]
    assert rows[1]["kind"] == "counter"
    assert rows[1]["summary"] == {"value": 12}
    assert rows[2]["summary"]["samples"] == 2


def test_render_dashboard_lists_layers_metrics_and_episodes():
    text = render_dashboard(small_registry(), crash_episode())
    assert "3 instrument(s) across 3 layer(s): core, net, sim" in text
    assert "net.frames_sent" in text
    assert "fail-over episodes" in text
    assert "fault:crash" in text


def test_render_episodes_without_episodes_says_so():
    assert "no fail-over episodes observed" in render_episodes([])


def test_jsonl_export_is_byte_identical_and_parseable():
    header = {"seed": 7}
    first = jsonl_export(small_registry(), crash_episode(), header=header)
    second = jsonl_export(small_registry(), crash_episode(), header=header)
    assert first == second
    lines = first.rstrip("\n").split("\n")
    payloads = [json.loads(line) for line in lines]
    assert [p["type"] for p in payloads] == ["header", "metric", "metric", "metric", "episode"]
    assert payloads[0]["seed"] == 7
    assert payloads[-1]["victim"] == "web1"
    # Compact separators and sorted keys: re-dumping reproduces the bytes.
    assert lines[0] == json.dumps(payloads[0], sort_keys=True, separators=(",", ":"))
