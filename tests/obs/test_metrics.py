"""Unit tests for the simulation-time metrics registry."""

import pytest

from repro.obs.metrics import (
    NULL_INSTRUMENT,
    Counter,
    Gauge,
    MetricsRegistry,
    TimeWeightedHistogram,
)


def make_registry(time=0.0, enabled=True):
    holder = {"t": time}
    registry = MetricsRegistry(clock=lambda: holder["t"], enabled=enabled)
    return registry, holder


# ----------------------------------------------------------------------
# instruments


def test_counter_increments_monotonically():
    counter = Counter()
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    assert counter.summary() == {"value": 5}


def test_gauge_set_and_add():
    gauge = Gauge()
    gauge.set(7)
    gauge.add(-2)
    assert gauge.value == 5
    assert gauge.summary() == {"value": 5}


def test_timeseries_weights_by_duration_not_samples():
    """A value held longer dominates the average, however few samples."""
    registry, holder = make_registry()
    series = registry.timeseries("sim.depth", node="s")
    series.observe(2)  # held for 1s
    holder["t"] = 1.0
    series.observe(0)  # held for 2s (tail segment, up to now)
    holder["t"] = 3.0
    assert series.time_average() == pytest.approx(2.0 / 3.0)
    summary = series.summary()
    assert summary["last"] == 0.0
    assert summary["min"] == 0.0
    assert summary["max"] == 2.0
    assert summary["samples"] == 2
    assert summary["time_avg"] == round(2.0 / 3.0, 9)


def test_timeseries_before_any_sample_reports_none():
    series = TimeWeightedHistogram(clock=lambda: 0.0)
    assert series.time_average() is None
    assert series.summary()["time_avg"] is None


def test_timeseries_with_zero_elapsed_returns_value():
    registry, _ = make_registry(time=5.0)
    series = registry.timeseries("x")
    series.observe(9)
    assert series.time_average() == 9.0


# ----------------------------------------------------------------------
# registry keying


def test_same_key_returns_same_instrument():
    registry, _ = make_registry()
    a = registry.counter("net.frames", node="lan0")
    b = registry.counter("net.frames", node="lan0")
    assert a is b
    a.inc()
    assert b.value == 1


def test_labels_distinguish_and_are_order_insensitive():
    registry, _ = make_registry()
    a = registry.counter("core.transitions", node="web1", state="RUN", kind="x")
    b = registry.counter("core.transitions", node="web1", kind="x", state="RUN")
    c = registry.counter("core.transitions", node="web1", state="GATHER", kind="x")
    assert a is b
    assert a is not c


def test_kind_mismatch_raises():
    registry, _ = make_registry()
    registry.counter("x", node="n")
    with pytest.raises(TypeError):
        registry.gauge("x", node="n")


def test_one_shot_conveniences_feed_the_same_instruments():
    registry, holder = make_registry()
    registry.inc("a.count", node="n")
    registry.inc("a.count", node="n", amount=2)
    registry.set("a.level", 4, node="n")
    registry.observe("a.series", 1, node="n")
    holder["t"] = 1.0
    assert registry.counter("a.count", node="n").value == 3
    assert registry.gauge("a.level", node="n").value == 4
    assert registry.timeseries("a.series", node="n").time_average() == 1.0


# ----------------------------------------------------------------------
# disabled registry


def test_disabled_registry_hands_out_shared_null_instrument():
    registry, _ = make_registry(enabled=False)
    counter = registry.counter("a.count", node="n")
    series = registry.timeseries("a.series", node="n")
    assert counter is NULL_INSTRUMENT
    assert series is NULL_INSTRUMENT
    counter.inc()
    series.observe(3)
    registry.inc("a.other")
    assert NULL_INSTRUMENT.value == 0
    assert len(registry) == 0
    assert registry.collect() == []
    assert registry.totals() == {}
    assert registry.layers() == []


# ----------------------------------------------------------------------
# deterministic read side


def test_collect_is_sorted_regardless_of_creation_order():
    registry, _ = make_registry()
    registry.inc("net.z", node="b")
    registry.inc("core.a", node="z")
    registry.inc("net.z", node="a")
    keys = [(name, node) for name, node, _labels, _i in registry.collect()]
    assert keys == [("core.a", "z"), ("net.z", "a"), ("net.z", "b")]


def test_totals_sums_counters_across_nodes_only():
    registry, _ = make_registry()
    registry.inc("net.frames", node="a", amount=2)
    registry.inc("net.frames", node="b", amount=3)
    registry.set("net.depth", 9, node="a")
    registry.observe("net.series", 1, node="a")
    assert registry.totals() == {"net.frames": 5}


def test_layers_reports_first_dotted_segments():
    registry, _ = make_registry()
    registry.inc("net.frames", node="a")
    registry.inc("core.reallocations", node="b")
    registry.inc("sim.events_fired", node="s")
    assert registry.layers() == ["core", "net", "sim"]
