"""End-to-end tests for ``repro observe`` and the observation driver."""

import pytest

from repro.cli import main
from repro.obs.dashboard import jsonl_observation
from repro.obs.observe import run_observation


def run_cli(argv):
    lines = []
    code = main(argv, out=lines.append)
    return code, "\n".join(lines)


@pytest.fixture(scope="module")
def observation():
    return run_observation(seed=7, fault="crash", settle=8.0, observe_for=8.0)


def test_observation_covers_all_layers(observation):
    layers = observation.metrics.layers()
    for layer in ("sim", "net", "gcs", "core", "workload"):
        assert layer in layers
    assert len(observation.metrics) > 0


def test_observation_produces_a_complete_fault_episode(observation):
    episode = observation.failover_episode()
    assert episode is not None
    assert episode.trigger_kind == "fault:crash"
    assert episode.victim == observation.victim
    phases = episode.phase_durations()
    for phase in ("detection", "membership", "client_recovery", "total"):
        assert phases[phase] is not None and phases[phase] > 0.0
    assert observation.interruption is not None and observation.interruption > 0.0


def test_observation_observer_saw_the_coverage_dip(observation):
    covered = observation.observer.series("covered")
    assert covered
    full = max(value for _time, value in covered)
    # The pool was fully covered just before the fault and dipped after it.
    before = [v for t, v in covered if t <= observation.fault_time]
    after = [v for t, v in covered if t > observation.fault_time]
    assert before[-1] == full
    assert min(after) < full
    assert after[-1] == full  # ...and recovered by the end of the window
    # coverage_dip reports the first dip, which is the boot-time ramp.
    assert observation.observer.coverage_dip() is not None


def test_same_seed_renders_byte_identical_jsonl():
    first = run_observation(seed=11, fault="nic_down", settle=8.0, observe_for=8.0)
    second = run_observation(seed=11, fault="nic_down", settle=8.0, observe_for=8.0)
    assert jsonl_observation(first) == jsonl_observation(second)


def test_unknown_fault_mode_rejected():
    with pytest.raises(ValueError):
        run_observation(fault="meteor")


def test_cli_observe_text_dashboard():
    code, output = run_cli(
        ["observe", "--seed", "7", "--settle", "6", "--duration", "6"]
    )
    assert code == 0
    assert "repro observe — seed 7" in output
    assert "fail-over episodes" in output
    assert "probe interruption" in output


def test_cli_observe_jsonl():
    code, output = run_cli(
        ["observe", "--seed", "7", "--settle", "6", "--duration", "6",
         "--format", "jsonl"]
    )
    assert code == 0
    first_line = output.split("\n", 1)[0]
    assert first_line.startswith('{"fault":"crash"')
    assert '"type":"episode"' in output
