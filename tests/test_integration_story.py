"""A long end-to-end story exercising the whole stack in one run.

Boot a five-server web cluster behind a router, then walk it through
the lifecycle the paper designed for: crash, interface failure, switch
partition, merge, host recovery with daemon restart, graceful
administrative drains down to a single survivor — verifying Property 1
(via the auditor) and client-visible service at every quiescent point.
"""

from repro.apps.webcluster import WebClusterScenario
from repro.core.daemon import WackamoleDaemon
from repro.gcs.config import SpreadConfig
from repro.gcs.daemon import SpreadDaemon


def checkpoint(scenario, label):
    assert scenario.run_until_stable(timeout=60.0), "not stable at: " + label
    violations = scenario.auditor.check()
    assert violations == [], "{}: {}".format(label, violations)


def probe_is_alive(scenario):
    before = len(scenario.probe.responses)
    scenario.sim.run_for(0.5)
    return len(scenario.probe.responses) > before


def test_full_lifecycle_story():
    scenario = WebClusterScenario(
        seed=77,
        n_servers=5,
        n_vips=10,
        spread_config=SpreadConfig.tuned(),
        wackamole_overrides={"maturity_timeout": 1.0, "balance_timeout": 2.0},
    )
    scenario.start()
    checkpoint(scenario, "boot")
    scenario.start_probe()
    assert probe_is_alive(scenario)

    # 1. A server crashes.
    scenario.kill_owner_of(scenario.vips[0], mode="crash")
    checkpoint(scenario, "after crash")
    assert probe_is_alive(scenario)

    # 2. Another server's interface is disconnected (the §6 fault).
    victim_nic_down = scenario.kill_owner_of(scenario.vips[0], mode="nic_down")
    checkpoint(scenario, "after nic down")
    assert probe_is_alive(scenario)

    # 3. The interface comes back: merge, conflicts, re-balance.
    scenario.faults.nic_up(victim_nic_down.host.nic_on(scenario.lan))
    checkpoint(scenario, "after nic up merge")
    assert sum(w.conflicts_dropped for w in scenario.wacks) > 0
    assert probe_is_alive(scenario)

    # 4. A switch failure partitions the cluster; both sides keep
    #    serving their components, then merge cleanly.
    live_hosts = [w.host for w in scenario.wacks if w.alive]
    scenario.faults.partition(
        scenario.lan, [live_hosts[:2], live_hosts[2:] + [scenario.client_host,
                                                         scenario.router]]
    )
    checkpoint(scenario, "during partition")
    assert probe_is_alive(scenario)  # the client's side still serves
    scenario.faults.heal(scenario.lan)
    checkpoint(scenario, "after heal")
    assert probe_is_alive(scenario)

    # 5. The crashed host comes back; fresh daemons rejoin the cluster.
    dead = next(w for w in scenario.wacks if not w.alive)
    scenario.faults.recover_host(dead.host)
    # Reboot restarts the whole stack: web service, GCS, Wackamole.
    from repro.apps.workload import UdpEchoServer

    UdpEchoServer(dead.host)
    spread = SpreadDaemon(
        dead.host, scenario.lan, scenario.spread_config,
        daemon_id=dead.host.name + "-r",
    )
    wack = WackamoleDaemon(dead.host, spread, scenario.wackamole_config)
    spread.start()
    wack.start()
    scenario.wacks.append(wack)
    scenario.spreads.append(spread)
    scenario.auditor.daemons.append(wack)
    checkpoint(scenario, "after rejoin")
    assert wack.mature  # matured from peers' STATE messages
    assert probe_is_alive(scenario)

    # 6. Administrators drain servers one by one; the last survivor
    #    must end up covering all ten addresses alone.
    while sum(1 for w in scenario.wacks if w.alive) > 1:
        draining = next(w for w in scenario.wacks if w.alive)
        draining.shutdown()
        checkpoint(scenario, "after draining {}".format(draining.host.name))
        assert probe_is_alive(scenario)
    survivor = next(w for w in scenario.wacks if w.alive)
    assert len(survivor.iface.owned_slots()) == 10

    # The client saw service from several different servers along the way.
    assert len(scenario.probe.servers_seen()) >= 3
