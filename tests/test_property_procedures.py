"""Property-based tests for the deterministic procedures.

The correctness proof (Lemmas 1 and 2) hinges on three facts: conflict
resolution is arrival-order independent, reallocation covers exactly
the holes, and every procedure is a pure function of (table,
membership order, preferences). Hypothesis searches for violations.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balance import compute_balanced_allocation

# The heaviest Hypothesis searches in the suite; tier 1 deselects them
# (see pyproject addopts), the CI soak job runs them.
pytestmark = pytest.mark.slow
from repro.core.conflict import resolve_claim
from repro.core.reallocate import reallocate_ips
from repro.core.table import AllocationTable

members_strategy = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=4),
    min_size=1,
    max_size=6,
    unique=True,
).map(sorted)

slots_strategy = st.lists(
    st.integers(min_value=0, max_value=15).map("v{}".format),
    min_size=1,
    max_size=12,
    unique=True,
)


@st.composite
def table_with_claims(draw):
    members = draw(members_strategy)
    slots = draw(slots_strategy)
    claims = draw(
        st.lists(
            st.tuples(st.sampled_from(slots), st.sampled_from(members)),
            max_size=30,
        )
    )
    return members, slots, claims


@given(table_with_claims())
@settings(max_examples=200)
def test_conflict_resolution_is_arrival_order_independent(data):
    members, slots, claims = data
    forward = AllocationTable(slots, members=members)
    for slot, claimant in claims:
        resolve_claim(forward, slot, claimant)
    backward = AllocationTable(slots, members=members)
    for slot, claimant in reversed(claims):
        resolve_claim(backward, slot, claimant)
    assert forward.as_dict() == backward.as_dict()


@given(table_with_claims())
@settings(max_examples=200)
def test_conflict_winner_is_latest_claimant_in_membership_order(data):
    members, slots, claims = data
    table = AllocationTable(slots, members=members)
    for slot, claimant in claims:
        resolve_claim(table, slot, claimant)
    for slot in slots:
        claimants = [m for s, m in claims if s == slot]
        if claimants:
            assert table.owner(slot) == max(claimants, key=members.index)
        else:
            assert table.owner(slot) is None


@given(table_with_claims())
@settings(max_examples=200)
def test_reallocate_covers_everything_and_preserves_owners(data):
    members, slots, claims = data
    table = AllocationTable(slots, members=members)
    for slot, claimant in claims:
        resolve_claim(table, slot, claimant)
    before = table.as_dict()
    assignments = reallocate_ips(table)
    assert table.is_complete()
    for slot, owner in before.items():
        if owner is not None:
            assert table.owner(slot) == owner
            assert slot not in assignments
    for slot, owner in assignments.items():
        assert before[slot] is None
        assert owner in members


@given(members_strategy, slots_strategy)
@settings(max_examples=200)
def test_reallocate_from_empty_is_balanced(members, slots):
    table = AllocationTable(slots, members=members)
    reallocate_ips(table)
    counts = table.counts()
    assert max(counts.values()) - min(counts.values()) <= 1


@given(table_with_claims())
@settings(max_examples=200)
def test_reallocate_is_deterministic(data):
    members, slots, claims = data

    def run():
        table = AllocationTable(slots, members=members)
        for slot, claimant in claims:
            resolve_claim(table, slot, claimant)
        reallocate_ips(table)
        return table.as_dict()

    assert run() == run()


@given(table_with_claims())
@settings(max_examples=200)
def test_balance_output_is_complete_and_even(data):
    members, slots, claims = data
    current = {}
    table = AllocationTable(slots, members=members)
    for slot, claimant in claims:
        resolve_claim(table, slot, claimant)
    current = table.as_dict()
    allocation = compute_balanced_allocation(members, slots, current)
    assert set(allocation) == set(slots)
    assert all(owner in members for owner in allocation.values())
    counts = {m: 0 for m in members}
    for owner in allocation.values():
        counts[owner] += 1
    assert max(counts.values()) - min(counts.values()) <= 1


@given(table_with_claims())
@settings(max_examples=200)
def test_balance_is_idempotent(data):
    members, slots, claims = data
    table = AllocationTable(slots, members=members)
    for slot, claimant in claims:
        resolve_claim(table, slot, claimant)
    once = compute_balanced_allocation(members, slots, table.as_dict())
    twice = compute_balanced_allocation(members, slots, once)
    assert once == twice


@given(
    members_strategy,
    slots_strategy,
    st.data(),
)
@settings(max_examples=100)
def test_balance_honours_single_member_preferences(members, slots, data):
    preferring = data.draw(st.sampled_from(members))
    preferred = data.draw(st.sampled_from(slots))
    allocation = compute_balanced_allocation(
        members, slots, {}, {preferring: (preferred,)}
    )
    assert allocation[preferred] == preferring
