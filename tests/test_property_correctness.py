"""System-level property tests: the paper's Properties 1 and 2.

Hypothesis generates arbitrary fault schedules (crashes, interface
drops and restores, partitions, heals, graceful shutdowns) against a
live cluster. After the schedule we stop injecting faults and let the
system quiesce; then:

* **Property 2 (Liveness)** — every surviving, connected daemon is in
  the RUN state and mature;
* **Property 1 (Correctness)** — in every maximal connected component,
  every virtual IP is covered exactly once (checked against actual NIC
  bindings by the auditor).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import build_wack_cluster, settle_wack

from repro.core.state import RUN

# Whole-cluster Hypothesis searches are the suite's longest tests;
# tier 1 deselects them, the CI soak job runs them.
pytestmark = pytest.mark.slow

CLUSTER_SIZE = 4

action_strategy = st.one_of(
    st.tuples(st.just("crash"), st.integers(0, CLUSTER_SIZE - 1)),
    st.tuples(st.just("nic_down"), st.integers(0, CLUSTER_SIZE - 1)),
    st.tuples(st.just("nic_up"), st.integers(0, CLUSTER_SIZE - 1)),
    st.tuples(st.just("shutdown"), st.integers(0, CLUSTER_SIZE - 1)),
    st.tuples(st.just("partition"), st.integers(1, CLUSTER_SIZE - 1)),
    st.tuples(st.just("heal"), st.just(0)),
)

schedule_strategy = st.lists(action_strategy, min_size=1, max_size=6)


def apply_action(cluster, action, argument):
    alive = [i for i, w in enumerate(cluster.wacks) if w.alive]
    if action == "crash":
        if len(alive) > 1 and cluster.wacks[argument].alive:
            cluster.faults.crash_host(cluster.hosts[argument])
    elif action == "shutdown":
        if len(alive) > 1 and cluster.wacks[argument].alive:
            cluster.wacks[argument].shutdown()
    elif action == "nic_down":
        cluster.faults.nic_down(cluster.hosts[argument].nics[0])
    elif action == "nic_up":
        cluster.faults.nic_up(cluster.hosts[argument].nics[0])
    elif action == "partition":
        left = cluster.hosts[:argument]
        right = cluster.hosts[argument:]
        cluster.faults.partition(cluster.lan, [left, right])
    elif action == "heal":
        cluster.faults.heal(cluster.lan)


def quiesce(cluster):
    """End the fault period: reconnect everything that still exists."""
    cluster.faults.heal(cluster.lan)
    for host in cluster.hosts:
        if host.alive:
            for nic in host.nics:
                cluster.faults.nic_up(nic)


@given(schedule_strategy, st.integers(0, 2**16))
@settings(max_examples=25, deadline=None)
def test_properties_hold_after_arbitrary_fault_schedules(schedule, seed):
    cluster = build_wack_cluster(CLUSTER_SIZE, seed=seed, n_vips=5)
    assert settle_wack(cluster), "cluster never booted"
    for action, argument in schedule:
        apply_action(cluster, action, argument)
        cluster.sim.run_for(1.5)
    quiesce(cluster)
    stable = settle_wack(cluster, timeout=40.0)

    live = [w for w in cluster.wacks if w.alive]
    assert live, "every daemon died despite the guard"
    # Property 2: liveness — all survivors operational and mature.
    assert stable, "cluster failed to restabilise after: {}".format(schedule)
    for wack in live:
        assert wack.machine.state == RUN
        assert wack.mature
    # Property 1: correctness — exactly-once coverage per component.
    assert cluster.auditor.check() == []


@given(schedule_strategy, st.integers(0, 2**16))
@settings(max_examples=15, deadline=None)
def test_view_relative_coverage_never_violated_mid_schedule(schedule, seed):
    """Even *during* the fault schedule, whenever all members of an
    installed view are in RUN, coverage among them is exact.

    (Physical-connectivity coverage is allowed to lag during failure
    detection windows — that lag IS the availability interruption the
    paper measures — so the mid-schedule invariant is stated relative
    to agreed membership, exactly as in §3.1.)
    """
    cluster = build_wack_cluster(CLUSTER_SIZE, seed=seed, n_vips=4)
    assert settle_wack(cluster)
    for action, argument in schedule:
        apply_action(cluster, action, argument)
        for _ in range(6):
            cluster.sim.run_for(0.5)
            violations = cluster.auditor.check_by_view()
            assert violations == [], "mid-schedule violation: {}".format(violations)
    quiesce(cluster)
    assert settle_wack(cluster, timeout=40.0)
    assert cluster.auditor.check() == []
    assert cluster.auditor.check_by_view() == []
