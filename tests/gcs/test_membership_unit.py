"""Unit tests driving the MembershipEngine with synthetic messages.

The integration tests exercise whole clusters; these pin down the
engine's decisions message by message through a stub daemon.
"""

from helpers import fast_spread_config

from repro.gcs.membership import ACK_SENT, FORM_SENT, GATHER, OPERATIONAL, MembershipEngine
from repro.gcs.messages import (
    AckMsg,
    FormMsg,
    InstallMsg,
    JoinMsg,
    LeaveNotice,
    RecoveryDigest,
)
from repro.gcs.views import ViewId
from repro.sim.process import Process
from repro.sim.simulation import Simulation


class EngineHarness(Process):
    """Just enough daemon for the engine: captures outgoing traffic."""

    def __init__(self, sim, daemon_id="bbb", config=None):
        super().__init__(sim, "stub@{}".format(daemon_id))
        self.daemon_id = daemon_id
        self.config = config or fast_spread_config()
        self.broadcasts = []
        self.unicasts = []
        self.installed = []
        self.left_operational = 0

    def broadcast(self, message):
        self.broadcasts.append(message)

    def unicast(self, target, message):
        self.unicasts.append((target, message))

    def make_digest(self):
        return RecoveryDigest(ViewId(0, self.daemon_id), {}, 0, {})

    def install_initial_view(self, view):
        pass

    def on_leave_operational(self):
        self.left_operational += 1

    def apply_install(self, install, old_view):
        self.installed.append(install)


def make_engine(daemon_id="bbb"):
    sim = Simulation(seed=0)
    harness = EngineHarness(sim, daemon_id)
    engine = MembershipEngine(harness)
    engine.start()
    return sim, harness, engine


def drain(sim, seconds):
    sim.run_for(seconds)


def digest_for(sender):
    return RecoveryDigest(ViewId(0, sender), {}, 0, {})


def test_startup_forms_singleton_after_quiet_discovery():
    sim, harness, engine = make_engine()
    drain(sim, harness.config.discovery_timeout + 0.1)
    assert engine.state == OPERATIONAL
    assert list(engine.view.members) == ["bbb"]
    assert engine.view.view_id.counter == 1
    assert len(harness.installed) == 1


def test_join_broadcasts_are_periodic_during_gather():
    sim, harness, engine = make_engine()
    drain(sim, harness.config.discovery_timeout / 2)
    joins = [m for m in harness.broadcasts if isinstance(m, JoinMsg)]
    assert len(joins) >= 3


def test_new_join_restarts_discovery():
    sim, harness, engine = make_engine()
    drain(sim, harness.config.discovery_timeout * 0.8)
    engine.on_join(JoinMsg("aaa", {"aaa"}))
    drain(sim, harness.config.discovery_timeout * 0.8)
    # The timeout was pushed back, so we are still gathering.
    assert engine.state in (GATHER, FORM_SENT, ACK_SENT)
    assert engine.alive == {"aaa", "bbb"}


def test_non_representative_waits_then_acks_form():
    sim, harness, engine = make_engine("bbb")
    engine.on_join(JoinMsg("aaa", {"aaa"}))  # 'aaa' sorts before 'bbb'
    drain(sim, harness.config.discovery_timeout + 0.1)
    assert engine.state == GATHER  # awaiting the representative's FORM
    proposal = FormMsg("aaa", ViewId(5, "aaa"), ["aaa", "bbb"])
    engine.on_form(proposal)
    assert engine.state == ACK_SENT
    target, ack = harness.unicasts[-1]
    assert target == "aaa"
    assert isinstance(ack, AckMsg)
    assert ack.view_id == proposal.view_id


def test_representative_forms_and_collects_acks():
    sim, harness, engine = make_engine("aaa")
    engine.on_join(JoinMsg("bbb", {"bbb"}))
    drain(sim, harness.config.discovery_timeout + 0.1)
    assert engine.state == FORM_SENT
    form = next(m for m in harness.broadcasts if isinstance(m, FormMsg))
    assert list(form.members) == ["aaa", "bbb"]
    engine.on_ack(AckMsg("bbb", form.view_id, digest_for("bbb")))
    assert engine.state == OPERATIONAL
    install = next(m for m in harness.broadcasts if isinstance(m, InstallMsg))
    assert list(install.members) == ["aaa", "bbb"]


def test_ack_timeout_falls_back_to_gather():
    sim, harness, engine = make_engine("aaa")
    engine.on_join(JoinMsg("bbb", {"bbb"}))
    drain(sim, harness.config.discovery_timeout + 0.1)
    assert engine.state == FORM_SENT
    gathers_before = engine.gathers_started
    drain(sim, harness.config.form_timeout + 0.1)
    assert engine.state in (GATHER, FORM_SENT, OPERATIONAL)
    assert engine.gathers_started > gathers_before


def test_form_wait_timeout_falls_back_to_gather():
    sim, harness, engine = make_engine("bbb")
    engine.on_join(JoinMsg("aaa", {"aaa"}))
    drain(sim, harness.config.discovery_timeout + 0.05)
    gathers_before = engine.gathers_started
    drain(sim, harness.config.form_timeout + 0.1)
    assert engine.gathers_started > gathers_before


def test_install_without_matching_ack_triggers_gather():
    sim, harness, engine = make_engine()
    drain(sim, harness.config.discovery_timeout + 0.1)
    assert engine.state == OPERATIONAL
    gathers_before = engine.gathers_started
    rogue = InstallMsg("aaa", ViewId(9, "aaa"), ["aaa", "bbb"], {}, {})
    engine.on_install(rogue)
    assert engine.gathers_started > gathers_before
    assert len(harness.installed) == 1  # the rogue install was NOT applied


def test_stale_install_ignored():
    sim, harness, engine = make_engine()
    drain(sim, harness.config.discovery_timeout + 0.1)
    current = engine.view.view_id
    stale = InstallMsg("bbb", ViewId(0, "bbb"), ["bbb"], {}, {})
    engine.on_install(stale)
    assert engine.view.view_id == current


def test_form_excluding_me_while_operational_triggers_gather():
    sim, harness, engine = make_engine()
    drain(sim, harness.config.discovery_timeout + 0.1)
    gathers_before = engine.gathers_started
    engine.on_form(FormMsg("aaa", ViewId(7, "aaa"), ["aaa", "ccc"]))
    assert engine.gathers_started > gathers_before


def test_competing_forms_only_higher_view_id_superseeds():
    sim, harness, engine = make_engine("bbb")
    engine.on_join(JoinMsg("aaa", {"aaa"}))
    drain(sim, harness.config.discovery_timeout + 0.1)
    first = FormMsg("aaa", ViewId(5, "aaa"), ["aaa", "bbb"])
    engine.on_form(first)
    acks_after_first = len(harness.unicasts)
    # A lower proposal arrives late: must be ignored.
    engine.on_form(FormMsg("aaa", ViewId(4, "aaa"), ["aaa", "bbb"]))
    assert len(harness.unicasts) == acks_after_first
    # A higher proposal supersedes: a second ACK goes out.
    engine.on_form(FormMsg("aaa", ViewId(6, "aaa"), ["aaa", "bbb"]))
    assert len(harness.unicasts) == acks_after_first + 1


def test_leave_notice_from_member_triggers_gather():
    sim, harness, engine = make_engine("bbb")
    engine.on_join(JoinMsg("aaa", {"aaa"}))
    drain(sim, harness.config.discovery_timeout + 0.1)
    proposal = FormMsg("aaa", ViewId(5, "aaa"), ["aaa", "bbb"])
    engine.on_form(proposal)
    digests = {
        "aaa": digest_for("aaa"),
        "bbb": digest_for("bbb"),
    }
    engine.on_install(
        InstallMsg("aaa", proposal.view_id, ["aaa", "bbb"], {}, {})
    )
    assert engine.state == OPERATIONAL
    gathers_before = engine.gathers_started
    engine.on_leave_notice(LeaveNotice("aaa"))
    assert engine.gathers_started > gathers_before


def test_leave_notice_from_stranger_ignored():
    sim, harness, engine = make_engine()
    drain(sim, harness.config.discovery_timeout + 0.1)
    gathers_before = engine.gathers_started
    engine.on_leave_notice(LeaveNotice("zzz"))
    assert engine.gathers_started == gathers_before


def test_own_join_echo_ignored():
    sim, harness, engine = make_engine()
    drain(sim, 0.01)
    alive_before = set(engine.alive)
    engine.on_join(JoinMsg("bbb", {"bbb"}))
    assert engine.alive == alive_before
