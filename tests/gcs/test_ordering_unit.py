"""Unit tests driving the ViewOrderer with synthetic messages."""

from helpers import fast_spread_config

from repro.gcs.messages import NackMsg, OrderedMsg, SubmitMsg
from repro.gcs.ordering import ViewOrderer
from repro.gcs.views import DaemonView, ViewId
from repro.sim.process import Process
from repro.sim.simulation import Simulation


class OrdererHarness(Process):
    """Captures the daemon-side effects of one ViewOrderer."""

    def __init__(self, sim, daemon_id, config=None):
        super().__init__(sim, "stub@{}".format(daemon_id))
        self.daemon_id = daemon_id
        self.config = config or fast_spread_config()
        self.broadcasts = []
        self.unicasts = []
        self.applied = []
        self._counter = 0

    def broadcast(self, message):
        self.broadcasts.append(message)

    def unicast(self, target, message):
        self.unicasts.append((target, message))

    def apply_ordered(self, message):
        self.applied.append(message)

    def next_msg_id(self):
        self._counter += 1
        return (self.daemon_id, self._counter)


def make_orderer(daemon_id="aaa", members=("aaa", "bbb")):
    sim = Simulation(seed=0)
    harness = OrdererHarness(sim, daemon_id)
    view = DaemonView(ViewId(1, sorted(members)[0]), members)
    return sim, harness, ViewOrderer(harness, view)


def ordered(view_id, seq, origin="bbb", payload=None, msg_id=None):
    return OrderedMsg(
        view_id, seq, origin, msg_id or (origin, seq), OrderedMsg.DATA, "g", payload
    )


def test_sequencer_assigns_consecutive_seqs_and_self_delivers():
    sim, harness, orderer = make_orderer("aaa")
    orderer.submit(OrderedMsg.DATA, "g", "one")
    orderer.submit(OrderedMsg.DATA, "g", "two")
    assert [m.seq for m in harness.broadcasts] == [1, 2]
    assert [m.payload for m in harness.applied] == ["one", "two"]
    assert orderer.delivered_aru == 2


def test_non_sequencer_unicasts_submission_to_sequencer():
    sim, harness, orderer = make_orderer("bbb")
    orderer.submit(OrderedMsg.DATA, "g", "hello")
    target, message = harness.unicasts[0]
    assert target == "aaa"
    assert isinstance(message, SubmitMsg)
    assert message.payload == "hello"


def test_non_sequencer_resubmits_until_ordered():
    sim, harness, orderer = make_orderer("bbb")
    orderer.submit(OrderedMsg.DATA, "g", "hello")
    sim.run_for(harness.config.resubmit_interval * 3.5)
    assert len(harness.unicasts) >= 3
    # Once the message appears in the order, resubmission stops.
    msg_id = harness.unicasts[0][1].msg_id
    orderer.on_ordered(ordered(orderer.view_id, 1, origin="bbb", msg_id=msg_id))
    count = len(harness.unicasts)
    sim.run_for(harness.config.resubmit_interval * 3)
    assert len(harness.unicasts) == count


def test_sequencer_deduplicates_retried_submissions():
    sim, harness, orderer = make_orderer("aaa")
    submit = SubmitMsg("bbb", orderer.view_id, ("bbb", 1), OrderedMsg.DATA, "g", "x")
    orderer.on_submit(submit)
    orderer.on_submit(submit)
    assert len(harness.broadcasts) == 1


def test_out_of_order_messages_buffered_then_delivered_in_order():
    sim, harness, orderer = make_orderer("bbb")
    orderer.on_ordered(ordered(orderer.view_id, 2, payload="second"))
    assert harness.applied == []
    orderer.on_ordered(ordered(orderer.view_id, 1, payload="first"))
    assert [m.payload for m in harness.applied] == ["first", "second"]


def test_gap_triggers_nack_to_sequencer():
    sim, harness, orderer = make_orderer("bbb")
    orderer.on_ordered(ordered(orderer.view_id, 3))
    sim.run_for(harness.config.gap_nack_delay * 2)
    nacks = [(t, m) for t, m in harness.unicasts if isinstance(m, NackMsg)]
    assert nacks
    target, nack = nacks[0]
    assert target == "aaa"
    assert set(nack.missing) == {1, 2}


def test_sequencer_retransmits_on_nack():
    sim, harness, orderer = make_orderer("aaa")
    orderer.submit(OrderedMsg.DATA, "g", "x")
    orderer.on_nack(NackMsg("bbb", orderer.view_id, [1]))
    assert any(
        isinstance(m, OrderedMsg) and m.seq == 1 for _, m in harness.unicasts
    )


def test_advertised_top_seq_exposes_tail_loss():
    sim, harness, orderer = make_orderer("bbb")
    orderer.on_top_seq(orderer.view_id, 4)
    sim.run_for(harness.config.gap_nack_delay * 2)
    nacks = [m for _, m in harness.unicasts if isinstance(m, NackMsg)]
    assert nacks
    assert set(nacks[0].missing) == {1, 2, 3, 4}


def test_top_seq_for_other_view_ignored():
    sim, harness, orderer = make_orderer("bbb")
    orderer.on_top_seq(ViewId(9, "zzz"), 10)
    assert orderer.top_seq() == 0


def test_wrong_view_messages_rejected():
    sim, harness, orderer = make_orderer("bbb")
    orderer.on_ordered(ordered(ViewId(9, "zzz"), 1))
    assert orderer.log == {}


def test_freeze_stops_delivery_and_sending():
    sim, harness, orderer = make_orderer("bbb")
    orderer.freeze()
    orderer.on_ordered(ordered(orderer.view_id, 1))
    assert harness.applied == []
    orderer.submit(OrderedMsg.DATA, "g", "queued")
    assert harness.unicasts == []
    assert len(orderer.pending_submissions()) == 1


def test_mark_recovered_clears_pending():
    sim, harness, orderer = make_orderer("bbb")
    msg_id = orderer.submit(OrderedMsg.DATA, "g", "x")
    orderer.freeze()
    orderer.mark_recovered(msg_id)
    assert orderer.pending_submissions() == []


def test_duplicate_ordered_message_ignored():
    sim, harness, orderer = make_orderer("bbb")
    message = ordered(orderer.view_id, 1)
    orderer.on_ordered(message)
    orderer.on_ordered(message)
    assert len(harness.applied) == 1


def test_absorb_recovered_advances_once_per_seq():
    """Regression: installation used to poke delivered_aru from the
    daemon; the orderer now owns the advance and reports novelty."""
    sim, harness, orderer = make_orderer("bbb")
    assert orderer.absorb_recovered(1) is True
    assert orderer.delivered_aru == 1
    # replaying the same or an older sequence is a no-op
    assert orderer.absorb_recovered(1) is False
    assert orderer.absorb_recovered(0) is False
    assert orderer.delivered_aru == 1
    assert orderer.absorb_recovered(3) is True
    assert orderer.delivered_aru == 3
