"""Unit tests for view identifiers and daemon views."""

from repro.gcs.views import DaemonView, ViewId


def test_view_id_total_order_by_counter_then_rep():
    assert ViewId(1, "a") < ViewId(2, "a")
    assert ViewId(2, "a") < ViewId(2, "b")
    assert ViewId(2, "b") <= ViewId(2, "b")


def test_view_id_equality_and_hash():
    assert ViewId(3, "x") == ViewId(3, "x")
    assert len({ViewId(3, "x"), ViewId(3, "x")}) == 1
    assert ViewId(3, "x") != ViewId(3, "y")


def test_members_are_uniquely_ordered():
    view = DaemonView(ViewId(1, "a"), ["c", "a", "b"])
    assert view.members == ("a", "b", "c")


def test_representative_is_first_member():
    view = DaemonView(ViewId(1, "a"), ["b", "a"])
    assert view.representative == "a"


def test_membership_containment():
    view = DaemonView(ViewId(1, "a"), ["a", "b"])
    assert "a" in view
    assert "z" not in view


def test_view_equality():
    a = DaemonView(ViewId(1, "a"), ["a", "b"])
    b = DaemonView(ViewId(1, "a"), ["b", "a"])
    assert a == b
    assert hash(a) == hash(b)
