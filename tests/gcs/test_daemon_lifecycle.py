"""Unit/integration tests for GCS daemon lifecycle and plumbing."""

from helpers import build_gcs_cluster, settle_gcs

from repro.gcs.messages import Heartbeat, OrderedMsg


def test_operational_property_tracks_state():
    cluster = build_gcs_cluster(2)
    daemon = cluster.daemons[0]
    cluster.sim.run_for(0.05)  # started, still discovering
    assert not daemon.operational
    settle_gcs(cluster)
    assert daemon.operational


def test_crash_leaves_no_recurring_events():
    cluster = settle_gcs(build_gcs_cluster(3))
    for daemon in cluster.daemons:
        daemon.crash()
    # Everything pending must drain: no timer may re-arm itself.
    cluster.sim.run_until_idle(max_events=50_000)
    assert cluster.sim.scheduler.next_event_time() is None


def test_shutdown_is_idempotent():
    cluster = settle_gcs(build_gcs_cluster(2))
    cluster.daemons[0].shutdown()
    cluster.daemons[0].shutdown()
    cluster.daemons[0].crash()
    assert not cluster.daemons[0].alive


def test_crashed_daemon_sends_nothing():
    cluster = settle_gcs(build_gcs_cluster(2))
    daemon = cluster.daemons[0]
    daemon.crash()
    sent_before = daemon.messages_sent
    daemon.broadcast(Heartbeat(daemon.daemon_id))
    daemon.unicast("node1", Heartbeat(daemon.daemon_id))
    assert daemon.messages_sent == sent_before


def test_unicast_falls_back_to_broadcast_for_unknown_peer():
    cluster = settle_gcs(build_gcs_cluster(2))
    daemon = cluster.daemons[0]
    sent_before = cluster.lan.frames_sent
    daemon.unicast("never-heard-of", Heartbeat(daemon.daemon_id))
    cluster.sim.run_for(0.01)
    assert cluster.lan.frames_sent > sent_before


def test_heartbeats_advertise_top_seq():
    cluster = settle_gcs(build_gcs_cluster(2))
    client = cluster.daemons[0].connect("app")
    client.join("g")
    cluster.sim.run_for(0.3)
    client.multicast("g", "x")
    cluster.sim.run_for(0.3)
    captured = []
    original = cluster.daemons[1]._on_datagram

    def spy(message, src, dst):
        if isinstance(message, Heartbeat) and message.view_id is not None:
            captured.append(message.top_seq)
        original(message, src, dst)

    cluster.hosts[1]._sockets[0].handler = spy
    cluster.sim.run_for(cluster.config.heartbeat_timeout * 2)
    assert captured
    assert max(captured) >= 2  # join + data message were sequenced


def test_lost_tail_broadcast_recovered_via_heartbeat_nack():
    cluster = settle_gcs(build_gcs_cluster(3))
    clients, logs = [], []
    for daemon in cluster.daemons:
        client = daemon.connect("app")
        log = []
        client.on_message = lambda m, log=log: log.append(m.payload)
        client.join("g")
        clients.append(client)
        logs.append(log)
    cluster.sim.run_for(0.3)
    # Drop every frame for a moment around one multicast: the ordered
    # broadcast becomes a lost *tail* (no later message to expose it).
    cluster.lan.loss = 1.0
    clients[0].multicast("g", "tail")
    cluster.sim.run_for(0.05)
    cluster.lan.loss = 0.0
    # Heartbeat-advertised top sequence numbers trigger the NACK.
    cluster.sim.run_for(cluster.config.heartbeat_timeout * 4 + 1.0)
    assert all("tail" in log for log in logs), logs


def test_sender_of_resolution():
    from repro.gcs.daemon import SpreadDaemon
    from repro.gcs.messages import JoinMsg

    assert SpreadDaemon._sender_of(Heartbeat("a")) == "a"
    assert SpreadDaemon._sender_of(JoinMsg("b", ["b"])) == "b"


def test_repr_mentions_view():
    cluster = settle_gcs(build_gcs_cluster(1))
    assert "node0" in repr(cluster.daemons[0])
