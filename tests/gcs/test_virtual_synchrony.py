"""Virtual Synchrony tests — the guarantee the correctness proof uses.

"Any two servers that advance together from one membership to the next
one will deliver an identical set of messages in the first membership"
(§3.1), with Agreed delivery putting those sets in the same order.
"""

from helpers import build_gcs_cluster, settle_gcs


def connect_all(cluster, group="g"):
    clients, logs = [], []
    for daemon in cluster.daemons:
        client = daemon.connect("app")
        log = []
        # Record messages with the view they were delivered in, plus
        # membership changes, so per-view sets can be compared.
        client.on_message = lambda m, log=log: log.append(("msg", m.view_id, m.payload))
        client.on_group_view = lambda v, log=log: log.append(("view", v.members))
        client.join(group)
        clients.append(client)
        logs.append(log)
    cluster.sim.run_for(0.5)
    return clients, logs


def per_view_messages(log):
    """Split a client's log into message runs between view changes."""
    runs = []
    current = []
    for entry in log:
        if entry[0] == "view":
            runs.append(tuple(current))
            current = []
        else:
            current.append(entry[1:])
    runs.append(tuple(current))
    return runs


def test_messages_in_flight_at_view_change_delivered_consistently():
    cluster = settle_gcs(build_gcs_cluster(4))
    clients, logs = connect_all(cluster)
    # Blast messages continuously while a member crashes.
    def send_burst(index=0):
        if index < 200:
            clients[index % 3].multicast("g", index)
            cluster.sim.after(0.005, send_burst, index + 1)

    send_burst()
    cluster.faults.after(0.2, cluster.faults.crash_host, cluster.hosts[3])
    settle_gcs(cluster)
    cluster.sim.run_for(3.0)
    # The three survivors advanced together: identical logs throughout.
    survivor_logs = logs[:3]
    assert survivor_logs[0] == survivor_logs[1] == survivor_logs[2]
    # Per-sender FIFO: each client's messages appear in send order
    # (cross-sender interleaving is free under agreed delivery).
    payloads = [entry[2] for entry in survivor_logs[0] if entry[0] == "msg"]
    for sender in range(3):
        run = [p for p in payloads if p % 3 == sender]
        assert run == sorted(run)


def test_old_view_messages_delivered_before_new_view_notification():
    cluster = settle_gcs(build_gcs_cluster(3))
    clients, logs = connect_all(cluster)
    for log in logs:
        log.clear()
    clients[0].multicast("g", "pre-change")
    # Crash immediately after: the message races the view change.
    cluster.faults.crash_host(cluster.hosts[2])
    settle_gcs(cluster)
    for log in logs[:2]:
        kinds = [entry[0] for entry in log]
        if "msg" in kinds:
            # Every message precedes the (single) view notification.
            assert kinds.index("view") > max(
                i for i, k in enumerate(kinds) if k == "msg"
            )
    assert logs[0] == logs[1]


def test_survivors_of_partition_share_per_view_sets():
    cluster = settle_gcs(build_gcs_cluster(4))
    clients, logs = connect_all(cluster)
    for round_index in range(20):
        clients[round_index % 4].multicast("g", round_index)
    cluster.faults.after(
        0.05, cluster.faults.partition, cluster.lan,
        [cluster.hosts[:2], cluster.hosts[2:]],
    )
    settle_gcs(cluster)
    cluster.sim.run_for(2.0)
    # Pairs that advanced together must agree on every per-view run.
    assert per_view_messages(logs[0]) == per_view_messages(logs[1])
    assert per_view_messages(logs[2]) == per_view_messages(logs[3])


def test_agreed_order_holds_across_merges():
    cluster = settle_gcs(build_gcs_cluster(4))
    clients, logs = connect_all(cluster)
    cluster.faults.partition(cluster.lan, [cluster.hosts[:2], cluster.hosts[2:]])
    settle_gcs(cluster)
    clients[0].multicast("g", "side-a")
    clients[2].multicast("g", "side-b")
    cluster.sim.run_for(1.0)
    cluster.faults.heal(cluster.lan)
    settle_gcs(cluster)
    for index, client in enumerate(clients):
        client.multicast("g", "merged-{}".format(index))
    cluster.sim.run_for(2.0)
    # After the merge, all four see the merged-view messages identically.
    merged = [
        [entry for entry in log if entry[0] == "msg" and str(entry[2]).startswith("merged")]
        for log in logs
    ]
    assert merged[0] == merged[1] == merged[2] == merged[3]
    assert len(merged[0]) == 4


def test_no_message_delivered_twice():
    cluster = settle_gcs(build_gcs_cluster(3))
    clients, logs = connect_all(cluster)
    for index in range(30):
        clients[index % 3].multicast("g", index)
    cluster.faults.after(0.05, cluster.faults.crash_host, cluster.hosts[2])
    settle_gcs(cluster)
    cluster.sim.run_for(2.0)
    for log in logs[:2]:
        payloads = [entry[2] for entry in log if entry[0] == "msg"]
        assert len(payloads) == len(set(payloads))
