"""Integration tests for the daemon membership protocol."""

from helpers import build_gcs_cluster, fast_spread_config, settle_gcs

from repro.gcs.membership import OPERATIONAL


def all_views(cluster, live_only=True):
    daemons = [d for d in cluster.daemons if d.alive or not live_only]
    return [(d.daemon_id, d.current_view) for d in daemons]


def assert_single_view(daemons, expected_members):
    views = {d.current_view for d in daemons}
    assert len(views) == 1, "divergent views: {}".format(views)
    view = views.pop()
    assert list(view.members) == sorted(expected_members)
    for daemon in daemons:
        assert daemon.membership.state == OPERATIONAL


def test_cluster_converges_to_single_view():
    cluster = settle_gcs(build_gcs_cluster(5))
    assert_single_view(cluster.daemons, [d.daemon_id for d in cluster.daemons])


def test_singleton_daemon_installs_lone_view():
    cluster = settle_gcs(build_gcs_cluster(1))
    daemon = cluster.daemons[0]
    assert daemon.membership.state == OPERATIONAL
    assert list(daemon.current_view.members) == [daemon.daemon_id]


def test_member_lists_identically_ordered_everywhere():
    cluster = settle_gcs(build_gcs_cluster(6))
    reference = cluster.daemons[0].current_view.members
    assert all(d.current_view.members == reference for d in cluster.daemons)
    assert list(reference) == sorted(reference)


def test_crash_removes_member_within_notification_window():
    cluster = settle_gcs(build_gcs_cluster(4))
    config = cluster.config
    fault_time = cluster.sim.now
    cluster.faults.crash_host(cluster.hosts[3])
    lo, hi = config.notification_window()
    cluster.sim.run_for(hi + 1.0)
    survivors = [d for d in cluster.daemons if d.alive]
    assert_single_view(survivors, [d.daemon_id for d in survivors])
    install = cluster.sim.trace.select(
        category="membership", event="install", since=fault_time
    )[0]
    # Allow the small membership-exchange overhead on top of the window.
    assert lo <= install.time - fault_time <= hi + 0.5


def test_graceful_daemon_leave_reconfigures_without_fd_wait():
    cluster = settle_gcs(build_gcs_cluster(4))
    leave_time = cluster.sim.now
    cluster.daemons[0].shutdown()
    cluster.sim.run_for(cluster.config.discovery_timeout + 1.0)
    survivors = [d for d in cluster.daemons if d.alive]
    assert_single_view(survivors, [d.daemon_id for d in survivors])
    install = cluster.sim.trace.select(
        category="membership", event="install", since=leave_time
    )[0]
    # No fault-detection wait: only the discovery phase.
    assert install.time - leave_time < cluster.config.fault_detection_timeout \
        + cluster.config.discovery_timeout


def test_partition_forms_two_operational_components():
    cluster = settle_gcs(build_gcs_cluster(5))
    side_a = cluster.hosts[:2]
    side_b = cluster.hosts[2:]
    cluster.faults.partition(cluster.lan, [side_a, side_b])
    settle_gcs(cluster)
    daemons_a = cluster.daemons[:2]
    daemons_b = cluster.daemons[2:]
    assert_single_view(daemons_a, [d.daemon_id for d in daemons_a])
    assert_single_view(daemons_b, [d.daemon_id for d in daemons_b])
    assert daemons_a[0].current_view.view_id != daemons_b[0].current_view.view_id


def test_merge_after_heal_restores_single_view():
    cluster = settle_gcs(build_gcs_cluster(5))
    cluster.faults.partition(cluster.lan, [cluster.hosts[:2], cluster.hosts[2:]])
    settle_gcs(cluster)
    cluster.faults.heal(cluster.lan)
    settle_gcs(cluster)
    assert_single_view(cluster.daemons, [d.daemon_id for d in cluster.daemons])


def test_view_ids_increase_monotonically():
    cluster = settle_gcs(build_gcs_cluster(3))
    first = cluster.daemons[0].current_view.view_id
    cluster.faults.crash_host(cluster.hosts[2])
    settle_gcs(cluster)
    second = cluster.daemons[0].current_view.view_id
    assert first < second


def test_cascading_fault_during_gather_converges():
    cluster = settle_gcs(build_gcs_cluster(5))
    config = cluster.config
    # Crash one host, then another mid-reconfiguration.
    cluster.faults.crash_host(cluster.hosts[4])
    cluster.faults.after(
        config.fault_detection_timeout + config.discovery_timeout / 2.0,
        cluster.faults.crash_host,
        cluster.hosts[3],
    )
    settle_gcs(cluster)
    settle_gcs(cluster)
    survivors = [d for d in cluster.daemons if d.alive]
    assert_single_view(survivors, [d.daemon_id for d in survivors])


def test_rejoin_after_recovery():
    cluster = settle_gcs(build_gcs_cluster(3))
    cluster.faults.crash_host(cluster.hosts[2])
    settle_gcs(cluster)
    cluster.faults.recover_host(cluster.hosts[2])
    # The daemon died with the host; start a fresh one on the host.
    from repro.gcs.daemon import SpreadDaemon

    revived = SpreadDaemon(cluster.hosts[2], cluster.lan, cluster.config,
                           daemon_id="node2-revived")
    revived.start()
    settle_gcs(cluster)
    daemons = [d for d in cluster.daemons[:2]] + [revived]
    assert_single_view(daemons, [d.daemon_id for d in daemons])


def test_nic_down_isolates_daemon_into_singleton():
    cluster = settle_gcs(build_gcs_cluster(4))
    cluster.faults.nic_down(cluster.hosts[0].nics[0])
    settle_gcs(cluster)
    isolated = cluster.daemons[0]
    assert isolated.membership.state == OPERATIONAL
    assert list(isolated.current_view.members) == [isolated.daemon_id]
    others = cluster.daemons[1:]
    assert_single_view(others, [d.daemon_id for d in others])


def test_nic_up_merges_isolated_daemon_back():
    cluster = settle_gcs(build_gcs_cluster(4))
    cluster.faults.nic_down(cluster.hosts[0].nics[0])
    settle_gcs(cluster)
    cluster.faults.nic_up(cluster.hosts[0].nics[0])
    settle_gcs(cluster)
    assert_single_view(cluster.daemons, [d.daemon_id for d in cluster.daemons])


def test_detection_time_respects_default_ratios():
    """With a slower config, the install still lands in the window."""
    config = fast_spread_config(
        fault_detection_timeout=1.0, heartbeat_timeout=0.4, discovery_timeout=1.4
    )
    cluster = settle_gcs(build_gcs_cluster(3, config=config), duration=8.0)
    fault_time = cluster.sim.now
    cluster.faults.crash_host(cluster.hosts[2])
    cluster.sim.run_for(4.0)
    install = cluster.sim.trace.select(
        category="membership", event="install", since=fault_time
    )[0]
    elapsed = install.time - fault_time
    lo, hi = config.notification_window()
    assert lo <= elapsed <= hi + 0.5


def test_double_start_rejected():
    import pytest

    cluster = build_gcs_cluster(1)
    cluster.sim.run_for(1.0)
    with pytest.raises(RuntimeError):
        cluster.daemons[0].start()
