"""Unit tests for the Spread configuration presets (Table 1)."""

import pytest

from repro.gcs.config import SpreadConfig


def test_default_preset_matches_table1():
    config = SpreadConfig.default()
    assert config.fault_detection_timeout == 5.0
    assert config.heartbeat_timeout == 2.0
    assert config.discovery_timeout == 7.0


def test_tuned_preset_matches_table1():
    config = SpreadConfig.tuned()
    assert config.fault_detection_timeout == 1.0
    assert config.heartbeat_timeout == 0.4
    assert config.discovery_timeout == 1.4


def test_default_notification_window_is_10_to_12_seconds():
    assert SpreadConfig.default().notification_window() == (10.0, 12.0)


def test_tuned_notification_window_is_2_to_2_4_seconds():
    lo, hi = SpreadConfig.tuned().notification_window()
    assert lo == pytest.approx(2.0)
    assert hi == pytest.approx(2.4)


def test_detection_window_is_fd_minus_hb_to_fd():
    config = SpreadConfig.default()
    assert config.detection_window() == (3.0, 5.0)


def test_heartbeat_must_be_below_fault_detection():
    with pytest.raises(ValueError):
        SpreadConfig(fault_detection_timeout=1.0, heartbeat_timeout=1.0)


def test_describe_lists_the_three_table1_timeouts():
    described = SpreadConfig.default().describe()
    assert set(described) == {
        "fault_detection_timeout",
        "heartbeat_timeout",
        "discovery_timeout",
    }


def test_repr_mentions_timeouts():
    assert "fd=5.0" in repr(SpreadConfig.default())
