"""Unit tests for the heartbeat failure detector's timing model."""

from repro.gcs.config import SpreadConfig
from repro.gcs.failure import FailureDetector
from repro.sim.simulation import Simulation


class StubDaemon:
    def __init__(self, sim, config):
        self.sim = sim
        self.config = config
        self.daemon_id = "me"


def build(fd=1.0, hb=0.4, misses=1):
    sim = Simulation(seed=0)
    config = SpreadConfig(
        fault_detection_timeout=fd,
        heartbeat_timeout=hb,
        discovery_timeout=1.0,
        suspicion_misses=misses,
    )
    daemon = StubDaemon(sim, config)
    suspected = []
    detector = FailureDetector(daemon, suspected.append)
    return sim, detector, suspected


def test_silent_peer_suspected_after_fault_detection_timeout():
    sim, detector, suspected = build()
    detector.watch(["me", "peer"])
    sim.run(until=0.99)
    assert suspected == []
    sim.run(until=1.01)
    assert suspected == ["peer"]


def test_traffic_refreshes_the_timer():
    sim, detector, suspected = build()
    detector.watch(["peer"])
    sim.after(0.5, detector.heard_from, "peer")
    sim.run(until=1.4)
    assert suspected == []
    sim.run(until=1.6)
    assert suspected == ["peer"]


def test_self_is_never_watched():
    sim, detector, suspected = build()
    detector.watch(["me"])
    assert detector.watched == frozenset()


def test_stop_cancels_all_suspicions():
    sim, detector, suspected = build()
    detector.watch(["a", "b"])
    detector.stop()
    sim.run(until=5.0)
    assert suspected == []


def test_watch_replaces_previous_set():
    sim, detector, suspected = build()
    detector.watch(["a"])
    detector.watch(["b"])
    sim.run(until=2.0)
    assert suspected == ["b"]


def test_heard_from_unwatched_peer_is_ignored():
    sim, detector, suspected = build()
    detector.watch(["a"])
    detector.heard_from("z")
    sim.run(until=2.0)
    assert suspected == ["a"]


def test_suspicion_counter():
    sim, detector, suspected = build()
    detector.watch(["a", "b"])
    sim.run(until=2.0)
    assert detector.suspicions == 2


def test_detection_delay_within_paper_window():
    """A peer heartbeating every hb then dying is detected within
    [fd - hb, fd] of the failure (the §6 analysis)."""
    sim, detector, suspected = build(fd=5.0, hb=2.0)
    detector.watch(["peer"])
    # Heartbeats at 0, 2, 4; failure at 4.7 (0.7s after last beat).
    for t in (0.0, 2.0, 4.0):
        sim.at(t, detector.heard_from, "peer")
    failure_time = 4.7
    sim.run(until=20.0)
    detection_delay = (4.0 + 5.0) - failure_time  # timer from last beat
    assert 5.0 - 2.0 <= detection_delay <= 5.0


# ----------------------------------------------------------------------
# watch -> stop lifecycle edges


def test_heard_from_after_stop_is_a_noop():
    """Traffic arriving after stop() must not resurrect a timer.

    The real sequence: a view change tears the detector down while a
    late heartbeat is already in flight; if heard_from re-armed a
    timer, it would fire into the new view as a phantom suspicion.
    """
    sim, detector, suspected = build()
    detector.watch(["peer"])
    detector.stop()
    detector.heard_from("peer")
    assert detector.watched == frozenset()
    sim.run(until=10.0)
    assert suspected == []


def test_heard_from_after_suspicion_does_not_resurrect_the_timer():
    sim, detector, suspected = build()
    detector.watch(["peer"])
    sim.run(until=1.5)
    assert suspected == ["peer"]
    detector.heard_from("peer")
    assert detector.watched == frozenset()
    sim.run(until=10.0)
    assert suspected == ["peer"]
    assert detector.suspicions == 1


def test_heard_from_never_watched_peer_creates_no_timer():
    sim, detector, suspected = build()
    detector.heard_from("ghost")
    assert detector.watched == frozenset()
    sim.run(until=10.0)
    assert suspected == []


# ----------------------------------------------------------------------
# K-miss suspicion hardening (docs/FAULTS.md)


def test_k_miss_extends_detection_by_heartbeats():
    """With K=2 a silent peer is suspected at fd + (K-1)*hb, not fd."""
    sim, detector, suspected = build(fd=1.0, hb=0.4, misses=2)
    detector.watch(["peer"])
    sim.run(until=1.3)
    assert suspected == []  # first expiry at 1.0 was only a miss
    sim.run(until=1.5)
    assert suspected == ["peer"]


def test_k1_matches_the_historical_detector_timing():
    for misses in (1,):
        sim, detector, suspected = build(fd=1.0, hb=0.4, misses=misses)
        detector.watch(["peer"])
        sim.run(until=0.99)
        assert suspected == []
        sim.run(until=1.01)
        assert suspected == ["peer"]


def test_occasional_traffic_rides_out_misses():
    """A trickle of heartbeats through a lossy link never suspects.

    Traffic arrives every 1.2s — always after the first (fd=1.0) expiry
    but always inside the one-heartbeat grace window, so K=2 rides out
    every miss while K=1 would have flapped at t=1.0.
    """
    sim, detector, suspected = build(fd=1.0, hb=0.4, misses=2)
    detector.watch(["peer"])
    for k in range(1, 8):
        sim.at(1.2 * k, detector.heard_from, "peer")
    sim.run(until=9.0)
    assert suspected == []
    assert detector.misses_ridden_out >= 7


def test_traffic_resets_the_miss_count():
    """After ridden-out misses the full K expiries are needed again."""
    sim, detector, suspected = build(fd=1.0, hb=0.4, misses=2)
    detector.watch(["peer"])
    sim.at(1.2, detector.heard_from, "peer")  # clears the t=1.0 miss
    # Fresh fd window from 1.2: miss at 2.2, suspicion at 2.6.
    sim.run(until=2.5)
    assert suspected == []
    sim.run(until=2.7)
    assert suspected == ["peer"]
