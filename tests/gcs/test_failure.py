"""Unit tests for the heartbeat failure detector's timing model."""

from repro.gcs.config import SpreadConfig
from repro.gcs.failure import FailureDetector
from repro.sim.simulation import Simulation


class StubDaemon:
    def __init__(self, sim, config):
        self.sim = sim
        self.config = config
        self.daemon_id = "me"


def build(fd=1.0, hb=0.4):
    sim = Simulation(seed=0)
    config = SpreadConfig(
        fault_detection_timeout=fd, heartbeat_timeout=hb, discovery_timeout=1.0
    )
    daemon = StubDaemon(sim, config)
    suspected = []
    detector = FailureDetector(daemon, suspected.append)
    return sim, detector, suspected


def test_silent_peer_suspected_after_fault_detection_timeout():
    sim, detector, suspected = build()
    detector.watch(["me", "peer"])
    sim.run(until=0.99)
    assert suspected == []
    sim.run(until=1.01)
    assert suspected == ["peer"]


def test_traffic_refreshes_the_timer():
    sim, detector, suspected = build()
    detector.watch(["peer"])
    sim.after(0.5, detector.heard_from, "peer")
    sim.run(until=1.4)
    assert suspected == []
    sim.run(until=1.6)
    assert suspected == ["peer"]


def test_self_is_never_watched():
    sim, detector, suspected = build()
    detector.watch(["me"])
    assert detector.watched == frozenset()


def test_stop_cancels_all_suspicions():
    sim, detector, suspected = build()
    detector.watch(["a", "b"])
    detector.stop()
    sim.run(until=5.0)
    assert suspected == []


def test_watch_replaces_previous_set():
    sim, detector, suspected = build()
    detector.watch(["a"])
    detector.watch(["b"])
    sim.run(until=2.0)
    assert suspected == ["b"]


def test_heard_from_unwatched_peer_is_ignored():
    sim, detector, suspected = build()
    detector.watch(["a"])
    detector.heard_from("z")
    sim.run(until=2.0)
    assert suspected == ["a"]


def test_suspicion_counter():
    sim, detector, suspected = build()
    detector.watch(["a", "b"])
    sim.run(until=2.0)
    assert detector.suspicions == 2


def test_detection_delay_within_paper_window():
    """A peer heartbeating every hb then dying is detected within
    [fd - hb, fd] of the failure (the §6 analysis)."""
    sim, detector, suspected = build(fd=5.0, hb=2.0)
    detector.watch(["peer"])
    # Heartbeats at 0, 2, 4; failure at 4.7 (0.7s after last beat).
    for t in (0.0, 2.0, 4.0):
        sim.at(t, detector.heard_from, "peer")
    failure_time = 4.7
    sim.run(until=20.0)
    detection_delay = (4.0 + 5.0) - failure_time  # timer from last beat
    assert 5.0 - 2.0 <= detection_delay <= 5.0
