"""Integration tests for process groups and client sessions."""

import pytest

from helpers import build_gcs_cluster, settle_gcs

from repro.gcs.client import SpreadConnectionError


def make_client(daemon, name="app"):
    client = daemon.connect(name)
    events = []
    client.on_message = lambda m: events.append(("msg", m.sender, m.payload))
    client.on_group_view = lambda v: events.append(("view", v.members, v.caused_by))
    client.on_disconnect = lambda: events.append(("disconnect",))
    return client, events


def test_join_delivers_membership_to_all_members():
    cluster = settle_gcs(build_gcs_cluster(3))
    client_a, events_a = make_client(cluster.daemons[0])
    client_a.join("g")
    cluster.sim.run_for(0.2)
    client_b, events_b = make_client(cluster.daemons[1])
    client_b.join("g")
    cluster.sim.run_for(0.2)
    both = (client_a.private_name, client_b.private_name)
    assert events_a[-1] == ("view", tuple(sorted(both)), "join")
    assert events_b[-1] == ("view", tuple(sorted(both)), "join")


def test_member_lists_are_sorted_private_names():
    cluster = settle_gcs(build_gcs_cluster(4))
    clients = []
    for daemon in cluster.daemons:
        client, _ = make_client(daemon)
        client.join("g")
        clients.append(client)
    cluster.sim.run_for(0.5)
    members = cluster.daemons[0].groups["g"]
    assert sorted(members) == sorted(c.private_name for c in clients)


def test_graceful_leave_is_lightweight():
    """A client leave must NOT trigger daemon membership reconfiguration."""
    cluster = settle_gcs(build_gcs_cluster(3))
    client_a, _ = make_client(cluster.daemons[0])
    client_b, events_b = make_client(cluster.daemons[1])
    client_a.join("g")
    client_b.join("g")
    cluster.sim.run_for(0.5)
    installs_before = cluster.daemons[1].membership.views_installed
    leave_time = cluster.sim.now
    client_a.leave("g")
    cluster.sim.run_for(0.3)
    assert cluster.daemons[1].membership.views_installed == installs_before
    view_events = [e for e in events_b if e[0] == "view"]
    assert view_events[-1] == ("view", (client_b.private_name,), "leave")
    # The notification arrived within milliseconds, not timeout-scale.
    assert cluster.sim.now - leave_time < 1.0


def test_client_disconnect_leaves_all_groups():
    cluster = settle_gcs(build_gcs_cluster(2))
    client_a, _ = make_client(cluster.daemons[0])
    client_b, events_b = make_client(cluster.daemons[1])
    client_a.join("g1")
    client_a.join("g2")
    client_b.join("g1")
    client_b.join("g2")
    cluster.sim.run_for(0.5)
    client_a.disconnect()
    cluster.sim.run_for(0.3)
    assert cluster.daemons[1].groups["g1"] == {client_b.private_name}
    assert cluster.daemons[1].groups["g2"] == {client_b.private_name}
    assert not client_a.connected


def test_killed_client_reported_as_disconnect():
    cluster = settle_gcs(build_gcs_cluster(2))
    client_a, _ = make_client(cluster.daemons[0])
    client_b, events_b = make_client(cluster.daemons[1])
    client_a.join("g")
    client_b.join("g")
    cluster.sim.run_for(0.5)
    client_a.kill()
    cluster.sim.run_for(0.3)
    causes = [e[2] for e in events_b if e[0] == "view"]
    assert causes[-1] == "disconnect"


def test_daemon_crash_disconnects_local_clients():
    cluster = settle_gcs(build_gcs_cluster(2))
    client, events = make_client(cluster.daemons[0])
    client.join("g")
    cluster.sim.run_for(0.5)
    cluster.daemons[0].crash()
    cluster.sim.run_for(0.2)
    assert ("disconnect",) in events
    assert not client.connected


def test_daemon_crash_removes_its_clients_from_groups():
    cluster = settle_gcs(build_gcs_cluster(3))
    client_a, _ = make_client(cluster.daemons[0])
    client_b, events_b = make_client(cluster.daemons[1])
    client_a.join("g")
    client_b.join("g")
    cluster.sim.run_for(0.5)
    cluster.faults.crash_host(cluster.hosts[0])
    settle_gcs(cluster)
    assert cluster.daemons[1].groups["g"] == {client_b.private_name}
    view_events = [e for e in events_b if e[0] == "view"]
    assert view_events[-1] == ("view", (client_b.private_name,), "network")


def test_merge_produces_combined_group_view():
    cluster = settle_gcs(build_gcs_cluster(4))
    clients = []
    for daemon in cluster.daemons:
        client, _ = make_client(daemon)
        client.join("g")
        clients.append(client)
    cluster.sim.run_for(0.5)
    cluster.faults.partition(cluster.lan, [cluster.hosts[:2], cluster.hosts[2:]])
    settle_gcs(cluster)
    assert len(cluster.daemons[0].groups["g"]) == 2
    cluster.faults.heal(cluster.lan)
    settle_gcs(cluster)
    assert len(cluster.daemons[0].groups["g"]) == 4
    reference = sorted(cluster.daemons[0].groups["g"])
    assert all(sorted(d.groups["g"]) == reference for d in cluster.daemons)


def test_connect_to_stopped_daemon_raises():
    cluster = settle_gcs(build_gcs_cluster(2))
    cluster.daemons[0].crash()
    with pytest.raises(SpreadConnectionError):
        cluster.daemons[0].connect("late")


def test_connect_before_start_raises():
    cluster = build_gcs_cluster(1, stagger=10.0)
    with pytest.raises(SpreadConnectionError):
        cluster.daemons[0].connect("early")


def test_duplicate_client_name_rejected():
    cluster = settle_gcs(build_gcs_cluster(1))
    cluster.daemons[0].connect("app")
    with pytest.raises(SpreadConnectionError):
        cluster.daemons[0].connect("app")


def test_operations_on_disconnected_client_raise():
    cluster = settle_gcs(build_gcs_cluster(1))
    client, _ = make_client(cluster.daemons[0])
    client.disconnect()
    with pytest.raises(SpreadConnectionError):
        client.join("g")
    with pytest.raises(SpreadConnectionError):
        client.multicast("g", "x")


def test_group_view_ids_advance_per_event():
    cluster = settle_gcs(build_gcs_cluster(2))
    client_a = cluster.daemons[0].connect("app")
    views = []
    client_a.on_group_view = views.append
    client_a.join("g")
    cluster.sim.run_for(0.2)
    client_b = cluster.daemons[1].connect("app")
    client_b.join("g")
    cluster.sim.run_for(0.2)
    client_b.leave("g")
    cluster.sim.run_for(0.2)
    ids = [view.view_id for view in views]
    assert len(ids) == 3
    assert len(set(ids)) == 3
    assert ids == sorted(ids)


def test_client_counters_and_repr():
    cluster = settle_gcs(build_gcs_cluster(2))
    client_a, _ = make_client(cluster.daemons[0])
    client_b, _ = make_client(cluster.daemons[1])
    client_a.join("g")
    client_b.join("g")
    cluster.sim.run_for(0.3)
    client_a.multicast("g", "x")
    cluster.sim.run_for(0.3)
    assert client_b.messages_received == 1
    assert client_b.views_received >= 1
    assert "connected" in repr(client_b)
    client_b.disconnect()
    assert "disconnected" in repr(client_b)
