"""Integration tests for agreed (totally ordered) delivery."""

from helpers import build_gcs_cluster, settle_gcs


def connect_all(cluster, group="g"):
    clients, logs = [], []
    for daemon in cluster.daemons:
        client = daemon.connect("app")
        log = []
        client.on_message = lambda m, log=log: log.append((m.sender, m.payload))
        client.join(group)
        clients.append(client)
        logs.append(log)
    cluster.sim.run_for(0.5)
    return clients, logs


def test_all_members_deliver_identical_sequences():
    cluster = settle_gcs(build_gcs_cluster(4))
    clients, logs = connect_all(cluster)
    for index, client in enumerate(clients):
        client.multicast("g", "m{}".format(index))
    cluster.sim.run_for(1.0)
    assert logs[0], "no messages delivered"
    assert all(log == logs[0] for log in logs)
    assert len(logs[0]) == 4


def test_sender_receives_own_messages():
    cluster = settle_gcs(build_gcs_cluster(3))
    clients, logs = connect_all(cluster)
    clients[1].multicast("g", "hello")
    cluster.sim.run_for(0.5)
    sender_log = logs[1]
    assert (clients[1].private_name, "hello") in sender_log


def test_interleaved_sends_totally_ordered():
    cluster = settle_gcs(build_gcs_cluster(4))
    clients, logs = connect_all(cluster)
    for round_index in range(5):
        for index, client in enumerate(clients):
            client.multicast("g", (round_index, index))
    cluster.sim.run_for(2.0)
    assert len(logs[0]) == 20
    assert all(log == logs[0] for log in logs)


def test_non_members_receive_nothing():
    cluster = settle_gcs(build_gcs_cluster(3))
    member = cluster.daemons[0].connect("member")
    outsider = cluster.daemons[1].connect("outsider")
    member_log, outsider_log = [], []
    member.on_message = lambda m: member_log.append(m.payload)
    outsider.on_message = lambda m: outsider_log.append(m.payload)
    member.join("g")
    cluster.sim.run_for(0.5)
    member.multicast("g", "private")
    cluster.sim.run_for(0.5)
    assert member_log == ["private"]
    assert outsider_log == []


def test_message_carries_group_and_view_id():
    cluster = settle_gcs(build_gcs_cluster(2))
    clients, _ = connect_all(cluster)
    seen = []
    clients[0].on_message = seen.append
    clients[1].multicast("g", "x")
    cluster.sim.run_for(0.5)
    assert seen[0].group == "g"
    assert seen[0].view_id == cluster.daemons[0].current_view.view_id


def test_lossy_lan_still_delivers_via_nack():
    cluster = build_gcs_cluster(3, seed=9)
    cluster.lan.loss = 0.2
    settle_gcs(cluster)
    settle_gcs(cluster)
    clients, logs = connect_all(cluster)
    for index in range(10):
        clients[index % 3].multicast("g", index)
    cluster.sim.run_for(5.0)
    payloads = [p for _, p in logs[0]]
    assert sorted(payloads) == list(range(10))
    assert all(log == logs[0] for log in logs)


def test_messages_sent_while_reconfiguring_are_delivered_after_install():
    cluster = settle_gcs(build_gcs_cluster(3))
    clients, logs = connect_all(cluster)
    # Force a reconfiguration, then send during the gather.
    cluster.faults.crash_host(cluster.hosts[2])
    cluster.sim.run_for(cluster.config.fault_detection_timeout + 0.1)
    clients[0].multicast("g", "during-gather")
    settle_gcs(cluster)
    survivors_logs = logs[:2]
    assert ("during-gather" in [p for _, p in survivors_logs[0]])
    assert survivors_logs[0] == survivors_logs[1]


def test_ordering_restarts_fresh_each_view():
    cluster = settle_gcs(build_gcs_cluster(3))
    connect_all(cluster)
    first_orderer = cluster.daemons[0].orderer
    cluster.faults.crash_host(cluster.hosts[2])
    settle_gcs(cluster)
    assert cluster.daemons[0].orderer is not first_orderer
    assert cluster.daemons[0].orderer.delivered_aru == 0
