"""Segmented membership: merge properties and protocol behaviour.

Property layer — :func:`merge_digests` is the deterministic heart of
the design: agreement (same digests, same view, regardless of how the
dict was assembled), monotonic view versions under epoch bumps, and no
phantom members. Protocol layer — small SegmentNode clusters exercise
boot convergence, member death, leader succession, epoch handoff on a
revived leader, and whole-segment silence.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.gcs.segments import (
    Fleet,
    GlobalView,
    SegmentConfig,
    SegmentNode,
    merge_digests,
)
from repro.net.host import Host
from repro.net.lan import Lan
from repro.sim.simulation import Simulation

names = st.text(alphabet="abcdefgh01234", min_size=1, max_size=8)

digest_maps = st.dictionaries(
    keys=st.integers(0, 15),
    values=st.tuples(
        st.integers(0, 50),
        st.lists(names, max_size=8, unique=True).map(tuple),
    ),
    min_size=1,
    max_size=8,
)


@given(digests=digest_maps, order_seed=st.randoms(use_true_random=False))
def test_merge_agreement_is_insertion_order_independent(digests, order_seed):
    items = list(digests.items())
    order_seed.shuffle(items)
    shuffled = dict(items)
    assert merge_digests(digests) == merge_digests(shuffled)


@given(digests=digest_maps, data=st.data())
def test_merge_version_is_monotonic_under_epoch_bumps(digests, data):
    before = merge_digests(digests)
    segment = data.draw(st.sampled_from(sorted(digests)))
    epoch, alive = digests[segment]
    bumped = dict(digests)
    bumped[segment] = (epoch + data.draw(st.integers(1, 5)), alive)
    after = merge_digests(bumped)
    assert after.version > before.version


@given(digests=digest_maps)
def test_merge_has_no_phantom_members(digests):
    view = merge_digests(digests)
    union = set()
    for _epoch, alive in digests.values():
        union.update(alive)
    assert set(view.members) == union
    assert list(view.members) == sorted(view.members)


def test_global_view_equality_and_hash():
    a = GlobalView(3, ("a", "b"))
    b = GlobalView(3, ["a", "b"])
    c = GlobalView(4, ("a", "b"))
    assert a == b and hash(a) == hash(b)
    assert a != c


def test_fleet_segmentation():
    entries = [("n{}".format(i), "10.9.0.{}".format(1 + i)) for i in range(10)]
    fleet = Fleet(entries, segment_size=4)
    assert fleet.n_segments == 3
    assert fleet.segment_members(0) == ("n0", "n1", "n2", "n3")
    assert fleet.segment_members(2) == ("n8", "n9")
    assert fleet.initial_leader(1) == "n4"
    assert fleet.segment_of("n7") == 1


# ----------------------------------------------------------------------
# protocol behaviour on a live simulation


def build_segment_cluster(n, segment_size, seed=7):
    sim = Simulation(seed=seed, trace_enabled=False, metrics_enabled=False)
    lan = Lan(sim, "seg", "10.40.0.0/16")
    entries = [("n{:03d}".format(i), "10.40.1.{}".format(1 + i)) for i in range(n)]
    fleet = Fleet(entries, segment_size)
    config = SegmentConfig(segment_size=segment_size)
    hosts, nodes = [], []
    for index, (name, ip) in enumerate(entries):
        host = Host(sim, name)
        host.add_nic(lan, ip)
        nodes.append(SegmentNode(host, lan, index, fleet, config))
        hosts.append(host)
    for node in nodes:
        node.start()
    return sim, lan, fleet, config, hosts, nodes


def live_views(nodes):
    return {node.global_view for node in nodes if node.alive}


def test_boot_converges_to_one_full_view():
    sim, _lan, _fleet, _config, _hosts, nodes = build_segment_cluster(12, 4)
    sim.run_for(5.0)
    views = live_views(nodes)
    assert len(views) == 1
    assert len(next(iter(views)).members) == 12


def test_member_death_propagates_to_every_node():
    sim, _lan, _fleet, _config, hosts, nodes = build_segment_cluster(12, 4)
    sim.run_for(5.0)
    hosts[5].crash()
    sim.run_for(8.0)
    views = live_views(nodes)
    assert len(views) == 1
    members = next(iter(views)).members
    assert "n005" not in members and len(members) == 11


def test_leader_death_elects_deterministic_successor():
    sim, _lan, _fleet, _config, hosts, nodes = build_segment_cluster(12, 4)
    sim.run_for(5.0)
    hosts[0].crash()  # initial leader of segment 0
    sim.run_for(8.0)
    views = live_views(nodes)
    assert len(views) == 1
    assert "n000" not in next(iter(views)).members
    leaders = sorted(n.node_name for n in nodes if n.alive and n.is_leader)
    assert leaders == ["n001", "n004", "n008"]


def test_revived_leader_fast_forwards_epoch():
    sim, lan, fleet, config, hosts, nodes = build_segment_cluster(12, 4)
    sim.run_for(5.0)
    hosts[0].crash()
    sim.run_for(8.0)
    hosts[0].recover()
    nodes[0] = SegmentNode(hosts[0], lan, 0, fleet, config)
    nodes[0].start()
    sim.run_for(8.0)
    views = live_views(nodes)
    assert len(views) == 1
    assert len(next(iter(views)).members) == 12
    # The original leader resumed duty and deaths still propagate.
    assert nodes[0].is_leader
    hosts[2].crash()
    sim.run_for(8.0)
    views = live_views(nodes)
    assert len(views) == 1 and "n002" not in next(iter(views)).members


def test_whole_segment_death_and_revival():
    sim, lan, fleet, config, hosts, nodes = build_segment_cluster(12, 4)
    sim.run_for(5.0)
    for index in (8, 9, 10, 11):
        hosts[index].crash()
    sim.run_for(10.0)
    views = live_views(nodes)
    assert len(views) == 1
    assert len(next(iter(views)).members) == 8
    for index in (8, 9, 10, 11):
        hosts[index].recover()
        nodes[index] = SegmentNode(hosts[index], lan, index, fleet, config)
        nodes[index].start()
    sim.run_for(10.0)
    views = live_views(nodes)
    assert len(views) == 1
    assert len(next(iter(views)).members) == 12


def test_segment_config_validation():
    import pytest

    with pytest.raises(ValueError):
        SegmentConfig(segment_size=0)
    with pytest.raises(ValueError):
        SegmentConfig(heartbeat_interval=1.0, member_timeout=0.5)
    with pytest.raises(ValueError):
        SegmentConfig(beacon_interval=1.0, leader_timeout=0.5)
