"""Tests for the SAFE service level (delivery after cluster-wide receipt)."""

import pytest

from helpers import build_gcs_cluster, settle_gcs


def connect_all(cluster, group="g"):
    clients, logs = [], []
    for daemon in cluster.daemons:
        client = daemon.connect("app")
        log = []
        client.on_message = lambda m, log=log: log.append(m.payload)
        client.join(group)
        clients.append(client)
        logs.append(log)
    cluster.sim.run_for(0.5)
    return clients, logs


def test_safe_message_delivered_everywhere_on_healthy_lan():
    cluster = settle_gcs(build_gcs_cluster(3))
    clients, logs = connect_all(cluster)
    clients[0].multicast("g", "safe-payload", service="safe")
    cluster.sim.run_for(1.0)
    assert all(log == ["safe-payload"] for log in logs)


def test_safe_delivery_waits_for_deaf_member():
    cluster = settle_gcs(build_gcs_cluster(3))
    clients, logs = connect_all(cluster)
    # node2 goes deaf (but keeps sending, so no suspicion).
    deaf_socket = cluster.daemons[2]._socket
    real_handler = deaf_socket.handler
    deaf_socket.handler = lambda *args: None
    clients[0].multicast("g", "held", service="safe")
    cluster.sim.run_for(0.3)
    # Nobody may deliver: node2 has not received the message.
    assert all(log == [] for log in logs)
    # Hearing restored: NACK recovery + aru exchange release it.
    deaf_socket.handler = real_handler
    cluster.sim.run_for(cluster.config.heartbeat_timeout * 4 + 1.0)
    assert all(log == ["held"] for log in logs)


def test_agreed_message_behind_safe_also_waits():
    cluster = settle_gcs(build_gcs_cluster(3))
    clients, logs = connect_all(cluster)
    deaf_socket = cluster.daemons[2]._socket
    real_handler = deaf_socket.handler
    deaf_socket.handler = lambda *args: None
    clients[0].multicast("g", "safe-first", service="safe")
    clients[1].multicast("g", "agreed-second")
    cluster.sim.run_for(0.3)
    # Total order: the agreed message is behind the stalled safe one.
    assert logs[0] == [] and logs[1] == []
    deaf_socket.handler = real_handler
    cluster.sim.run_for(cluster.config.heartbeat_timeout * 4 + 1.0)
    assert all(log == ["safe-first", "agreed-second"] for log in logs)


def test_agreed_messages_before_safe_unaffected():
    cluster = settle_gcs(build_gcs_cluster(3))
    clients, logs = connect_all(cluster)
    clients[0].multicast("g", "plain")
    cluster.sim.run_for(0.2)
    assert all(log == ["plain"] for log in logs)


def test_safe_interleaved_with_agreed_keeps_total_order():
    cluster = settle_gcs(build_gcs_cluster(4))
    clients, logs = connect_all(cluster)
    for index in range(9):
        service = "safe" if index % 3 == 0 else "agreed"
        clients[index % 4].multicast("g", index, service=service)
    cluster.sim.run_for(2.0)
    assert all(log == logs[0] for log in logs)
    assert sorted(logs[0]) == list(range(9))


def test_safe_delivery_across_view_change():
    """A safe message in flight when a member dies is still delivered
    consistently to the survivors (via the recovery union)."""
    cluster = settle_gcs(build_gcs_cluster(3))
    clients, logs = connect_all(cluster)
    deaf_socket = cluster.daemons[2]._socket
    deaf_socket.handler = lambda *args: None
    clients[0].multicast("g", "inflight", service="safe")
    cluster.sim.run_for(0.2)
    assert logs[0] == []
    cluster.faults.crash_host(cluster.hosts[2])
    settle_gcs(cluster)
    cluster.sim.run_for(1.0)
    # The survivors advanced together: both deliver it (or neither).
    assert logs[0] == logs[1]
    assert logs[0] == ["inflight"]


def test_unknown_service_level_rejected():
    cluster = settle_gcs(build_gcs_cluster(1))
    client = cluster.daemons[0].connect("app")
    client.join("g")
    cluster.sim.run_for(0.2)
    with pytest.raises(ValueError):
        client.multicast("g", "x", service="psychic")


def test_singleton_view_safe_is_immediate():
    cluster = settle_gcs(build_gcs_cluster(1))
    client = cluster.daemons[0].connect("app")
    log = []
    client.on_message = lambda m: log.append(m.payload)
    client.join("g")
    cluster.sim.run_for(0.2)
    client.multicast("g", "solo", service="safe")
    cluster.sim.run_for(0.2)
    assert log == ["solo"]
