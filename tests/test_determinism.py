"""Whole-stack determinism: same seed, same history — always.

Every protocol decision, fault timing, and measurement in this
repository must be a pure function of the seed; otherwise regressions
hide behind run-to-run noise. These tests re-run complete scenarios
and compare fine-grained histories.
"""

from helpers import build_wack_cluster

from repro.apps.webcluster import WebClusterScenario
from repro.gcs.config import SpreadConfig
from repro.sim.rng import RngRegistry


def run_scenario(seed):
    scenario = WebClusterScenario(
        seed=seed,
        n_servers=4,
        n_vips=6,
        spread_config=SpreadConfig.tuned(),
        wackamole_overrides={"maturity_timeout": 1.0, "balance_timeout": 2.0},
        trace_enabled=True,
    )
    scenario.start()
    assert scenario.run_until_stable(timeout=60.0)
    probe = scenario.start_probe()
    scenario.sim.run_for(1.0)
    fault_time = scenario.sim.now
    scenario.kill_owner_of(scenario.vips[0], mode="nic_down")
    scenario.sim.run_for(6.0)
    responses = [(round(r.time, 9), r.seq, r.server) for r in probe.responses]
    installs = [
        (round(record.time, 9), record.source)
        for record in scenario.sim.trace.select(category="membership", event="install")
    ]
    coverage = {vip: owners for vip, owners in scenario.coverage().items()}
    interruption = probe.failover_interruption(after=fault_time)
    return responses, installs, coverage, interruption


def test_identical_seed_reproduces_identical_history():
    first = run_scenario(seed=321)
    second = run_scenario(seed=321)
    assert first == second


def test_different_seeds_diverge():
    first = run_scenario(seed=321)
    second = run_scenario(seed=322)
    # Timings (heartbeat phases, fault offsets) must differ somewhere.
    assert first != second


def test_trace_event_counts_reproducible():
    def counts(seed):
        scenario = WebClusterScenario(
            seed=seed,
            n_servers=3,
            n_vips=4,
            spread_config=SpreadConfig.tuned(),
            wackamole_overrides={"maturity_timeout": 1.0},
        )
        scenario.start()
        assert scenario.run_until_stable(timeout=60.0)
        scenario.sim.run_for(5.0)
        return (
            scenario.sim.trace.count("membership"),
            scenario.sim.trace.count("wackamole"),
            scenario.sim.scheduler.events_fired,
        )

    assert counts(99) == counts(99)


def run_faulted_cluster(seed):
    """A cluster under a scripted FaultInjector schedule; full trace out."""
    cluster = build_wack_cluster(4, seed=seed, n_vips=6)
    nic = cluster.hosts[0].nics[0]
    cluster.faults.at(3.0, cluster.faults.nic_down, nic)
    cluster.faults.at(6.0, cluster.faults.nic_up, nic)
    cluster.faults.at(8.0, cluster.faults.partition, cluster.lan, [cluster.hosts[:2]])
    cluster.faults.after(11.0, cluster.faults.heal, cluster.lan)
    cluster.faults.at(14.0, cluster.faults.crash_host, cluster.hosts[3])
    cluster.sim.run_for(20.0)
    return [repr(record) for record in cluster.sim.trace.records]


def test_scheduled_faults_reproduce_identical_trace_streams():
    """Same seed, same *complete* trace stream — faults included.

    Stronger than the event-count check: every record (time, category,
    source, event, details) must match, so fault timing and every
    protocol reaction to it are pure functions of the seed.
    """
    first = run_faulted_cluster(seed=555)
    second = run_faulted_cluster(seed=555)
    assert len(first) > 100
    assert first == second


def test_scheduled_faults_diverge_across_seeds():
    assert run_faulted_cluster(seed=555) != run_faulted_cluster(seed=556)


def test_fork_registries_independent_of_parent_consumption_order():
    """fork() derives from the parent's *seed*, never its stream state.

    A campaign can therefore fork per-trial registries at any point —
    before or after the parent has drawn randomness, in any order —
    and every trial still sees the same world.
    """
    busy = RngRegistry(seed=7)
    busy.stream("lan").random()
    busy.stream("faults").random()
    busy.stream("lan").random()
    fresh = RngRegistry(seed=7)

    fork_from_busy = busy.fork("trial/0")
    fork_from_fresh = fresh.fork("trial/0")
    assert fork_from_busy.seed == fork_from_fresh.seed
    draws_busy = [fork_from_busy.stream("s").random() for _ in range(8)]
    draws_fresh = [fork_from_fresh.stream("s").random() for _ in range(8)]
    assert draws_busy == draws_fresh

    # Sibling forks are mutually independent too: consuming one does
    # not perturb the other.
    sibling = fresh.fork("trial/1")
    reference = sibling.stream("s").random()
    again = RngRegistry(seed=7).fork("trial/1")
    RngRegistry(seed=7).fork("trial/0").stream("s").random()
    assert again.stream("s").random() == reference
