"""Whole-stack determinism: same seed, same history — always.

Every protocol decision, fault timing, and measurement in this
repository must be a pure function of the seed; otherwise regressions
hide behind run-to-run noise. These tests re-run complete scenarios
and compare fine-grained histories.
"""

from repro.apps.webcluster import WebClusterScenario
from repro.gcs.config import SpreadConfig


def run_scenario(seed):
    scenario = WebClusterScenario(
        seed=seed,
        n_servers=4,
        n_vips=6,
        spread_config=SpreadConfig.tuned(),
        wackamole_overrides={"maturity_timeout": 1.0, "balance_timeout": 2.0},
        trace_enabled=True,
    )
    scenario.start()
    assert scenario.run_until_stable(timeout=60.0)
    probe = scenario.start_probe()
    scenario.sim.run_for(1.0)
    fault_time = scenario.sim.now
    scenario.kill_owner_of(scenario.vips[0], mode="nic_down")
    scenario.sim.run_for(6.0)
    responses = [(round(r.time, 9), r.seq, r.server) for r in probe.responses]
    installs = [
        (round(record.time, 9), record.source)
        for record in scenario.sim.trace.select(category="membership", event="install")
    ]
    coverage = {vip: owners for vip, owners in scenario.coverage().items()}
    interruption = probe.failover_interruption(after=fault_time)
    return responses, installs, coverage, interruption


def test_identical_seed_reproduces_identical_history():
    first = run_scenario(seed=321)
    second = run_scenario(seed=321)
    assert first == second


def test_different_seeds_diverge():
    first = run_scenario(seed=321)
    second = run_scenario(seed=322)
    # Timings (heartbeat phases, fault offsets) must differ somewhere.
    assert first != second


def test_trace_event_counts_reproducible():
    def counts(seed):
        scenario = WebClusterScenario(
            seed=seed,
            n_servers=3,
            n_vips=4,
            spread_config=SpreadConfig.tuned(),
            wackamole_overrides={"maturity_timeout": 1.0},
        )
        scenario.start()
        assert scenario.run_until_stable(timeout=60.0)
        scenario.sim.run_for(5.0)
        return (
            scenario.sim.trace.count("membership"),
            scenario.sim.trace.count("wackamole"),
            scenario.sim.scheduler.events_fired,
        )

    assert counts(99) == counts(99)
