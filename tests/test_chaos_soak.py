"""Chaos soak: ten simulated minutes of continuous random faulting.

A long-horizon confidence test beyond the bounded Hypothesis
schedules: faults fire on a random clock for the whole window
(interface flaps, crashes with reboots-and-restarts, partitions and
heals), probes run against the pool throughout, and the invariants are
sampled continuously. At the end the cluster must quiesce back to full
coverage with sane availability.
"""

from helpers import fast_spread_config, settle_wack

from repro.apps.workload import ProbeClient, UdpEchoServer
from repro.core.audit import CoverageAuditor
from repro.core.config import WackamoleConfig
from repro.core.daemon import WackamoleDaemon
from repro.core.state import RUN
from repro.gcs.daemon import SpreadDaemon
from repro.net.fault import FaultInjector
from repro.net.host import Host
from repro.net.lan import Lan
from repro.sim.simulation import Simulation

SOAK_SECONDS = 600.0
N_SERVERS = 5
N_VIPS = 8


class ChaosMonkey:
    """Random fault driver with guaranteed eventual healing."""

    def __init__(self, sim, lan, hosts, wacks, config):
        self.sim = sim
        self.lan = lan
        self.hosts = hosts
        self.wacks = wacks
        self.config = config
        self.faults = FaultInjector(sim)
        self.rng = sim.rng.stream("chaos")
        self.actions = 0

    def start(self):
        self._schedule_next()

    def _schedule_next(self):
        self.sim.after(self.rng.uniform(5.0, 20.0), self._act)

    def _act(self):
        if self.sim.now > SOAK_SECONDS - 60.0:
            # Quiet period at the end: heal everything, stop acting.
            self.faults.heal(self.lan)
            for host in self.hosts:
                if host.alive:
                    for nic in host.nics:
                        self.faults.nic_up(nic)
            return
        self.actions += 1
        live = [i for i, w in enumerate(self.wacks) if w.alive]
        choice = self.rng.random()
        if choice < 0.3 and len(live) > 2:
            index = self.rng.choice(live)
            self.faults.crash_host(self.hosts[index])
            self.sim.after(self.rng.uniform(20.0, 40.0), self._revive, index)
        elif choice < 0.6:
            index = self.rng.choice(range(len(self.hosts)))
            nic = self.hosts[index].nics[0]
            if nic.up:
                self.faults.nic_down(nic)
                self.sim.after(self.rng.uniform(10.0, 30.0), self.faults.nic_up, nic)
        elif choice < 0.8:
            split = self.rng.randint(1, len(self.hosts) - 1)
            # Split off a server group; the probing client stays
            # connected to the remainder (its component keeps serving).
            self.faults.partition(self.lan, [self.hosts[:split]])
            self.sim.after(self.rng.uniform(10.0, 30.0), self.faults.heal, self.lan)
        else:
            self.faults.heal(self.lan)
        self._schedule_next()

    def _revive(self, index):
        host = self.hosts[index]
        if host.alive:
            return
        self.faults.recover_host(host)
        UdpEchoServer(host)
        spread = SpreadDaemon(
            host,
            self.lan,
            self.wacks[index].spread.config,
            daemon_id="{}-r{}".format(host.name, self.actions),
        )
        wack = WackamoleDaemon(host, spread, self.wacks[index].config)
        spread.start()
        wack.start()
        self.wacks[index] = wack


import pytest

pytestmark = pytest.mark.soak


@pytest.mark.parametrize("representative", [False, True],
                         ids=["distributed", "representative"])
def test_ten_minute_chaos_soak(representative):
    sim = Simulation(seed=4242, trace_enabled=False)
    lan = Lan(sim, "lan", "10.0.0.0/24")
    spread_config = fast_spread_config(
        fault_detection_timeout=1.0, heartbeat_timeout=0.4, discovery_timeout=1.4
    )
    vips = ["10.0.0.{}".format(100 + i) for i in range(N_VIPS)]
    config = WackamoleConfig.for_vips(
        vips,
        maturity_timeout=1.0,
        balance_timeout=3.0,
        representative_allocation=representative,
    )
    hosts, wacks = [], []
    for index in range(N_SERVERS):
        host = Host(sim, "s{}".format(index))
        host.add_nic(lan, "10.0.0.{}".format(10 + index))
        UdpEchoServer(host)
        spread = SpreadDaemon(host, lan, spread_config)
        wack = WackamoleDaemon(host, spread, config)
        sim.after(0.05 * index, spread.start)
        sim.after(0.05 * index + 0.01, wack.start)
        hosts.append(host)
        wacks.append(wack)
    client = Host(sim, "client")
    client.add_nic(lan, "10.0.0.200")
    probe = ProbeClient(client, vips[0], interval=0.05)
    probe.start()

    monkey = ChaosMonkey(sim, lan, hosts, wacks, config)
    sim.after(10.0, monkey.start)

    auditor = CoverageAuditor(wacks)
    view_violations = 0
    while sim.now < SOAK_SECONDS:
        sim.run_for(2.0)
        auditor.daemons = list(monkey.wacks)
        # The agreed-membership invariant must hold at every sample.
        violations = auditor.check_by_view()
        assert violations == [], "at t={:.1f}: {}".format(sim.now, violations)

    # Quiesced: physical coverage and liveness restored.
    class FinalCluster:
        pass

    final = FinalCluster()
    final.sim = sim
    final.wacks = list(monkey.wacks)
    final.auditor = auditor
    assert settle_wack(final, timeout=60.0)
    live = [w for w in monkey.wacks if w.alive]
    assert len(live) >= 3
    assert all(w.machine.state == RUN and w.mature for w in live)
    assert auditor.check() == []
    assert monkey.actions >= 10
    # The probe kept seeing service for the overwhelming share of the run.
    assert probe.response_rate() > 0.80
