"""Smoke tests: every shipped example must run cleanly end to end.

Examples are documentation that executes; these tests keep them from
rotting as the library evolves. Each main() runs in-process with its
stdout captured and sanity-checked for the claims it narrates.
"""

import importlib
import sys

import pytest

EXAMPLES_DIR = "examples"


def run_example(name, capsys):
    sys.path.insert(0, EXAMPLES_DIR)
    try:
        module = importlib.import_module(name)
        module = importlib.reload(module)
        module.main()
    finally:
        sys.path.remove(EXAMPLES_DIR)
    return capsys.readouterr().out


def test_quickstart(capsys):
    output = run_example("quickstart", capsys)
    assert "after boot" in output
    assert "coverage audit: OK" in output


def test_web_cluster_failover(capsys):
    output = run_example("web_cluster_failover", capsys)
    assert "Default Spread" in output
    assert "Fine-tuned Spread" in output
    assert "paper window" in output


def test_partition_healing(capsys):
    output = run_example("partition_healing", capsys)
    assert "BOTH components cover the full set" in output
    assert "exactly-once coverage restored" in output


def test_baseline_comparison(capsys):
    output = run_example("baseline_comparison", capsys)
    for protocol in ("wackamole-tuned", "vrrp", "hsrp", "fake"):
        assert protocol in output


@pytest.mark.slow
def test_router_failover(capsys):
    output = run_example("router_failover", capsys)
    assert "static" in output
    assert "naive" in output
    assert "advertise_all" in output


def test_admin_console(capsys):
    output = run_example("admin_console", capsys)
    assert "wackatrl>" in output
    assert "state=RUN" in output
    assert "shutting down" in output


def test_failover_timeline(capsys):
    output = run_example("failover_timeline", capsys)
    assert "coverage dipped" in output
    assert "covered" in output


def test_packet_trace(capsys):
    output = run_example("packet_trace", capsys)
    assert "gratuitous-reply" in output
    assert "interruption seen by the client" in output
