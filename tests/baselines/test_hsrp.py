"""Unit tests for the HSRP baseline."""

from repro.baselines.hsrp import ACTIVE, LISTEN, STANDBY, HsrpRouter
from repro.net.fault import FaultInjector
from repro.net.host import Host
from repro.net.lan import Lan
from repro.sim.simulation import Simulation

VIP = "10.0.0.100"


def build(priorities=(110, 100, 90)):
    sim = Simulation(seed=2)
    lan = Lan(sim, "lan", "10.0.0.0/24")
    hosts, routers = [], []
    for index, priority in enumerate(priorities):
        host = Host(sim, "r{}".format(index + 1))
        host.add_nic(lan, "10.0.0.{}".format(1 + index))
        router = HsrpRouter(host, lan, VIP, priority)
        router.start()
        hosts.append(host)
        routers.append(router)
    return sim, lan, hosts, routers


def test_election_produces_one_active_one_standby():
    sim, lan, hosts, routers = build()
    sim.run_for(30.0)
    states = [r.state for r in routers]
    assert states.count(ACTIVE) == 1
    assert states.count(STANDBY) == 1
    assert routers[0].state == ACTIVE
    assert routers[1].state == STANDBY
    assert routers[2].state == LISTEN


def test_active_binds_vip():
    sim, lan, hosts, routers = build()
    sim.run_for(30.0)
    assert hosts[0].owns_ip(VIP)
    assert not hosts[1].owns_ip(VIP)


def test_standby_takes_over_within_hold_time():
    sim, lan, hosts, routers = build()
    sim.run_for(30.0)
    fault_time = sim.now
    FaultInjector(sim).crash_host(hosts[0])
    sim.run_for(15.0)
    assert routers[1].state == ACTIVE
    assert hosts[1].owns_ip(VIP)
    takeover = routers[1].transitions[-1][0]
    assert takeover - fault_time <= routers[1].hold_time + 0.1


def test_listener_promoted_to_standby_after_takeover():
    sim, lan, hosts, routers = build()
    sim.run_for(30.0)
    FaultInjector(sim).crash_host(hosts[0])
    sim.run_for(25.0)
    assert routers[2].state == STANDBY


def test_only_one_active_at_any_time():
    sim, lan, hosts, routers = build()
    for _ in range(60):
        sim.run_for(1.0)
        active = [r for r in routers if r.alive and r.state == ACTIVE]
        assert len(active) <= 1


def test_higher_priority_active_wins_collision():
    sim, lan, hosts, routers = build()
    sim.run_for(30.0)
    # Force a lower-priority router into ACTIVE to simulate a collision.
    routers[2]._become_active()
    sim.run_for(10.0)
    actives = [r for r in routers if r.state == ACTIVE]
    assert actives == [routers[0]]
    assert not hosts[2].owns_ip(VIP)


def test_default_timers_match_paper():
    sim, lan, hosts, routers = build()
    assert routers[0].hello_interval == 3.0
    assert routers[0].hold_time == 10.0
