"""Unit tests for the Linux-Fake-style probe/takeover baseline."""

from repro.baselines.fake import FakeFailover
from repro.net.fault import FaultInjector
from repro.net.host import Host
from repro.net.lan import Lan
from repro.sim.simulation import Simulation

VIP = "10.0.0.100"


def build(**kwargs):
    sim = Simulation(seed=3)
    lan = Lan(sim, "lan", "10.0.0.0/24")
    main = Host(sim, "main")
    main.add_nic(lan, "10.0.0.1")
    main.nics[0].bind_ip(VIP)
    FakeFailover.serve_probes(main)
    backup = Host(sim, "backup")
    backup.add_nic(lan, "10.0.0.2")
    failover = FakeFailover(backup, lan, VIP, probe_target="10.0.0.1", **kwargs)
    failover.start()
    return sim, lan, main, backup, failover


def test_no_takeover_while_main_healthy():
    sim, lan, main, backup, failover = build()
    sim.run_for(30.0)
    assert not failover.taken_over
    assert not backup.owns_ip(VIP)
    assert failover.consecutive_failures == 0


def test_takeover_after_threshold_failures():
    sim, lan, main, backup, failover = build()
    sim.run_for(5.0)
    fault_time = sim.now
    FaultInjector(sim).crash_host(main)
    sim.run_for(10.0)
    assert failover.taken_over
    assert backup.owns_ip(VIP)
    record = sim.trace.last(category="fake", event="takeover")
    detection = record.time - fault_time
    expected_max = (
        failover.failure_threshold * failover.probe_interval + failover.probe_timeout + 0.1
    )
    assert detection <= expected_max


def test_takeover_sends_gratuitous_arp():
    sim, lan, main, backup, failover = build()
    client = Host(sim, "client")
    client.add_nic(lan, "10.0.0.9")
    client.open_udp(50, lambda p, s, d: None)
    client.send_udp("warm", VIP, 1490, src_port=50)
    sim.run_for(5.0)
    FaultInjector(sim).crash_host(main)
    sim.run_for(10.0)
    assert client.arp.cache.lookup(VIP) == backup.nics[0].mac


def test_single_spurious_timeout_does_not_trigger():
    sim, lan, main, backup, failover = build(failure_threshold=3)
    sim.run_for(5.0)
    failover._on_probe_timeout()
    sim.run_for(5.0)
    assert not failover.taken_over
    assert failover.consecutive_failures == 0  # reset by later replies


def test_yield_on_return_releases_vip():
    sim, lan, main, backup, failover = build(yield_on_return=True)
    sim.run_for(2.0)
    FaultInjector(sim).crash_host(main)
    sim.run_for(10.0)
    assert failover.taken_over
    FaultInjector(sim).recover_host(main)
    FakeFailover.serve_probes(main)
    sim.run_for(10.0)
    assert not failover.taken_over
    assert not backup.owns_ip(VIP)


def test_no_yield_by_default():
    sim, lan, main, backup, failover = build()
    sim.run_for(2.0)
    FaultInjector(sim).crash_host(main)
    sim.run_for(10.0)
    FaultInjector(sim).recover_host(main)
    FakeFailover.serve_probes(main)
    sim.run_for(10.0)
    assert failover.taken_over


def test_probe_counter_advances():
    sim, lan, main, backup, failover = build()
    sim.run_for(5.0)
    assert failover.probes_sent >= 4
