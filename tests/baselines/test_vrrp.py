"""Unit tests for the VRRP baseline."""

import pytest

from repro.baselines.vrrp import BACKUP, MASTER, VrrpRouter
from repro.net.fault import FaultInjector
from repro.net.host import Host
from repro.net.lan import Lan
from repro.sim.simulation import Simulation

VIP = "10.0.0.100"


def build(priorities=(110, 100, 90)):
    sim = Simulation(seed=1)
    lan = Lan(sim, "lan", "10.0.0.0/24")
    hosts, routers = [], []
    for index, priority in enumerate(priorities):
        host = Host(sim, "r{}".format(index + 1))
        host.add_nic(lan, "10.0.0.{}".format(1 + index))
        router = VrrpRouter(host, lan, VIP, priority)
        router.start()
        hosts.append(host)
        routers.append(router)
    return sim, lan, hosts, routers


def master_of(routers):
    masters = [r for r in routers if r.state == MASTER and r.alive]
    assert len(masters) == 1, masters
    return masters[0]


def test_highest_priority_becomes_master():
    sim, lan, hosts, routers = build()
    sim.run_for(10.0)
    assert master_of(routers) is routers[0]
    assert hosts[0].owns_ip(VIP)


def test_backups_do_not_bind_vip():
    sim, lan, hosts, routers = build()
    sim.run_for(10.0)
    assert not hosts[1].owns_ip(VIP)
    assert not hosts[2].owns_ip(VIP)


def test_failover_within_master_down_interval():
    sim, lan, hosts, routers = build()
    sim.run_for(10.0)
    fault_time = sim.now
    FaultInjector(sim).crash_host(hosts[0])
    sim.run_for(10.0)
    new_master = master_of(routers[1:])
    assert new_master is routers[1]
    takeover = new_master.transitions[-1][0]
    assert takeover - fault_time <= routers[1].master_down_interval + 0.1


def test_master_down_interval_formula():
    sim, lan, hosts, routers = build()
    router = routers[1]  # priority 100
    assert router.skew_time == pytest.approx((256 - 100) / 256.0)
    assert router.master_down_interval == pytest.approx(3.0 + router.skew_time)


def test_graceful_shutdown_hands_off_in_skew_time():
    sim, lan, hosts, routers = build()
    sim.run_for(10.0)
    handoff_start = sim.now
    routers[0].shutdown()
    sim.run_for(5.0)
    new_master = master_of(routers[1:])
    takeover = new_master.transitions[-1][0]
    assert takeover - handoff_start <= routers[1].skew_time + 0.1


def test_preemption_on_recovery():
    sim, lan, hosts, routers = build()
    sim.run_for(10.0)
    FaultInjector(sim).crash_host(hosts[0])
    sim.run_for(10.0)
    # The old master returns with higher priority and preempts.
    FaultInjector(sim).recover_host(hosts[0])
    revived = VrrpRouter(hosts[0], lan, VIP, 110)
    revived.start()
    sim.run_for(10.0)
    masters = [r for r in routers[1:] + [revived] if r.state == MASTER and r.alive]
    assert masters == [revived]


def test_vip_moves_with_mastership():
    sim, lan, hosts, routers = build()
    sim.run_for(10.0)
    FaultInjector(sim).crash_host(hosts[0])
    sim.run_for(10.0)
    assert hosts[1].owns_ip(VIP)
    assert not hosts[2].owns_ip(VIP)


def test_priority_range_validated():
    sim = Simulation(seed=0)
    lan = Lan(sim, "lan", "10.0.0.0/24")
    host = Host(sim, "r")
    host.add_nic(lan, "10.0.0.1")
    with pytest.raises(ValueError):
        VrrpRouter(host, lan, VIP, 0)
    with pytest.raises(ValueError):
        VrrpRouter(host, lan, VIP, 255)


def test_single_router_claims_vip_alone():
    sim, lan, hosts, routers = build(priorities=(100,))
    sim.run_for(10.0)
    assert routers[0].state == MASTER
    assert hosts[0].owns_ip(VIP)
