"""Tests for the pool-wide availability experiment (reduced sizes)."""

from repro.experiments.availability import AvailabilityExperiment
from repro.gcs.config import SpreadConfig


def small(**kwargs):
    defaults = dict(
        window=30.0,
        n_servers=3,
        n_vips=4,
        faults=1,
        spread_config=SpreadConfig.tuned(),
        probe_interval=0.02,
    )
    defaults.update(kwargs)
    return AvailabilityExperiment(**defaults)


def test_no_faults_means_full_availability():
    results = small(faults=0).run(trials=1)
    assert results["pool_availability"] > 0.999
    assert results["worst_vip_availability"] > 0.999


def test_one_fault_costs_roughly_the_interruption_window():
    experiment = small()
    results = experiment.run(trials=1)
    # The victim's VIPs lose ~2.2s out of 30; the pool average less.
    assert 0.80 < results["worst_vip_availability"] < 1.0
    assert results["pool_availability"] > results["worst_vip_availability"]


def test_tuned_beats_default_availability():
    tuned = small().run(trials=1)
    default = small(spread_config=SpreadConfig.default(), window=40.0).run(trials=1)
    assert tuned["pool_availability"] > default["pool_availability"]


def test_format_renders_percentages():
    experiment = small(faults=0)
    text = experiment.format(trials=1)
    assert "Pool-wide availability" in text
    assert "%" in text


def test_multiple_probes_share_the_client_host():
    experiment = small(faults=0)
    pool, per_vip, probes = experiment.run_trial(seed=8800)
    ports = {probe.client_port for probe in probes}
    assert len(ports) == len(probes)
    assert len(per_vip) == 4
