"""Tests for the cluster coverage timeline sampler."""

from helpers import build_wack_cluster, settle_wack

from repro.experiments.timeline import ClusterTimeline


def test_samples_accumulate_on_interval():
    cluster = build_wack_cluster(2, n_vips=3)
    assert settle_wack(cluster)
    timeline = ClusterTimeline(cluster.sim, cluster.wacks, interval=0.5).start()
    cluster.sim.run_for(2.6)
    timeline.stop()
    assert 5 <= len(timeline.samples) <= 7
    assert all(s.covered == 3 for s in timeline.samples)


def test_coverage_dip_detected_around_fault():
    cluster = build_wack_cluster(3, n_vips=4)
    assert settle_wack(cluster)
    timeline = ClusterTimeline(cluster.sim, cluster.wacks, interval=0.05).start()
    cluster.sim.run_for(0.5)
    fault_time = cluster.sim.now
    cluster.faults.crash_host(cluster.hosts[0])
    assert settle_wack(cluster)
    cluster.sim.run_for(0.5)
    timeline.stop()
    dip = timeline.coverage_dip()
    assert dip is not None
    start, end, depth = dip
    assert start >= fault_time
    assert 1 <= depth <= 4
    # Coverage recovered by the end of the observation.
    assert timeline.samples[-1].covered == 4


def test_no_dip_on_quiet_cluster():
    cluster = build_wack_cluster(2, n_vips=2)
    assert settle_wack(cluster)
    timeline = ClusterTimeline(cluster.sim, cluster.wacks, interval=0.1).start()
    cluster.sim.run_for(1.0)
    timeline.stop()
    assert timeline.coverage_dip() is None


def test_duplicates_observed_during_merge():
    cluster = build_wack_cluster(4, n_vips=4)
    assert settle_wack(cluster)
    cluster.faults.partition(cluster.lan, [cluster.hosts[:2], cluster.hosts[2:]])
    assert settle_wack(cluster)
    timeline = ClusterTimeline(cluster.sim, cluster.wacks, interval=0.01).start()
    cluster.faults.heal(cluster.lan)
    assert settle_wack(cluster)
    timeline.stop()
    # While the two healed components both still covered everything,
    # the sampler saw duplicated slots.
    assert any(s.duplicated > 0 for s in timeline.samples)
    assert timeline.samples[-1].duplicated == 0


def test_daemon_state_counts():
    cluster = build_wack_cluster(2, n_vips=2)
    assert settle_wack(cluster)
    timeline = ClusterTimeline(cluster.sim, cluster.wacks, interval=0.1).start()
    cluster.sim.run_for(0.5)
    timeline.stop()
    last = timeline.samples[-1]
    assert last.run_daemons == 2
    assert last.gather_daemons == 0
    assert last.live_daemons == 2


def test_series_and_render():
    cluster = build_wack_cluster(2, n_vips=2)
    assert settle_wack(cluster)
    timeline = ClusterTimeline(cluster.sim, cluster.wacks, interval=0.2).start()
    cluster.sim.run_for(1.0)
    timeline.stop()
    series = timeline.series("covered")
    assert all(value == 2 for _, value in series)
    chart = timeline.render()
    assert "count" in chart
    assert "covered" in chart
