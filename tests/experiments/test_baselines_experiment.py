"""Tests for the §7 protocol comparison (reduced sizes)."""

from repro.experiments.baselines_experiment import BaselineComparison


def test_wackamole_tuned_beats_default_and_hsrp():
    comparison = BaselineComparison(trials=1)
    results = comparison.run()
    tuned = results["wackamole-tuned"]["mean"]
    default = results["wackamole-default"]["mean"]
    hsrp = results["hsrp"]["mean"]
    vrrp = results["vrrp"]["mean"]
    assert 0 < tuned < 3.5
    assert 9.5 < default < 13.5
    assert 6.5 < hsrp <= 10.5  # hold time 10s minus hello phase
    assert 2.5 < vrrp < 4.5  # master-down interval ~3.4s
    assert tuned < vrrp < default


def test_fake_detection_bounded_by_probe_budget():
    comparison = BaselineComparison(trials=1)
    samples = comparison.run_protocol("fake")
    # 3 failed probes at 1s plus timeout plus ARP: a few seconds.
    assert all(1.5 <= s <= 5.0 for s in samples)


def test_unknown_protocol_rejected():
    import pytest

    with pytest.raises(ValueError):
        BaselineComparison(trials=1)._one_trial("carrier-pigeon", 1)


def test_format_lists_all_protocols():
    comparison = BaselineComparison(trials=1)
    text = comparison.format()
    for protocol in comparison.PROTOCOLS:
        assert protocol in text
