"""Unit tests for the ASCII chart renderer."""

from repro.experiments.plotting import render_series


def test_single_series_renders_markers_and_axes():
    chart = render_series({"s": [(0, 0.0), (5, 10.0)]}, width=30, height=8)
    assert "*" in chart
    assert "|" in chart
    assert "+" in chart
    assert "s" in chart


def test_two_series_use_distinct_markers():
    chart = render_series(
        {"a": [(0, 1.0), (10, 1.0)], "b": [(0, 5.0), (10, 5.0)]},
        width=30,
        height=8,
    )
    assert "*" in chart and "o" in chart
    assert "* a" in chart and "o b" in chart


def test_labels_included():
    chart = render_series(
        {"a": [(0, 1.0), (1, 2.0)]}, y_label="seconds", x_label="size"
    )
    assert chart.splitlines()[0] == "seconds"
    assert "size" in chart


def test_empty_series_handled():
    assert render_series({}) == "(no data)"


def test_constant_series_does_not_divide_by_zero():
    chart = render_series({"flat": [(1, 3.0), (2, 3.0), (3, 3.0)]})
    assert "*" in chart


def test_single_point():
    chart = render_series({"dot": [(5, 5.0)]})
    assert "*" in chart


def test_higher_values_render_on_higher_rows():
    chart = render_series(
        {"low": [(0, 1.0), (10, 1.0)], "high": [(0, 9.0), (10, 9.0)]},
        width=20,
        height=10,
    )
    lines = [line for line in chart.splitlines() if "|" in line]
    high_row = next(i for i, line in enumerate(lines) if "o" in line)
    low_row = next(i for i, line in enumerate(lines) if "*" in line)
    assert high_row < low_row


def test_segments_drawn_between_points():
    chart = render_series({"s": [(0, 0.0), (10, 10.0)]}, width=40, height=12)
    assert "." in chart
