"""Tests for the Figure 5 reproduction (reduced size for speed)."""

from repro.experiments.figure5 import Figure5Experiment


def small_experiment():
    return Figure5Experiment(cluster_sizes=(2, 4), trials=2)


def test_series_shapes_match_the_paper():
    experiment = small_experiment()
    series = experiment.run()
    for size in experiment.cluster_sizes:
        default = series["Default Spread"][size]["mean"]
        tuned = series["Fine-tuned Spread"][size]["mean"]
        # Default lands in ~10-13s, tuned in ~2-3s; tuned wins by ~4-6x.
        assert 9.5 <= default <= 13.0
        assert 1.9 <= tuned <= 3.0
        assert default / tuned > 3.0


def test_roughly_flat_across_cluster_sizes():
    experiment = small_experiment()
    series = experiment.run()
    for config_name in experiment.configs:
        means = [series[config_name][s]["mean"] for s in experiment.cluster_sizes]
        assert max(means) - min(means) < 2.5


def test_format_contains_figure_title_and_sizes():
    experiment = small_experiment()
    text = experiment.format()
    assert "Figure 5" in text
    assert "Cluster Size" in text
    for size in experiment.cluster_sizes:
        assert str(size) in text


def test_run_point_returns_requested_trials():
    experiment = small_experiment()
    from repro.gcs.config import SpreadConfig

    samples = experiment.run_point(SpreadConfig.tuned(), 2)
    assert len(samples) == 2
    assert all(s > 0 for s in samples)


def test_format_chart_renders_both_series():
    experiment = Figure5Experiment(cluster_sizes=(2, 4), trials=1)
    series = experiment.run()
    chart = experiment.format_chart(series)
    assert "Default Spread" in chart
    assert "Fine-tuned Spread" in chart
    assert "Cluster Size" in chart
