"""Tests for the Table 1 reproduction."""

from repro.experiments.table1 import Table1Experiment


def test_parameter_rows_match_the_paper_literally():
    rows = Table1Experiment().parameter_rows()
    assert rows == [
        ["Fault-detection timeout", 5.0, 1.0],
        ["Distributed Heartbeat timeout", 2.0, 0.4],
        ["Discovery timeout", 7.0, 1.4],
    ]


def test_measured_windows_within_derived_ranges():
    experiment = Table1Experiment(trials=2, cluster_size=3)
    results = experiment.run()
    for name, measured in results["measured"].items():
        lo, hi = measured["derived_window"]
        assert lo <= measured["min"], name
        assert measured["max"] <= hi + 0.5, name


def test_format_renders_both_tables():
    experiment = Table1Experiment(trials=1, cluster_size=2)
    text = experiment.format()
    assert "Table 1. Spread timeout tuning (seconds)" in text
    assert "Fault-detection timeout" in text
    assert "Default Spread" in text
    assert "Tuned Spread" in text
    assert "Failure notification time" in text
