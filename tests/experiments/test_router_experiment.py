"""Tests for the §5.2 router-failover experiment (reduced sizes)."""

from repro.experiments.router_experiment import RouterFailoverExperiment
from repro.gcs.config import SpreadConfig


def test_naive_pays_convergence_and_advertise_all_does_not():
    experiment = RouterFailoverExperiment(
        trials=1, rip_interval=10.0, spread_config=SpreadConfig.tuned()
    )
    results = experiment.run()
    static = results["static"]["mean"]
    naive = results["naive"]["mean"]
    advertise_all = results["advertise_all"]["mean"]
    assert naive > static + 3.0
    assert abs(advertise_all - static) < 1.0
    assert naive <= static + experiment.rip_interval + 2.0


def test_format_lists_all_modes():
    experiment = RouterFailoverExperiment(
        trials=1, rip_interval=10.0, spread_config=SpreadConfig.tuned()
    )
    text = experiment.format()
    for mode in experiment.MODES:
        assert mode in text
