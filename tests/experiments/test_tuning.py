"""Tests for the tuning trade-off experiments (reduced sizes)."""

import pytest

from repro.experiments.tuning import FalsePositiveExperiment, SensitivityExperiment


def test_no_false_positives_on_clean_network():
    experiment = FalsePositiveExperiment(
        loss_rates=(0.0,), duration=60.0, trials=1, cluster_size=3
    )
    results = experiment.run()
    assert results["Default Spread"][0.0] == 0
    assert results["Tuned Spread"][0.0] == 0


def test_aggressive_tuning_misfires_more_under_loss():
    experiment = FalsePositiveExperiment(
        loss_rates=(0.10,), duration=60.0, trials=1, cluster_size=3
    )
    results = experiment.run()
    assert results["Tuned Spread"][0.10] > results["Default Spread"][0.10]


def test_false_positive_format():
    experiment = FalsePositiveExperiment(
        loss_rates=(0.0,), duration=30.0, trials=1, cluster_size=2
    )
    text = experiment.format()
    assert "False-positive" in text
    assert "0%" in text


def test_sensitivity_expected_centre_formula():
    experiment = SensitivityExperiment()
    # fd - hb/2 + discovery with the Table 1 ratios = 2.2 x fd.
    assert experiment.expected_centre(1.0) == pytest.approx(2.2)
    assert experiment.expected_centre(5.0) == pytest.approx(11.0)


def test_sensitivity_is_monotonic_and_near_expected():
    experiment = SensitivityExperiment(fd_timeouts=(1.0, 3.0), trials=2)
    points = experiment.run()
    values = [value for _, value in points]
    assert values == sorted(values)
    for fd, value in points:
        assert value == pytest.approx(experiment.expected_centre(fd), rel=0.25)


def test_sensitivity_format_contains_chart():
    experiment = SensitivityExperiment(fd_timeouts=(1.0, 2.0), trials=1)
    text = experiment.format()
    assert "Interruption vs timeout scale" in text
    assert "measured" in text and "expected" in text
