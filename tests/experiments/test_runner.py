"""Integration tests for the fail-over trial runner."""

import pytest

from repro.experiments.runner import run_failover_trial
from repro.gcs.config import SpreadConfig


def test_tuned_trial_lands_in_paper_window():
    result = run_failover_trial(seed=100, cluster_size=3, spread_config=SpreadConfig.tuned())
    lo, hi = SpreadConfig.tuned().notification_window()
    assert result.interruption is not None
    assert lo - 0.1 <= result.interruption <= hi + 1.0
    assert result.violations == []
    assert result.victim != result.takeover


def test_default_trial_lands_in_paper_window():
    result = run_failover_trial(
        seed=101, cluster_size=3, spread_config=SpreadConfig.default()
    )
    lo, hi = SpreadConfig.default().notification_window()
    assert lo - 0.1 <= result.interruption <= hi + 1.0


def test_graceful_mode_is_fast():
    result = run_failover_trial(
        seed=102,
        cluster_size=3,
        spread_config=SpreadConfig.tuned(),
        fault_mode="shutdown",
    )
    assert result.interruption <= 0.250


def test_trials_are_reproducible():
    a = run_failover_trial(seed=103, cluster_size=3, spread_config=SpreadConfig.tuned())
    b = run_failover_trial(seed=103, cluster_size=3, spread_config=SpreadConfig.tuned())
    assert a.interruption == b.interruption
    assert a.victim == b.victim


def test_different_seeds_vary_fault_phase():
    results = [
        run_failover_trial(seed=s, cluster_size=3, spread_config=SpreadConfig.tuned())
        for s in (104, 105, 106)
    ]
    assert len({r.interruption for r in results}) > 1


def test_trial_records_fields():
    result = run_failover_trial(seed=107, cluster_size=2, spread_config=SpreadConfig.tuned())
    assert result.cluster_size == 2
    assert result.n_vips == 10
    assert result.fault_mode == "nic_down"
    assert result.fault_time > 0
