"""Tests for the loaded-machine experiment (reduced sizes)."""

from repro.experiments.load import LoadedClusterExperiment


def test_no_spurious_reconfigs_when_unloaded():
    experiment = LoadedClusterExperiment(
        load_delays=(0.0,), duration=30.0, trials=1, cluster_size=3
    )
    results = experiment.run()
    assert results["real-time priority"][0.0] == 0
    assert results["normal priority"][0.0] == 0


def test_realtime_priority_immune_to_load():
    experiment = LoadedClusterExperiment(
        load_delays=(0.3,), duration=60.0, trials=1, cluster_size=3
    )
    count = experiment.count_spurious(realtime=True, load=0.3, seed=7700)
    assert count == 0


def test_normal_priority_misfires_under_heavy_load():
    experiment = LoadedClusterExperiment(
        load_delays=(0.3,), duration=60.0, trials=1, cluster_size=3
    )
    count = experiment.count_spurious(realtime=False, load=0.3, seed=7700)
    assert count > 0


def test_format_lists_loads_and_priorities():
    experiment = LoadedClusterExperiment(
        load_delays=(0.0,), duration=20.0, trials=1, cluster_size=2
    )
    text = experiment.format()
    assert "real-time priority" in text
    assert "normal priority" in text
    assert "0 ms" in text
