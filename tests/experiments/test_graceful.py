"""Tests for the voluntary-leave experiment (§6 text)."""

from repro.experiments.graceful import GracefulLeaveExperiment


def test_all_samples_within_paper_bound():
    experiment = GracefulLeaveExperiment(trials=3, cluster_size=3)
    results = experiment.run()
    assert results["samples"]
    assert results["within_bound"]
    assert results["max"] <= GracefulLeaveExperiment.UPPER_BOUND


def test_typical_sample_is_about_10ms():
    experiment = GracefulLeaveExperiment(trials=3, cluster_size=3)
    results = experiment.run()
    assert results["mean"] <= 0.05


def test_format_mentions_bound():
    experiment = GracefulLeaveExperiment(trials=1, cluster_size=2)
    assert "0.25" in experiment.format() or "0.250" in experiment.format()
