"""Unit tests for report helpers."""

import pytest

from repro.experiments.report import format_table, mean, stdev


def test_mean_of_values():
    assert mean([1.0, 2.0, 3.0]) == 2.0


def test_mean_of_empty_is_zero():
    assert mean([]) == 0.0


def test_stdev_of_constant_is_zero():
    assert stdev([5.0, 5.0, 5.0]) == 0.0


def test_stdev_known_value():
    assert stdev([2.0, 4.0]) == pytest.approx(2.0**0.5)


def test_stdev_below_two_samples_is_zero():
    assert stdev([1.0]) == 0.0


def test_format_table_aligns_columns():
    text = format_table(["Name", "Value"], [["a", 1.5], ["longer", 2]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "Name" in lines[1]
    assert "-" in lines[2]
    assert "1.500" in text
    assert "longer" in text


def test_format_table_without_title():
    text = format_table(["x"], [[1]])
    assert text.splitlines()[0] == "x"


def test_to_csv_full_precision():
    from repro.experiments.report import to_csv

    text = to_csv(["a", "b"], [[1, 2.123456789], ["x,y", 3]])
    lines = text.strip().splitlines()
    assert lines[0] == "a,b"
    assert "2.123456789" in lines[1]
    assert '"x,y"' in lines[2]  # quoting preserved


def test_series_to_rows_aligns_on_x():
    from repro.experiments.report import series_to_rows

    headers, rows = series_to_rows(
        {"s1": [(1, 10.0), (2, 20.0)], "s2": [(2, 5.0), (3, 6.0)]}, x_name="size"
    )
    assert headers == ["size", "s1", "s2"]
    assert rows == [[1, 10.0, None], [2, 20.0, 5.0], [3, None, 6.0]]
