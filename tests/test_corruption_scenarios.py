"""Scripted scenarios: one per state-corruption kind (docs/FAULTS.md).

Where the ``repro check --corrupt`` campaigns explore randomized mixes,
these are the deterministic textbook episodes — each corruption kind
demonstrated once, at a fixed seed, against a self-stabilizing cluster
that detects the corrupted state through its periodic audits and
repairs it through the ordinary protocol paths. They double as
executable documentation for the repertoire.
"""

from helpers import build_wack_cluster, fast_spread_config, settle_wack

from repro.check.harness import GRAY_WACK_OVERRIDES
from repro.stabilization import StabilizationConfig

#: Fast audit cadence so scenarios resolve in a few simulated seconds.
STABILIZE = StabilizationConfig(interval=0.5)


def build_stabilizing_cluster(n=3, seed=7, n_vips=6, **wack_overrides):
    """The gray-hardened shape plus periodic self-stabilization audits."""
    overrides = dict(GRAY_WACK_OVERRIDES, maturity_timeout=0.5, stabilization=STABILIZE)
    overrides.update(wack_overrides)
    return build_wack_cluster(
        n,
        seed=seed,
        n_vips=n_vips,
        config=fast_spread_config(suspicion_misses=2, stabilization=STABILIZE),
        wack_overrides=overrides,
    )


def owners_of(cluster, address):
    return [h.name for h in cluster.hosts if h.alive and h.owns_ip(address)]


def assert_single_owner_coverage(cluster):
    assert cluster.auditor.check() == []
    for group in cluster.wconfig.vip_groups:
        for address in group.addresses:
            owners = owners_of(cluster, address)
            assert len(owners) == 1, "{} owned by {}".format(address, owners)


def held_slots(cluster, index):
    wack = cluster.wacks[index]
    return [
        slot
        for slot in wack.table.slots
        if wack.table.owner(slot) == wack.member_name and wack.iface.owns(slot)
    ]


# ----------------------------------------------------------------------
# corrupt_vip_table: allocation/binding divergence, audited locally


def test_dropped_binding_is_reacquired_by_audit():
    """``drop`` unbinds a held VIP behind the agreed table's back; the
    next audit tick notices table-says-mine/iface-says-no and re-acquires."""
    cluster = build_stabilizing_cluster(seed=11)
    assert settle_wack(cluster, timeout=30.0)
    victim = cluster.wacks[0]
    before = held_slots(cluster, 0)
    assert before
    cluster.faults.corrupt_vip_table(victim, mutation="drop")
    lost = [slot for slot in before if not victim.iface.owns(slot)]
    assert len(lost) == 1  # the corruption really opened a coverage hole
    cluster.sim.run_for(2.0)
    assert victim.stabilize_repairs >= 1
    assert victim.iface.owns(lost[0])
    assert settle_wack(cluster, timeout=20.0)
    assert_single_owner_coverage(cluster)
    record = cluster.faults.log[-1]
    assert record.kind == "corrupt_vip_table"
    assert record.to_dict()["param"] == {"mutation": "drop", "slot": lost[0]}


def test_foreign_binding_is_released_by_audit():
    """``duplicate`` force-binds a peer's VIP (two physical owners); the
    audit releases the binding the table never granted."""
    cluster = build_stabilizing_cluster(seed=13)
    assert settle_wack(cluster, timeout=30.0)
    victim = cluster.wacks[0]
    cluster.faults.corrupt_vip_table(victim, mutation="duplicate")
    stolen = [
        slot
        for slot in victim.table.slots
        if victim.table.owner(slot) != victim.member_name and victim.iface.owns(slot)
    ]
    assert len(stolen) == 1
    address = cluster.wconfig.group(stolen[0]).addresses[0]
    assert len(owners_of(cluster, address)) == 2  # the gray symptom
    cluster.sim.run_for(2.0)
    assert victim.stabilize_repairs >= 1
    assert not victim.iface.owns(stolen[0])
    assert settle_wack(cluster, timeout=20.0)
    assert_single_owner_coverage(cluster)


def test_poisoned_arp_entry_is_overwritten_by_reannouncement():
    """``poison_arp`` plants a bogus MAC in a host's cache; the owner's
    periodic gratuitous re-announcement overwrites it within one cycle."""
    cluster = build_stabilizing_cluster(seed=17)
    assert settle_wack(cluster, timeout=30.0)
    victim = cluster.wacks[0]
    cluster.faults.corrupt_vip_table(victim, mutation="poison_arp")
    record = cluster.faults.log[-1]
    assert record.to_dict()["param"]["mutation"] == "poison_arp"
    address = cluster.wconfig.group(record.param["slot"]).addresses[0]
    poisoned = victim.host.arp.cache.lookup(address)
    assert poisoned is not None and str(poisoned) == record.param["mac"]
    # One re-announce interval (2.0s in the hardened overrides) + slack.
    cluster.sim.run_for(cluster.wconfig.arp_reannounce_interval + 1.0)
    owner = next(h for h in cluster.hosts if h.owns_ip(address))
    healed = victim.host.arp.cache.lookup(address)
    assert healed == owner.nics[0].mac


# ----------------------------------------------------------------------
# corrupt_membership: view-list corruption, escalated to a gather


def test_phantom_member_escalates_to_gather_and_reconverges():
    """A spliced-in ghost member is watched by nobody, so only the
    stabilization audit can notice the view/detector disagreement; it
    escalates to a GATHER and the next install has only real members."""
    cluster = build_stabilizing_cluster(seed=19)
    assert settle_wack(cluster, timeout=30.0)
    daemon = cluster.spreads[0]
    installs_before = daemon.membership.views_installed
    cluster.faults.corrupt_membership(daemon, mutation="phantom")
    assert any(m.startswith("ghost-") for m in daemon.membership.view.members)
    cluster.sim.run_for(4.0)
    assert daemon.stabilize_repairs >= 1
    assert daemon.membership.views_installed > installs_before
    assert not any(m.startswith("ghost-") for m in daemon.membership.view.members)
    assert settle_wack(cluster, timeout=20.0)
    assert_single_owner_coverage(cluster)


def test_dropped_member_reappears_after_reconfiguration():
    """Erasing a live member from one daemon's view self-heals: either
    the victim's own heartbeats look foreign (on_foreign_traffic) or the
    audit sees the view/detector disagreement — both end in a gather."""
    cluster = build_stabilizing_cluster(seed=23)
    assert settle_wack(cluster, timeout=30.0)
    daemon = cluster.spreads[0]
    full = set(daemon.membership.view.members)
    cluster.faults.corrupt_membership(daemon, mutation="drop")
    assert set(daemon.membership.view.members) < full
    cluster.sim.run_for(6.0)
    assert set(daemon.membership.view.members) == full
    assert settle_wack(cluster, timeout=20.0)
    assert_single_owner_coverage(cluster)


# ----------------------------------------------------------------------
# corrupt_sequence: ordering counters re-derived from the log


def test_skewed_recv_counter_is_rederived_from_log():
    cluster = build_stabilizing_cluster(seed=29)
    assert settle_wack(cluster, timeout=30.0)
    daemon = cluster.spreads[0]
    orderer = daemon.orderer
    assert orderer is not None and not orderer.frozen
    cluster.faults.corrupt_sequence(daemon, mutation="recv_ahead")
    contiguous = 0
    while (contiguous + 1) in orderer.log:
        contiguous += 1
    assert orderer.recv_aru > contiguous  # the corruption took
    cluster.sim.run_for(2.0)
    assert daemon.stabilize_repairs >= 1
    fresh = daemon.orderer  # a view change may have replaced the orderer
    contiguous = 0
    while (contiguous + 1) in fresh.log:
        contiguous += 1
    assert fresh.recv_aru == contiguous
    assert settle_wack(cluster, timeout=20.0)
    assert_single_owner_coverage(cluster)


def test_regressed_sequencer_assignment_never_collides():
    """Rewinding the sequencer's next assignment under already-assigned
    sequences must not mint a duplicate: the audit clamps it past the
    log top (and the assignment path itself skips occupied slots)."""
    cluster = build_stabilizing_cluster(seed=31)
    assert settle_wack(cluster, timeout=30.0)
    sequencer = next(
        d for d in cluster.spreads if d.orderer is not None and d.orderer.is_sequencer
    )
    cluster.faults.corrupt_sequence(sequencer, mutation="assign_regress")
    cluster.sim.run_for(2.0)
    fresh = sequencer.orderer
    if fresh is not None and fresh.log:
        assert fresh._next_assign > max(fresh.log)
    assert settle_wack(cluster, timeout=20.0)
    assert_single_owner_coverage(cluster)


# ----------------------------------------------------------------------
# corrupt_epoch: counter regression clamped back by the audit


def test_regressed_view_counter_is_clamped_by_audit():
    """Rewinding ``highest_counter`` below the installed view would make
    the next gather mint a ViewId every peer rejects; the audit clamps
    it back to the installed view's counter before that can happen."""
    cluster = build_stabilizing_cluster(seed=37)
    assert settle_wack(cluster, timeout=30.0)
    daemon = cluster.spreads[0]
    engine = daemon.membership
    floor = engine.view.view_id.counter
    cluster.faults.corrupt_epoch(daemon)
    assert engine.highest_counter < floor  # the regression took
    cluster.sim.run_for(2.0)
    assert engine.highest_counter >= engine.view.view_id.counter
    assert daemon.stabilize_repairs >= 1
    # The repaired daemon can still drive a reconfiguration peers accept.
    cluster.faults.crash_host(cluster.hosts[2])
    assert settle_wack(cluster, timeout=30.0)
    assert_single_owner_coverage(cluster)
