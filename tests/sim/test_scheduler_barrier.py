"""Barrier-stepping semantics of ``Scheduler.run(until=, inclusive=)``.

The sharded kernel advances worlds through half-open epochs
``[B_k, B_{k+1})``: an event exactly at the barrier must fire in the
epoch that *starts* there, in every world, or shard groupings diverge.
These tests pin the boundary behaviour the kernel leans on, plus the
adaptive heap-compaction threshold the same PR tuned.
"""

from repro.sim.scheduler import Scheduler


def _noop():
    return None


def test_exclusive_run_defers_event_exactly_at_barrier():
    scheduler = Scheduler()
    fired = []
    scheduler.after(2.0, fired.append, "at-barrier")
    scheduler.run(until=2.0, inclusive=False)
    assert fired == []
    # The clock still reaches the barrier and the deferred event is
    # what next_event_time reports — the kernel's E_k computation.
    assert scheduler.now == 2.0
    assert scheduler.next_event_time() == 2.0
    assert scheduler.pending_count == 1


def test_deferred_barrier_event_fires_exactly_once_next_epoch():
    scheduler = Scheduler()
    fired = []
    scheduler.after(2.0, fired.append, "a")
    scheduler.run(until=2.0, inclusive=False)
    scheduler.run(until=3.0, inclusive=False)
    assert fired == ["a"]
    assert scheduler.next_event_time() is None


def test_exclusive_epochs_partition_the_timeline():
    scheduler = Scheduler()
    fired = []
    for time in (0.5, 1.0, 1.5, 2.0):
        scheduler.after(time, fired.append, time)
    scheduler.run(until=1.0, inclusive=False)
    assert fired == [0.5]
    scheduler.run(until=2.0, inclusive=False)
    assert fired == [0.5, 1.0, 1.5]
    # The final (inclusive) epoch closes the horizon like a plain run.
    scheduler.run(until=2.0)
    assert fired == [0.5, 1.0, 1.5, 2.0]
    assert scheduler.now == 2.0


def test_inclusive_default_still_fires_barrier_event():
    scheduler = Scheduler()
    fired = []
    scheduler.after(2.0, fired.append, "a")
    scheduler.run(until=2.0)
    assert fired == ["a"]


def test_event_scheduled_at_barrier_during_epoch_is_deferred():
    # An event that, while running, schedules work exactly at the
    # epoch's own barrier: the new event belongs to the next epoch.
    scheduler = Scheduler()
    fired = []
    scheduler.after(1.0, lambda: scheduler.at(2.0, fired.append, "late"))
    scheduler.run(until=2.0, inclusive=False)
    assert fired == []
    assert scheduler.next_event_time() == 2.0


def test_compaction_holds_off_while_live_heap_dominates():
    # Adaptive threshold: cancelled entries are only worth a rebuild
    # once they reach max(64, live/8). With 1000 live events, 80
    # corpses stay in the heap (80 * 8 < 1000).
    scheduler = Scheduler()
    for index in range(1000):
        scheduler.after(100.0 + index, _noop)
    dead = [scheduler.after(1.0 + index * 0.001, _noop) for index in range(80)]
    for event in dead:
        event.cancel()
    assert scheduler._cancelled == 80
    assert len(scheduler._heap) == 1080
    assert scheduler.pending_count == 1000


def test_compaction_triggers_once_corpses_reach_adaptive_share():
    # With a small live heap the old fixed threshold still applies:
    # the 64th cancel (64 * 8 >= live) rebuilds the heap in place.
    scheduler = Scheduler()
    for index in range(100):
        scheduler.after(100.0 + index, _noop)
    dead = [scheduler.after(1.0 + index * 0.001, _noop) for index in range(64)]
    for event in dead:
        event.cancel()
    assert scheduler._cancelled == 0
    assert len(scheduler._heap) == 100
    assert scheduler.pending_count == 100


def test_compaction_never_drops_live_events():
    scheduler = Scheduler()
    fired = []
    for index in range(100):
        scheduler.after(10.0 + index * 0.01, fired.append, index)
    dead = [scheduler.after(1.0, _noop) for _ in range(200)]
    for event in dead:
        event.cancel()
    scheduler.run()
    assert fired == list(range(100))
