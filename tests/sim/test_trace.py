"""Unit tests for the structured trace log."""

from repro.sim.trace import TraceLog


def make_log(time=0.0):
    holder = {"t": time}
    log = TraceLog(clock=lambda: holder["t"])
    return log, holder


def test_emit_records_time_and_details():
    log, holder = make_log()
    holder["t"] = 4.2
    record = log.emit("cat", "src", "event", value=1)
    assert record.time == 4.2
    assert record.details == {"value": 1}


def test_select_filters_by_all_fields():
    log, holder = make_log()
    log.emit("a", "x", "e1")
    holder["t"] = 1.0
    log.emit("a", "y", "e1")
    log.emit("b", "x", "e2")
    assert len(log.select(category="a")) == 2
    assert len(log.select(source="x")) == 2
    assert len(log.select(event="e2")) == 1
    assert len(log.select(category="a", source="y")) == 1
    assert len(log.select(since=0.5)) == 2


def test_last_returns_most_recent_match():
    log, holder = make_log()
    log.emit("a", "x", "e")
    holder["t"] = 2.0
    log.emit("a", "x", "e")
    assert log.last(category="a").time == 2.0
    assert log.last(category="zzz") is None


def test_count_tracks_even_when_disabled():
    log, _ = make_log()
    log.enabled = False
    log.emit("a", "x", "e")
    log.emit("a", "x", "e")
    assert log.count("a", "e") == 2
    assert log.records == []


def test_count_by_category_sums_events():
    log, _ = make_log()
    log.emit("a", "x", "e1")
    log.emit("a", "x", "e2")
    assert log.count("a") == 2


def test_capacity_bounds_memory():
    log, _ = make_log()
    log.capacity = 3
    for index in range(10):
        log.emit("a", "x", "e", i=index)
    assert len(log.records) == 3
    assert log.records[-1].details["i"] == 9


def test_capacity_trims_oldest_and_preserves_order():
    """Intended capacity semantics: keep exactly the newest N, in order."""
    log = TraceLog(clock=lambda: 0.0, capacity=4)
    for index in range(9):
        log.emit("a", "x", "e", i=index)
    assert [r.details["i"] for r in log.records] == [5, 6, 7, 8]


def test_counts_survive_capacity_trimming():
    """Counters report whole-run totals even after records are trimmed."""
    log = TraceLog(clock=lambda: 0.0, capacity=2)
    for _ in range(7):
        log.emit("a", "x", "e")
    assert len(log.records) == 2
    assert log.count("a", "e") == 7
    assert log.count("a") == 7


def test_tail_returns_newest_first_to_last():
    log, _ = make_log()
    for index in range(6):
        log.emit("a", "x", "e", i=index)
    assert [r.details["i"] for r in log.tail(3)] == [3, 4, 5]
    assert log.tail(0) == []
    assert len(log.tail(100)) == 6


def test_disabled_emit_returns_none_but_counts():
    """Intended disabled semantics: drop records, keep counting."""
    log, _ = make_log()
    log.enabled = False
    assert log.emit("a", "x", "e") is None
    assert log.records == []
    assert log.count("a", "e") == 1
    # Re-enabling resumes recording without losing the earlier counts.
    log.enabled = True
    record = log.emit("a", "x", "e")
    assert record is not None
    assert log.count("a", "e") == 2
    assert len(log.records) == 1


def test_capacity_zero_retains_nothing_but_still_counts():
    """capacity=0 is a legal degenerate bound: pure counting mode.

    Every emit still returns the freshly built record (callers may log
    it), but the retained window is empty, so select/tail/last all see
    nothing while count() reports whole-run totals.
    """
    log = TraceLog(clock=lambda: 0.0, capacity=0)
    for index in range(5):
        record = log.emit("a", "x", "e", i=index)
        assert record is not None
    assert log.records == []
    assert log.tail(5) == []
    assert log.last(category="a") is None
    assert log.select(category="a") == []
    assert log.count("a", "e") == 5


def test_reenabling_applies_capacity_to_new_records():
    """Flipping enabled back on resumes the same bounded window."""
    log = TraceLog(clock=lambda: 0.0, capacity=2)
    log.enabled = False
    for _ in range(4):
        assert log.emit("a", "x", "e") is None
    assert log.records == []
    log.enabled = True
    for index in range(3):
        log.emit("a", "x", "e", i=index)
    assert [r.details["i"] for r in log.records] == [1, 2]
    # Counters span the disabled stretch and the trimmed records alike.
    assert log.count("a", "e") == 7


def test_clear_resets_everything():
    log, _ = make_log()
    log.emit("a", "x", "e")
    log.clear()
    assert log.records == []
    assert log.count("a") == 0


def test_format_renders_lines():
    log, _ = make_log()
    log.emit("a", "x", "e", k=1)
    text = log.format(category="a")
    assert "a" in text and "x" in text and "e" in text


# ----------------------------------------------------------------------
# amortized ring buffer and category filtering


def test_capacity_window_is_exact_under_sustained_emits():
    log, _ = make_log()
    log.capacity = 5
    for index in range(137):
        log.emit("a", "x", "e", i=index)
        # The retained window never exceeds capacity, even mid-stream
        # while the backing list carries a dead prefix.
        assert len(log.records) == min(index + 1, 5)
    assert [r.details["i"] for r in log.records] == [132, 133, 134, 135, 136]
    assert log.count("a", "e") == 137


def test_tail_spans_the_trimmed_window():
    log, _ = make_log()
    log.capacity = 4
    for index in range(10):
        log.emit("a", "x", "e", i=index)
    assert [r.details["i"] for r in log.tail(2)] == [8, 9]
    # Asking for more than is retained returns the whole window.
    assert [r.details["i"] for r in log.tail(99)] == [6, 7, 8, 9]


def test_clear_resets_ring_buffer_state():
    log, _ = make_log()
    log.capacity = 3
    for index in range(8):
        log.emit("a", "x", "e", i=index)
    log.clear()
    assert log.records == []
    assert log.count("a", "e") == 0
    log.emit("a", "x", "e", i=100)
    assert [r.details["i"] for r in log.records] == [100]


def test_category_filter_stores_only_selected_categories():
    log, _ = make_log()
    log.filter_categories({"keep"})
    kept = log.emit("keep", "x", "e1")
    dropped = log.emit("drop", "x", "e2")
    assert kept is not None and dropped is None
    assert [r.category for r in log.records] == ["keep"]
    # Counters still see every emit, filtered or not.
    assert log.count("drop", "e2") == 1


def test_category_filter_can_be_cleared():
    log, _ = make_log()
    log.filter_categories({"keep"})
    log.emit("drop", "x", "e")
    log.filter_categories(None)
    log.emit("drop", "x", "e")
    assert len(log.records) == 1
    assert log.categories is None


def test_constructor_accepts_categories():
    from repro.sim.trace import TraceLog

    log = TraceLog(clock=lambda: 0.0, categories=["a", "b"])
    assert log.categories == frozenset({"a", "b"})
    log.emit("c", "x", "e")
    log.emit("a", "x", "e")
    assert [r.category for r in log.records] == ["a"]
