"""Unit tests for one-shot and periodic timers."""

import pytest

from repro.sim.scheduler import Scheduler
from repro.sim.timers import PeriodicTimer, Timer


def test_timer_fires_after_delay():
    scheduler = Scheduler()
    fired = []
    timer = Timer(scheduler, lambda: fired.append(scheduler.now))
    timer.start(1.5)
    scheduler.run()
    assert fired == [1.5]


def test_timer_restart_supersedes_previous_deadline():
    scheduler = Scheduler()
    fired = []
    timer = Timer(scheduler, lambda: fired.append(scheduler.now))
    timer.start(1.0)
    scheduler.after(0.5, lambda: timer.start(1.0))
    scheduler.run()
    assert fired == [1.5]


def test_timer_cancel_prevents_firing():
    scheduler = Scheduler()
    fired = []
    timer = Timer(scheduler, lambda: fired.append(1))
    timer.start(1.0)
    timer.cancel()
    scheduler.run()
    assert fired == []


def test_timer_armed_and_deadline():
    scheduler = Scheduler()
    timer = Timer(scheduler, lambda: None)
    assert not timer.armed
    assert timer.deadline is None
    timer.start(2.0)
    assert timer.armed
    assert timer.deadline == 2.0
    scheduler.run()
    assert not timer.armed


def test_timer_can_be_reused_after_firing():
    scheduler = Scheduler()
    fired = []
    timer = Timer(scheduler, lambda: fired.append(scheduler.now))
    timer.start(1.0)
    scheduler.run()
    timer.start(1.0)
    scheduler.run()
    assert fired == [1.0, 2.0]


def test_periodic_timer_fires_repeatedly():
    scheduler = Scheduler()
    ticks = []
    timer = PeriodicTimer(scheduler, lambda: ticks.append(scheduler.now), 1.0)
    timer.start()
    scheduler.run(until=3.5)
    assert ticks == [1.0, 2.0, 3.0]


def test_periodic_timer_first_delay_override():
    scheduler = Scheduler()
    ticks = []
    timer = PeriodicTimer(scheduler, lambda: ticks.append(scheduler.now), 1.0)
    timer.start(first_delay=0.0)
    scheduler.run(until=2.5)
    assert ticks == [0.0, 1.0, 2.0]


def test_periodic_timer_stop_halts_ticks():
    scheduler = Scheduler()
    ticks = []
    timer = PeriodicTimer(scheduler, lambda: ticks.append(scheduler.now), 1.0)
    timer.start()
    scheduler.after(2.5, timer.stop)
    scheduler.run(until=10.0)
    assert ticks == [1.0, 2.0]


def test_periodic_timer_stop_when_not_running_is_safe():
    timer = PeriodicTimer(Scheduler(), lambda: None, 1.0)
    timer.stop()
    assert not timer.running


def test_periodic_timer_rejects_nonpositive_interval():
    with pytest.raises(ValueError):
        PeriodicTimer(Scheduler(), lambda: None, 0.0)


def test_periodic_timer_restart_resets_phase():
    scheduler = Scheduler()
    ticks = []
    timer = PeriodicTimer(scheduler, lambda: ticks.append(scheduler.now), 1.0)
    timer.start()
    scheduler.after(0.5, timer.start)
    scheduler.run(until=2.0)
    assert ticks == [1.5]


# ----------------------------------------------------------------------
# event recycling (Scheduler.reschedule fast path)


def test_timer_restart_after_fire_reuses_event_object():
    scheduler = Scheduler()
    fired = []
    timer = Timer(scheduler, lambda: fired.append(scheduler.now))
    timer.start(1.0)
    scheduler.run()
    first_event = timer._spare
    assert first_event is not None
    timer.start(1.0)
    # The fired event was recycled as the new deadline's handle.
    assert timer._event is first_event
    scheduler.run()
    assert fired == [1.0, 2.0]


def test_timer_refresh_before_fire_allocates_fresh_event():
    scheduler = Scheduler()
    fired = []
    timer = Timer(scheduler, lambda: fired.append(scheduler.now))
    timer.start(1.0)
    pending = timer._event
    timer.start(1.0)  # refresh: the old event is still a live heap entry
    assert timer._event is not pending
    assert pending.cancelled
    scheduler.run()
    assert fired == [1.0]


def test_periodic_timer_recycles_one_event_across_ticks():
    scheduler = Scheduler()
    ticks = []
    timer = PeriodicTimer(scheduler, lambda: ticks.append(scheduler.now), 1.0)
    timer.start()
    seen = set()
    original = timer._event

    def snapshot():
        seen.add(id(timer._event))

    probe = PeriodicTimer(scheduler, snapshot, 1.0)
    probe.start(first_delay=1.5)
    scheduler.run(until=5.2)
    timer.stop()
    probe.stop()
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]
    # Every tick reused the same Event object.
    assert seen == {id(original)}
