"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim.errors import SchedulerError
from repro.sim.scheduler import Scheduler


def test_starts_at_time_zero():
    assert Scheduler().now == 0.0


def test_runs_events_in_time_order():
    scheduler = Scheduler()
    order = []
    scheduler.after(0.3, order.append, "c")
    scheduler.after(0.1, order.append, "a")
    scheduler.after(0.2, order.append, "b")
    scheduler.run()
    assert order == ["a", "b", "c"]


def test_equal_time_events_run_fifo():
    scheduler = Scheduler()
    order = []
    for label in "abcde":
        scheduler.after(1.0, order.append, label)
    scheduler.run()
    assert order == list("abcde")


def test_clock_advances_to_event_time():
    scheduler = Scheduler()
    seen = []
    scheduler.after(2.5, lambda: seen.append(scheduler.now))
    scheduler.run()
    assert seen == [2.5]
    assert scheduler.now == 2.5


def test_run_until_stops_before_later_events():
    scheduler = Scheduler()
    fired = []
    scheduler.after(1.0, fired.append, 1)
    scheduler.after(5.0, fired.append, 5)
    scheduler.run(until=2.0)
    assert fired == [1]
    assert scheduler.now == 2.0


def test_run_until_executes_event_exactly_at_boundary():
    scheduler = Scheduler()
    fired = []
    scheduler.after(2.0, fired.append, 2)
    scheduler.run(until=2.0)
    assert fired == [2]


def test_run_until_advances_clock_even_when_idle():
    scheduler = Scheduler()
    scheduler.run(until=7.0)
    assert scheduler.now == 7.0


def test_cancelled_event_does_not_fire():
    scheduler = Scheduler()
    fired = []
    event = scheduler.after(1.0, fired.append, "x")
    event.cancel()
    scheduler.run()
    assert fired == []


def test_cancel_is_idempotent():
    scheduler = Scheduler()
    event = scheduler.after(1.0, lambda: None)
    event.cancel()
    event.cancel()
    scheduler.run()
    assert not event.pending


def test_events_scheduled_during_run_execute():
    scheduler = Scheduler()
    order = []

    def first():
        order.append("first")
        scheduler.after(1.0, lambda: order.append("second"))

    scheduler.after(1.0, first)
    scheduler.run()
    assert order == ["first", "second"]
    assert scheduler.now == 2.0


def test_zero_delay_event_runs_at_current_time():
    scheduler = Scheduler()
    seen = []
    scheduler.after(1.0, lambda: scheduler.after(0.0, lambda: seen.append(scheduler.now)))
    scheduler.run()
    assert seen == [1.0]


def test_scheduling_in_the_past_raises():
    scheduler = Scheduler()
    scheduler.after(1.0, lambda: None)
    scheduler.run()
    with pytest.raises(SchedulerError):
        scheduler.at(0.5, lambda: None)


def test_negative_delay_raises():
    with pytest.raises(SchedulerError):
        Scheduler().after(-1.0, lambda: None)


def test_max_events_limits_execution():
    scheduler = Scheduler()
    fired = []
    for index in range(10):
        scheduler.after(0.1 * (index + 1), fired.append, index)
    scheduler.run(max_events=3)
    assert fired == [0, 1, 2]


def test_run_returns_number_of_fired_events():
    scheduler = Scheduler()
    for index in range(4):
        scheduler.after(0.1, lambda: None)
    assert scheduler.run() == 4


def test_events_fired_counter_accumulates():
    scheduler = Scheduler()
    scheduler.after(0.1, lambda: None)
    scheduler.run()
    scheduler.after(0.1, lambda: None)
    scheduler.run()
    assert scheduler.events_fired == 2


def test_run_until_idle_raises_on_runaway_loop():
    scheduler = Scheduler()

    def loop():
        scheduler.after(0.1, loop)

    scheduler.after(0.1, loop)
    with pytest.raises(SchedulerError):
        scheduler.run_until_idle(max_events=100)


def test_next_event_time_skips_cancelled():
    scheduler = Scheduler()
    event = scheduler.after(1.0, lambda: None)
    scheduler.after(2.0, lambda: None)
    event.cancel()
    assert scheduler.next_event_time() == 2.0


def test_next_event_time_none_when_idle():
    assert Scheduler().next_event_time() is None


def test_reentrant_run_is_rejected():
    scheduler = Scheduler()
    errors = []

    def reenter():
        try:
            scheduler.run()
        except SchedulerError as exc:
            errors.append(exc)

    scheduler.after(0.1, reenter)
    scheduler.run()
    assert len(errors) == 1


# ----------------------------------------------------------------------
# lazy cancellation, compaction, and event recycling


def test_pending_count_excludes_cancelled_events():
    scheduler = Scheduler()
    events = [scheduler.after(1.0, lambda: None) for _ in range(5)]
    events[0].cancel()
    events[3].cancel()
    assert scheduler.pending_count == 3


def test_until_and_max_events_combined_stop_at_first_limit():
    scheduler = Scheduler()
    fired = []
    for index in range(10):
        scheduler.after(0.1 * (index + 1), fired.append, index)
    # max_events binds first: only 2 of the 5 events before until=0.55.
    assert scheduler.run(until=0.55, max_events=2) == 2
    assert fired == [0, 1]
    # until binds next; the clock still lands exactly on until.
    assert scheduler.run(until=0.55, max_events=100) == 3
    assert fired == [0, 1, 2, 3, 4]
    assert scheduler.now == 0.55


def test_event_exactly_at_until_fires():
    scheduler = Scheduler()
    fired = []
    scheduler.after(1.0, fired.append, "at")
    scheduler.after(1.0 + 1e-9, fired.append, "after")
    scheduler.run(until=1.0)
    assert fired == ["at"]
    assert scheduler.now == 1.0


def test_cancellation_during_fire_suppresses_later_event():
    scheduler = Scheduler()
    fired = []
    victim = scheduler.after(2.0, fired.append, "victim")
    scheduler.after(1.0, victim.cancel)
    scheduler.after(3.0, fired.append, "survivor")
    scheduler.run()
    assert fired == ["survivor"]
    assert scheduler.pending_count == 0


def test_event_cancelling_itself_during_fire_is_harmless():
    scheduler = Scheduler()
    fired = []
    holder = {}

    def self_cancel():
        holder["event"].cancel()
        fired.append("ran")

    holder["event"] = scheduler.after(1.0, self_cancel)
    scheduler.after(2.0, fired.append, "later")
    scheduler.run()
    assert fired == ["ran", "later"]
    assert scheduler.pending_count == 0


def test_compaction_preserves_fifo_order_under_mass_cancellation():
    # Schedule far more than the compaction floor at one instant, cancel
    # most of them to force an in-place heap rebuild, and check that the
    # survivors still run in exact scheduling (FIFO) order.
    scheduler = Scheduler()
    fired = []
    events = []
    for index in range(300):
        events.append(scheduler.after(1.0, fired.append, index))
    keep = set(range(0, 300, 7))
    for index, event in enumerate(events):
        if index not in keep:
            event.cancel()
    assert scheduler.pending_count == len(keep)
    scheduler.run()
    assert fired == sorted(keep)


def test_compaction_during_run_keeps_order():
    # The first event cancels hundreds of pending events, driving the
    # dead-entry ratio over the compaction threshold mid-run; the
    # remaining live events must still fire in (time, seq) order.
    scheduler = Scheduler()
    fired = []
    doomed = [scheduler.after(5.0, fired.append, "dead") for _ in range(200)]
    scheduler.after(1.0, lambda: [event.cancel() for event in doomed])
    scheduler.after(2.0, fired.append, "a")
    scheduler.after(3.0, fired.append, "b")
    scheduler.run()
    assert fired == ["a", "b"]


def test_run_until_idle_ignores_cancelled_backlog():
    scheduler = Scheduler()
    events = [scheduler.after(1.0, lambda: None) for _ in range(10)]
    for event in events:
        event.cancel()
    # All events are dead: idle means zero callbacks, no runaway error.
    assert scheduler.run_until_idle(max_events=5) == 0


def test_reschedule_reuses_fired_event_with_fifo_order():
    scheduler = Scheduler()
    fired = []
    event = scheduler.after(1.0, fired.append, "first")
    scheduler.run()
    recycled = scheduler.reschedule(event, 1.0, fired.append, "second")
    assert recycled is event
    scheduler.after(2.0, fired.append, "third")  # same instant, later seq
    scheduler.run()
    assert fired == ["first", "second", "third"]


def test_reschedule_rejects_pending_event():
    scheduler = Scheduler()
    event = scheduler.after(1.0, lambda: None)
    with pytest.raises(SchedulerError):
        scheduler.reschedule(event, 1.0, lambda: None)


def test_reschedule_rejects_negative_delay():
    scheduler = Scheduler()
    event = scheduler.after(0.1, lambda: None)
    scheduler.run()
    with pytest.raises(SchedulerError):
        scheduler.reschedule(event, -0.5, lambda: None)
