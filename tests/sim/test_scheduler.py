"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim.errors import SchedulerError
from repro.sim.scheduler import Scheduler


def test_starts_at_time_zero():
    assert Scheduler().now == 0.0


def test_runs_events_in_time_order():
    scheduler = Scheduler()
    order = []
    scheduler.after(0.3, order.append, "c")
    scheduler.after(0.1, order.append, "a")
    scheduler.after(0.2, order.append, "b")
    scheduler.run()
    assert order == ["a", "b", "c"]


def test_equal_time_events_run_fifo():
    scheduler = Scheduler()
    order = []
    for label in "abcde":
        scheduler.after(1.0, order.append, label)
    scheduler.run()
    assert order == list("abcde")


def test_clock_advances_to_event_time():
    scheduler = Scheduler()
    seen = []
    scheduler.after(2.5, lambda: seen.append(scheduler.now))
    scheduler.run()
    assert seen == [2.5]
    assert scheduler.now == 2.5


def test_run_until_stops_before_later_events():
    scheduler = Scheduler()
    fired = []
    scheduler.after(1.0, fired.append, 1)
    scheduler.after(5.0, fired.append, 5)
    scheduler.run(until=2.0)
    assert fired == [1]
    assert scheduler.now == 2.0


def test_run_until_executes_event_exactly_at_boundary():
    scheduler = Scheduler()
    fired = []
    scheduler.after(2.0, fired.append, 2)
    scheduler.run(until=2.0)
    assert fired == [2]


def test_run_until_advances_clock_even_when_idle():
    scheduler = Scheduler()
    scheduler.run(until=7.0)
    assert scheduler.now == 7.0


def test_cancelled_event_does_not_fire():
    scheduler = Scheduler()
    fired = []
    event = scheduler.after(1.0, fired.append, "x")
    event.cancel()
    scheduler.run()
    assert fired == []


def test_cancel_is_idempotent():
    scheduler = Scheduler()
    event = scheduler.after(1.0, lambda: None)
    event.cancel()
    event.cancel()
    scheduler.run()
    assert not event.pending


def test_events_scheduled_during_run_execute():
    scheduler = Scheduler()
    order = []

    def first():
        order.append("first")
        scheduler.after(1.0, lambda: order.append("second"))

    scheduler.after(1.0, first)
    scheduler.run()
    assert order == ["first", "second"]
    assert scheduler.now == 2.0


def test_zero_delay_event_runs_at_current_time():
    scheduler = Scheduler()
    seen = []
    scheduler.after(1.0, lambda: scheduler.after(0.0, lambda: seen.append(scheduler.now)))
    scheduler.run()
    assert seen == [1.0]


def test_scheduling_in_the_past_raises():
    scheduler = Scheduler()
    scheduler.after(1.0, lambda: None)
    scheduler.run()
    with pytest.raises(SchedulerError):
        scheduler.at(0.5, lambda: None)


def test_negative_delay_raises():
    with pytest.raises(SchedulerError):
        Scheduler().after(-1.0, lambda: None)


def test_max_events_limits_execution():
    scheduler = Scheduler()
    fired = []
    for index in range(10):
        scheduler.after(0.1 * (index + 1), fired.append, index)
    scheduler.run(max_events=3)
    assert fired == [0, 1, 2]


def test_run_returns_number_of_fired_events():
    scheduler = Scheduler()
    for index in range(4):
        scheduler.after(0.1, lambda: None)
    assert scheduler.run() == 4


def test_events_fired_counter_accumulates():
    scheduler = Scheduler()
    scheduler.after(0.1, lambda: None)
    scheduler.run()
    scheduler.after(0.1, lambda: None)
    scheduler.run()
    assert scheduler.events_fired == 2


def test_run_until_idle_raises_on_runaway_loop():
    scheduler = Scheduler()

    def loop():
        scheduler.after(0.1, loop)

    scheduler.after(0.1, loop)
    with pytest.raises(SchedulerError):
        scheduler.run_until_idle(max_events=100)


def test_next_event_time_skips_cancelled():
    scheduler = Scheduler()
    event = scheduler.after(1.0, lambda: None)
    scheduler.after(2.0, lambda: None)
    event.cancel()
    assert scheduler.next_event_time() == 2.0


def test_next_event_time_none_when_idle():
    assert Scheduler().next_event_time() is None


def test_reentrant_run_is_rejected():
    scheduler = Scheduler()
    errors = []

    def reenter():
        try:
            scheduler.run()
        except SchedulerError as exc:
            errors.append(exc)

    scheduler.after(0.1, reenter)
    scheduler.run()
    assert len(errors) == 1
