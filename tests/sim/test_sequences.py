"""Per-simulation monotonic counters (the SHARD001-safe id source)."""

from repro.sim.simulation import Simulation


def test_sequence_is_monotonic_per_name():
    sim = Simulation(seed=0)
    assert [sim.sequence("a") for _ in range(3)] == [0, 1, 2]


def test_sequences_are_independent_per_name():
    sim = Simulation(seed=0)
    sim.sequence("a")
    sim.sequence("a")
    assert sim.sequence("b") == 0


def test_sequence_honours_start():
    sim = Simulation(seed=0)
    assert sim.sequence("mac", start=100) == 100
    assert sim.sequence("mac", start=100) == 101


def test_fresh_simulations_replay_identical_sequences():
    """Counters live on the Simulation, not the process: no cross-run bleed."""
    def draw(seed):
        sim = Simulation(seed=seed)
        return [sim.sequence("x") for _ in range(4)]

    assert draw(1) == draw(1) == [0, 1, 2, 3]
