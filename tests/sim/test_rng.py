"""Unit tests for deterministic named random streams."""

from repro.sim.rng import RngRegistry


def test_same_seed_same_stream_is_reproducible():
    a = RngRegistry(seed=5).stream("lan")
    b = RngRegistry(seed=5).stream("lan")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_give_independent_streams():
    registry = RngRegistry(seed=5)
    a = registry.stream("lan")
    b = registry.stream("faults")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x")
    b = RngRegistry(seed=2).stream("x")
    assert a.random() != b.random()


def test_stream_is_cached():
    registry = RngRegistry(seed=0)
    assert registry.stream("x") is registry.stream("x")


def test_consuming_one_stream_does_not_perturb_another():
    reference = RngRegistry(seed=9).stream("b").random()
    registry = RngRegistry(seed=9)
    registry.stream("a").random()
    registry.stream("a").random()
    assert registry.stream("b").random() == reference


def test_fork_is_deterministic_and_distinct():
    base = RngRegistry(seed=3)
    fork_a = base.fork("trial1")
    fork_b = RngRegistry(seed=3).fork("trial1")
    other = base.fork("trial2")
    assert fork_a.stream("x").random() == fork_b.stream("x").random()
    assert fork_a.seed != other.seed


def test_stream_names_sorted():
    registry = RngRegistry(seed=0)
    registry.stream("zeta")
    registry.stream("alpha")
    assert registry.stream_names() == ["alpha", "zeta"]
