"""The sharded kernel in isolation: plan, epochs, routing, determinism.

A deliberately tiny "toy world" — cells ticking on their own schedulers
and pinging their neighbour cell through envelopes — exercises the
epoch-barrier loop without any of the cluster machinery, so a failure
here localizes to the kernel itself. The headline assertion is the
kernel's contract: the merged event log is identical under every shard
grouping, including the forked worker pool.
"""

import sys
import types

import pytest

from repro.net.partition import (
    DEFAULT_INTER_LATENCY,
    ShardPlan,
    envelope_key,
)
from repro.sim.scheduler import Scheduler
from repro.sim.shard.kernel import InProcessRunner, ShardedKernel, resolve_factory

LOOKAHEAD = 0.05


class ToyWorld:
    """Minimal kernel-protocol world: per-cell ticks + neighbour pings.

    Every cell ticks ``rounds`` times; each tick sends one envelope to
    the next cell (mod ``n_cells``), which lands ``LOOKAHEAD`` later.
    Cells log ticks and receipts with their virtual timestamps; the
    merged log is the determinism witness.
    """

    def __init__(self, params, shard_id):
        plan = ShardPlan(params["n_cells"], params["n_shards"], lookahead=LOOKAHEAD)
        self.n_cells = params["n_cells"]
        self.rounds = params["rounds"]
        self.cells = plan.cells_of(shard_id)
        self.scheduler = Scheduler()
        self.outbound = []
        self.log = {cell: [] for cell in self.cells}
        self._seq = {}
        for cell in self.cells:
            self.scheduler.at(0.1 * (cell + 1), self._tick, cell, 0)

    def _tick(self, cell, round_index):
        self.log[cell].append((repr(self.scheduler.now), "tick", round_index))
        dst = (cell + 1) % self.n_cells
        seq = self._seq.get(cell, 0)
        self._seq[cell] = seq + 1
        self.outbound.append(
            (
                self.scheduler.now + LOOKAHEAD,
                cell,
                seq,
                dst,
                "",
                0,
                "",
                0,
                ("ping", cell, round_index),
            )
        )
        if round_index + 1 < self.rounds:
            self.scheduler.after(0.3, self._tick, cell, round_index + 1)

    def _recv(self, envelope):
        self.log[envelope[3]].append(
            (repr(self.scheduler.now), "recv", envelope[1], envelope[8])
        )

    # -- the duck-typed kernel protocol ---------------------------------
    def next_event_time(self):
        return self.scheduler.next_event_time()

    def inject(self, envelopes):
        for envelope in envelopes:
            self.scheduler.at(envelope[0], self._recv, envelope)

    def advance(self, until, inclusive):
        self.scheduler.run(until=until, inclusive=inclusive)

    def drain_outbound(self):
        out = self.outbound
        self.outbound = []
        return out

    def artifacts(self):
        return {"log": {cell: list(records) for cell, records in self.log.items()}}


def toy_factory_ref():
    """Register the toy factory under an importable module name.

    ``resolve_factory`` goes through :func:`importlib.import_module`,
    which consults ``sys.modules`` first — and forked workers inherit
    the parent's modules — so a synthetic module works for both
    runners without shipping a test-only module inside ``src``.
    """
    module = sys.modules.get("_repro_toyshard")
    if module is None:
        module = types.ModuleType("_repro_toyshard")
        sys.modules["_repro_toyshard"] = module
    module.make_world = ToyWorld
    return "_repro_toyshard:make_world"


def merged_log(kernel):
    entries = []
    for artifact in kernel.collect():
        for cell, records in artifact["log"].items():
            for index, record in enumerate(records):
                entries.append((float(record[0]), cell, index, record))
    entries.sort(key=lambda entry: entry[:3])
    return [entry[3] for entry in entries]


def run_toy(n_cells, n_shards, workers=0, rounds=4, horizon=2.0):
    plan = ShardPlan(n_cells, n_shards, lookahead=LOOKAHEAD)
    kernel = ShardedKernel(
        plan,
        toy_factory_ref(),
        {"n_cells": n_cells, "n_shards": n_shards, "rounds": rounds},
        workers=workers,
    )
    try:
        kernel.start()
        kernel.run(horizon)
        return merged_log(kernel), kernel
    finally:
        kernel.close()


# -- ShardPlan ----------------------------------------------------------


def test_plan_is_balanced_contiguous_and_total():
    plan = ShardPlan(8, 3)
    widths = [len(plan.cells_of(shard)) for shard in plan.shards()]
    assert widths == [3, 3, 2]
    covered = [cell for shard in plan.shards() for cell in plan.cells_of(shard)]
    assert covered == list(range(8))
    for shard in plan.shards():
        for cell in plan.cells_of(shard):
            assert plan.shard_of(cell) == shard


def test_plan_single_shard_owns_everything():
    plan = ShardPlan(4, 1)
    assert plan.cells_of(0) == (0, 1, 2, 3)
    assert plan.lookahead == DEFAULT_INTER_LATENCY


def test_plan_rejects_bad_shapes():
    with pytest.raises(ValueError):
        ShardPlan(4, 5)  # more shards than cells
    with pytest.raises(ValueError):
        ShardPlan(4, 0)
    with pytest.raises(ValueError):
        ShardPlan(0, 1)
    with pytest.raises(ValueError):
        ShardPlan(4, 2, lookahead=0.0)


def test_envelope_key_orders_by_time_then_source_then_seq():
    envelopes = [
        (1.0, 2, 0, 9, "", 0, "", 0, "c"),
        (1.0, 1, 1, 9, "", 0, "", 0, "b"),
        (0.5, 3, 7, 9, "", 0, "", 0, "a"),
        (1.0, 1, 0, 9, "", 0, "", 0, "d"),
    ]
    ordered = sorted(envelopes, key=envelope_key)
    assert [env[8] for env in ordered] == ["a", "d", "b", "c"]


def test_resolve_factory_rejects_malformed_refs():
    with pytest.raises(ValueError):
        resolve_factory("no-colon-here")
    with pytest.raises(ValueError):
        resolve_factory(":attr_only")


# -- the kernel ---------------------------------------------------------


def test_toy_world_produces_ticks_and_receipts():
    log, kernel = run_toy(n_cells=4, n_shards=1)
    kinds = {record[1] for record in log}
    assert kinds == {"tick", "recv"}
    # 4 cells x 4 rounds of ticks; every ping sent early enough lands.
    assert sum(1 for record in log if record[1] == "tick") == 16
    assert sum(1 for record in log if record[1] == "recv") == 16
    assert kernel.workers == 0
    assert kernel.epochs > 1


def test_groupings_agree_serial_vs_two_vs_four_shards():
    serial, _ = run_toy(n_cells=4, n_shards=1)
    two, _ = run_toy(n_cells=4, n_shards=2)
    four, _ = run_toy(n_cells=4, n_shards=4)
    assert serial == two == four


def test_forked_worker_pool_matches_in_process():
    from repro.sim.shard.pool import fork_available

    if not fork_available():
        pytest.skip("fork start method unavailable")
    in_process, _ = run_toy(n_cells=4, n_shards=2, workers=0)
    forked, kernel = run_toy(n_cells=4, n_shards=2, workers=2)
    assert kernel.workers == 2
    assert forked == in_process


def test_workers_below_two_stay_in_process():
    _, kernel = run_toy(n_cells=4, n_shards=2, workers=1)
    assert kernel.workers == 0


def test_in_process_runner_round_trips_envelopes():
    runner = InProcessRunner(
        toy_factory_ref(), {"n_cells": 2, "n_shards": 2, "rounds": 1}, [0, 1]
    )
    nexts = runner.start()
    assert nexts == [0.1, 0.2]
    replies = runner.advance_all(0.25, False, [[], []])
    (out0, next0), (out1, next1) = replies
    # Both cells ticked once; each queued one ping for the other.
    assert len(out0) == 1 and len(out1) == 1
    assert out0[0][3] == 1 and out1[0][3] == 0
    assert next0 is None and next1 is None
    runner.close()


def test_kernel_refuses_double_start():
    plan = ShardPlan(2, 1)
    kernel = ShardedKernel(
        plan, toy_factory_ref(), {"n_cells": 2, "n_shards": 1, "rounds": 1}
    )
    kernel.start()
    with pytest.raises(RuntimeError):
        kernel.start()
    kernel.close()
