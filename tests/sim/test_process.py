"""Unit tests for the Process base class."""

from repro.sim.process import Process
from repro.sim.simulation import Simulation


def test_process_timer_fires_while_alive():
    sim = Simulation()
    process = Process(sim, "p")
    fired = []
    timer = process.timer(lambda: fired.append(sim.now))
    timer.start(1.0)
    sim.run_until_idle()
    assert fired == [1.0]


def test_stopped_process_timers_do_not_fire():
    sim = Simulation()
    process = Process(sim, "p")
    fired = []
    timer = process.timer(lambda: fired.append(1))
    timer.start(1.0)
    process.stop()
    sim.run_until_idle()
    assert fired == []


def test_stop_suppresses_already_scheduled_after_calls():
    sim = Simulation()
    process = Process(sim, "p")
    fired = []
    process.after(1.0, fired.append, "x")
    sim.after(0.5, process.stop)
    sim.run_until_idle()
    assert fired == []


def test_periodic_stops_with_process():
    sim = Simulation()
    process = Process(sim, "p")
    ticks = []
    periodic = process.periodic(lambda: ticks.append(sim.now), 1.0)
    periodic.start()
    sim.after(2.5, process.stop)
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0]


def test_restart_allows_new_timers():
    sim = Simulation()
    process = Process(sim, "p")
    fired = []
    process.stop()
    process.restart()
    process.after(1.0, fired.append, "x")
    sim.run_until_idle()
    assert fired == ["x"]


def test_trace_attributes_to_process_name():
    sim = Simulation()
    process = Process(sim, "my-proc")
    process.trace("cat", "evt", a=1)
    record = sim.trace.last(category="cat")
    assert record.source == "my-proc"


def test_rng_streams_scoped_per_process():
    sim = Simulation(seed=3)
    a = Process(sim, "a").rng()
    b = Process(sim, "b").rng()
    assert a.random() != b.random()


def test_repr_shows_liveness():
    sim = Simulation()
    process = Process(sim, "p")
    assert "alive" in repr(process)
    process.stop()
    assert "stopped" in repr(process)
