"""Rule-based stateful testing of a live Wackamole cluster.

Hypothesis drives an arbitrary interleaving of fault and repair rules
against one cluster, advancing simulated time between steps, and
checks the agreed-membership coverage invariant after every rule. On
teardown the cluster must quiesce back to full, exactly-once coverage
(Properties 1 and 2 as a state-machine property).
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from helpers import build_wack_cluster, settle_wack

from repro.core.state import RUN

N = 4


class WackamoleClusterMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cluster = None

    @initialize(seed=st.integers(0, 2**16))
    def boot(self, seed):
        self.cluster = build_wack_cluster(N, seed=seed, n_vips=5)
        assert settle_wack(self.cluster)

    # ------------------------------------------------------------------
    # fault rules

    @rule(index=st.integers(0, N - 1))
    def crash_a_host(self, index):
        live = [w for w in self.cluster.wacks if w.alive]
        victim = self.cluster.wacks[index]
        if victim.alive and len(live) > 1:
            self.cluster.faults.crash_host(victim.host)

    @rule(index=st.integers(0, N - 1))
    def drop_an_interface(self, index):
        self.cluster.faults.nic_down(self.cluster.hosts[index].nics[0])

    @rule(index=st.integers(0, N - 1))
    def restore_an_interface(self, index):
        host = self.cluster.hosts[index]
        if host.alive:
            self.cluster.faults.nic_up(host.nics[0])

    @rule(split=st.integers(1, N - 1))
    def partition_lan(self, split):
        self.cluster.faults.partition(
            self.cluster.lan,
            [self.cluster.hosts[:split], self.cluster.hosts[split:]],
        )

    @rule()
    def heal_lan(self):
        self.cluster.faults.heal(self.cluster.lan)

    @rule(index=st.integers(0, N - 1))
    def graceful_drain(self, index):
        live = [w for w in self.cluster.wacks if w.alive]
        target = self.cluster.wacks[index]
        if target.alive and len(live) > 1:
            target.shutdown()

    @rule(seconds=st.floats(0.2, 3.0))
    def let_time_pass(self, seconds):
        self.cluster.sim.run_for(seconds)

    # ------------------------------------------------------------------

    @invariant()
    def agreed_membership_coverage_exact(self):
        if self.cluster is None:
            return
        violations = self.cluster.auditor.check_by_view()
        assert violations == [], violations

    def teardown(self):
        if self.cluster is None:
            return
        # End of the episode: repair everything and require quiescence.
        self.cluster.faults.heal(self.cluster.lan)
        for host in self.cluster.hosts:
            if host.alive:
                for nic in host.nics:
                    self.cluster.faults.nic_up(nic)
        live = [w for w in self.cluster.wacks if w.alive]
        if not live:
            return
        assert settle_wack(self.cluster, timeout=40.0)
        for wack in live:
            assert wack.machine.state == RUN and wack.mature
        assert self.cluster.auditor.check() == []


WackamoleClusterMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=12, deadline=None
)

TestWackamoleCluster = WackamoleClusterMachine.TestCase
