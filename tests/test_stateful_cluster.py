"""Rule-based stateful testing of a live Wackamole cluster.

Hypothesis drives an arbitrary interleaving of fault and repair rules
against one cluster, advancing simulated time between steps, and
checks the agreed-membership coverage invariant after every rule. On
teardown the cluster must quiesce back to full, exactly-once coverage
(Properties 1 and 2 as a state-machine property).

A second machine adds the state-corruption rules against a
self-stabilizing cluster: corruptions legitimately open bounded
coverage windows (until the next audit tick repairs them), so its
invariant is debounced — a violation only fails once the same
(kind, slot) has persisted across samples for longer than the
campaign grace.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from helpers import build_wack_cluster, fast_spread_config, settle_wack

from repro.check.harness import GRAY_WACK_OVERRIDES
from repro.check.trial import CORRUPT_VIOLATION_GRACE
from repro.core.state import RUN
from repro.stabilization import StabilizationConfig

N = 4


class WackamoleClusterMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cluster = None

    @initialize(seed=st.integers(0, 2**16))
    def boot(self, seed):
        self.cluster = build_wack_cluster(N, seed=seed, n_vips=5)
        assert settle_wack(self.cluster)

    # ------------------------------------------------------------------
    # fault rules

    @rule(index=st.integers(0, N - 1))
    def crash_a_host(self, index):
        live = [w for w in self.cluster.wacks if w.alive]
        victim = self.cluster.wacks[index]
        if victim.alive and len(live) > 1:
            self.cluster.faults.crash_host(victim.host)

    @rule(index=st.integers(0, N - 1))
    def drop_an_interface(self, index):
        self.cluster.faults.nic_down(self.cluster.hosts[index].nics[0])

    @rule(index=st.integers(0, N - 1))
    def restore_an_interface(self, index):
        host = self.cluster.hosts[index]
        if host.alive:
            self.cluster.faults.nic_up(host.nics[0])

    @rule(split=st.integers(1, N - 1))
    def partition_lan(self, split):
        self.cluster.faults.partition(
            self.cluster.lan,
            [self.cluster.hosts[:split], self.cluster.hosts[split:]],
        )

    @rule()
    def heal_lan(self):
        self.cluster.faults.heal(self.cluster.lan)

    @rule(index=st.integers(0, N - 1))
    def graceful_drain(self, index):
        live = [w for w in self.cluster.wacks if w.alive]
        target = self.cluster.wacks[index]
        if target.alive and len(live) > 1:
            target.shutdown()

    @rule(seconds=st.floats(0.2, 3.0))
    def let_time_pass(self, seconds):
        self.cluster.sim.run_for(seconds)

    # ------------------------------------------------------------------

    @invariant()
    def agreed_membership_coverage_exact(self):
        if self.cluster is None:
            return
        violations = self.cluster.auditor.check_by_view()
        assert violations == [], violations

    def teardown(self):
        if self.cluster is None:
            return
        # End of the episode: repair everything and require quiescence.
        self.cluster.faults.heal(self.cluster.lan)
        for host in self.cluster.hosts:
            if host.alive:
                for nic in host.nics:
                    self.cluster.faults.nic_up(nic)
        live = [w for w in self.cluster.wacks if w.alive]
        if not live:
            return
        assert settle_wack(self.cluster, timeout=40.0)
        for wack in live:
            assert wack.machine.state == RUN and wack.mature
        assert self.cluster.auditor.check() == []


WackamoleClusterMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=12, deadline=None
)

TestWackamoleCluster = WackamoleClusterMachine.TestCase


class StabilizingClusterMachine(RuleBasedStateMachine):
    """Fault + state-corruption rules against a self-stabilizing cluster."""

    def __init__(self):
        super().__init__()
        self.cluster = None
        self._first_seen = {}

    @initialize(seed=st.integers(0, 2**16))
    def boot(self, seed):
        stabilization = StabilizationConfig(interval=0.5)
        overrides = dict(
            GRAY_WACK_OVERRIDES, maturity_timeout=0.5, stabilization=stabilization
        )
        self.cluster = build_wack_cluster(
            N,
            seed=seed,
            n_vips=5,
            config=fast_spread_config(
                suspicion_misses=2, stabilization=stabilization
            ),
            wack_overrides=overrides,
        )
        assert settle_wack(self.cluster)

    # ------------------------------------------------------------------
    # fail-stop rules (the corruption mix keeps a fail-stop backbone)

    @rule(index=st.integers(0, N - 1))
    def drop_an_interface(self, index):
        self.cluster.faults.nic_down(self.cluster.hosts[index].nics[0])

    @rule(index=st.integers(0, N - 1))
    def restore_an_interface(self, index):
        host = self.cluster.hosts[index]
        if host.alive:
            self.cluster.faults.nic_up(host.nics[0])

    @rule(split=st.integers(1, N - 1))
    def partition_lan(self, split):
        self.cluster.faults.partition(
            self.cluster.lan,
            [self.cluster.hosts[:split], self.cluster.hosts[split:]],
        )

    @rule()
    def heal_lan(self):
        self.cluster.faults.heal(self.cluster.lan)

    @rule(seconds=st.floats(0.2, 3.0))
    def let_time_pass(self, seconds):
        self.cluster.sim.run_for(seconds)

    # ------------------------------------------------------------------
    # corruption rules

    def _live_wack(self, index):
        wack = self.cluster.wacks[index]
        if wack.alive and wack.host.alive:
            return wack
        return None

    def _live_spread(self, index):
        host = self.cluster.hosts[index]
        spread = getattr(host, "spread_daemon", None)
        if host.alive and spread is not None and spread.alive and spread.started:
            return spread
        return None

    @rule(index=st.integers(0, N - 1))
    def corrupt_vip_table(self, index):
        wack = self._live_wack(index)
        if wack is not None:
            self.cluster.faults.corrupt_vip_table(wack)

    @rule(index=st.integers(0, N - 1))
    def corrupt_membership(self, index):
        spread = self._live_spread(index)
        if spread is not None:
            self.cluster.faults.corrupt_membership(spread)

    @rule(index=st.integers(0, N - 1))
    def corrupt_sequence(self, index):
        spread = self._live_spread(index)
        if spread is not None:
            self.cluster.faults.corrupt_sequence(spread)

    @rule(index=st.integers(0, N - 1))
    def corrupt_epoch(self, index):
        spread = self._live_spread(index)
        if spread is not None:
            self.cluster.faults.corrupt_epoch(spread)

    # ------------------------------------------------------------------

    @invariant()
    def coverage_violations_never_persist(self):
        """Debounced Property 1: corruption windows close within grace."""
        if self.cluster is None:
            return
        now = self.cluster.sim.now
        violations = self.cluster.auditor.check_by_view()
        seen = {}
        for violation in violations:
            key = (violation.kind, violation.slot)
            seen[key] = self._first_seen.get(key, now)
            age = now - seen[key]
            assert age < CORRUPT_VIOLATION_GRACE, "unrepaired: {}".format(violation)
        self._first_seen = seen

    def teardown(self):
        if self.cluster is None:
            return
        self.cluster.faults.heal(self.cluster.lan)
        for host in self.cluster.hosts:
            if host.alive:
                for nic in host.nics:
                    self.cluster.faults.nic_up(nic)
        live = [w for w in self.cluster.wacks if w.alive]
        if not live:
            return
        # Properties 1+2 from an arbitrary corrupted state: the audits
        # must still converge the cluster back to exactly-once coverage.
        assert settle_wack(self.cluster, timeout=40.0)
        for wack in live:
            assert wack.machine.state == RUN and wack.mature
        assert self.cluster.auditor.check() == []


StabilizingClusterMachine.TestCase.settings = settings(
    max_examples=10, stateful_step_count=12, deadline=None
)

TestStabilizingCluster = StabilizingClusterMachine.TestCase
