"""Episode-span request-loss accounting: the tentpole's product metric."""

from repro.apps.webcluster import WebClusterScenario
from repro.gcs.config import SpreadConfig
from repro.obs.episodes import extract_episodes, first_complete_episode


def build(flow_users=100_000, seed=17):
    scenario = WebClusterScenario(
        seed=seed,
        n_servers=3,
        n_vips=10,
        spread_config=SpreadConfig.tuned(),
        flow_users=flow_users,
    )
    scenario.start()
    scenario.start_probe()
    assert scenario.run_until_stable()
    return scenario


def test_scripted_vip_kill_reports_nonzero_requests_lost():
    scenario = build()
    scenario.flow_engine.reset_counters()
    fault_time = scenario.sim.now
    scenario.kill_owner_of(scenario.vips[0], mode="nic_down")
    scenario.sim.run_for(12.0)

    episode = first_complete_episode(
        extract_episodes(scenario.sim.trace.records), after=fault_time
    )
    assert episode is not None
    assert episode.requests_lost > 0
    assert episode.goodput_pct is not None
    assert episode.to_dict()["requests_lost"] == episode.requests_lost
    # The engine's own ledger agrees with the episode (one fault, so
    # every lost request belongs to this episode).
    assert episode.requests_lost == scenario.flow_engine.totals()["lost"]


def test_requests_lost_consistent_with_rates_and_outage_window():
    # Acceptance check: lost ~= (pools on the victim) x rate x outage,
    # within one tick of rate. The victim's share of 10 VIPs across 3
    # servers is 3 or 4 pools of 10_000 users each.
    scenario = build()
    scenario.flow_engine.reset_counters()
    fault_time = scenario.sim.now
    victim = scenario.owner_of(scenario.vips[0])
    victim_pools = sum(
        1 for vip in scenario.vips if victim.host.owns_ip(vip)
    )
    scenario.kill_owner_of(scenario.vips[0], mode="nic_down")
    scenario.sim.run_for(12.0)

    episode = first_complete_episode(
        extract_episodes(scenario.sim.trace.records), after=fault_time
    )
    outage = episode.phase_durations()["client_recovery"]
    assert outage is not None and outage > 0
    affected_users = victim_pools * 10_000
    expected = affected_users * 1.0 * outage
    tick_of_rate = affected_users * 1.0 * scenario.flow_engine.tick
    assert abs(episode.requests_lost - expected) <= expected * 0.25 + tick_of_rate


def test_clean_run_reports_zero_requests_lost():
    scenario = build()
    scenario.flow_engine.reset_counters()
    mark = scenario.sim.now
    scenario.sim.run_for(10.0)
    assert scenario.flow_engine.totals()["lost"] == 0
    episodes = [
        e
        for e in extract_episodes(scenario.sim.trace.records)
        if e.trigger_time >= mark
    ]
    assert all(e.requests_lost == 0 for e in episodes)
    # No-flow-loss episodes have no goodput sample at all.
    assert all(e.goodput_pct is None for e in episodes)
