"""Loss-attribution tests for the ARP-view and direct resolvers."""

import pytest

from repro.flow import ArpViewResolver, degradation_factor
from repro.net.fault import FaultInjector
from repro.net.host import Host
from repro.net.lan import Lan
from repro.net.linkfault import GilbertElliott
from repro.sim.simulation import Simulation


def build(n_servers=2):
    sim = Simulation(seed=5)
    lan = Lan(sim, "lan", "10.0.0.0/24")
    servers = []
    for index in range(n_servers):
        host = Host(sim, "s{}".format(index))
        host.add_nic(lan, "10.0.0.{}".format(10 + index))
        servers.append(host)
    client = Host(sim, "client")
    client.add_nic(lan, "10.0.0.200")
    resolver = ArpViewResolver(lan, client, servers)
    return sim, lan, servers, client, resolver


def test_client_needs_a_nic_on_the_lan():
    sim = Simulation(seed=5)
    lan = Lan(sim, "lan", "10.0.0.0/24")
    other = Lan(sim, "other", "10.1.0.0/24")
    client = Host(sim, "client")
    client.add_nic(other, "10.1.0.2")
    with pytest.raises(ValueError):
        ArpViewResolver(lan, client, [])


def test_unbound_vip_is_no_owner():
    sim, lan, servers, client, resolver = build()
    resolver.begin_tick()
    factor, reason, owner = resolver.resolve("10.0.0.100")
    assert (factor, reason, owner) == (0.0, "no_owner", None)


def test_cold_cache_resolves_and_stores_owner():
    sim, lan, servers, client, resolver = build()
    servers[0].nics[0].bind_ip("10.0.0.100")
    resolver.begin_tick()
    factor, reason, owner = resolver.resolve("10.0.0.100")
    assert (factor, reason, owner) == (1.0, None, servers[0])
    assert client.arp.cache.lookup("10.0.0.100") == servers[0].nics[0].mac


def test_stale_arp_after_silent_rebind():
    # The VIP moves but no announcement reaches the client: the warm
    # cache keeps pointing at the old interface — the paper's stale-ARP
    # blackhole, labeled stale_arp because a live owner exists elsewhere.
    sim, lan, servers, client, resolver = build()
    servers[0].nics[0].bind_ip("10.0.0.100")
    resolver.begin_tick()
    resolver.resolve("10.0.0.100")
    servers[0].nics[0].unbind_ip("10.0.0.100")
    servers[1].nics[0].bind_ip("10.0.0.100")
    resolver.begin_tick()
    factor, reason, owner = resolver.resolve("10.0.0.100")
    assert (factor, reason) == (0.0, "stale_arp")


def test_announcement_repairs_the_stale_binding():
    sim, lan, servers, client, resolver = build()
    servers[0].nics[0].bind_ip("10.0.0.100")
    resolver.begin_tick()
    resolver.resolve("10.0.0.100")
    servers[0].nics[0].unbind_ip("10.0.0.100")
    servers[1].nics[0].bind_ip("10.0.0.100")
    # The new owner broadcasts the spoofed reply (§5.1) and the client's
    # cache is repointed by the normal receive path.
    servers[1].arp.announce(servers[1].nics[0], "10.0.0.100")
    sim.run_until_idle()
    resolver.begin_tick()
    factor, reason, owner = resolver.resolve("10.0.0.100")
    assert (factor, reason, owner) == (1.0, None, servers[1])


def test_dead_host_when_no_live_owner_anywhere():
    sim, lan, servers, client, resolver = build()
    servers[0].nics[0].bind_ip("10.0.0.100")
    resolver.begin_tick()
    resolver.resolve("10.0.0.100")
    servers[0].crash()
    resolver.begin_tick()
    factor, reason, owner = resolver.resolve("10.0.0.100")
    assert (factor, reason) == (0.0, "dead_host")


def test_partitioned_client_cannot_reach_owner():
    sim, lan, servers, client, resolver = build()
    servers[0].nics[0].bind_ip("10.0.0.100")
    resolver.begin_tick()
    resolver.resolve("10.0.0.100")
    FaultInjector(sim).partition(lan, [[servers[0]], [servers[1], client]])
    resolver.begin_tick()
    factor, reason, owner = resolver.resolve("10.0.0.100")
    assert (factor, reason) == (0.0, "partitioned")


def test_slow_host_serves_at_reduced_goodput():
    sim, lan, servers, client, resolver = build()
    servers[0].nics[0].bind_ip("10.0.0.100")
    servers[0].time_scale = 4.0
    resolver.begin_tick()
    factor, reason, owner = resolver.resolve("10.0.0.100")
    assert reason == "degraded"
    assert factor == pytest.approx(0.25)
    assert owner is servers[0]


def test_burst_loss_scales_by_expected_loss_squared():
    sim, lan, servers, client, resolver = build()
    servers[0].nics[0].bind_ip("10.0.0.100")
    model = GilbertElliott(
        p_good_to_bad=0.1, p_bad_to_good=0.3, loss_good=0.0, loss_bad=0.8
    )
    FaultInjector(sim).burst_loss_on(lan, model)
    expected = model.expected_loss()
    assert expected == pytest.approx(0.25 * 0.8)
    resolver.begin_tick()
    factor, reason, owner = resolver.resolve("10.0.0.100")
    assert reason == "degraded"
    assert factor == pytest.approx((1.0 - expected) ** 2)


def test_expected_loss_degenerate_chain_uses_current_state():
    frozen = GilbertElliott(p_good_to_bad=0.0, p_bad_to_good=0.0, loss_bad=0.9)
    assert frozen.expected_loss() == 0.0
    frozen.bad = True
    assert frozen.expected_loss() == 0.9


def test_degradation_factor_clean_path_is_unity():
    sim, lan, servers, client, resolver = build()
    assert degradation_factor(lan, servers[0]) == 1.0
    assert degradation_factor(None, None) == 1.0


def test_resolvers_never_draw_rng():
    # Attaching a flow plane must not perturb replay: resolution of
    # every reason path consumes zero draws from the simulation RNG.
    sim, lan, servers, client, resolver = build()
    servers[0].nics[0].bind_ip("10.0.0.100")
    streams_before = len(sim.rng._streams) if hasattr(sim.rng, "_streams") else None
    resolver.begin_tick()
    resolver.resolve("10.0.0.100")
    resolver.resolve("10.0.0.101")
    servers[0].crash()
    resolver.begin_tick()
    resolver.resolve("10.0.0.100")
    if streams_before is not None:
        assert len(sim.rng._streams) == streams_before
