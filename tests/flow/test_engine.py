"""Unit tests for FlowPool and the FlowEngine tick machinery."""

import pytest

from repro.flow import DirectResolver, FlowEngine, FlowPool
from repro.net.host import Host
from repro.net.lan import Lan
from repro.sim.simulation import Simulation


class StaticResolver:
    """Test double: serve every VIP at a fixed factor."""

    def __init__(self, factor=1.0, reason=None, owner=None):
        self.factor = factor
        self.reason = reason
        self.owner = owner
        self.ticks = 0

    def begin_tick(self):
        self.ticks += 1

    def resolve(self, vip):
        return self.factor, self.reason, self.owner


def build_engine(factor=1.0, reason=None, owner=None, **kwargs):
    sim = Simulation(seed=1)
    resolver = StaticResolver(factor, reason, owner)
    engine = FlowEngine(sim, resolver=resolver, **kwargs)
    return sim, engine, resolver


def test_pool_validates_inputs():
    with pytest.raises(ValueError):
        FlowPool("p", "10.0.0.1", users=-1)
    with pytest.raises(ValueError):
        FlowPool("p", "10.0.0.1", users=10, rate=-0.5)


def test_pool_without_any_resolver_is_rejected():
    sim = Simulation(seed=1)
    engine = FlowEngine(sim)
    with pytest.raises(ValueError):
        engine.add_pool(FlowPool("p", "10.0.0.1", users=10))


def test_invalid_tick_is_rejected():
    sim = Simulation(seed=1)
    with pytest.raises(ValueError):
        FlowEngine(sim, resolver=StaticResolver(), tick=0.0)


def test_offered_total_is_exact_over_time():
    # 1000 users * 0.7 req/s * 10 s = 7000 requests, carry-exact even
    # though per-tick demand (35.0) happens to be integral here and
    # fractional in the next case.
    sim, engine, _ = build_engine(tick=0.05)
    pool = engine.add_pool(FlowPool("p", "10.0.0.1", users=1000, rate=0.7))
    engine.start()
    sim.run(until=10.01)
    engine.fingerprint()
    assert pool.offered == 7000
    assert pool.served == 7000
    assert pool.lost == 0


def test_fractional_demand_carries_between_ticks():
    # 7 users * 1 req/s * 0.05 s = 0.35 per tick: requests only emerge
    # as the carry accumulates, but the long-run total stays exact.
    sim, engine, _ = build_engine(tick=0.05)
    pool = engine.add_pool(FlowPool("p", "10.0.0.1", users=7, rate=1.0))
    engine.start()
    sim.run(until=20.01)
    engine.fingerprint()
    assert pool.offered == 140


def test_blackhole_counts_lost_with_reason():
    sim, engine, _ = build_engine(factor=0.0, reason="no_owner")
    engine.add_pool(FlowPool("p", "10.0.0.1", users=100, rate=1.0))
    engine.start()
    sim.run(until=1.01)
    totals = engine.totals()
    assert totals["served"] == 0
    assert totals["lost"] == totals["offered"] > 0
    assert totals["lost_by_reason"] == {"no_owner": totals["lost"]}


def test_degraded_factor_scales_goodput():
    sim, engine, _ = build_engine(factor=0.5, reason="degraded")
    engine.add_pool(FlowPool("p", "10.0.0.1", users=1000, rate=1.0))
    engine.start()
    sim.run(until=2.01)
    totals = engine.totals()
    assert totals["offered"] == 2000
    assert totals["served"] == 1000
    assert engine.goodput_pct() == 50.0


def test_require_gate_converts_served_to_no_route():
    sim = Simulation(seed=1)
    owner = object()
    resolver = StaticResolver(1.0, None, owner)
    engine = FlowEngine(sim, resolver=resolver)
    engine.add_pool(
        FlowPool("p", "10.0.0.1", users=100, rate=1.0, require=lambda host: False)
    )
    engine.start()
    sim.run(until=1.01)
    totals = engine.totals()
    assert totals["served"] == 0
    assert totals["lost_by_reason"] == {"no_route": totals["lost"]}


def test_one_resolve_per_distinct_vip_per_tick():
    sim, engine, resolver = build_engine()
    calls = []
    original = resolver.resolve

    def counting(vip):
        calls.append(str(vip))
        return original(vip)

    resolver.resolve = counting
    engine.add_pool(FlowPool("a", "10.0.0.1", users=10))
    engine.add_pool(FlowPool("b", "10.0.0.1", users=10))
    engine.add_pool(FlowPool("c", "10.0.0.2", users=10))
    engine.start()
    sim.run(until=0.05)
    assert sorted(calls) == ["10.0.0.1", "10.0.0.2"]
    assert resolver.ticks == 1


def test_reset_counters_scopes_totals_but_keeps_carry():
    sim, engine, _ = build_engine(tick=0.05)
    pool = engine.add_pool(FlowPool("p", "10.0.0.1", users=7, rate=1.0))
    engine.start()
    sim.run(until=1.03)
    engine.reset_counters()
    carry_after_reset = pool.carry
    assert pool.offered == 0
    assert engine.totals()["offered"] == 0
    sim.run(until=21.03)
    engine.fingerprint()
    # 7 users over exactly 20 more seconds: the surviving carry keeps
    # the window total exact.
    assert pool.offered == 140
    assert 0.0 <= carry_after_reset < 1.0


def test_stop_flow_halts_ticking():
    sim, engine, _ = build_engine()
    engine.add_pool(FlowPool("p", "10.0.0.1", users=100))
    engine.start()
    sim.run(until=1.0)
    engine.stop_flow()
    before = engine.totals()["offered"]
    sim.run(until=2.0)
    assert engine.totals()["offered"] == before


def test_metrics_counters_land_in_totals():
    sim, engine, _ = build_engine(factor=0.0, reason="no_owner")
    engine.add_pool(FlowPool("p", "10.0.0.1", users=100))
    engine.start()
    sim.run(until=1.01)
    totals = sim.metrics.totals()
    assert totals["flow.ticks"] == 20
    assert totals["flow.requests_offered"] == 100
    assert totals["flow.requests_lost"] == 100
    assert "flow.requests_served" not in totals or totals["flow.requests_served"] == 0


def test_direct_resolver_follows_live_bindings():
    sim = Simulation(seed=2)
    lan = Lan(sim, "lan", "10.0.0.0/24")
    owner = Host(sim, "s0")
    owner.add_nic(lan, "10.0.0.1")
    bindings = [("10.0.0.100", owner)]
    resolver = DirectResolver(lambda: iter(bindings))
    engine = FlowEngine(sim, resolver=resolver)
    engine.add_pool(FlowPool("p", "10.0.0.100", users=100, rate=1.0))
    engine.start()
    sim.run(until=1.0)
    assert engine.totals()["lost"] == 0
    owner.crash()
    sim.run(until=2.0)
    totals = engine.totals()
    assert totals["lost_by_reason"] == {"no_owner": totals["lost"]}
    assert totals["lost"] > 0
