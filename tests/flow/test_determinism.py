"""The flow plane's determinism contract.

Double runs of the same seed must produce byte-identical fingerprints;
the numpy and pure-python backends must agree bit-for-bit on identical
seeds (including with demand jitter, which exercises the shared RNG
path); and a ``repro check`` trial carrying flow totals must replay
byte-identically through the artifact comparison fields.
"""

import json

from repro.apps.webcluster import WebClusterScenario
from repro.check.replay import ReplayReport
from repro.check.schedule import CRASH, FaultEvent, FaultSchedule
from repro.check.trial import make_spec, run_trial
from repro.flow import FlowEngine, FlowPool
from repro.gcs.config import SpreadConfig
from repro.sim.simulation import Simulation


def run_web_failover(seed, use_numpy=None, users=50_000):
    scenario = WebClusterScenario(
        seed=seed,
        n_servers=3,
        n_vips=6,
        spread_config=SpreadConfig.tuned(),
        flow_users=users,
        flow_use_numpy=use_numpy,
    )
    scenario.start()
    assert scenario.run_until_stable()
    scenario.kill_owner_of(scenario.vips[0], mode="nic_down")
    scenario.sim.run_for(8.0)
    return scenario


def fingerprint_bytes(scenario):
    return json.dumps(scenario.flow_engine.fingerprint(), sort_keys=True)


def test_double_run_fingerprints_byte_identical():
    first = fingerprint_bytes(run_web_failover(11))
    second = fingerprint_bytes(run_web_failover(11))
    assert first == second


def test_numpy_and_pure_python_backends_agree():
    auto = run_web_failover(13)
    pure = run_web_failover(13, use_numpy=False)
    assert auto.flow_engine.use_numpy != pure.flow_engine.use_numpy or not auto.flow_engine.use_numpy
    assert fingerprint_bytes(auto) == fingerprint_bytes(pure)
    # The whole simulation, not just the engine, must agree: metrics
    # totals include every layer the flow plane touched.
    assert auto.sim.metrics.totals() == pure.sim.metrics.totals()


def test_backend_parity_with_demand_jitter():
    # Jitter draws from the engine's named stream; both backends must
    # consume the identical draw sequence and produce identical floats.
    def run(use_numpy):
        sim = Simulation(seed=21)
        engine = FlowEngine(
            sim, resolver=_AlwaysServe(), jitter=0.2, use_numpy=use_numpy
        )
        for index in range(17):
            engine.add_pool(
                FlowPool("p{}".format(index), "10.0.0.{}".format(1 + index), 1000 + index * 37, rate=0.9)
            )
        engine.start()
        sim.run(until=5.0)
        return json.dumps(engine.fingerprint(), sort_keys=True)

    assert run(True) == run(False)


class _AlwaysServe:
    def begin_tick(self):
        pass

    def resolve(self, vip):
        return 1.0, None, None


def test_flow_rng_stream_is_dedicated_and_named():
    sim = Simulation(seed=3)
    engine = FlowEngine(sim, resolver=_AlwaysServe(), jitter=0.1, name="web")
    engine.add_pool(FlowPool("p", "10.0.0.1", users=100))
    engine.start()
    sim.run(until=0.1)
    assert "flow@web/demand" in sim.rng.stream_names()


def test_check_trial_with_flow_totals_replays_byte_identically():
    schedule = FaultSchedule(
        [FaultEvent(CRASH, 2.0, host=1, duration=6.0)], horizon=20.0
    )
    spec = make_spec(4242, schedule, flow_users=20_000)
    result = run_trial(spec)
    assert result["verdict"] == "pass"
    assert "flow" in result
    assert result["flow"]["offered"] > 0
    assert result["metrics"]["flow.requests_offered"] == result["flow"]["offered"]
    artifact = {"spec": spec, "result": result}
    report = ReplayReport(artifact, run_trial(spec))
    assert report.match, "replay diverged on: {}".format(report.diffs)


def test_trials_without_flow_are_untouched():
    # flow_users=0 must not change historical trial results at all: no
    # engine, no flow key, no flow metrics.
    schedule = FaultSchedule(
        [FaultEvent(CRASH, 2.0, host=1, duration=6.0)], horizon=20.0
    )
    result = run_trial(make_spec(4242, schedule))
    assert "flow" not in result
    assert not any(name.startswith("flow.") for name in result["metrics"])
