"""The `repro lint` subcommand end to end."""

import json
import os

import pytest

from repro.cli import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)
SRC = os.path.join(REPO_ROOT, "src", "repro")
BASELINE = os.path.join(REPO_ROOT, "lint-baseline.json")


def run_cli(argv):
    lines = []
    code = main(argv, out=lines.append)
    return code, "\n".join(str(line) for line in lines)


def fixture(name):
    return os.path.join(FIXTURES, name)


BAD_FIXTURE_ARGS = [
    ("DET001", [fixture("det001_bad.py")]),
    ("DET002", [fixture("det002_bad.py")]),
    ("DET003", [fixture("det003_bad.py")]),
    ("DET004", [fixture("det004_bad.py")]),
    (
        "PROTO001",
        [
            fixture("proto001_bad"),
            "--protocol",
            "proto001_bad/messages.py:proto001_bad/daemon.py",
        ],
    ),
    ("DET005", [fixture("det005_bad.py"), "--sim-restrict", "fixtures"]),
    ("DET006", [fixture("det006_bad.py"), "--sim-restrict", "fixtures"]),
    ("SHARD001", [fixture("shard001_bad.py"), "--sim-restrict", "fixtures"]),
    ("SIM001", [fixture("sim001_bad.py"), "--sim-restrict", "fixtures"]),
]

ALL_CODES = (
    "DET001",
    "DET002",
    "DET003",
    "DET004",
    "DET005",
    "DET006",
    "PROTO001",
    "PROTO002",
    "PROTO003",
    "SHARD001",
    "SIM001",
)


@pytest.mark.parametrize("code,args", BAD_FIXTURE_ARGS, ids=[c for c, _ in BAD_FIXTURE_ARGS])
def test_cli_exits_nonzero_on_each_bad_fixture(code, args):
    exit_code, output = run_cli(["lint", "--no-baseline"] + args)
    assert exit_code == 1
    assert code in output


def test_cli_exits_zero_on_good_fixtures():
    exit_code, output = run_cli(
        [
            "lint",
            "--no-baseline",
            fixture("det001_good.py"),
            fixture("det002_good.py"),
            fixture("det003_good.py"),
            fixture("det004_good.py"),
            fixture("sim001_good.py"),
            fixture("proto001_good"),
            "--protocol",
            "proto001_good/messages.py:proto001_good/daemon.py",
            "--sim-restrict",
            "fixtures",
        ]
    )
    assert exit_code == 0, output


def test_cli_json_format(tmp_path):
    exit_code, output = run_cli(
        ["lint", "--no-baseline", "--format", "json", fixture("det002_bad.py")]
    )
    assert exit_code == 1
    payload = json.loads(output)
    assert payload["format"] == "repro-lint/1"
    assert all(f["rule"] == "DET002" for f in payload["findings"])


def test_cli_update_baseline_roundtrip(tmp_path):
    baseline = tmp_path / "baseline.json"
    args = ["lint", fixture("det002_bad.py"), "--baseline", str(baseline)]
    exit_code, _ = run_cli(args)
    assert exit_code == 1
    exit_code, output = run_cli(args + ["--update-baseline"])
    assert exit_code == 0
    assert "baseline updated" in output
    exit_code, _ = run_cli(args)
    assert exit_code == 0
    # --no-baseline still reports everything.
    exit_code, _ = run_cli(args + ["--no-baseline"])
    assert exit_code == 1


def test_cli_list_rules():
    exit_code, output = run_cli(["lint", "--list-rules"])
    assert exit_code == 0
    for code in ALL_CODES:
        assert code in output


@pytest.mark.parametrize("code", ALL_CODES)
def test_cli_explain_every_rule(code):
    exit_code, output = run_cli(["lint", "--explain", code])
    assert exit_code == 0
    assert output.startswith(code)
    assert "bad:" in output
    assert "good:" in output


def test_cli_explain_is_case_insensitive():
    exit_code, output = run_cli(["lint", "--explain", "det005"])
    assert exit_code == 0
    assert output.startswith("DET005")


def test_cli_explain_unknown_code_fails():
    exit_code, output = run_cli(["lint", "--explain", "NOPE999"])
    assert exit_code == 1
    assert "unknown rule" in output


def test_cli_state_machines_json():
    exit_code, output = run_cli(["lint", SRC, "--state-machines"])
    assert exit_code == 0
    payload = json.loads(output)
    assert payload["format"] == "repro-state-machines/1"
    names = [m["name"] for m in payload["machines"]]
    assert names == sorted(names)
    assert "gcs.daemon" in names


def test_cli_state_machines_matches_committed_artifact():
    """CI diffs this artifact; the committed copy must never drift."""
    exit_code, output = run_cli(["lint", SRC, "--state-machines"])
    assert exit_code == 0
    with open(os.path.join(REPO_ROOT, "docs", "state-machines.json")) as handle:
        assert json.load(handle) == json.loads(output)


def test_cli_rejects_malformed_protocol_spec():
    with pytest.raises(SystemExit):
        run_cli(["lint", fixture("det001_good.py"), "--protocol", "nonsense"])


def test_repo_tree_is_clean_with_committed_baseline():
    """Acceptance: `repro lint src/repro` exits 0 on the committed tree."""
    exit_code, output = run_cli(["lint", SRC, "--baseline", BASELINE])
    assert exit_code == 0, output
