"""The flow layers under the rules: call graph, dataflow, state machines."""

import json
import os

from repro.analysis import LintConfig, load_project, render_state_machines
from repro.analysis.callgraph import module_dotted_name

REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)
SRC = os.path.join(REPO_ROOT, "src", "repro")
GOLDEN = os.path.join(REPO_ROOT, "docs", "state-machines.json")


def project_from(tmp_path, files):
    for name, source in files.items():
        (tmp_path / name).write_text(source)
    return load_project(
        [str(tmp_path / name) for name in files], LintConfig()
    )


class TestModuleNames:
    def test_repro_tree_paths_get_package_dotted_names(self):
        assert module_dotted_name("src/repro/gcs/daemon.py") == "repro.gcs.daemon"
        assert module_dotted_name("src/repro/net/__init__.py") == "repro.net"

    def test_loose_files_use_their_stem(self):
        assert module_dotted_name("tests/analysis/fixtures/x.py") == "x"


class TestCallGraphResolution:
    def test_bare_name_resolves_to_module_function(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "mod.py": (
                    "def helper():\n"
                    "    return 1\n"
                    "\n"
                    "def caller():\n"
                    "    return helper()\n"
                )
            },
        )
        graph = project.callgraph()
        assert graph.edges["mod.caller"] == ["mod.helper"]
        assert graph.callers_of("mod.helper") == ["mod.caller"]

    def test_self_method_resolves_through_inheritance(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "mod.py": (
                    "class Base:\n"
                    "    def step(self):\n"
                    "        return 0\n"
                    "\n"
                    "class Child(Base):\n"
                    "    def run(self):\n"
                    "        return self.step()\n"
                )
            },
        )
        graph = project.callgraph()
        assert graph.edges["mod.Child.run"] == ["mod.Base.step"]

    def test_imported_module_attribute_resolves(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "util.py": "def pick():\n    return 2\n",
                "app.py": (
                    "import util\n"
                    "\n"
                    "def go():\n"
                    "    return util.pick()\n"
                ),
            },
        )
        graph = project.callgraph()
        assert graph.edges["app.go"] == ["util.pick"]

    def test_constructor_call_records_class_and_init(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "mod.py": (
                    "class Widget:\n"
                    "    def __init__(self):\n"
                    "        self.size = 0\n"
                    "\n"
                    "def make():\n"
                    "    return Widget()\n"
                )
            },
        )
        graph = project.callgraph()
        assert graph.constructs["mod.make"] == ["mod.Widget"]
        assert graph.edges["mod.make"] == ["mod.Widget.__init__"]

    def test_unresolvable_calls_produce_no_edges(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "mod.py": (
                    "def go(thing):\n"
                    "    thing.spin()\n"
                    "    return unknown()\n"
                )
            },
        )
        assert project.callgraph().edges["mod.go"] == []

    def test_reaching_classes_crosses_module_functions(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "mod.py": (
                    "def shared():\n"
                    "    return 1\n"
                    "\n"
                    "class Alpha:\n"
                    "    def tick(self):\n"
                    "        return shared()\n"
                    "\n"
                    "class Beta:\n"
                    "    def tick(self):\n"
                    "        return shared()\n"
                )
            },
        )
        graph = project.callgraph()
        assert graph.reaching_classes("mod.shared") == ["mod.Alpha", "mod.Beta"]


class TestDataflow:
    def test_param_escape_direct_and_through_call(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "mod.py": (
                    "_CACHE = {}\n"
                    "\n"
                    "def store(item):\n"
                    "    _CACHE['last'] = item\n"
                    "\n"
                    "def relay(thing):\n"
                    "    store(thing)\n"
                    "\n"
                    "def consume(value):\n"
                    "    return value + 1\n"
                )
            },
        )
        dataflow = project.dataflow()
        assert dataflow.param_escapes("mod.store", "item")
        # escape propagates one call deep through the fixed point
        assert dataflow.param_escapes("mod.relay", "thing")
        assert not dataflow.param_escapes("mod.consume", "value")

    def test_call_results_are_new_values_not_captures(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "mod.py": (
                    "def draw(rng):\n"
                    "    return rng.random()\n"
                    "\n"
                    "class Box:\n"
                    "    def fill(self, rng):\n"
                    "        self.value = draw(rng)\n"
                )
            },
        )
        dataflow = project.dataflow()
        # storing draw(rng)'s *result* does not capture rng itself
        assert not dataflow.param_escapes("mod.Box.fill", "rng")

    def test_global_mutators_are_sorted_and_module_scoped(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "mod.py": (
                    "_QUEUE = []\n"
                    "\n"
                    "def push(x):\n"
                    "    _QUEUE.append(x)\n"
                    "\n"
                    "def drop():\n"
                    "    _QUEUE.pop()\n"
                )
            },
        )
        dataflow = project.dataflow()
        path = next(iter(dataflow.mutable_globals))
        assert dataflow.mutable_globals[path] == {"_QUEUE"}
        assert dataflow.global_mutators(path, "_QUEUE") == [
            "mod.drop",
            "mod.push",
        ]

    def test_two_builds_summarize_identically(self, tmp_path):
        source = {
            "mod.py": (
                "_STATE = {}\n"
                "\n"
                "class Node:\n"
                "    def record(self, key, value):\n"
                "        self.log = value\n"
                "        _STATE[key] = value\n"
            )
        }
        first = project_from(tmp_path, source).dataflow()
        second = load_project(
            [str(tmp_path / "mod.py")], LintConfig()
        ).dataflow()
        as_dict = lambda df: {q: s.to_dict() for q, s in df.summaries.items()}
        assert as_dict(first) == as_dict(second)


class TestStateMachineArtifact:
    def render(self):
        config = LintConfig()
        project = load_project([SRC], config)
        return render_state_machines(project, config)

    def test_double_render_is_byte_identical(self):
        first = json.dumps(self.render(), indent=2, sort_keys=True)
        second = json.dumps(self.render(), indent=2, sort_keys=True)
        assert first == second

    def test_committed_golden_file_matches_regeneration(self):
        with open(GOLDEN, encoding="utf-8") as handle:
            committed = json.load(handle)
        assert committed == self.render()

    def test_daemon_machine_golden_shape(self):
        machines = {m["name"]: m for m in self.render()["machines"]}
        daemon = machines["gcs.daemon"]
        assert daemon["kind"] == "dispatch"
        assert daemon["class"] == "SpreadDaemon"
        assert daemon["dispatcher"] == "_on_datagram"
        assert daemon["unhandled"] == []
        assert not daemon["has_default_arm"]
        # every wire kind of the messages module has exactly its arm
        assert set(daemon["arms"]) == set(daemon["message_kinds"])
        assert daemon["arms"]["OrderedMsg"] == ["self._on_ordered"]
        assert "self.membership.on_join" in daemon["arms"]["JoinMsg"]

    def test_membership_machine_states_and_guards(self):
        machines = {m["name"]: m for m in self.render()["machines"]}
        membership = machines["gcs.membership"]
        assert membership["kind"] == "states"
        assert membership["states"] == [
            "ack_sent",
            "form_sent",
            "gather",
            "operational",
        ]
        on_ack = membership["handlers"]["on_ack"]
        assert on_ack["guards"] == ["form_sent"]

    def test_declared_machine_lists_all_transitions(self):
        machines = {m["name"]: m for m in self.render()["machines"]}
        wackamole = machines["core.wackamole"]
        assert wackamole["kind"] == "declared"
        assert wackamole["states"] == ["BALANCE", "GATHER", "RUN"]
        assert len(wackamole["transitions"]) == 7
