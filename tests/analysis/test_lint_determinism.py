"""The linter must hold itself to the replay standard.

Two complete runs over the repository tree must produce byte-identical
JSON reports — the same property :mod:`repro.check` demands of the
protocol, asserted here so `tests/check`-style flakiness can never
creep into the lint gate itself.
"""

import os
import subprocess
import sys

from repro.analysis import Baseline, LintConfig, Linter
from repro.analysis.report import render_json

REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)
SRC = os.path.join(REPO_ROOT, "src", "repro")
BASELINE = os.path.join(REPO_ROOT, "lint-baseline.json")


def test_two_in_process_runs_are_byte_identical():
    baseline = Baseline.load(BASELINE)
    first = render_json(Linter(LintConfig()).run([SRC], baseline=baseline))
    second = render_json(Linter(LintConfig()).run([SRC], baseline=baseline))
    assert first == second


def test_two_subprocess_runs_are_byte_identical():
    """Fresh interpreters (fresh hash seeds) must agree byte for byte."""
    def run():
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        env.pop("PYTHONHASHSEED", None)
        return subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "lint",
                SRC,
                "--baseline",
                BASELINE,
                "--format",
                "json",
            ],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            check=False,
        )

    first, second = run(), run()
    assert first.returncode == 0, first.stdout + first.stderr
    assert second.returncode == 0
    assert first.stdout == second.stdout
    assert first.stdout.strip()


def test_report_embeds_no_wall_clock():
    """No timestamps or durations in the report (they would break the
    byte-identical guarantee)."""
    result = Linter(LintConfig()).run([SRC], baseline=Baseline.load(BASELINE))
    text = render_json(result)
    for banned in ("time", "date", "elapsed", "duration"):
        assert '"{}":'.format(banned) not in text
