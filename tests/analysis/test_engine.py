"""Engine mechanics: suppressions, baseline workflow, reporters."""

import json
import os

from repro.analysis import Baseline, LintConfig, Linter, get_rule
from repro.analysis.findings import assign_fingerprints
from repro.analysis.report import render_json, render_text
from repro.analysis.suppress import is_suppressed, parse_suppressions


def _lint_source(tmp_path, source, code="DET002", **config_kwargs):
    path = tmp_path / "snippet.py"
    path.write_text(source)
    config = LintConfig(
        wallclock_exempt=[], random_exempt=[], **config_kwargs
    )
    linter = Linter(config, rules=[get_rule(code)])
    return linter.run([str(path)], baseline=Baseline())


class TestSuppressions:
    def test_allow_comment_suppresses_the_named_rule(self, tmp_path):
        result = _lint_source(
            tmp_path, "import random  # repro: allow det002\n"
        )
        assert result.findings == []
        assert len(result.suppressed) == 1
        assert result.ok

    def test_allow_comment_is_rule_specific(self, tmp_path):
        result = _lint_source(
            tmp_path, "import random  # repro: allow det001\n"
        )
        assert len(result.findings) == 1
        assert not result.ok

    def test_allow_star_suppresses_everything(self, tmp_path):
        result = _lint_source(tmp_path, "import random  # repro: allow *\n")
        assert result.findings == []

    def test_allow_comment_covers_multiple_rules(self):
        table = parse_suppressions(["x = 1  # repro: allow det001, det004"])
        assert is_suppressed(table, 1, "DET001")
        assert is_suppressed(table, 1, "det004")
        assert not is_suppressed(table, 1, "DET002")
        assert not is_suppressed(table, 2, "DET001")

    def test_allow_comment_accepts_a_reason_suffix(self, tmp_path):
        result = _lint_source(
            tmp_path,
            "import random  # repro: allow DET002 -- vendored demo, "
            "never replayed\n",
        )
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_reason_suffix_does_not_widen_the_allowance(self):
        table = parse_suppressions(
            ["x = 1  # repro: allow det001 -- det002 mentioned in prose"]
        )
        assert is_suppressed(table, 1, "DET001")
        assert not is_suppressed(table, 1, "DET002")


class TestBaseline:
    def test_baselined_findings_do_not_fail_the_run(self, tmp_path):
        path = tmp_path / "snippet.py"
        path.write_text("import random\n")
        linter = Linter(
            LintConfig(random_exempt=[]), rules=[get_rule("DET002")]
        )
        first = linter.run([str(path)], baseline=Baseline())
        assert not first.ok
        baseline = Baseline.from_findings(assign_fingerprints(first.findings))
        second = linter.run([str(path)], baseline=baseline)
        assert second.ok
        assert len(second.baselined) == len(first.findings)

    def test_new_findings_still_fail_a_baselined_run(self, tmp_path):
        path = tmp_path / "snippet.py"
        path.write_text("import random\n")
        linter = Linter(
            LintConfig(random_exempt=[]), rules=[get_rule("DET002")]
        )
        baseline = Baseline.from_findings(
            assign_fingerprints(linter.run([str(path)]).findings)
        )
        path.write_text("import random\nvalue = random.random()\n")
        result = linter.run([str(path)], baseline=baseline)
        assert len(result.baselined) == 1  # the import survives the edit
        assert len(result.findings) == 1  # the new call is reported
        assert not result.ok

    def test_baseline_is_stable_across_unrelated_line_shifts(self, tmp_path):
        path = tmp_path / "snippet.py"
        path.write_text("import random\n")
        linter = Linter(
            LintConfig(random_exempt=[]), rules=[get_rule("DET002")]
        )
        baseline = Baseline.from_findings(
            assign_fingerprints(linter.run([str(path)]).findings)
        )
        path.write_text("'''docstring pushes the import down'''\n\nimport random\n")
        result = linter.run([str(path)], baseline=baseline)
        assert result.ok

    def test_round_trip_through_disk(self, tmp_path):
        path = tmp_path / "snippet.py"
        path.write_text("import random\n")
        linter = Linter(
            LintConfig(random_exempt=[]), rules=[get_rule("DET002")]
        )
        baseline = Baseline.from_findings(
            assign_fingerprints(linter.run([str(path)]).findings)
        )
        baseline_path = tmp_path / "baseline.json"
        baseline.save(str(baseline_path))
        loaded = Baseline.load(str(baseline_path))
        assert loaded.entries == baseline.entries
        assert linter.run([str(path)], baseline=loaded).ok

    def test_missing_baseline_file_is_empty(self, tmp_path):
        assert len(Baseline.load(str(tmp_path / "absent.json"))) == 0


class TestReporters:
    def test_json_report_is_valid_and_sorted(self, tmp_path):
        result = _lint_source(tmp_path, "import random\nimport random\n")
        payload = json.loads(render_json(result))
        assert payload["format"] == "repro-lint/1"
        assert payload["summary"]["findings"] == 2
        locations = [(f["path"], f["line"]) for f in payload["findings"]]
        assert locations == sorted(locations)

    def test_text_report_names_rule_and_location(self, tmp_path):
        result = _lint_source(tmp_path, "import random\n")
        text = render_text(result)
        assert "DET002" in text
        assert "snippet.py:1:" in text
        assert "FAILED" in text

    def test_clean_text_report(self, tmp_path):
        result = _lint_source(tmp_path, "VALUE = 1\n")
        assert "clean" in render_text(result)


class TestParseErrors:
    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n")
        result = Linter(LintConfig()).run([str(path)], baseline=Baseline())
        assert len(result.parse_errors) == 1
        assert result.parse_errors[0].rule == "PARSE"
        assert not result.ok


def test_collect_files_is_sorted_and_unique(tmp_path):
    from repro.analysis.engine import collect_files

    (tmp_path / "b.py").write_text("")
    (tmp_path / "a.py").write_text("")
    sub = tmp_path / "pkg"
    os.makedirs(str(sub))
    (sub / "c.py").write_text("")
    files = collect_files([str(tmp_path), str(tmp_path / "a.py")])
    assert files == sorted(files)
    assert len(files) == len(set(files)) == 3
