"""Every rule: at least one failing and one passing fixture.

The fixtures under ``tests/analysis/fixtures/`` are parsed, never
imported; each known-bad file must trip exactly its own rule and each
known-good file must be clean under the *full* rule set (so the CLI
exit-code tests can reuse them).
"""

import os

import pytest

from repro.analysis import Baseline, LintConfig, Linter, ProtocolSpec, get_rule
from repro.analysis.statemachine import StateMachineSpec

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture(name):
    return os.path.join(FIXTURES, name)


def fixture_config():
    """A LintConfig aimed at the fixture tree instead of src/repro."""
    return LintConfig(
        protocols=[
            ProtocolSpec("proto001_bad/messages.py", ["proto001_bad/daemon.py"]),
            ProtocolSpec("proto001_good/messages.py", ["proto001_good/daemon.py"]),
        ],
        sim_restricted=["fixtures"],
        wallclock_exempt=[],
        random_exempt=[],
        state_machines=[
            StateMachineSpec(
                "fixture.proto002_bad", "states", "proto002_bad.py", "Machine"
            ),
            StateMachineSpec(
                "fixture.proto002_good", "states", "proto002_good.py", "Machine"
            ),
            StateMachineSpec(
                "fixture.proto003_bad", "states", "proto003_bad.py", "Machine"
            ),
            StateMachineSpec(
                "fixture.proto003_good", "states", "proto003_good.py", "Machine"
            ),
        ],
    )


def run_rule(code, paths):
    linter = Linter(fixture_config(), rules=[get_rule(code)])
    result = linter.run(paths, baseline=Baseline())
    assert not result.parse_errors, result.parse_errors
    return result.findings


CASES = [
    ("DET001", "det001_bad.py", "det001_good.py"),
    ("DET002", "det002_bad.py", "det002_good.py"),
    ("DET003", "det003_bad.py", "det003_good.py"),
    ("DET004", "det004_bad.py", "det004_good.py"),
    ("DET005", "det005_bad.py", "det005_good.py"),
    ("DET006", "det006_bad.py", "det006_good.py"),
    ("PROTO001", "proto001_bad", "proto001_good"),
    ("PROTO002", "proto002_bad.py", "proto002_good.py"),
    ("PROTO003", "proto003_bad.py", "proto003_good.py"),
    ("SHARD001", "shard001_bad.py", "shard001_good.py"),
    ("SIM001", "sim001_bad.py", "sim001_good.py"),
]


@pytest.mark.parametrize("code,bad,good", CASES, ids=[c[0] for c in CASES])
def test_rule_flags_bad_fixture(code, bad, good):
    findings = run_rule(code, [fixture(bad)])
    assert findings, "expected {} findings in {}".format(code, bad)
    assert all(f.rule == code for f in findings)


@pytest.mark.parametrize("code,bad,good", CASES, ids=[c[0] for c in CASES])
def test_rule_passes_good_fixture(code, bad, good):
    findings = run_rule(code, [fixture(good)])
    assert findings == [], "unexpected findings: {}".format(findings)


@pytest.mark.parametrize("code,bad,good", CASES, ids=[c[0] for c in CASES])
def test_good_fixture_clean_under_full_rule_set(code, bad, good):
    linter = Linter(fixture_config())
    result = linter.run([fixture(good)], baseline=Baseline())
    assert result.findings == [], result.findings


def test_det001_counts():
    findings = run_rule("DET001", [fixture("det001_bad.py")])
    # time.time, monotonic x2, datetime.now
    assert len(findings) == 4


def test_det003_flags_each_escape_shape():
    findings = run_rule("DET003", [fixture("det003_bad.py")])
    lines = {f.line for f in findings}
    # list(set), for-over-frozenset w/ append, join(setcomp),
    # listcomp-over-set, .values() loop w/ update, .items() loop w/
    # append, tuple(set attr)
    assert len(findings) >= 7, findings
    assert len(lines) >= 7


def test_proto001_names_the_missing_class():
    findings = run_rule("PROTO001", [fixture("proto001_bad")])
    assert len(findings) == 1
    assert "PingMsg" in findings[0].message
    assert findings[0].path.endswith("proto001_bad/messages.py")


def test_proto001_not_wire_marker_opts_out():
    findings = run_rule("PROTO001", [fixture("proto001_bad")])
    assert all("SessionView" not in f.message for f in findings)


def test_sim001_only_applies_inside_restricted_dirs():
    config = LintConfig(sim_restricted=["somewhere/else"])
    linter = Linter(config, rules=[get_rule("SIM001")])
    result = linter.run([fixture("sim001_bad.py")], baseline=Baseline())
    assert result.findings == []


def test_det005_flags_each_leak_shape():
    findings = run_rule("DET005", [fixture("det005_bad.py")])
    messages = "\n".join(f.message for f in findings)
    assert "another object's method" in messages
    assert "captured by `DropModel(...)`" in messages
    assert "escapes through `stash`" in messages
    assert "unseeded Random()" in messages
    assert len(findings) == 4, findings


def test_det006_counts_defaults_and_class_containers():
    findings = run_rule("DET006", [fixture("det006_bad.py")])
    # class-level list, mutable positional default, mutable kw-only default
    assert len(findings) == 3, findings


def test_shard001_names_both_reaching_classes():
    findings = run_rule("SHARD001", [fixture("shard001_bad.py")])
    messages = "\n".join(f.message for f in findings)
    assert "`global _TOTAL` rebind" in messages
    assert "Alpha" in messages and "Beta" in messages
    assert "Registry.instances" in messages


def test_proto002_names_the_missing_state():
    findings = run_rule("PROTO002", [fixture("proto002_bad.py")])
    assert len(findings) == 1, findings
    assert "syncing" in findings[0].message


def test_proto003_flags_foreign_and_nonconstant_writes():
    findings = run_rule("PROTO003", [fixture("proto003_bad.py")])
    assert len(findings) == 2, findings
    messages = "\n".join(f.message for f in findings)
    assert "peer" in messages
    assert "non-constant" in messages


def test_rules_on_repo_protocol_defaults():
    """The repo's own messages modules satisfy PROTO001 out of the box."""
    root = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
    linter = Linter(LintConfig(), rules=[get_rule("PROTO001")])
    result = linter.run(
        [
            os.path.normpath(os.path.join(root, "src", "repro", "gcs")),
            os.path.normpath(os.path.join(root, "src", "repro", "core")),
        ],
        baseline=Baseline(),
    )
    assert result.findings == [], result.findings


def edge_config(**overrides):
    """fixture_config plus a scoped sim_edge allowance."""
    config = fixture_config()
    return LintConfig(
        protocols=config.protocols,
        sim_restricted=config.sim_restricted,
        wallclock_exempt=config.wallclock_exempt,
        random_exempt=config.random_exempt,
        state_machines=config.state_machines,
        **overrides
    )


def test_sim001_edge_allowance_is_per_file_with_reason():
    config = edge_config(
        sim_edge=(("sim001_bad.py", "declared process-boundary module"),)
    )
    linter = Linter(config, rules=[get_rule("SIM001")])
    result = linter.run([fixture("sim001_bad.py")], baseline=Baseline())
    assert result.findings == []
    # The reason is on record for exactly that file, nothing else.
    assert config.edge_reason("fixtures/sim001_bad.py") == (
        "declared process-boundary module"
    )
    assert config.edge_reason("fixtures/other.py") is None
    # Suffix matching is per path segment: no accidental widening.
    assert config.edge_reason("fixtures/prefix_sim001_bad.py") is None


def test_shard001_edge_allowance_skips_scope():
    config = edge_config(sim_edge=(("shard001_bad.py", "worker pool"),))
    linter = Linter(config, rules=[get_rule("SHARD001")])
    result = linter.run([fixture("shard001_bad.py")], baseline=Baseline())
    assert result.findings == []


def test_default_sim_edge_names_only_the_worker_pool():
    from repro.analysis.engine import DEFAULT_SIM_EDGE

    config = LintConfig()
    assert [suffix for suffix, _ in DEFAULT_SIM_EDGE] == [
        "repro/sim/shard/pool.py"
    ]
    for suffix, reason in DEFAULT_SIM_EDGE:
        assert reason  # every allowance carries its justification
    # The rest of the shard package stays fully restricted.
    assert config.edge_reason("src/repro/sim/shard/pool.py") is not None
    assert config.edge_reason("src/repro/sim/shard/kernel.py") is None
    assert config.edge_reason("src/repro/sim/shard/merge.py") is None
