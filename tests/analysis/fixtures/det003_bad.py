"""Known-bad DET003 fixture: unordered iteration escaping in order."""


def members_list(alive):
    peers = set(alive)
    return list(peers)


def trace_members(trace, alive):
    peers = frozenset(alive)
    for peer in peers:
        trace.append(peer)


def render(alive):
    names = {name for name in alive}
    return ", ".join(names)


def first_two(alive):
    peers = set(alive)
    return [name for name in peers][:2]


class Gatherer:
    def __init__(self):
        self._acks = {}
        self._alive = set()

    def on_ack(self, sender, digest):
        self._acks[sender] = digest

    def union_messages(self):
        merged = {}
        for digest in self._acks.values():
            merged.update(digest)
        return merged

    def roster(self, out):
        for sender, digest in self._acks.items():
            out.append((sender, digest))
        return out

    def alive_tuple(self):
        return tuple(self._alive)
