"""Known-bad DET001 fixture: wall-clock reads in simulated code."""

import time
from datetime import datetime
from time import monotonic


def stamp_event(event):
    event["at"] = time.time()
    return event


def measure():
    start = monotonic()
    return monotonic() - start


def log_line(message):
    return "{} {}".format(datetime.now(), message)
