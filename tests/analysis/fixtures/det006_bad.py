"""DET006 bad: containers shared by accident of definition time."""


class Tracker:
    pending = []  # class-level mutable container: shared by all instances

    def note(self, item, seen=set()):  # mutable default: shared across calls
        seen.add(item)
        self.pending.append(item)

    def merge(self, extra, into=None, *, overrides={}):  # keyword-only default
        merged = dict(overrides)
        merged.update(extra)
        return merged
