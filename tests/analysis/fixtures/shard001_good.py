"""SHARD001 good: every counter hangs off its owning simulation."""

MAC_BASE = 0x020000000001  # immutable module constant: fine to share


class Simulation:
    def __init__(self):
        self._sequences = {}

    def sequence(self, name, start=0):
        value = self._sequences.get(name, start)
        self._sequences[name] = value + 1
        return value


class Alpha:
    def __init__(self, sim):
        self.sim = sim

    def tick(self):
        return self.sim.sequence("alpha")


class Beta:
    def __init__(self, sim):
        self.sim = sim

    def tick(self):
        return self.sim.sequence("beta")
