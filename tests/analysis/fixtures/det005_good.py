"""DET005 good: streams stay with their component; results cross."""


def roll(stream, faces):
    """Pure drawing helper: consumes the stream, stores nothing."""
    return stream.randrange(faces)


class Lan:
    def __init__(self, sim):
        self.sim = sim
        self.gray = self.rng("gray")  # own named stream kept on self

    def rng(self, name):
        return self.sim.rng.stream(name)

    def transmit(self, model):
        rng = self.rng("lan")
        if model.drops(rng.random()):  # a draw crosses, not the stream
            return False
        return roll(rng, 6)  # handoff to a pure drawing function
