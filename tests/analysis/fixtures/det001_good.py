"""Known-good DET001 fixture: time comes from the simulation clock."""


def stamp_event(sim, event):
    event["at"] = sim.now
    return event


def measure(sim, started_at):
    return sim.now - started_at


def log_line(sim, message):
    return "{:.6f} {}".format(sim.now, message)
