"""SHARD001 bad: module/class state shared across simulation contexts."""

_SEQUENCE = [0]
_TOTAL = 0


def next_seq():
    _SEQUENCE[0] += 1  # mutated below from two component classes
    return _SEQUENCE[0]


def reset_total():
    global _TOTAL
    _TOTAL = 0


class Alpha:
    def tick(self):
        return next_seq()


class Beta:
    def tick(self):
        return next_seq()


class Registry:
    instances = []


def register_instance(item):
    Registry.instances.append(item)  # class attribute shared by every shard
