"""Known-bad SIM001 fixture: real concurrency inside the substrate."""

import socket
import threading
from asyncio import get_event_loop


def serve(port):
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.bind(("0.0.0.0", port))
    worker = threading.Thread(target=sock.recv, args=(1024,))
    worker.start()
    return get_event_loop()
