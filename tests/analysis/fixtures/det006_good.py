"""DET006 good: one container per instance, defaults rebuilt per call."""


class Tracker:
    LIMIT = 64  # immutable class attribute: fine

    def __init__(self):
        self.pending = []

    def note(self, item, seen=None):
        if seen is None:
            seen = set()
        seen.add(item)
        self.pending.append(item)

    def merge(self, extra, overrides=None):
        merged = dict(overrides or {})
        merged.update(extra)
        return merged
