"""Dispatcher for the known-bad PROTO001 fixture: PingMsg is dropped."""

from tests.analysis.fixtures.proto001_bad.messages import ByeMsg, HelloMsg


class Daemon:
    def on_datagram(self, message):
        if isinstance(message, HelloMsg):
            self.on_hello(message)
        elif isinstance(message, ByeMsg):
            self.on_bye(message)

    def on_hello(self, message):
        pass

    def on_bye(self, message):
        pass
