"""Known-good DET004 fixture: orderings on stable attributes."""


def components(daemons):
    return sorted(daemons, key=lambda daemon: daemon.host.name)


def pick_representative(daemons):
    return min(daemons, key=lambda daemon: daemon.name)


def stable_pairs(items):
    items.sort(key=lambda item: (item.group, item.name))
    return items


def tie_break(left, right):
    if left.name < right.name:
        return left
    return right


def cache_key(item):
    # hash() outside an ordering context is fine.
    return hash((item.group, item.name))
