"""PROTO003 bad: protocol-owned fields written from outside the owner."""

IDLE = "idle"
BUSY = "busy"


class Machine:
    def __init__(self):
        self.state = IDLE

    def adopt(self, peer):
        peer.state = BUSY  # foreign write of a protocol-owned field

    def wander(self, label):
        self.state = label  # non-constant target state
