"""Known-good PROTO001 fixture: every wire class has a dispatch arm."""


class HelloMsg:
    def __init__(self, sender):
        self.sender = sender


class PingMsg:
    def __init__(self, sender, nonce):
        self.sender = sender
        self.nonce = nonce


class ByeMsg:
    def __init__(self, sender):
        self.sender = sender


class SessionView:  # repro: not-wire (client-facing)
    def __init__(self, members):
        self.members = tuple(members)
