"""Dispatcher for the known-good PROTO001 fixture: exhaustive arms."""

from tests.analysis.fixtures.proto001_good.messages import ByeMsg, HelloMsg, PingMsg


class Daemon:
    def on_datagram(self, message):
        if isinstance(message, HelloMsg):
            self.on_hello(message)
        elif isinstance(message, PingMsg):
            self.on_ping(message)
        elif isinstance(message, ByeMsg):
            self.on_bye(message)

    def on_hello(self, message):
        pass

    def on_ping(self, message):
        pass

    def on_bye(self, message):
        pass
