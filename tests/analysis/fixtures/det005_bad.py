"""DET005 bad: RNG streams leaking across component boundaries."""

_HOLDER = {}


def stash(stream):
    _HOLDER["stream"] = stream  # the parameter escapes into module state


class DropModel:
    def __init__(self, rng):
        self.rng_source = rng


class Lan:
    def transmit(self):
        rng = self.rng("lan")
        if self.model.drops(rng):  # foreign method consumes the stream
            return

    def rebuild(self):
        gray = self.rng("gray")
        self.model = DropModel(gray)  # constructor captures the stream

    def leak(self):
        stash(self.rng("leak"))  # callee stores the stream beyond the call

    def fallback(self):
        return Random()  # OS-seeded generator can never replay
