"""PROTO002 bad: a multi-arm state chain that misses a declared state."""

IDLE = "idle"
BUSY = "busy"
SYNCING = "syncing"


class Machine:
    def __init__(self):
        self.state = IDLE

    def on_msg(self, msg):
        if self.state == IDLE:
            self.begin(msg)
        elif self.state == BUSY:
            self.queue(msg)
        # SYNCING silently falls through: accidental drop

    def begin(self, msg):
        self.state = BUSY

    def queue(self, msg):
        self.pending = msg

    def resync(self, msg):
        self.state = SYNCING
