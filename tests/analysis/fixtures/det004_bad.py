"""Known-bad DET004 fixture: per-process values in orderings."""


def components(daemons):
    return sorted(daemons, key=lambda daemon: id(daemon))


def pick_representative(daemons):
    return min(daemons, key=id)


def stable_pairs(items):
    items.sort(key=lambda item: (item.group, hash(item.name)))
    return items


def tie_break(left, right):
    if id(left) < id(right):
        return left
    return right
