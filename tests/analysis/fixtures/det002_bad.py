"""Known-bad DET002 fixture: global random module state."""

import random
from random import choice, shuffle


def jitter(base):
    return base + random.uniform(0.0, 0.5)


def pick(items):
    shuffle(items)
    return choice(items)
