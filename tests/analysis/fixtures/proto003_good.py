"""PROTO003 good: only the owner moves its state, always to a constant."""

IDLE = "idle"
BUSY = "busy"


class Machine:
    def __init__(self):
        self.state = IDLE

    def on_work(self, msg):
        if self.state == IDLE:
            self.state = BUSY

    def on_done(self, msg):
        if self.state == BUSY:
            self.state = IDLE
