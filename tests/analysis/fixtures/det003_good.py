"""Known-good DET003 fixture: sorted() wrappers and insensitive consumers."""


def members_list(alive):
    peers = set(alive)
    return sorted(peers)


def trace_members(trace, alive):
    peers = frozenset(alive)
    for peer in sorted(peers):
        trace.append(peer)


def render(alive):
    names = {name for name in alive}
    return ", ".join(sorted(names))


def quorum(alive, needed):
    peers = set(alive)
    # Order-insensitive consumers are fine without sorted().
    return len(peers) >= needed and all(peer is not None for peer in peers)


class Gatherer:
    def __init__(self):
        self._acks = {}
        self._alive = set()

    def on_ack(self, sender, digest):
        self._acks[sender] = digest

    def union_messages(self):
        merged = {}
        for sender in sorted(self._acks):
            merged.update(self._acks[sender])
        return merged

    def roster(self, out):
        for sender, digest in sorted(self._acks.items()):
            out.append((sender, digest))
        return out

    def alive_count(self):
        return len(self._alive)
