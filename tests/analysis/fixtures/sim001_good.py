"""Known-good SIM001 fixture: the simulated substrate only."""


def serve(host, port, on_datagram):
    return host.open_udp(port, on_datagram)


def tick(sim, callback, delay):
    return sim.after(delay, callback)
