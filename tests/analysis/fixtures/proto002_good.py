"""PROTO002 good: every declared state is decided (else = explicit drop)."""

IDLE = "idle"
BUSY = "busy"
SYNCING = "syncing"


class Machine:
    def __init__(self):
        self.state = IDLE

    def on_msg(self, msg):
        if self.state == IDLE:
            self.begin(msg)
        elif self.state == BUSY:
            self.queue(msg)
        else:
            self.drop(msg)

    def on_sync(self, msg):
        if self.state == SYNCING:  # single-arm guard: idiomatic drop
            self.state = IDLE

    def begin(self, msg):
        self.state = BUSY

    def queue(self, msg):
        self.pending = msg

    def drop(self, msg):
        self.dropped = msg
