"""Known-good DET002 fixture: draws come from named registry streams."""


def jitter(registry, base):
    return base + registry.stream("jitter").uniform(0.0, 0.5)


def pick(registry, items):
    return registry.stream("pick").choice(sorted(items))
