"""Scripted scenarios: one per gray fault kind (docs/FAULTS.md).

Where the repro.check gray campaigns explore randomized schedules,
these are the deterministic textbook episodes — each new fault kind
demonstrated once, at a fixed seed, with the cluster returning to
exact single-owner VIP coverage at the end. They double as executable
documentation for the repertoire.
"""

from helpers import build_wack_cluster, fast_spread_config, settle_wack

from repro.check.harness import GRAY_WACK_OVERRIDES
from repro.core.supervisor import DaemonSupervisor
from repro.net.linkfault import GilbertElliott

#: The hardened shape the gray check harness runs: lenient detection
#: relative to the induced faults, two-miss suspicion.
GRAY_SPREAD = dict(
    fault_detection_timeout=0.5,
    heartbeat_timeout=0.2,
    discovery_timeout=0.5,
    suspicion_misses=2,
)


def build_gray_cluster(n=3, seed=7, n_vips=6, spread_overrides=None, **wack_overrides):
    overrides = dict(GRAY_WACK_OVERRIDES, maturity_timeout=0.5)
    overrides.update(wack_overrides)
    spread = dict(GRAY_SPREAD)
    spread.update(spread_overrides or {})
    return build_wack_cluster(
        n,
        seed=seed,
        n_vips=n_vips,
        config=fast_spread_config(**spread),
        wack_overrides=overrides,
    )


def owners_of(cluster, address):
    return [h.name for h in cluster.hosts if h.alive and h.owns_ip(address)]


def assert_single_owner_coverage(cluster):
    """Every VIP bound by exactly one live host, and the auditor agrees."""
    assert cluster.auditor.check() == []
    for group in cluster.wconfig.vip_groups:
        for address in group.addresses:
            owners = owners_of(cluster, address)
            assert len(owners) == 1, "{} owned by {}".format(address, owners)


# ----------------------------------------------------------------------
# asymmetric partition: duplicate VIPs, then wire-level resolution


def test_asym_partition_creates_then_resolves_duplicate_vips():
    """A deaf host's VIPs get re-acquired by its peers (two owners),
    and the heal plus conflict resolution returns every VIP to one."""
    cluster = build_gray_cluster(seed=11)
    assert settle_wack(cluster, timeout=30.0)
    deaf = cluster.hosts[0]
    held_before = [
        address
        for group in cluster.wconfig.vip_groups
        for address in group.addresses
        if deaf.owns_ip(address)
    ]
    assert held_before  # the allocation gave the victim something to lose
    cluster.faults.asym_partition(cluster.lan, [deaf])
    cluster.sim.run_for(4.0)
    # The gray symptom: the deaf host still binds its addresses while
    # the majority, having suspected it, re-acquired them.
    assert any(len(owners_of(cluster, a)) >= 2 for a in held_before)
    cluster.faults.asym_heal(cluster.lan)
    assert settle_wack(cluster, timeout=40.0)
    assert_single_owner_coverage(cluster)


# ----------------------------------------------------------------------
# burst loss: fail-over through a Gilbert-Elliott channel


def test_failover_completes_under_burst_loss():
    """A crash mid-burst-loss still fails over; coverage is exact once
    the channel clears (retried/periodic announces repair the caches)."""
    cluster = build_gray_cluster(seed=13)
    assert settle_wack(cluster, timeout=30.0)
    cluster.faults.burst_loss_on(
        cluster.lan, GilbertElliott(loss_good=0.0, loss_bad=0.8)
    )
    cluster.faults.crash_host(cluster.hosts[2])
    cluster.sim.run_for(8.0)
    cluster.faults.burst_loss_off(cluster.lan)
    assert settle_wack(cluster, timeout=40.0)
    assert_single_owner_coverage(cluster)
    assert cluster.lan.link_model is None


# ----------------------------------------------------------------------
# duplication + reordering: protocol correctness is delivery-order-proof


def test_failover_with_frame_duplication_and_reordering():
    cluster = build_gray_cluster(seed=17)
    assert settle_wack(cluster, timeout=30.0)
    cluster.faults.set_duplication(cluster.lan, 0.3)
    cluster.faults.set_reordering(cluster.lan, 0.3)
    cluster.faults.crash_host(cluster.hosts[1])
    cluster.sim.run_for(6.0)
    assert settle_wack(cluster, timeout=40.0)
    assert_single_owner_coverage(cluster)
    cluster.faults.set_duplication(cluster.lan, 0.0)
    cluster.faults.set_reordering(cluster.lan, 0.0)
    assert settle_wack(cluster, timeout=10.0)


# ----------------------------------------------------------------------
# slow host: K-miss suspicion rides out what K=1 flaps on


def test_slow_host_flaps_at_k1_and_rides_out_at_k2():
    """A factor-3 slowdown stretches heartbeats to 0.6s effective.

    With fd=0.5/hb=0.2 that is past the K=1 deadline (0.5s), so the
    historical detector evicts the laggard; the K=2 deadline is
    fd + hb = 0.7s, so the hardened detector absorbs every miss.
    """
    suspected = {}
    for misses in (1, 2):
        cluster = build_gray_cluster(
            seed=19, spread_overrides={"suspicion_misses": misses}
        )
        assert settle_wack(cluster, timeout=30.0)
        baseline = sum(d.fd.suspicions for d in cluster.spreads)
        cluster.faults.slow_host(cluster.hosts[0], 3.0)
        cluster.sim.run_for(6.0)
        suspected[misses] = sum(d.fd.suspicions for d in cluster.spreads) - baseline
        cluster.faults.unslow_host(cluster.hosts[0])
        assert settle_wack(cluster, timeout=40.0)
        assert_single_owner_coverage(cluster)
    assert suspected[1] >= 1
    assert suspected[2] == 0


# ----------------------------------------------------------------------
# clock skew: absolute-time disagreement must be harmless


def test_failover_with_skewed_clock():
    """Timers are interval-based, so a +/-45s wall-clock skew changes
    nothing about detection or fail-over — the scenario documents it."""
    cluster = build_gray_cluster(seed=23)
    assert settle_wack(cluster, timeout=30.0)
    cluster.faults.skew_clock(cluster.hosts[0], 45.0)
    cluster.faults.skew_clock(cluster.hosts[1], -45.0)
    assert cluster.hosts[0].local_time - cluster.hosts[1].local_time == 90.0
    cluster.faults.crash_host(cluster.hosts[2])
    assert settle_wack(cluster, timeout=40.0)
    assert_single_owner_coverage(cluster)
    cluster.faults.unskew_clock(cluster.hosts[0])
    cluster.faults.unskew_clock(cluster.hosts[1])
    assert cluster.hosts[0].local_time == cluster.hosts[1].local_time


# ----------------------------------------------------------------------
# wedged daemon: the supervisor detects the stall and restarts it


def test_supervisor_restarts_wedged_spread_daemon():
    cluster = build_gray_cluster(seed=29)
    supervisor = DaemonSupervisor(
        cluster.hosts[0],
        check_interval=0.5,
        stall_checks=3,
        restart_backoff=0.5,
        stable_after=5.0,
    )
    supervisor.start()
    assert settle_wack(cluster, timeout=30.0)
    victim = cluster.hosts[0].spread_daemon
    cluster.faults.wedge_daemon(victim)
    cluster.sim.run_for(10.0)
    assert supervisor.wedges_detected >= 1
    assert supervisor.restarts >= 1
    replacement = cluster.hosts[0].spread_daemon
    assert replacement is not victim and replacement.alive
    # The Wackamole daemon reconnects to "whatever GCS daemon currently
    # runs on this host" (4.2) and the cluster re-converges.
    assert settle_wack(cluster, timeout=40.0)
    assert_single_owner_coverage(cluster)


def test_supervisor_restarts_killed_wackamole_daemon():
    cluster = build_gray_cluster(seed=31)
    supervisor = DaemonSupervisor(
        cluster.hosts[0],
        check_interval=0.5,
        stall_checks=3,
        restart_backoff=0.5,
        stable_after=5.0,
    )
    supervisor.watch_wackamole(cluster.wacks[0])
    supervisor.start()
    assert settle_wack(cluster, timeout=30.0)
    cluster.faults.kill_daemon(cluster.wacks[0])
    cluster.sim.run_for(6.0)
    replacement = supervisor.wackamole
    assert replacement is not None and replacement.alive
    assert supervisor.wack_restarts >= 1
    # Point the shared helpers at the current generation before judging.
    cluster.wacks[0] = replacement
    cluster.auditor.daemons = list(cluster.wacks)
    assert settle_wack(cluster, timeout=40.0)
    assert_single_owner_coverage(cluster)
