"""Cluster-building helpers shared across the test suite."""

import collections

from repro.core.audit import CoverageAuditor
from repro.core.config import WackamoleConfig
from repro.core.daemon import WackamoleDaemon
from repro.core.state import RUN
from repro.gcs.config import SpreadConfig
from repro.gcs.daemon import SpreadDaemon
from repro.net.fault import FaultInjector
from repro.net.host import Host
from repro.net.lan import Lan
from repro.sim.simulation import Simulation


def fast_spread_config(**overrides):
    """Aggressively small timeouts so protocol tests run in milliseconds
    of simulated time (the Table 1 ratios are preserved)."""
    settings = {
        "fault_detection_timeout": 0.5,
        "heartbeat_timeout": 0.2,
        "discovery_timeout": 0.5,
        "join_interval": 0.02,
        "form_timeout": 0.3,
        "install_timeout": 0.3,
    }
    settings.update(overrides)
    return SpreadConfig(**settings)


GcsCluster = collections.namedtuple(
    "GcsCluster", "sim lan hosts daemons faults config"
)


def build_gcs_cluster(n, seed=0, config=None, subnet="10.0.0.0/24", stagger=0.02):
    """A LAN of n hosts each running one GCS daemon (started, staggered)."""
    sim = Simulation(seed=seed)
    lan = Lan(sim, "lan0", subnet)
    config = config or fast_spread_config()
    hosts, daemons = [], []
    for index in range(n):
        host = Host(sim, "node{}".format(index))
        host.add_nic(lan, "10.0.0.{}".format(10 + index))
        daemon = SpreadDaemon(host, lan, config)
        sim.after(stagger * index, daemon.start)
        hosts.append(host)
        daemons.append(daemon)
    return GcsCluster(sim, lan, hosts, daemons, FaultInjector(sim), config)


def settle_gcs(cluster, duration=None):
    """Run long enough for one full discovery + install round."""
    duration = duration or (cluster.config.discovery_timeout * 4 + 2.0)
    cluster.sim.run_for(duration)
    return cluster


WackCluster = collections.namedtuple(
    "WackCluster", "sim lan hosts spreads wacks faults auditor config wconfig"
)


def build_wack_cluster(
    n,
    seed=0,
    n_vips=6,
    config=None,
    wack_overrides=None,
    subnet="10.0.0.0/24",
    stagger=0.02,
):
    """A LAN of n hosts each running GCS + Wackamole daemons (started)."""
    sim = Simulation(seed=seed)
    lan = Lan(sim, "lan0", subnet)
    config = config or fast_spread_config()
    vips = ["10.0.0.{}".format(100 + i) for i in range(n_vips)]
    overrides = {"maturity_timeout": 0.5, "balance_timeout": 1.0}
    overrides.update(wack_overrides or {})
    wconfig = WackamoleConfig.for_vips(vips, **overrides)
    hosts, spreads, wacks = [], [], []
    for index in range(n):
        host = Host(sim, "node{}".format(index))
        host.add_nic(lan, "10.0.0.{}".format(10 + index))
        spread = SpreadDaemon(host, lan, config)
        wack = WackamoleDaemon(host, spread, wconfig)
        sim.after(stagger * index, spread.start)
        sim.after(stagger * index + 0.005, wack.start)
        hosts.append(host)
        spreads.append(spread)
        wacks.append(wack)
    auditor = CoverageAuditor(wacks)
    return WackCluster(
        sim, lan, hosts, spreads, wacks, FaultInjector(sim), auditor, config, wconfig
    )


def allocation_violations(allocation, members, slots):
    """Shared placement invariants for any {slot: member} allocation.

    Both placement strategies — the paper's linear BALANCE/reallocate
    pass and the scale tier's rendezvous hashing — must satisfy the
    same contract; every violation is returned as a readable string so
    property tests can assert ``not allocation_violations(...)``.
    """
    violations = []
    members = list(members)
    slots = list(slots)
    for slot in slots:
        if slot not in allocation:
            violations.append("slot {!r} missing from allocation".format(slot))
        elif members and allocation[slot] is None:
            violations.append("slot {!r} uncovered".format(slot))
        elif allocation[slot] is not None and allocation[slot] not in members:
            violations.append(
                "slot {!r} owned by non-member {!r}".format(slot, allocation[slot])
            )
    extra = set(allocation) - set(slots)
    for slot in sorted(extra):
        violations.append("allocation names unknown slot {!r}".format(slot))
    return violations


def assert_allocation_ok(allocation, members, slots):
    """Assert the shared full-coverage + single-owner-domain invariants."""
    violations = allocation_violations(allocation, members, slots)
    assert not violations, "; ".join(violations)


def settle_wack(cluster, timeout=20.0):
    """Run until every live daemon is RUN, mature, and coverage is clean."""
    deadline = cluster.sim.now + timeout
    while cluster.sim.now < deadline:
        cluster.sim.run_for(0.2)
        live = [w for w in cluster.wacks if w.alive]
        if (
            live
            and all(w.machine.state == RUN and w.mature for w in live)
            and all(
                w.client is not None and w.client.connected and w.view is not None
                for w in live
            )
            and not cluster.auditor.check()
        ):
            cluster.sim.run_for(0.2)
            return True
    return False

