"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    lines = []
    code = main(argv, out=lines.append)
    return code, "\n".join(lines)


def test_table1_command():
    code, output = run_cli(["table1", "--trials", "1", "--servers", "2"])
    assert code == 0
    assert "Table 1. Spread timeout tuning" in output
    assert "Failure notification time" in output


def test_figure5_command_with_chart():
    code, output = run_cli(
        ["figure5", "--sizes", "2", "--trials", "1", "--vips", "4", "--chart"]
    )
    assert code == 0
    assert "Figure 5" in output
    assert "Cluster Size" in output
    assert "Fine-tuned" in output
    assert "|" in output  # the chart frame


def test_graceful_command():
    code, output = run_cli(["graceful", "--trials", "2", "--servers", "2"])
    assert code == 0
    assert "Voluntary leave" in output


def test_baselines_command():
    code, output = run_cli(["baselines"])
    assert code == 0
    for protocol in ("wackamole-tuned", "vrrp", "hsrp", "fake"):
        assert protocol in output


def test_router_command():
    code, output = run_cli(["router", "--trials", "1", "--rip-interval", "10"])
    assert code == 0
    assert "naive" in output and "advertise_all" in output


def test_check_command_clean_campaign(tmp_path):
    code, output = run_cli(
        [
            "check", "--trials", "2", "--workers", "1", "--seed", "7",
            "--servers", "3", "--vips", "4", "--horizon", "20",
            "--events", "4", "--artifacts", str(tmp_path),
        ]
    )
    assert code == 0
    assert "all trials passed" in output


def test_check_command_planted_bug_fails_and_replays(tmp_path):
    code, output = run_cli(
        [
            "check", "--trials", "1", "--workers", "1", "--seed", "1",
            "--horizon", "30", "--events", "6",
            "--fixture", "broken-balance", "--artifacts", str(tmp_path),
        ]
    )
    assert code == 1
    assert "FAILURE" in output
    artifact = output.split("artifact: ")[1].splitlines()[0].strip()
    code, output = run_cli(["check", "--replay", artifact, "--repeat", "2"])
    assert code == 0
    assert output.count("identical reproduction") == 2


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_help_lists_subcommands():
    parser = build_parser()
    help_text = parser.format_help()
    for command in ("table1", "figure5", "graceful", "router", "baselines", "tuning", "all"):
        assert command in help_text


def test_bench_list_names():
    code, output = run_cli(["bench", "--list"])
    assert code == 0
    assert "kernel_timer_churn" in output
    assert "campaign_parallel" in output


def test_bench_quick_writes_trajectory_and_gates_on_regression(tmp_path):
    import json

    path = tmp_path / "BENCH.json"
    # A wide threshold keeps single-repeat timing jitter on the ~1 ms
    # workload from tripping the gate; the planted baseline below is
    # slower by orders of magnitude, so it still regresses.
    args = [
        "bench", "--quick", "--repeat", "1", "--threshold", "9.0",
        "--benches", "lan_fanout", "--output", str(path),
    ]
    code, output = run_cli(args)
    assert code == 0
    assert "repro bench [quick]" in output
    assert "no previous quick run to compare against" in output
    data = json.loads(path.read_text())
    assert data["format"] == "repro-bench/1"
    assert len(data["runs"]) == 1

    # Second run appends and compares against the first.
    code, output = run_cli(args)
    assert code == 0
    assert "vs rev=" in output
    assert len(json.loads(path.read_text())["runs"]) == 2

    # Plant an absurdly fast baseline: the next run must gate.
    data = json.loads(path.read_text())
    data["runs"][-1]["benches"]["lan_fanout"]["median_s"] = 1e-9
    path.write_text(json.dumps(data))
    code, output = run_cli(args)
    assert code == 1
    assert "REGRESSION" in output
    # The regressing run is still recorded for inspection.
    assert len(json.loads(path.read_text())["runs"]) == 3


def test_bench_no_write_leaves_trajectory_untouched(tmp_path):
    path = tmp_path / "BENCH.json"
    code, output = run_cli(
        [
            "bench", "--quick", "--repeat", "1", "--no-write", "--no-compare",
            "--benches", "lan_fanout", "--output", str(path),
        ]
    )
    assert code == 0
    assert not path.exists()
