"""§6's voluntary-leave measurement, plus the §4.1 mechanism ablation.

Paper claim: a graceful Wackamole leave interrupts availability for at
most 250 ms, typically ~10 ms — because Spread handles a client leave
as a lightweight group change without daemon reconfiguration. The
second bench removes that optimisation (taking the whole daemon down
instead) to show the fallback cost is timeout-scale.
"""

from repro.experiments.graceful import GracefulLeaveExperiment
from repro.experiments.report import format_table, mean
from repro.experiments.runner import run_failover_trial
from repro.gcs.config import SpreadConfig


def bench_graceful_leave_lightweight(benchmark, paper_report):
    experiment = GracefulLeaveExperiment(trials=8, cluster_size=4)
    results = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    assert results["within_bound"]
    assert results["mean"] <= 0.050
    benchmark.extra_info["mean interruption (s)"] = round(results["mean"], 4)
    paper_report(experiment.format(results))


def _daemon_level_leave(seed):
    """Graceful *daemon* shutdown: skips the lightweight path entirely."""
    from repro.apps.webcluster import WebClusterScenario
    from repro.gcs.config import SpreadConfig

    scenario = WebClusterScenario(
        seed=seed,
        n_servers=4,
        n_vips=10,
        spread_config=SpreadConfig.default(),
        wackamole_overrides={"maturity_timeout": 2.0, "balance_enabled": False},
        trace_enabled=False,
    )
    scenario.start()
    assert scenario.run_until_stable(timeout=60.0)
    probe = scenario.start_probe()
    scenario.sim.run_for(1.0)
    fault_time = scenario.sim.now
    owner = scenario.owner_of(scenario.vips[0])
    # Take the whole GCS daemon down gracefully: the Wackamole client
    # is disconnected and drops its addresses, but peers must run a
    # full (discovery-timeout) daemon reconfiguration.
    victim_spread = owner.spread
    victim_spread.shutdown()
    scenario.sim.run_for(SpreadConfig.default().discovery_timeout + 5.0)
    return probe.failover_interruption(after=fault_time)


def bench_graceful_leave_without_lightweight_path(benchmark, paper_report):
    samples = benchmark.pedantic(
        lambda: [_daemon_level_leave(seed) for seed in (8100, 8101, 8102)],
        rounds=1,
        iterations=1,
    )
    samples = [s for s in samples if s is not None]
    assert samples
    # Without the lightweight leave, the hand-off costs a discovery
    # round (7 s default) instead of milliseconds.
    assert mean(samples) > 1.0
    benchmark.extra_info["mean interruption (s)"] = round(mean(samples), 3)
    light = GracefulLeaveExperiment(trials=3, cluster_size=4).run()
    paper_report(
        format_table(
            ["Leave path", "Mean interruption (s)"],
            [
                ["lightweight client leave (Spread optimisation)", light["mean"]],
                ["full daemon reconfiguration", mean(samples)],
            ],
            title="Ablation: Spread's lightweight group leave (§4.1)",
        )
    )
