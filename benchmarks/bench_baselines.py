"""§7: the related protocols under the same crash fault.

Paper-quoted defaults: VRRP advertises every second (master-down about
3-4 s); HSRP hellos every 3 s with 10 s hold; Linux Fake probes and
takes over with a gratuitous ARP. Wackamole is run under both Table 1
configurations.
"""

from repro.experiments.baselines_experiment import BaselineComparison


def bench_baseline_protocol_comparison(benchmark, paper_report):
    comparison = BaselineComparison(trials=3)
    results = benchmark.pedantic(comparison.run, rounds=1, iterations=1)

    tuned = results["wackamole-tuned"]["mean"]
    default = results["wackamole-default"]["mean"]
    vrrp = results["vrrp"]["mean"]
    hsrp = results["hsrp"]["mean"]
    fake = results["fake"]["mean"]

    assert 1.9 <= tuned <= 3.5
    assert 9.5 <= default <= 13.5
    assert 2.5 <= vrrp <= 4.5
    assert 6.5 <= hsrp <= 10.5
    assert 1.5 <= fake <= 5.0
    # Shape: tuned Wackamole is competitive with VRRP; default Spread
    # timeouts put it near HSRP's hold time.
    assert tuned < vrrp + 1.0
    assert default > hsrp

    for name, data in results.items():
        benchmark.extra_info["{} (s)".format(name)] = round(data["mean"], 2)
    paper_report(comparison.format(results))
