"""Extension benches: the tuning trade-offs §4.2 describes.

(a) False positives — "If not done properly, this tuning can be
detrimental to the performance of a Wackamole cluster by increasing
the number of false-positive network failures": an unfaulted cluster
on a lossy LAN reconfigures spuriously, and the aggressive (tuned)
timeouts misfire far more often than the defaults.

(b) Sensitivity — interruption scales linearly with the timeout scale
when the Table 1 ratios are preserved, tracing the curve between the
paper's two published configurations.
"""

from repro.experiments.tuning import FalsePositiveExperiment, SensitivityExperiment


def bench_false_positives_under_loss(benchmark, paper_report):
    experiment = FalsePositiveExperiment(
        loss_rates=(0.0, 0.05, 0.10), duration=120.0, trials=2
    )
    results = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    assert results["Default Spread"][0.0] == 0
    assert results["Tuned Spread"][0.0] == 0
    for loss in (0.05, 0.10):
        assert results["Tuned Spread"][loss] > results["Default Spread"][loss]
    benchmark.extra_info["tuned@10% (reconfigs)"] = results["Tuned Spread"][0.10]
    benchmark.extra_info["default@10% (reconfigs)"] = results["Default Spread"][0.10]
    paper_report(experiment.format(results))


def bench_interruption_vs_timeout_scale(benchmark, paper_report):
    experiment = SensitivityExperiment(fd_timeouts=(1.0, 2.0, 3.0, 5.0), trials=3)
    points = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    values = [value for _, value in points]
    assert values == sorted(values)
    for fd, value in points:
        expected = experiment.expected_centre(fd)
        assert abs(value - expected) <= max(0.5, 0.25 * expected)
    benchmark.extra_info["points"] = {fd: round(v, 2) for fd, v in points}
    paper_report(experiment.format(points))
