"""Ablation: the maturity bootstrap (§3.4).

"The reason for this optimization is to avoid quick IP reallocations
as the cluster is rebooted." The bench boots a staggered cluster with
a realistic maturity timeout (servers wait for their peers) and with
an effectively disabled one (the first server up grabs everything and
the balancer must shuffle addresses as each peer arrives), comparing
total address movements during boot.
"""

from helpers import build_wack_cluster, settle_wack

from repro.experiments.report import format_table


def _boot_churn(maturity_timeout, seed):
    cluster = build_wack_cluster(
        4,
        seed=seed,
        n_vips=12,
        stagger=1.0,  # slow, reboot-like arrival of servers
        wack_overrides={
            "maturity_timeout": maturity_timeout,
            "balance_enabled": True,
            "balance_timeout": 0.5,
        },
    )
    assert settle_wack(cluster, timeout=40.0)
    cluster.sim.run_for(5.0)  # let any balance shuffling play out
    assert cluster.auditor.check() == []
    moves = sum(w.iface.acquisitions + w.iface.releases for w in cluster.wacks)
    return moves


def bench_ablation_maturity_bootstrap(benchmark, paper_report):
    def run():
        patient = max(_boot_churn(6.0, seed) for seed in (21, 22))
        impatient = max(_boot_churn(0.05, seed) for seed in (21, 22))
        return patient, impatient

    patient, impatient = benchmark.pedantic(run, rounds=1, iterations=1)
    # With maturity, boot is one allocation wave (12 acquisitions, no
    # releases); without, early grabbing forces churn.
    assert patient < impatient
    benchmark.extra_info["address moves with maturity"] = patient
    benchmark.extra_info["address moves without"] = impatient
    paper_report(
        format_table(
            ["Configuration", "Address moves during staggered boot"],
            [
                ["maturity bootstrap (paper, §3.4)", patient],
                ["maturity disabled", impatient],
            ],
            title="Ablation: graceful bootstrap vs immediate acquisition",
        )
    )
