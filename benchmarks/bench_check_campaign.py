"""Campaign throughput: serial vs. 4-worker parallel fan-out.

Runs the same 32-trial seeded campaign twice — serially and across 4
worker processes — and records both wall-clock times. The per-seed
verdicts must be identical in both modes (trial randomness is forked
per seed, so scheduling cannot change outcomes). On multi-core
hardware the parallel run must be measurably faster; on a single-CPU
box the speedup assertion is skipped (there is nothing to fan out to)
but the identity assertion still holds.
"""

import os
import time

from repro.check.campaign import build_specs, run_specs

TRIALS = 32
WORKERS = 4
CAMPAIGN = dict(
    base_seed=20260806,
    trials=TRIALS,
    n_servers=5,
    n_vips=10,
    horizon=120.0,
    events_per_trial=12,
    fixture="standard",
)


def _available_cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def bench_check_campaign_serial_vs_parallel(paper_report):
    specs = build_specs(**CAMPAIGN)

    started = time.perf_counter()
    serial = run_specs(specs, workers=1)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_specs(specs, workers=WORKERS)
    parallel_s = time.perf_counter() - started

    assert serial == parallel, "verdicts diverged between serial and parallel"
    assert [r["verdict"] for r in serial] == ["pass"] * TRIALS

    cpus = _available_cpus()
    speedup = serial_s / parallel_s if parallel_s else float("inf")
    paper_report(
        "repro check campaign, {} trials ({} servers, {} events, {:.0f}s horizon)\n"
        "  serial        : {:7.2f}s wall\n"
        "  {} workers     : {:7.2f}s wall  (speedup x{:.2f}, {} CPU(s) available)".format(
            TRIALS,
            CAMPAIGN["n_servers"],
            CAMPAIGN["events_per_trial"],
            CAMPAIGN["horizon"],
            serial_s,
            WORKERS,
            parallel_s,
            speedup,
            cpus,
        )
    )
    if cpus >= 2:
        assert parallel_s < serial_s, (
            "parallel ({:.2f}s) not faster than serial ({:.2f}s) "
            "with {} CPUs".format(parallel_s, serial_s, cpus)
        )
