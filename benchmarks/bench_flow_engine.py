"""Wall-clock cost of the flow-level traffic plane (§6 at scale).

The flow engine's promise is that a million modeled clients cost
O(pools + VIPs) per tick, not O(users). These benches time the same
workload the ``flow_engine_ticks`` kernel bench records in
BENCH_kernel.json — half the pools served, half blackholed, so
resolution, the vectorized advance, and loss accounting all run every
tick — at 10^5 users (the CI quick scale) and 10^6 users (the full
scale), and additionally pin the pure-python fallback so a numpy-less
deployment's cost is tracked too.
"""

from repro.bench.suite import build_workload
from repro.flow import FlowEngine, FlowPool
from repro.sim.simulation import Simulation


def _check_pool_ticks(pool_ticks, scale):
    # run(until=T) stops before firing at exactly T, and the 0.05 tick
    # accumulates float error, so the boundary tick may or may not
    # land: N or N-1 ticks per pool are both exact behaviour.
    n = int(round(scale["duration"] / 0.05))
    assert pool_ticks in (n * scale["pools"], (n - 1) * scale["pools"])


def bench_flow_ticks_100k_users(benchmark):
    run, unit, scale = build_workload("flow_engine_ticks", mode="quick")
    pool_ticks = benchmark(run)
    _check_pool_ticks(pool_ticks, scale)
    benchmark.extra_info["users"] = scale["users"]
    benchmark.extra_info["unit"] = unit


def bench_flow_ticks_1m_users(benchmark):
    run, unit, scale = build_workload("flow_engine_ticks", mode="full")
    pool_ticks = benchmark.pedantic(run, rounds=1, iterations=1)
    _check_pool_ticks(pool_ticks, scale)
    benchmark.extra_info["users"] = scale["users"]
    benchmark.extra_info["unit"] = unit


class _AlwaysServe:
    def begin_tick(self):
        pass

    def resolve(self, vip):
        return 1.0, None, None


def bench_flow_pure_python_fallback(benchmark):
    # The fallback is the advance path a numpy-less install pays; its
    # per-tick cost must stay in the same order as the vector path.
    def run():
        sim = Simulation(seed=0, trace_enabled=False, metrics_enabled=False)
        engine = FlowEngine(
            sim, resolver=_AlwaysServe(), tick=0.05, use_numpy=False
        )
        for index in range(64):
            engine.add_pool(
                FlowPool("p{}".format(index), "10.0.0.{}".format(1 + index), 1562)
            )
        engine.start()
        sim.run(until=30.01)
        return engine.totals()["ticks"]

    ticks = benchmark(run)
    assert ticks == 600
