"""Figure 5: average availability interruption vs cluster size.

Paper claim: with 10 VIPs and 2-12 servers, the interruption is
dominated by the Spread timeouts — about 10.5-12.5 s for the default
configuration and 2-3 s for the fine-tuned one, roughly flat in
cluster size.
"""

from repro.experiments.figure5 import Figure5Experiment


def bench_figure5_cluster_size_sweep(benchmark, paper_report):
    experiment = Figure5Experiment(cluster_sizes=(2, 4, 6, 8, 10, 12), trials=3)
    series = benchmark.pedantic(experiment.run, rounds=1, iterations=1)

    for size in experiment.cluster_sizes:
        default = series["Default Spread"][size]["mean"]
        tuned = series["Fine-tuned Spread"][size]["mean"]
        assert 9.5 <= default <= 13.0, "default series out of shape at n={}".format(size)
        assert 1.9 <= tuned <= 3.0, "tuned series out of shape at n={}".format(size)
        assert default / tuned > 3.0, "tuning factor collapsed at n={}".format(size)

    default_means = [series["Default Spread"][s]["mean"] for s in experiment.cluster_sizes]
    tuned_means = [series["Fine-tuned Spread"][s]["mean"] for s in experiment.cluster_sizes]
    # Roughly flat with cluster size (the paper's curves move < ~2 s).
    assert max(default_means) - min(default_means) < 2.5
    assert max(tuned_means) - min(tuned_means) < 1.0

    benchmark.extra_info["default mean (s)"] = round(
        sum(default_means) / len(default_means), 3
    )
    benchmark.extra_info["tuned mean (s)"] = round(sum(tuned_means) / len(tuned_means), 3)
    paper_report(experiment.format(series))
    paper_report(experiment.format_chart(series))
