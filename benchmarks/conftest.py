"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables/figures (or an
ablation of a §3.4 design choice), asserts the paper-shape claim, and
prints the paper-style rows so `pytest benchmarks/ --benchmark-only`
reproduces the evaluation section end to end.

The wall-clock numbers pytest-benchmark reports measure *simulation
cost*; the reproduced quantities are in simulated seconds and are
attached to each benchmark's ``extra_info`` and printed.
"""

import pytest


@pytest.fixture
def paper_report(capsys):
    """Print a paper-style block so it survives pytest's capture."""

    def emit(text):
        with capsys.disabled():
            print()
            print(text)

    return emit
