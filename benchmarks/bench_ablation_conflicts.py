"""Ablation: eager vs end-of-gather conflict resolution (§3.4).

"From a practical perspective we want to minimize the amount of time
that an IP address is covered by two or more servers … This is ensured
by the fact that the ResolveConflicts() procedure is invoked as soon
as a conflict is detected."

The bench merges two previously partitioned components (every address
doubly covered) on a LAN with realistic latency jitter, and measures
how long after the merge view installs the losing servers still hold
their conflicting addresses — with the eager drop on and off.
"""

from helpers import build_wack_cluster, settle_wack

from repro.experiments.report import format_table, mean


def _merge_release_latency(eager, seed):
    cluster = build_wack_cluster(
        6,
        seed=seed,
        n_vips=10,
        wack_overrides={
            "eager_conflict_resolution": eager,
            "balance_enabled": False,
            "maturity_timeout": 0.5,
        },
    )
    cluster.lan.latency = 0.002
    cluster.lan.jitter = 0.004
    assert settle_wack(cluster)
    cluster.faults.partition(cluster.lan, [cluster.hosts[:3], cluster.hosts[3:]])
    assert settle_wack(cluster)
    heal_time = cluster.sim.now
    cluster.faults.heal(cluster.lan)
    assert settle_wack(cluster)
    assert cluster.auditor.check() == []

    installs = cluster.sim.trace.select(
        category="membership", event="install", since=heal_time
    )
    merge_install = installs[0].time
    releases = [
        record.time
        for record in cluster.sim.trace.select(
            category="wackamole", event="release", since=merge_install
        )
    ]
    assert releases, "merge produced no conflict drops"
    return max(releases) - merge_install


def bench_ablation_eager_conflict_resolution(benchmark, paper_report):
    def run():
        eager = [_merge_release_latency(True, seed) for seed in (1, 2, 3)]
        deferred = [_merge_release_latency(False, seed) for seed in (1, 2, 3)]
        return mean(eager), mean(deferred)

    eager_mean, deferred_mean = benchmark.pedantic(run, rounds=1, iterations=1)
    # Eager drops end double coverage before the gather completes.
    assert eager_mean < deferred_mean
    benchmark.extra_info["eager (s)"] = round(eager_mean, 5)
    benchmark.extra_info["deferred (s)"] = round(deferred_mean, 5)
    paper_report(
        format_table(
            ["Conflict resolution", "Double-coverage tail after merge install (s)"],
            [
                ["eager (paper, §3.4)", eager_mean],
                ["deferred to end of GATHER", deferred_mean],
            ],
            title="Ablation: when conflicting VIPs are released",
        )
    )
