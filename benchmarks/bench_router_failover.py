"""§5.2: router fail-over under dynamic routing.

Paper claims: with the naive setup the new router must be brought up
to date with the dynamic routing tables, which "usually takes around
30 seconds"; with the advertise-all setup "the hand-off is complete as
soon as Wackamole reconfigures".
"""

from repro.experiments.router_experiment import RouterFailoverExperiment
from repro.gcs.config import SpreadConfig


def bench_router_failover_routing_modes(benchmark, paper_report):
    experiment = RouterFailoverExperiment(
        trials=2, rip_interval=30.0, spread_config=SpreadConfig.tuned()
    )
    results = benchmark.pedantic(experiment.run, rounds=1, iterations=1)

    static = results["static"]["mean"]
    naive = results["naive"]["mean"]
    advertise_all = results["advertise_all"]["mean"]

    _, failover_hi = SpreadConfig.tuned().notification_window()
    assert static <= failover_hi + 1.0
    assert abs(advertise_all - static) < 1.0
    # The naive setup pays up to one advertisement period (~30 s) extra.
    assert naive > static + 5.0
    assert naive <= static + experiment.rip_interval + 2.0

    benchmark.extra_info["static (s)"] = round(static, 2)
    benchmark.extra_info["naive (s)"] = round(naive, 2)
    benchmark.extra_info["advertise_all (s)"] = round(advertise_all, 2)
    paper_report(experiment.format(results))
