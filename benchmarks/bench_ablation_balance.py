"""Ablation: the RUN-state re-balancing procedure (§3.4).

"After several partitions/merges, the system may end up with a very
unbalanced allocation of IP addresses" — the BALANCE procedure
restores an even spread without extending the non-operational GATHER
phase. The bench produces exactly that skew (partition, then merge, so
conflict resolution strips the earlier members) and compares the final
imbalance with balancing on and off.
"""

from helpers import build_wack_cluster, settle_wack

from repro.experiments.report import format_table


def _post_merge_imbalance(balance_enabled, seed):
    cluster = build_wack_cluster(
        4,
        seed=seed,
        n_vips=12,
        wack_overrides={
            "balance_enabled": balance_enabled,
            "balance_timeout": 0.5,
            "maturity_timeout": 0.5,
        },
    )
    assert settle_wack(cluster)
    cluster.faults.partition(cluster.lan, [cluster.hosts[:1], cluster.hosts[1:]])
    assert settle_wack(cluster)
    cluster.faults.heal(cluster.lan)
    assert settle_wack(cluster)
    cluster.sim.run_for(3.0)  # several balance rounds, if enabled
    assert cluster.auditor.check() == []
    counts = [len(w.iface.owned_slots()) for w in cluster.wacks]
    return max(counts) - min(counts)


def bench_ablation_balance_procedure(benchmark, paper_report):
    def run():
        with_balance = max(_post_merge_imbalance(True, seed) for seed in (11, 12))
        without = max(_post_merge_imbalance(False, seed) for seed in (11, 12))
        return with_balance, without

    with_balance, without = benchmark.pedantic(run, rounds=1, iterations=1)
    assert with_balance <= 1, "balance failed to even the allocation"
    assert without > 1, "merge did not skew the allocation as expected"
    benchmark.extra_info["imbalance with balance"] = with_balance
    benchmark.extra_info["imbalance without"] = without
    paper_report(
        format_table(
            ["Configuration", "Max - min VIPs per server after merge"],
            [
                ["balance enabled (paper, §3.4)", with_balance],
                ["balance disabled", without],
            ],
            title="Ablation: load re-balancing after partitions/merges",
        )
    )
