"""Table 1: Spread timeout tuning and the derived notification windows.

Paper claim: default Spread notifies Wackamole of a failure in 10-12 s;
the tuned configuration in 2-2.4 s.
"""

from repro.experiments.table1 import Table1Experiment


def bench_table1_notification_windows(benchmark, paper_report):
    experiment = Table1Experiment(trials=5, cluster_size=4)
    results = benchmark.pedantic(experiment.run, rounds=1, iterations=1)

    for name, measured in results["measured"].items():
        lo, hi = measured["derived_window"]
        assert lo <= measured["min"], name
        assert measured["max"] <= hi + 0.5, name
        benchmark.extra_info["{} mean (s)".format(name)] = round(measured["mean"], 3)

    default = results["measured"]["Default Spread"]["mean"]
    tuned = results["measured"]["Tuned Spread"]["mean"]
    assert 10.0 <= default <= 12.5
    assert 2.0 <= tuned <= 2.9
    paper_report(experiment.format(results))
