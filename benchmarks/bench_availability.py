"""Extension bench: pool-wide availability (the operator's Figure 5).

Probes every VIP concurrently over a two-minute window containing one
interface failure and reports the fraction of answered requests for
both Table 1 configurations.
"""

from repro.experiments.availability import AvailabilityExperiment
from repro.experiments.report import format_table
from repro.gcs.config import SpreadConfig


def bench_pool_availability_under_one_fault(benchmark, paper_report):
    def run():
        tuned = AvailabilityExperiment(
            window=120.0, faults=1, spread_config=SpreadConfig.tuned()
        ).run(trials=1)
        default = AvailabilityExperiment(
            window=120.0, faults=1, spread_config=SpreadConfig.default()
        ).run(trials=1)
        return tuned, default

    tuned, default = benchmark.pedantic(run, rounds=1, iterations=1)
    assert tuned["pool_availability"] > default["pool_availability"]
    assert tuned["pool_availability"] > 0.99
    assert default["pool_availability"] > 0.95
    benchmark.extra_info["tuned pool availability"] = round(
        tuned["pool_availability"], 5
    )
    benchmark.extra_info["default pool availability"] = round(
        default["pool_availability"], 5
    )
    paper_report(
        format_table(
            ["Configuration", "Pool availability", "Worst single VIP"],
            [
                [
                    "Fine-tuned Spread",
                    "{:.4%}".format(tuned["pool_availability"]),
                    "{:.4%}".format(tuned["worst_vip_availability"]),
                ],
                [
                    "Default Spread",
                    "{:.4%}".format(default["pool_availability"]),
                    "{:.4%}".format(default["worst_vip_availability"]),
                ],
            ],
            title="Availability over a 120s window with one interface failure "
            "(10 VIPs, 4 servers)",
        )
    )
