"""Extension bench: daemon priority on loaded machines (§6).

"It is recommended that both daemon processes be run with high
priority (real-time priority under Linux) in these types of
environments in order to avoid false positive errors."
"""

from repro.experiments.load import LoadedClusterExperiment


def bench_realtime_priority_on_loaded_machines(benchmark, paper_report):
    experiment = LoadedClusterExperiment(
        load_delays=(0.0, 0.1, 0.3), duration=120.0, trials=2
    )
    results = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    for load in experiment.load_delays:
        assert results["real-time priority"][load] == 0
    assert results["normal priority"][0.0] == 0
    assert results["normal priority"][0.3] > results["normal priority"][0.1] > 0
    benchmark.extra_info["normal@300ms (reconfigs)"] = results["normal priority"][0.3]
    paper_report(experiment.format(results))
