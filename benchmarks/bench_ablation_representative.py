"""Ablation: distributed vs representative allocation decisions (§4.2).

The paper ships with every daemon running the deterministic
Reallocate_IPs independently, and notes the alternative where "all
decisions are made by a deterministically chosen representative and
imposed upon the other daemons". The variant buys upgrade flexibility
at the cost of one extra agreed-ordered message before the cluster
leaves GATHER. The bench measures both: identical final allocations,
slightly longer reconfiguration for the representative mode.
"""

from helpers import build_wack_cluster, settle_wack

from repro.experiments.report import format_table, mean


def _reconfiguration_tail(representative, seed):
    cluster = build_wack_cluster(
        4,
        seed=seed,
        n_vips=8,
        wack_overrides={
            "representative_allocation": representative,
            "balance_enabled": False,
            "maturity_timeout": 0.5,
        },
    )
    assert settle_wack(cluster)
    fault_time = cluster.sim.now
    cluster.faults.crash_host(cluster.hosts[3])
    assert settle_wack(cluster)
    assert cluster.auditor.check() == []
    # Time from the survivors' view installation to the last daemon
    # reaching RUN again (the Wackamole-level part of the hand-off).
    installs = cluster.sim.trace.select(
        category="membership", event="install", since=fault_time
    )
    runs = cluster.sim.trace.select(
        category="wackamole", event="run", since=fault_time
    )
    allocation = cluster.wacks[0].table.as_dict()
    return runs[-1].time - installs[0].time, allocation


def bench_ablation_representative_allocation(benchmark, paper_report):
    def run():
        distributed = [_reconfiguration_tail(False, seed) for seed in (31, 32, 33)]
        imposed = [_reconfiguration_tail(True, seed) for seed in (31, 32, 33)]
        return distributed, imposed

    distributed, imposed = benchmark.pedantic(run, rounds=1, iterations=1)
    distributed_tails = [tail for tail, _ in distributed]
    imposed_tails = [tail for tail, _ in imposed]
    # Identical decisions either way (same deterministic procedure) ...
    for (_, alloc_a), (_, alloc_b) in zip(distributed, imposed):
        assert alloc_a == alloc_b
    # ... but the imposed variant pays one extra ordered message.
    assert mean(imposed_tails) > mean(distributed_tails)
    benchmark.extra_info["distributed tail (s)"] = round(mean(distributed_tails), 6)
    benchmark.extra_info["representative tail (s)"] = round(mean(imposed_tails), 6)
    paper_report(
        format_table(
            ["Decision style", "GATHER tail after view install (s)"],
            [
                ["independent deterministic procedures (paper)", mean(distributed_tails)],
                ["representative-imposed (§4.2 variant)", mean(imposed_tails)],
            ],
            title="Ablation: who runs Reallocate_IPs",
        )
    )
