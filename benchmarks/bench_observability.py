"""Overhead of the observability layer on the Figure 5 workload.

The metrics registry instruments every hot path of the simulation — the
scheduler loop, LAN frame delivery, NIC rx/tx, GCS datagram dispatch,
the Wackamole interface manager — so it must be cheap enough to leave
on for the paper sweeps and the soak campaigns. Budget: **metrics-on
must cost less than 5 % wall-clock over metrics-off** on the §6
fail-over trial (the Figure 5 unit of work). The disabled registry
hands out a shared null instrument, so metrics-off pays exactly one
``is None`` test in the scheduler loop and attribute lookups elsewhere.

The in-test guard is deliberately looser (25 %) because shared CI
runners add noise to a measurement this small; the 5 % budget is the
engineering target, checked on quiet hardware. Both configurations run
the identical seed and must produce the identical interruption —
measurement must never perturb the measured system.
"""

from repro.apps.webcluster import WebClusterScenario
from repro.experiments.report import format_table
from repro.gcs.config import SpreadConfig

#: Engineering budget (quiet hardware) vs. CI guard (noisy runners).
OVERHEAD_BUDGET = 0.05
CI_GUARD = 0.25


def _figure5_unit(seed, metrics_enabled):
    """One Figure 5 trial body; returns (interruption, instruments)."""
    scenario = WebClusterScenario(
        seed=seed,
        n_servers=4,
        n_vips=10,
        spread_config=SpreadConfig.tuned(),
        wackamole_overrides={"maturity_timeout": 2.0, "balance_enabled": False},
        metrics_enabled=metrics_enabled,
    )
    scenario.start()
    if not scenario.run_until_stable(timeout=60.0):
        raise RuntimeError("cluster never stabilised")
    probe = scenario.start_probe()
    scenario.sim.run_for(1.0)
    fault_time = scenario.sim.now
    scenario.kill_owner_of(scenario.vips[0], mode="nic_down")
    scenario.sim.run_for(4.0)
    probe.stop_probing()
    return (
        probe.failover_interruption(after=fault_time),
        len(scenario.sim.metrics),
    )


def bench_observability_overhead(benchmark, paper_report):
    import time

    def timed(metrics_enabled, rounds=3):
        best = None
        interruption = instruments = None
        for round_index in range(rounds):
            start = time.perf_counter()
            interruption, instruments = _figure5_unit(42, metrics_enabled)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        return best, interruption, instruments

    def run():
        on_time, on_interruption, instruments = timed(True)
        off_time, off_interruption, null_instruments = timed(False)
        return on_time, off_time, on_interruption, off_interruption, instruments, null_instruments

    on_time, off_time, on_int, off_int, instruments, null_instruments = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    overhead = on_time / off_time - 1.0

    # Observation must never perturb the observed protocol.
    assert on_int == off_int, "metrics changed the measured interruption"
    assert instruments > 0, "metrics-on registered no instruments"
    assert null_instruments == 0, "disabled registry stored instruments"
    assert overhead < CI_GUARD, (
        "observability overhead {:.1%} exceeds even the noisy-CI guard "
        "({:.0%}; engineering budget {:.0%})".format(
            overhead, CI_GUARD, OVERHEAD_BUDGET
        )
    )

    benchmark.extra_info["overhead"] = "{:.2%}".format(overhead)
    benchmark.extra_info["budget"] = "{:.0%}".format(OVERHEAD_BUDGET)
    paper_report(
        format_table(
            ["Configuration", "Wall-clock (s)", "Interruption (s)"],
            [
                ["metrics on", round(on_time, 4), round(on_int, 4)],
                ["metrics off", round(off_time, 4), round(off_int, 4)],
                ["overhead", "{:.2%}".format(overhead), "budget {:.0%}".format(OVERHEAD_BUDGET)],
            ],
            title="Observability overhead on the Figure 5 trial",
        )
    )
