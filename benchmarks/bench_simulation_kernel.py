"""Performance micro-benchmarks of the simulation substrate itself.

These are conventional wall-clock benchmarks (pytest-benchmark's home
turf): how fast the kernel processes events, how expensive a full §6
fail-over trial is, and how much simulated traffic the LAN sustains.
They guard against regressions that would make the paper sweeps slow.
"""

from repro.bench.suite import SCALES, build_workload
from repro.check.campaign import campaign_params, run_campaign_trials
from repro.experiments.runner import run_failover_trial
from repro.gcs.config import SpreadConfig
from repro.net.host import Host
from repro.net.lan import Lan
from repro.sim.scheduler import Scheduler
from repro.sim.simulation import Simulation


def bench_scheduler_event_throughput(benchmark):
    def run():
        scheduler = Scheduler()
        for index in range(20_000):
            scheduler.after(index * 0.001, lambda: None)
        scheduler.run()
        return scheduler.events_fired

    fired = benchmark(run)
    assert fired == 20_000


def bench_lan_broadcast_delivery(benchmark):
    def run():
        sim = Simulation(seed=0, trace_enabled=False)
        lan = Lan(sim, "lan", "10.0.0.0/24")
        hosts = []
        for index in range(10):
            host = Host(sim, "h{}".format(index))
            host.add_nic(lan, "10.0.0.{}".format(1 + index))
            host.open_udp(100, lambda p, s, d: None)
            hosts.append(host)
        for round_index in range(200):
            hosts[round_index % 10].send_udp(
                round_index, "10.0.0.255", 100, src_port=1
            )
            sim.run_until_idle()
        return lan.frames_delivered

    delivered = benchmark(run)
    assert delivered > 0


def bench_full_failover_trial_tuned(benchmark):
    counter = [0]

    def run():
        counter[0] += 1
        return run_failover_trial(
            seed=9000 + counter[0], cluster_size=4, spread_config=SpreadConfig.tuned()
        )

    result = benchmark(run)
    assert result.interruption is not None


def bench_timer_churn(benchmark):
    """Refresh-heavy timer traffic: the GCS failure-detector pattern.

    Exercises the scheduler's lazy-cancellation + compaction path and
    the reschedule (event-recycling) fast path via the shared
    ``repro.bench`` workload, so ``repro bench`` and pytest-benchmark
    measure the same code.
    """
    run, _unit, _scale = build_workload("kernel_timer_churn", "quick")
    units = benchmark(run)
    assert units > 0
    assert SCALES["quick"]["kernel_timer_churn"]["n_timers"] == 24


def bench_parallel_campaign_throughput(benchmark):
    """Warm-worker campaign fan-out: trials/second with workers=2.

    Covers chunked index submission, worker-side spec reconstruction,
    and result marshalling — the `repro check --workers N` hot path.
    """
    params = campaign_params(
        base_seed=20260806, trials=4, horizon=25.0, events_per_trial=5
    )

    def run():
        return run_campaign_trials(params, workers=2)

    results = benchmark(run)
    assert [r["verdict"] for r in results] == ["pass"] * 4
