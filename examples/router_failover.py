#!/usr/bin/env python3
"""N-way fail-over for routers (Figure 4 and §5.2).

Two physical routers serve three networks as one *virtual router*; an
internal host continuously reaches a service "on the internet" through
it. The active router crashes; the example reports the interruption
under the three §5.2 routing setups:

* static routes (pure Wackamole hand-off),
* naive dynamic routing (the successor waits ~30 s for the next
  advertisement round),
* advertise-all (every router stays current, so hand-off is instant).

Run:  python examples/router_failover.py
"""

from repro.apps import RouterClusterScenario
from repro.gcs import SpreadConfig


def run_mode(mode):
    scenario = RouterClusterScenario(
        seed=4,
        n_routers=2,
        routing_mode=mode,
        spread_config=SpreadConfig.tuned(),
        wackamole_overrides={"maturity_timeout": 2.0},
        rip_interval=30.0,
    )
    scenario.start()
    if not scenario.run_until_stable(timeout=180.0):
        raise SystemExit("router cluster failed to stabilise ({})".format(mode))
    probe = scenario.start_probe()
    scenario.sim.run_for(2.0)
    fault_time = scenario.sim.now
    victim = scenario.fail_active(mode="crash")
    scenario.sim.run_for(45.0)
    gap = probe.longest_gap(after=fault_time)
    active = scenario.active_router()
    print(
        "  {:<14} crashed={:<8} new active={:<8} interruption={:6.2f}s".format(
            mode, victim.host.name, active.host.name, gap
        )
    )


def main():
    print("Virtual-router fail-over (internal host -> internet path):\n")
    for mode in ("static", "naive", "advertise_all"):
        run_mode(mode)
    print(
        "\nThe naive setup pays the dynamic-routing convergence delay"
        " (~30 s, §5.2); advertising from all routers avoids it."
    )


if __name__ == "__main__":
    main()
