#!/usr/bin/env python3
"""Network partitions and merges: Wackamole's hardest case.

A switch failure splits the LAN into two components. Each component —
per the paper's Correctness property — covers the *full* virtual
address set on its own. When the partition heals, every address is
briefly claimed twice; the deterministic ResolveConflicts procedure
drops the duplicates (earlier member in the uniquely ordered list
releases) and the representative re-balances the allocation.

Run:  python examples/partition_healing.py
"""

from repro.core import CoverageAuditor, WackamoleConfig, WackamoleDaemon
from repro.gcs import SpreadConfig, SpreadDaemon
from repro.net import FaultInjector, Host, Lan
from repro.sim import Simulation


def coverage_map(wacks, vips):
    owners = {}
    for vip in vips:
        owners[vip] = [w.host.name for w in wacks if w.alive and w.host.owns_ip(vip)]
    return owners


def show(title, wacks, vips):
    print("\n== {} ==".format(title))
    for vip, owners in coverage_map(wacks, vips).items():
        print("  {:<14} -> {}".format(vip, ", ".join(owners) or "(uncovered)"))


def main():
    sim = Simulation(seed=13)
    lan = Lan(sim, "lan0", "10.0.0.0/24")
    vips = ["10.0.0.{}".format(100 + i) for i in range(4)]
    config = WackamoleConfig.for_vips(vips, maturity_timeout=2.0, balance_timeout=3.0)

    hosts, wacks = [], []
    for index in range(4):
        host = Host(sim, "node{}".format(index + 1))
        host.add_nic(lan, "10.0.0.{}".format(10 + index))
        spread = SpreadDaemon(host, lan, SpreadConfig.tuned())
        wack = WackamoleDaemon(host, spread, config)
        sim.after(0.05 * index, spread.start)
        sim.after(0.05 * index + 0.01, wack.start)
        hosts.append(host)
        wacks.append(wack)

    auditor = CoverageAuditor(wacks)
    faults = FaultInjector(sim)
    sim.run_for(10.0)
    show("healthy cluster: each VIP covered once", wacks, vips)

    print("\npartitioning: {node1, node2} | {node3, node4} ...")
    faults.partition(lan, [hosts[:2], hosts[2:]])
    sim.run_for(10.0)
    show("partitioned: BOTH components cover the full set", wacks, vips)
    assert auditor.check() == [], "per-component coverage violated"
    conflicts_before = sum(w.conflicts_dropped for w in wacks)

    print("\nhealing the partition ...")
    faults.heal(lan)
    sim.run_for(10.0)
    show("merged: duplicates resolved deterministically", wacks, vips)
    dropped = sum(w.conflicts_dropped for w in wacks) - conflicts_before
    print("\n  conflicting claims dropped during the merge: {}".format(dropped))
    assert auditor.check() == [], "post-merge coverage violated"
    print("  coverage audit: OK (exactly-once coverage restored)")


if __name__ == "__main__":
    main()
