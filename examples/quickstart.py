#!/usr/bin/env python3
"""Quickstart: a three-server Wackamole cluster in ~40 lines.

Builds a simulated LAN, runs a GCS daemon plus a Wackamole daemon on
each server, lets the cluster allocate six virtual IP addresses, then
crashes a server and watches the survivors take its addresses over.

Run:  python examples/quickstart.py
"""

from repro.core import CoverageAuditor, WackamoleConfig, WackamoleDaemon
from repro.gcs import SpreadConfig, SpreadDaemon
from repro.net import FaultInjector, Host, Lan
from repro.sim import Simulation


def show(title, wacks):
    print("\n== {} ==".format(title))
    for wack in wacks:
        status = wack.status()
        if not wack.alive:
            print("  {:<8} DEAD".format(wack.host.name))
            continue
        print(
            "  {:<8} {:<6} owns {}".format(
                status["host"], status["state"], ", ".join(status["owned"]) or "-"
            )
        )


def main():
    sim = Simulation(seed=7)
    lan = Lan(sim, "lan0", "10.0.0.0/24")
    vips = ["10.0.0.{}".format(100 + i) for i in range(6)]
    config = WackamoleConfig.for_vips(vips, maturity_timeout=2.0)

    hosts, wacks = [], []
    for index in range(3):
        host = Host(sim, "server{}".format(index + 1))
        host.add_nic(lan, "10.0.0.{}".format(10 + index))
        spread = SpreadDaemon(host, lan, SpreadConfig.tuned())
        wack = WackamoleDaemon(host, spread, config)
        sim.after(0.05 * index, spread.start)
        sim.after(0.05 * index + 0.01, wack.start)
        hosts.append(host)
        wacks.append(wack)

    auditor = CoverageAuditor(wacks)
    sim.run_for(10.0)
    show("after boot: every VIP covered exactly once", wacks)
    assert auditor.check() == [], "coverage violated!"

    print("\ncrashing server1 ...")
    FaultInjector(sim).crash_host(hosts[0])
    sim.run_for(10.0)
    show("after fail-over: survivors cover the full set", wacks)
    assert auditor.check() == [], "coverage violated!"
    print("\ncoverage audit: OK (Property 1 holds)")


if __name__ == "__main__":
    main()
