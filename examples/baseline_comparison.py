#!/usr/bin/env python3
"""Wackamole vs the related fail-over protocols of §7.

Runs the same crash fault against Wackamole (both Table 1 Spread
configurations), VRRP (RFC 2338 defaults), Cisco-style HSRP (3 s
hellos, 10 s hold) and a Linux-Fake-style prober, and prints the mean
client-perceived interruption for each.

Run:  python examples/baseline_comparison.py
"""

from repro.experiments import BaselineComparison


def main():
    comparison = BaselineComparison(trials=3)
    results = comparison.run()
    print(comparison.format(results))
    print(
        "\nNote the qualitative difference §7 stresses: VRRP/HSRP/Fake\n"
        "protect ONE address with designated backups, while Wackamole\n"
        "provides N-way coverage of a whole address pool with partition\n"
        "merge handling — at a comparable (tuned) fail-over time."
    )


if __name__ == "__main__":
    main()
