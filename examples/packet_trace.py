#!/usr/bin/env python3
"""Watching the wire: the ARP traffic that makes fail-over visible.

Attaches a packet capture to the cluster LAN, fails a server, and
prints the ARP trace — the victim's silence, the takeover server's
spoofed replies repointing every cache, and the probe traffic flowing
to the new owner.

Run:  python examples/packet_trace.py
"""

from repro.apps import WebClusterScenario
from repro.gcs import SpreadConfig
from repro.net import PacketCapture
from repro.net.packet import ARP_ETHERTYPE


def main():
    scenario = WebClusterScenario(
        seed=15,
        n_servers=3,
        n_vips=4,
        spread_config=SpreadConfig.tuned(),
        wackamole_overrides={"maturity_timeout": 1.0, "balance_enabled": False},
    )
    scenario.start()
    if not scenario.run_until_stable(timeout=60.0):
        raise SystemExit("cluster failed to stabilise")
    probe = scenario.start_probe()
    scenario.sim.run_for(0.5)

    capture = PacketCapture(
        scenario.lan, predicate=lambda frame: frame.ethertype == ARP_ETHERTYPE
    )
    fault_time = scenario.sim.now
    victim = scenario.kill_owner_of(scenario.vips[0], mode="nic_down")
    scenario.sim.run_for(4.0)
    capture.stop()

    print("victim: {} (interface disconnected at t={:.2f}s)\n".format(
        victim.host.name, fault_time))
    print("ARP frames on the segment during fail-over:")
    print(capture.format())
    print("\nsummary: {}".format(capture.summary()))
    print("interruption seen by the client: {:.3f}s".format(
        probe.failover_interruption(after=fault_time)))


if __name__ == "__main__":
    main()
