#!/usr/bin/env python3
"""The observability layer end to end: metrics, episodes, dashboard.

Runs one instrumented fail-over (the quickstart cluster with a crash
against the probed address's owner), then renders the three views the
``repro.obs`` subsystem provides:

* the metric catalog across every layer (sim / net / gcs / core /
  workload), with time-weighted summaries for the queue-depth and
  VIP-coverage series;
* the fail-over episode table with per-phase durations (detection,
  membership, gather, ARP, client recovery);
* the JSON-lines export — byte-identical across replays of the same
  seed (`python -m repro observe --format jsonl` twice and `cmp`).

Run:  python examples/metrics_dashboard.py
"""

from repro.obs.dashboard import jsonl_observation, render_observation
from repro.obs.observe import run_observation


def main():
    result = run_observation(seed=7, fault="crash")
    print(render_observation(result))

    episode = result.failover_episode()
    print("phase durations of the fault episode:")
    for phase, duration in episode.phase_durations().items():
        print(
            "  {:<16} {}".format(
                phase, "-" if duration is None else "{:7.1f} ms".format(duration * 1e3)
            )
        )

    print("\ncoverage over time (from the ClusterObserver samples):")
    dip = result.observer.coverage_dip()
    if dip is not None:
        start, end, depth = dip
        print(
            "  coverage dipped by {} VIP(s) between t={:.2f}s and t={:.2f}s".format(
                depth, start, end
            )
        )
    else:
        print("  coverage never dipped")

    lines = jsonl_observation(result).splitlines()
    print("\nJSON-lines export: {} records; first two:".format(len(lines)))
    for line in lines[:2]:
        print("  {}".format(line))


if __name__ == "__main__":
    main()
