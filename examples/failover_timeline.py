#!/usr/bin/env python3
"""Watching a fail-over happen: coverage timeline around a fault.

Samples the cluster's VIP coverage every 50 ms while the owner of an
address is disconnected, then renders the dip-and-recovery as an ASCII
chart — the picture behind Figure 5's single number.

Run:  python examples/failover_timeline.py
"""

from repro.apps import WebClusterScenario
from repro.experiments.timeline import ClusterTimeline
from repro.gcs import SpreadConfig


def main():
    scenario = WebClusterScenario(
        seed=9,
        n_servers=4,
        n_vips=10,
        spread_config=SpreadConfig.tuned(),
        wackamole_overrides={"maturity_timeout": 1.0, "balance_enabled": False},
    )
    scenario.start()
    if not scenario.run_until_stable(timeout=60.0):
        raise SystemExit("cluster failed to stabilise")

    timeline = ClusterTimeline(scenario.sim, scenario.wacks, interval=0.05).start()
    scenario.sim.run_for(1.0)
    fault_time = scenario.sim.now
    victim = scenario.kill_owner_of(scenario.vips[0], mode="nic_down")
    scenario.sim.run_for(5.0)
    timeline.stop()

    print("fault: {}'s interface disconnected at t={:.2f}s\n".format(
        victim.host.name, fault_time))
    print(timeline.render(metrics=("covered",), width=72, height=12))
    dip = timeline.coverage_dip()
    if dip:
        start, end, depth = dip
        print(
            "\ncoverage dipped by {} VIP(s) from t={:.2f}s to t={:.2f}s "
            "({:.2f}s outage — the tuned Table 1 window)".format(
                depth, start, end, end - start
            )
        )


if __name__ == "__main__":
    main()
