#!/usr/bin/env python3
"""The administrative control channel (§4.2) in action.

Boots a small cluster, then drives one daemon through the operator
command surface: inspect status, the allocation table and the live
metrics registry, hand an address off, change preferences, and finally
drain the server gracefully.

Run:  python examples/admin_console.py
"""

from repro.core import AdminConsole, WackamoleConfig, WackamoleDaemon
from repro.gcs import SpreadConfig, SpreadDaemon
from repro.net import Host, Lan
from repro.sim import Simulation


def issue(console, line, sim=None, settle=0.0):
    print("wackatrl> {}".format(line))
    response = console.execute(line)
    for row in response.splitlines():
        print("  {}".format(row))
    if sim is not None and settle:
        sim.run_for(settle)


def main():
    sim = Simulation(seed=21)
    lan = Lan(sim, "lan0", "10.0.0.0/24")
    vips = ["10.0.0.{}".format(100 + i) for i in range(4)]
    config = WackamoleConfig.for_vips(vips, maturity_timeout=1.0, balance_timeout=2.0)

    wacks = []
    for index in range(3):
        host = Host(sim, "server{}".format(index + 1))
        host.add_nic(lan, "10.0.0.{}".format(10 + index))
        spread = SpreadDaemon(host, lan, SpreadConfig.tuned())
        wack = WackamoleDaemon(host, spread, config)
        sim.after(0.05 * index, spread.start)
        sim.after(0.05 * index + 0.01, wack.start)
        wacks.append(wack)

    sim.run_for(8.0)
    console = AdminConsole(wacks[0])
    issue(console, "help")
    issue(console, "status")
    issue(console, "vips")
    issue(console, "table")
    print("  (live metrics for this host, filtered to the core layer:)")
    issue(console, "metrics core.")

    owned = wacks[0].iface.owned_slots()[0]
    issue(console, "release {}".format(owned), sim=sim, settle=5.0)
    print("  (after the next balance round:)")
    issue(console, "table")

    issue(console, "prefer {}".format(vips[0]))
    issue(console, "shutdown", sim=sim, settle=5.0)
    print("\nremaining cluster, seen from server2:")
    issue(AdminConsole(wacks[1]), "status")
    issue(AdminConsole(wacks[1]), "table")


if __name__ == "__main__":
    main()
