#!/usr/bin/env python3
"""The paper's §6 experiment on the Figure 3 web cluster.

A client probes one virtual address every 10 ms while the interface of
the server covering it is disconnected. The availability interruption
(last reply from the victim to first reply from the takeover server)
is printed for both Table 1 Spread configurations.

Run:  python examples/web_cluster_failover.py
"""

from repro.apps import WebClusterScenario
from repro.gcs import SpreadConfig


def run_one(name, spread_config):
    scenario = WebClusterScenario(
        seed=11,
        n_servers=4,
        n_vips=10,
        spread_config=spread_config,
        wackamole_overrides={"maturity_timeout": 2.0, "balance_enabled": False},
    )
    scenario.start()
    if not scenario.run_until_stable(timeout=60.0):
        raise SystemExit("cluster failed to stabilise")

    probe = scenario.start_probe()
    scenario.sim.run_for(1.0)
    fault_time = scenario.sim.now
    victim = scenario.kill_owner_of(scenario.vips[0], mode="nic_down")
    lo, hi = spread_config.notification_window()
    scenario.sim.run_for(hi + 3.0)

    interruption = probe.failover_interruption(after=fault_time)
    takeover = scenario.owner_of(scenario.vips[0])
    print(
        "{:<18} victim={:<6} takeover={:<6} interruption={:.3f}s "
        "(paper window {:.1f}-{:.1f}s)".format(
            name, victim.host.name, takeover.host.name, interruption, lo, hi
        )
    )
    violations = scenario.auditor.check()
    assert not violations, violations


def main():
    print("Availability interruption, NIC-disconnect fault, 10 VIPs, 4 servers\n")
    run_one("Default Spread", SpreadConfig.default())
    run_one("Fine-tuned Spread", SpreadConfig.tuned())
    print("\nThe Spread timeouts account for nearly all of the interruption (§6).")


if __name__ == "__main__":
    main()
