"""One fail-over trial: build a cluster, break it, measure from the client.

Reproduces the §6 methodology: the probe client samples one virtual
address every 10 ms; the fault disconnects the interface of that
address's current owner; the availability interruption is the gap
between the last reply from the victim and the first reply from the
takeover server. The fault instant is drawn uniformly inside a
heartbeat interval so the detection-phase randomness ([fd - hb, fd])
is properly sampled across trials.
"""

from repro.apps.webcluster import WebClusterScenario
from repro.obs.episodes import extract_episodes, first_complete_episode
from repro.sim.rng import RngRegistry


class FailoverTrial:
    """Result of one trial."""

    __slots__ = (
        "seed",
        "cluster_size",
        "n_vips",
        "fault_mode",
        "fault_time",
        "interruption",
        "victim",
        "takeover",
        "violations",
        "episodes",
    )

    def __init__(self, seed, cluster_size, n_vips, fault_mode, fault_time,
                 interruption, victim, takeover, violations, episodes=()):
        self.seed = seed
        self.cluster_size = cluster_size
        self.n_vips = n_vips
        self.fault_mode = fault_mode
        self.fault_time = fault_time
        self.interruption = interruption
        self.victim = victim
        self.takeover = takeover
        self.violations = violations
        self.episodes = list(episodes)

    def failover_episode(self):
        """The complete episode caused by the injected fault, or None."""
        return first_complete_episode(self.episodes, after=self.fault_time)

    def __repr__(self):
        return "FailoverTrial(n={}, {}, interruption={})".format(
            self.cluster_size, self.fault_mode, self.interruption
        )


def run_failover_trial(
    seed,
    cluster_size,
    spread_config,
    n_vips=10,
    fault_mode="nic_down",
    wackamole_overrides=None,
    probe_interval=0.010,
    settle_margin=2.0,
):
    """Run one complete fail-over measurement; returns a FailoverTrial."""
    overrides = dict(wackamole_overrides or {})
    overrides.setdefault("maturity_timeout", 2.0)
    overrides.setdefault("balance_enabled", False)
    scenario = WebClusterScenario(
        seed=seed,
        n_servers=cluster_size,
        n_vips=n_vips,
        spread_config=spread_config,
        wackamole_overrides=overrides,
        probe_interval=probe_interval,
    )
    scenario.start()
    if not scenario.run_until_stable(timeout=60.0):
        raise RuntimeError("cluster never stabilised (seed={})".format(seed))

    probe = scenario.start_probe()
    # Randomise the failure phase within a heartbeat interval.
    phase = RngRegistry(seed).stream("fault_phase").uniform(0.0, 1.0)
    warmup = 0.5 + phase * spread_config.heartbeat_timeout
    scenario.sim.run_for(warmup)

    fault_time = scenario.sim.now
    victim = scenario.kill_owner_of(scenario.vips[0], mode=fault_mode)
    lo, hi = spread_config.notification_window()
    scenario.sim.run_for(hi + settle_margin)

    interruption = probe.failover_interruption(after=fault_time)
    probe.stop_probing()
    takeover = scenario.owner_of(scenario.vips[0])
    violations = scenario.auditor.check()
    return FailoverTrial(
        seed=seed,
        cluster_size=cluster_size,
        n_vips=n_vips,
        fault_mode=fault_mode,
        fault_time=fault_time,
        interruption=interruption,
        victim=victim.host.name,
        takeover=takeover.host.name if takeover else None,
        violations=violations,
        episodes=extract_episodes(scenario.sim.trace.records),
    )
