"""Small reporting helpers: statistics and paper-style ASCII tables."""

import math


def mean(values):
    """Arithmetic mean; 0.0 for an empty sequence."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def stdev(values):
    """Sample standard deviation; 0.0 below two samples."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    centre = mean(values)
    return math.sqrt(sum((v - centre) ** 2 for v in values) / (len(values) - 1))


def format_table(headers, rows, title=None):
    """Render a fixed-width table like the ones in the paper."""
    columns = [str(h) for h in headers]
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(column) for column in columns]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(columns))
    parts.append("  ".join("-" * width for width in widths))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)


def _cell(value):
    if isinstance(value, float):
        return "{:.3f}".format(value)
    return str(value)


def to_csv(headers, rows):
    """Render a result table as CSV text (for downstream plotting).

    Floats keep full precision here, unlike the display tables.
    """
    import csv
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([str(h) for h in headers])
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def series_to_rows(series, x_name="x"):
    """Flatten {label: [(x, y)]} into (headers, rows) for to_csv."""
    labels = list(series)
    xs = sorted({x for points in series.values() for x, _ in points})
    lookup = {
        label: {x: y for x, y in points} for label, points in series.items()
    }
    rows = [
        [x] + [lookup[label].get(x) for label in labels]
        for x in xs
    ]
    return [x_name] + labels, rows
