"""Experiment harness: regenerates every table and figure of §6.

Each experiment module produces the same rows/series the paper
reports:

* :mod:`repro.experiments.table1` — Table 1: the Spread timeout
  presets and the failure-notification windows they imply, checked
  against measured membership-installation times.
* :mod:`repro.experiments.figure5` — Figure 5: average availability
  interruption vs cluster size (2–12 servers, 10 VIPs) for default and
  fine-tuned Spread.
* :mod:`repro.experiments.graceful` — §6's voluntary-leave
  measurement (most runs ~10 ms, conservative bound 250 ms).
* :mod:`repro.experiments.router_experiment` — §5.2's dynamic-routing
  comparison (naive ≈ +30 s vs advertise-all).
* :mod:`repro.experiments.baselines_experiment` — §7's related
  protocols (VRRP / HSRP / Fake) under the same fault.
"""

from repro.experiments.availability import AvailabilityExperiment
from repro.experiments.baselines_experiment import BaselineComparison
from repro.experiments.figure5 import Figure5Experiment
from repro.experiments.graceful import GracefulLeaveExperiment
from repro.experiments.load import LoadedClusterExperiment
from repro.experiments.plotting import render_series
from repro.experiments.report import format_table, mean, stdev
from repro.experiments.router_experiment import RouterFailoverExperiment
from repro.experiments.runner import FailoverTrial, run_failover_trial
from repro.experiments.table1 import Table1Experiment
from repro.experiments.timeline import ClusterTimeline
from repro.experiments.tuning import FalsePositiveExperiment, SensitivityExperiment

__all__ = [
    "AvailabilityExperiment",
    "BaselineComparison",
    "ClusterTimeline",
    "FailoverTrial",
    "FalsePositiveExperiment",
    "Figure5Experiment",
    "GracefulLeaveExperiment",
    "LoadedClusterExperiment",
    "RouterFailoverExperiment",
    "SensitivityExperiment",
    "Table1Experiment",
    "format_table",
    "mean",
    "render_series",
    "run_failover_trial",
    "stdev",
]
