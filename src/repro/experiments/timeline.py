"""Coverage timelines: continuous observation of a running cluster.

The §6 experiments reduce each run to a single number (the availability
interruption). For debugging and for visualising *why* that number is
what it is, a cluster is sampled on a fixed period — how many VIPs are
covered/duplicated, how many daemons sit in each state — and the
coverage dip around a fault rendered as an ASCII chart.

The sampling and analysis now live in
:class:`repro.obs.coverage.ClusterObserver` (where the samples also
feed the ``core.vips_covered``/``core.vips_duplicated`` time-weighted
metrics); this module keeps the experiment-facing name and adds the
chart rendering on top.
"""

from repro.experiments.plotting import render_series
from repro.obs.coverage import ClusterObserver, ClusterSample

#: Backwards-compatible alias: timeline samples *are* observer samples.
TimelineSample = ClusterSample


class ClusterTimeline(ClusterObserver):
    """Periodic sampler over a set of Wackamole daemons, with rendering."""

    def render(self, metrics=("covered", "duplicated"), width=72, height=12):
        """ASCII chart of selected metrics over time."""
        return render_series(
            {metric: self.series(metric) for metric in metrics},
            width=width,
            height=height,
            y_label="count",
            x_label="simulated time (s)",
        )
