"""Coverage timelines: continuous observation of a running cluster.

The §6 experiments reduce each run to a single number (the availability
interruption). For debugging and for visualising *why* that number is
what it is, this module samples a cluster's state on a fixed period —
how many VIPs are covered/duplicated, how many daemons sit in each
state — and can render the coverage dip around a fault as an ASCII
chart.
"""

from repro.core.state import GATHER, RUN
from repro.experiments.plotting import render_series


class TimelineSample:
    """One observation instant."""

    __slots__ = ("time", "covered", "duplicated", "run_daemons", "gather_daemons",
                 "live_daemons")

    def __init__(self, time, covered, duplicated, run_daemons, gather_daemons,
                 live_daemons):
        self.time = time
        self.covered = covered
        self.duplicated = duplicated
        self.run_daemons = run_daemons
        self.gather_daemons = gather_daemons
        self.live_daemons = live_daemons

    def __repr__(self):
        return "TimelineSample(t={:.2f}, covered={}, dup={}, run={})".format(
            self.time, self.covered, self.duplicated, self.run_daemons
        )


class ClusterTimeline:
    """Periodic sampler over a set of Wackamole daemons."""

    def __init__(self, sim, wacks, interval=0.1):
        self.sim = sim
        self.wacks = list(wacks)
        self.interval = float(interval)
        self.samples = []
        self._running = False

    def start(self):
        """Begin sampling every ``interval`` simulated seconds."""
        if not self._running:
            self._running = True
            self._tick()
        return self

    def stop(self):
        """Stop sampling (recorded samples are kept)."""
        self._running = False

    def _tick(self):
        if not self._running:
            return
        self.samples.append(self._observe())
        self.sim.after(self.interval, self._tick)

    def _observe(self):
        slots = []
        for wack in self.wacks:
            for slot in wack.config.slot_ids():
                if slot not in slots:
                    slots.append(slot)
        covered = 0
        duplicated = 0
        live = [w for w in self.wacks if w.alive and w.host.alive]
        for slot in slots:
            owners = 0
            for wack in live:
                group = wack.config.group(slot)
                if all(wack.host.owns_ip(a) for a in group.addresses):
                    owners += 1
            if owners >= 1:
                covered += 1
            if owners > 1:
                duplicated += 1
        return TimelineSample(
            time=self.sim.now,
            covered=covered,
            duplicated=duplicated,
            run_daemons=sum(1 for w in live if w.machine.state == RUN),
            gather_daemons=sum(1 for w in live if w.machine.state == GATHER),
            live_daemons=len(live),
        )

    # ------------------------------------------------------------------
    # analysis

    def series(self, metric):
        """[(time, value)] for one sample attribute."""
        return [(s.time, getattr(s, metric)) for s in self.samples]

    def coverage_dip(self):
        """(start, end, depth) of the first drop below full coverage.

        Returns None when coverage never dipped. ``depth`` is the
        number of simultaneously uncovered VIPs at the worst point.
        """
        if not self.samples:
            return None
        full = max(s.covered for s in self.samples)
        start = end = None
        depth = 0
        for sample in self.samples:
            if sample.covered < full:
                if start is None:
                    start = sample.time
                end = sample.time
                depth = max(depth, full - sample.covered)
            elif start is not None:
                break
        if start is None:
            return None
        return (start, end, depth)

    def render(self, metrics=("covered", "duplicated"), width=72, height=12):
        """ASCII chart of selected metrics over time."""
        return render_series(
            {metric: self.series(metric) for metric in metrics},
            width=width,
            height=height,
            y_label="count",
            x_label="simulated time (s)",
        )
