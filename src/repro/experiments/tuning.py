"""Tuning trade-off experiments around the Table 1 timeouts.

§4.2: "Modifying the Spread network-failure probing timeouts must be
… done on a system-specific basis. If not done properly, this tuning
can be detrimental to the performance of a Wackamole cluster by
increasing the number of false-positive network failures."

Two experiments quantify the trade-off the paper describes only
qualitatively:

* :class:`FalsePositiveExperiment` — spurious reconfigurations of an
  *unfaulted* cluster as a function of message-loss rate, for both
  Table 1 configurations. Aggressive timeouts tolerate fewer lost
  heartbeats, so they misfire more often per unit time.
* :class:`SensitivityExperiment` — client-perceived interruption as a
  function of the fault-detection timeout (heartbeat and discovery
  scaled with the Table 1 ratios), mapping the whole tuning curve
  between the two published points.
"""

from repro.apps.webcluster import WebClusterScenario
from repro.experiments.plotting import render_series
from repro.experiments.report import format_table, mean
from repro.experiments.runner import run_failover_trial
from repro.gcs.config import SpreadConfig


class FalsePositiveExperiment:
    """Counts spurious view changes on a healthy but lossy LAN."""

    def __init__(self, loss_rates=(0.0, 0.05, 0.10), duration=120.0,
                 cluster_size=4, trials=2, base_seed=6000):
        self.loss_rates = tuple(loss_rates)
        self.duration = float(duration)
        self.cluster_size = cluster_size
        self.trials = trials
        self.base_seed = base_seed
        self.configs = {
            "Default Spread": SpreadConfig.default(),
            "Tuned Spread": SpreadConfig.tuned(),
        }

    def count_spurious(self, config, loss, seed):
        """Reconfigurations observed with no fault injected."""
        scenario = WebClusterScenario(
            seed=seed,
            n_servers=self.cluster_size,
            n_vips=4,
            spread_config=config,
            wackamole_overrides={"maturity_timeout": 2.0, "balance_enabled": False},
            trace_enabled=False,
        )
        scenario.start()
        if not scenario.run_until_stable(timeout=90.0):
            raise RuntimeError("cluster never stabilised")
        baseline = sum(s.membership.views_installed for s in scenario.spreads)
        scenario.lan.loss = loss
        scenario.sim.run_for(self.duration)
        after = sum(s.membership.views_installed for s in scenario.spreads)
        return after - baseline

    def run(self):
        """{config: {loss: mean spurious reconfigurations}}."""
        results = {}
        for name, config in self.configs.items():
            by_loss = {}
            for loss in self.loss_rates:
                counts = [
                    self.count_spurious(config, loss, self.base_seed + trial)
                    for trial in range(self.trials)
                ]
                by_loss[loss] = mean(counts)
            results[name] = by_loss
        return results

    def format(self, results=None):
        results = results or self.run()
        rows = []
        for loss in self.loss_rates:
            rows.append(
                ["{:.0%}".format(loss)]
                + [results[name][loss] for name in self.configs]
            )
        return format_table(
            ["Frame loss"] + ["{} (reconfigs)".format(n) for n in self.configs],
            rows,
            title="False-positive reconfigurations in {}s with no real fault".format(
                self.duration
            ),
        )


class SensitivityExperiment:
    """Interruption vs fault-detection timeout (Table 1 ratios kept)."""

    #: Table 1 proportions: hb = 0.4 x fd, discovery = 1.4 x fd.
    HEARTBEAT_RATIO = 0.4
    DISCOVERY_RATIO = 1.4

    def __init__(self, fd_timeouts=(1.0, 2.0, 3.0, 5.0), trials=3,
                 cluster_size=4, base_seed=6500):
        self.fd_timeouts = tuple(fd_timeouts)
        self.trials = trials
        self.cluster_size = cluster_size
        self.base_seed = base_seed

    def config_for(self, fd):
        """SpreadConfig with the Table 1 proportions at scale ``fd``."""
        return SpreadConfig(
            fault_detection_timeout=fd,
            heartbeat_timeout=fd * self.HEARTBEAT_RATIO,
            discovery_timeout=fd * self.DISCOVERY_RATIO,
        )

    def run_point(self, fd):
        config = self.config_for(fd)
        samples = []
        for trial in range(self.trials):
            result = run_failover_trial(
                self.base_seed + trial,
                self.cluster_size,
                config,
                n_vips=6,
            )
            samples.append(result.interruption)
        return mean(samples)

    def run(self):
        """[(fd, mean interruption)] over the sweep."""
        return [(fd, self.run_point(fd)) for fd in self.fd_timeouts]

    def format(self, points=None):
        points = points or self.run()
        table = format_table(
            ["Fault-detection timeout (s)", "Mean interruption (s)",
             "Expected centre (s)"],
            [[fd, value, self.expected_centre(fd)] for fd, value in points],
            title="Interruption vs timeout scale (Table 1 ratios)",
        )
        chart = render_series(
            {"measured": points,
             "expected": [(fd, self.expected_centre(fd)) for fd, _ in points]},
            y_label="interruption (s)",
            x_label="fault-detection timeout (s)",
        )
        return table + "\n\n" + chart

    def expected_centre(self, fd):
        """Midpoint of the §6 window: fd - hb/2 + discovery."""
        return fd - fd * self.HEARTBEAT_RATIO / 2.0 + fd * self.DISCOVERY_RATIO
