"""Pool-wide availability: the downstream user's view of Figure 5.

Figure 5 reports the interruption of *one* virtual address. A service
operator cares about the complement: what fraction of requests across
the *whole* address pool succeed over a window containing faults. This
experiment probes every VIP concurrently (10 ms interval each, as in
§6), injects a fault schedule, and reports per-VIP and pool-wide
availability.
"""

from repro.apps.webcluster import WebClusterScenario
from repro.apps.workload import ProbeClient
from repro.experiments.report import format_table, mean
from repro.gcs.config import SpreadConfig
from repro.obs.coverage import ClusterObserver
from repro.sim.rng import RngRegistry


class AvailabilityExperiment:
    """Request success rate over a faulty window, across the pool."""

    def __init__(
        self,
        window=120.0,
        n_servers=4,
        n_vips=10,
        faults=1,
        spread_config=None,
        probe_interval=0.010,
        base_seed=8800,
    ):
        self.window = float(window)
        self.n_servers = n_servers
        self.n_vips = n_vips
        self.faults = faults
        self.spread_config = spread_config or SpreadConfig.tuned()
        self.probe_interval = probe_interval
        self.base_seed = base_seed
        self._gap_seconds = []

    def run_trial(self, seed):
        """One window; returns (pool availability, per-vip rates, probes)."""
        scenario = WebClusterScenario(
            seed=seed,
            n_servers=self.n_servers,
            n_vips=self.n_vips,
            spread_config=self.spread_config,
            wackamole_overrides={"maturity_timeout": 2.0, "balance_timeout": 5.0},
            trace_enabled=False,
        )
        scenario.start()
        if not scenario.run_until_stable(timeout=60.0):
            raise RuntimeError("cluster never stabilised")
        probes = [
            ProbeClient(scenario.client_host, vip, interval=self.probe_interval)
            for vip in scenario.vips
        ]
        for probe in probes:
            probe.start()
        # Passive coverage sampler: feeds the core.vips_covered metrics
        # and measures how long the pool sat below full coverage. Pure
        # read-side observation — the probe numbers are unaffected.
        observer = ClusterObserver(scenario.sim, scenario.wacks).start()
        rng = RngRegistry(seed).stream("fault_schedule")
        fault_times = sorted(
            rng.uniform(self.window * 0.1, self.window * 0.8)
            for _ in range(self.faults)
        )
        start = scenario.sim.now
        for offset in fault_times:
            scenario.faults.at(
                start + offset, self._fail_some_server, scenario
            )
        scenario.sim.run_for(self.window)
        for probe in probes:
            probe.stop_probing()
        observer.stop()
        full = max((s.covered for s in observer.samples), default=0)
        self._gap_seconds.append(
            sum(1 for s in observer.samples if s.covered < full) * observer.interval
        )
        per_vip = {
            str(probe.target): probe.response_rate() for probe in probes
        }
        answered = sum(len(p.responses) for p in probes)
        sent = sum(p.requests_sent for p in probes)
        return answered / sent, per_vip, probes

    @staticmethod
    def _fail_some_server(scenario):
        live = [w for w in scenario.wacks if w.alive]
        if len(live) > 1:
            scenario.faults.nic_down(live[0].host.nic_on(scenario.lan))

    def run(self, trials=2):
        """Mean pool availability and the worst single-VIP rate."""
        pool_rates = []
        worst_vip_rates = []
        self._gap_seconds = []
        for trial in range(trials):
            pool, per_vip, _ = self.run_trial(self.base_seed + trial)
            pool_rates.append(pool)
            worst_vip_rates.append(min(per_vip.values()))
        return {
            "pool_availability": mean(pool_rates),
            "worst_vip_availability": mean(worst_vip_rates),
            "samples": pool_rates,
            "mean_coverage_gap": mean(self._gap_seconds) if self._gap_seconds else 0.0,
        }

    def format(self, results=None, trials=2):
        results = results or self.run(trials=trials)
        rows = [
            ["window (s)", self.window],
            ["faults injected", self.faults],
            ["pool availability", "{:.4%}".format(results["pool_availability"])],
            ["worst single VIP", "{:.4%}".format(results["worst_vip_availability"])],
            [
                "mean coverage gap (s)",
                "{:.2f}".format(results.get("mean_coverage_gap", 0.0)),
            ],
        ]
        return format_table(
            ["Metric", "Value"],
            rows,
            title="Pool-wide availability under faults ({} VIPs, {} servers)".format(
                self.n_vips, self.n_servers
            ),
        )
