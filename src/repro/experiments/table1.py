"""Table 1: Spread timeout tuning (seconds) — and what it implies.

The table itself is configuration; the paper derives from it that
"the time it takes the default Spread to notify Wackamole of a failure
ranges from 10 seconds to 12 seconds. For the tuned Spread, this time
ranges from 2 seconds to 2.4 seconds." This experiment prints the
table and *measures* the notification time (fault to membership
installation, read from the GCS traces) across repeated trials to
verify it falls in the derived window.
"""

from repro.apps.webcluster import WebClusterScenario
from repro.experiments.report import format_table, mean
from repro.gcs.config import SpreadConfig
from repro.obs.episodes import extract_episodes
from repro.sim.rng import RngRegistry


class Table1Experiment:
    """Reproduces Table 1 plus the derived notification windows."""

    PARAMETERS = (
        ("Fault-detection timeout", "fault_detection_timeout"),
        ("Distributed Heartbeat timeout", "heartbeat_timeout"),
        ("Discovery timeout", "discovery_timeout"),
    )

    def __init__(self, trials=5, cluster_size=4, base_seed=1000):
        self.trials = trials
        self.cluster_size = cluster_size
        self.base_seed = base_seed
        self.configs = {
            "Default Spread": SpreadConfig.default(),
            "Tuned Spread": SpreadConfig.tuned(),
        }

    def parameter_rows(self):
        """The literal Table 1 rows."""
        rows = []
        for label, attribute in self.PARAMETERS:
            rows.append(
                [label]
                + [getattr(config, attribute) for config in self.configs.values()]
            )
        return rows

    def measure_notification_times(self, config):
        """Fault-to-view-installation delays over the trials."""
        times = []
        for trial in range(self.trials):
            seed = self.base_seed + trial
            times.append(self._one_notification_time(seed, config))
        return times

    def _one_notification_time(self, seed, config):
        scenario = WebClusterScenario(
            seed=seed,
            n_servers=self.cluster_size,
            n_vips=10,
            spread_config=config,
            wackamole_overrides={"maturity_timeout": 2.0, "balance_enabled": False},
            trace_enabled=True,
        )
        scenario.start()
        if not scenario.run_until_stable(timeout=60.0):
            raise RuntimeError("cluster never stabilised (seed={})".format(seed))
        phase = RngRegistry(seed).stream("fault_phase").uniform(0.0, 1.0)
        scenario.sim.run_for(0.5 + phase * config.heartbeat_timeout)
        fault_time = scenario.sim.now
        scenario.kill_owner_of(scenario.vips[0], mode="nic_down")
        lo, hi = config.notification_window()
        scenario.sim.run_for(hi + 2.0)
        # The fault opens one fail-over episode; its install milestone is
        # the surviving component's first view installation (the episode
        # extractor discards the disconnected victim's own — earlier —
        # singleton install).
        episode = None
        for candidate in extract_episodes(scenario.sim.trace.records):
            if (
                candidate.trigger_kind == "fault:nic_down"
                and candidate.trigger_time >= fault_time - 1e-9
            ):
                episode = candidate
                break
        if episode is None or episode.install_time is None:
            raise RuntimeError("no view installed after fault (seed={})".format(seed))
        return episode.install_time - fault_time

    def run(self):
        """Full results: the parameter table plus measured windows."""
        results = {"parameters": self.parameter_rows(), "measured": {}}
        for name, config in self.configs.items():
            times = self.measure_notification_times(config)
            lo, hi = config.notification_window()
            results["measured"][name] = {
                "times": times,
                "mean": mean(times),
                "min": min(times),
                "max": max(times),
                "derived_window": (lo, hi),
            }
        return results

    def format(self, results=None):
        """Paper-style rendering of Table 1 and the measured windows."""
        results = results or self.run()
        parts = [
            format_table(
                ["Parameter Name"] + list(self.configs),
                results["parameters"],
                title="Table 1. Spread timeout tuning (seconds)",
            ),
            "",
        ]
        rows = []
        for name, measured in results["measured"].items():
            lo, hi = measured["derived_window"]
            rows.append(
                [
                    name,
                    "{:.1f} - {:.1f}".format(lo, hi),
                    measured["min"],
                    measured["mean"],
                    measured["max"],
                ]
            )
        parts.append(
            format_table(
                ["Configuration", "Derived window (s)", "Measured min", "mean", "max"],
                rows,
                title="Failure notification time (fault -> membership install)",
            )
        )
        return "\n".join(parts)
