"""Loaded-machine experiment: why the daemons want real-time priority.

§6: "Both Wackamole and Spread can be used in production on
highly-loaded machines as well. However, it is recommended that both
daemon processes be run with high priority (real-time priority under
Linux) in these types of environments in order to avoid false positive
errors."

The simulated host can impose an exponential user-space scheduling
delay on datagram delivery (:meth:`repro.net.host.Host.set_load`);
sockets opened with real-time priority bypass it. This experiment
counts spurious reconfigurations of a healthy cluster as load grows,
with and without real-time priority for the GCS daemons.
"""

from repro.core.config import WackamoleConfig
from repro.core.daemon import WackamoleDaemon
from repro.experiments.report import format_table, mean
from repro.gcs.config import SpreadConfig
from repro.gcs.daemon import SpreadDaemon
from repro.net.host import Host
from repro.net.lan import Lan
from repro.sim.simulation import Simulation


class LoadedClusterExperiment:
    """Spurious reconfigurations vs host load, +/- real-time priority."""

    def __init__(
        self,
        load_delays=(0.0, 0.1, 0.3),
        duration=120.0,
        cluster_size=4,
        trials=2,
        spread_config=None,
        base_seed=7700,
    ):
        self.load_delays = tuple(load_delays)
        self.duration = float(duration)
        self.cluster_size = cluster_size
        self.trials = trials
        self.spread_config = spread_config or SpreadConfig.tuned()
        self.base_seed = base_seed

    def count_spurious(self, realtime, load, seed):
        """Reconfigurations on a healthy cluster under ``load``."""
        sim = Simulation(seed=seed, trace_enabled=False)
        lan = Lan(sim, "lan", "10.0.0.0/24")
        config = WackamoleConfig.for_vips(
            ["10.0.0.{}".format(100 + i) for i in range(4)],
            maturity_timeout=1.0,
            balance_enabled=False,
        )
        spreads = []
        for index in range(self.cluster_size):
            host = Host(sim, "node{}".format(index))
            host.add_nic(lan, "10.0.0.{}".format(10 + index))
            spread = SpreadDaemon(host, lan, self.spread_config, realtime=realtime)
            WackamoleDaemon(host, spread, config).start()
            sim.after(0.02 * index, spread.start)
            spreads.append(spread)
        # Boot on an unloaded machine, then the load arrives.
        sim.run_for(15.0)
        for spread in spreads:
            spread.host.set_load(load)
        baseline = sum(s.membership.views_installed for s in spreads)
        sim.run_for(self.duration)
        return sum(s.membership.views_installed for s in spreads) - baseline

    def run(self):
        """{priority: {load: mean spurious reconfigurations}}."""
        results = {}
        for label, realtime in (("real-time priority", True), ("normal priority", False)):
            by_load = {}
            for load in self.load_delays:
                counts = [
                    self.count_spurious(realtime, load, self.base_seed + trial)
                    for trial in range(self.trials)
                ]
                by_load[load] = mean(counts)
            results[label] = by_load
        return results

    def format(self, results=None):
        results = results or self.run()
        labels = list(results)
        rows = []
        for load in self.load_delays:
            rows.append(
                ["{:.0f} ms".format(load * 1000)]
                + [results[label][load] for label in labels]
            )
        return format_table(
            ["Mean scheduling delay"] + ["{} (reconfigs)".format(l) for l in labels],
            rows,
            title="Spurious reconfigurations in {}s on loaded machines "
            "(tuned Spread)".format(self.duration),
        )
