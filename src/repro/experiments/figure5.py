"""Figure 5: average availability interruption vs cluster size.

"Both experiments were run on a 100Mbit Ethernet LAN cluster,
maintaining 10 virtual IP addresses in a cluster, and varying the
number of servers from 2 to 12." The reported quantity is the average
availability interruption time measured from a client probing one
virtual address at a 10 ms interval, for default and fine-tuned
Spread configurations.
"""

from repro.experiments.plotting import render_series
from repro.experiments.report import format_table, mean, stdev
from repro.experiments.runner import run_failover_trial
from repro.gcs.config import SpreadConfig


class Figure5Experiment:
    """Sweep cluster sizes for both Spread configurations."""

    def __init__(
        self,
        cluster_sizes=(2, 4, 6, 8, 10, 12),
        trials=5,
        n_vips=10,
        base_seed=42,
        fault_mode="nic_down",
    ):
        self.cluster_sizes = tuple(cluster_sizes)
        self.trials = trials
        self.n_vips = n_vips
        self.base_seed = base_seed
        self.fault_mode = fault_mode
        self.configs = {
            "Default Spread": SpreadConfig.default(),
            "Fine-tuned Spread": SpreadConfig.tuned(),
        }

    def run_point(self, config, cluster_size):
        """All trials for one (configuration, cluster size) point."""
        interruptions = []
        for trial in range(self.trials):
            seed = self.base_seed + 1000 * cluster_size + trial
            result = run_failover_trial(
                seed,
                cluster_size,
                config,
                n_vips=self.n_vips,
                fault_mode=self.fault_mode,
            )
            if result.violations:
                raise AssertionError(
                    "coverage violated during trial: {}".format(result.violations)
                )
            if result.interruption is None:
                raise RuntimeError(
                    "no fail-over observed (size={}, seed={})".format(cluster_size, seed)
                )
            interruptions.append(result.interruption)
        return interruptions

    def run(self):
        """The full figure: {config: {size: {mean, stdev, samples}}}."""
        series = {}
        for name, config in self.configs.items():
            points = {}
            for size in self.cluster_sizes:
                samples = self.run_point(config, size)
                points[size] = {
                    "mean": mean(samples),
                    "stdev": stdev(samples),
                    "samples": samples,
                }
            series[name] = points
        return series

    def format(self, series=None):
        """The figure's two series as a table (x = cluster size)."""
        series = series or self.run()
        rows = []
        for size in self.cluster_sizes:
            row = [size]
            for name in self.configs:
                point = series[name][size]
                row.append(point["mean"])
                row.append(point["stdev"])
            rows.append(row)
        headers = ["Cluster Size"]
        for name in self.configs:
            headers.extend(["{} mean (s)".format(name), "stdev"])
        return format_table(
            headers,
            rows,
            title="Figure 5. Average Availability Interruption with Varying Cluster Size",
        )

    def format_chart(self, series=None):
        """ASCII rendition of the figure itself (two series over size)."""
        series = series or self.run()
        plotted = {
            name: [(size, series[name][size]["mean"]) for size in self.cluster_sizes]
            for name in self.configs
        }
        return render_series(
            plotted,
            y_label="Availability Interruption (seconds)",
            x_label="Cluster Size",
        )
