"""§5.2's router fail-over comparison.

Measures client-perceived interruption (internal host reaching an
internet service through the virtual router) when the active physical
router crashes, under the three routing setups:

* ``static`` — no dynamic routing: pure Wackamole hand-off cost;
* ``naive`` — only the active router speaks the dynamic routing
  protocol, so the successor must wait for the next advertisement
  round ("usually takes around 30 seconds");
* ``advertise_all`` — every physical router participates continuously,
  so the hand-off is "complete as soon as Wackamole reconfigures".
"""

from repro.apps.routercluster import RouterClusterScenario
from repro.experiments.report import format_table, mean
from repro.gcs.config import SpreadConfig
from repro.sim.rng import RngRegistry


class RouterFailoverExperiment:
    """Crash the active virtual router under each routing setup."""

    MODES = ("static", "naive", "advertise_all")

    def __init__(
        self,
        trials=3,
        n_routers=2,
        spread_config=None,
        rip_interval=30.0,
        base_seed=9000,
    ):
        self.trials = trials
        self.n_routers = n_routers
        self.spread_config = spread_config or SpreadConfig.tuned()
        self.rip_interval = rip_interval
        self.base_seed = base_seed

    def run_mode(self, mode):
        """Interruption samples for one routing setup."""
        samples = []
        for trial in range(self.trials):
            seed = self.base_seed + trial
            samples.append(self._one_trial(mode, seed))
        return samples

    def _one_trial(self, mode, seed):
        scenario = RouterClusterScenario(
            seed=seed,
            n_routers=self.n_routers,
            routing_mode=mode,
            spread_config=self.spread_config,
            rip_interval=self.rip_interval,
            wackamole_overrides={"maturity_timeout": 2.0},
            trace_enabled=False,
        )
        scenario.start()
        if not scenario.run_until_stable(timeout=180.0):
            raise RuntimeError("router cluster never stabilised ({})".format(mode))
        probe = scenario.start_probe()
        phase = RngRegistry(seed).stream("fault_phase").uniform(0.0, 1.0)
        scenario.sim.run_for(1.0 + phase * self.spread_config.heartbeat_timeout)
        fault_time = scenario.sim.now
        scenario.fail_active(mode="crash")
        _, hi = self.spread_config.notification_window()
        scenario.sim.run_for(hi + self.rip_interval + 5.0)
        probe.stop_probing()
        gap = probe.longest_gap(after=fault_time)
        if scenario.active_router() is None:
            raise RuntimeError("no router took over in mode {}".format(mode))
        return gap

    def run(self):
        """{mode: {mean, samples}} across all routing setups."""
        results = {}
        for mode in self.MODES:
            samples = self.run_mode(mode)
            results[mode] = {"samples": samples, "mean": mean(samples)}
        return results

    def format(self, results=None):
        results = results or self.run()
        rows = [
            [mode, results[mode]["mean"], max(results[mode]["samples"])]
            for mode in self.MODES
        ]
        return format_table(
            ["Routing setup", "Mean interruption (s)", "Max (s)"],
            rows,
            title="Router fail-over under dynamic routing (rip interval = {}s)".format(
                self.rip_interval
            ),
        )
