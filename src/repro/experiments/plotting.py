"""Minimal ASCII chart rendering for experiment output.

`pytest benchmarks/` environments have no display; the figure
reproductions print a text chart alongside the numeric table so the
shape of the paper's figures (who is where, flat vs sloped) is visible
directly in the terminal.
"""

MARKERS = "*o+x#@"


def render_series(series, width=64, height=16, y_label="", x_label=""):
    """Render an ASCII scatter/line chart.

    ``series`` maps label -> list of (x, y) points. Returns a string
    with a y-axis, the plotted points (one marker per series), an
    x-axis, and a legend.
    """
    all_points = [point for points in series.values() for point in points]
    if not all_points:
        return "(no data)"
    xs = [x for x, _ in all_points]
    ys = [y for _, y in all_points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if y_max == y_min:
        y_max = y_min + 1.0
    if x_max == x_min:
        x_max = x_min + 1.0
    # Pad the top so markers don't sit on the frame.
    y_max += (y_max - y_min) * 0.05
    y_min = max(0.0, y_min - (y_max - y_min) * 0.05)

    grid = [[" "] * width for _ in range(height)]

    def to_cell(x, y):
        column = int(round((x - x_min) / (x_max - x_min) * (width - 1)))
        row = int(round((y - y_min) / (y_max - y_min) * (height - 1)))
        return (height - 1 - row), column

    for index, (label, points) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        ordered = sorted(points)
        for point_index, (x, y) in enumerate(ordered):
            row, column = to_cell(x, y)
            grid[row][column] = marker
            if point_index > 0:
                previous = ordered[point_index - 1]
                _draw_segment(grid, to_cell(*previous), (row, column), marker)

    lines = []
    if y_label:
        lines.append(y_label)
    for row_index, row in enumerate(grid):
        value = y_max - (y_max - y_min) * row_index / (height - 1)
        lines.append("{:>8.2f} |{}".format(value, "".join(row)))
    lines.append(" " * 9 + "+" + "-" * width)
    axis = " " * 10 + "{:<{pad}}{:>{pad2}}".format(
        _fmt(x_min), _fmt(x_max), pad=width // 2, pad2=width - width // 2
    )
    lines.append(axis)
    if x_label:
        lines.append(" " * 10 + x_label.center(width))
    legend = "   ".join(
        "{} {}".format(MARKERS[i % len(MARKERS)], label)
        for i, label in enumerate(series)
    )
    lines.append("")
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def _draw_segment(grid, start, end, marker):
    """Fill intermediate cells with light dots so series read as lines."""
    (row_a, col_a), (row_b, col_b) = start, end
    steps = max(abs(row_b - row_a), abs(col_b - col_a))
    for step in range(1, steps):
        row = row_a + (row_b - row_a) * step // steps
        column = col_a + (col_b - col_a) * step // steps
        if grid[row][column] == " ":
            grid[row][column] = "."


def _fmt(value):
    if float(value).is_integer():
        return str(int(value))
    return "{:.2f}".format(value)
