"""§7's related protocols under the same fault, for comparison.

The paper quotes the default timers of VRRP (1 s advertisements) and
HSRP (3 s hellos, 10 s hold) and describes the Linux Fake project's
probe-plus-gratuitous-ARP takeover. This experiment runs each of them
— and Wackamole under both Spread configurations — against the same
crash fault and reports the client-perceived interruption.
"""

from repro.apps.workload import ProbeClient, UdpEchoServer
from repro.baselines.fake import FakeFailover
from repro.baselines.hsrp import HsrpRouter
from repro.baselines.vrrp import VrrpRouter
from repro.experiments.report import format_table, mean
from repro.experiments.runner import run_failover_trial
from repro.gcs.config import SpreadConfig
from repro.net.fault import FaultInjector
from repro.net.host import Host
from repro.net.lan import Lan
from repro.sim.rng import RngRegistry
from repro.sim.simulation import Simulation

SUBNET = "198.51.100.0/24"
VIP = "198.51.100.150"


class BaselineComparison:
    """One fault, five protocols, one number each."""

    PROTOCOLS = (
        "wackamole-tuned",
        "wackamole-default",
        "vrrp",
        "hsrp",
        "fake",
    )

    def __init__(self, trials=3, n_servers=3, base_seed=5000, probe_interval=0.010):
        self.trials = trials
        self.n_servers = n_servers
        self.base_seed = base_seed
        self.probe_interval = probe_interval

    def run_protocol(self, protocol):
        """Interruption samples for one protocol."""
        samples = []
        for trial in range(self.trials):
            seed = self.base_seed + trial
            samples.append(self._one_trial(protocol, seed))
        return samples

    def _one_trial(self, protocol, seed):
        if protocol == "wackamole-tuned":
            return self._wackamole(seed, SpreadConfig.tuned())
        if protocol == "wackamole-default":
            return self._wackamole(seed, SpreadConfig.default())
        if protocol == "vrrp":
            return self._vrrp(seed)
        if protocol == "hsrp":
            return self._hsrp(seed)
        if protocol == "fake":
            return self._fake(seed)
        raise ValueError("unknown protocol {!r}".format(protocol))

    # ------------------------------------------------------------------

    def _wackamole(self, seed, config):
        result = run_failover_trial(
            seed, self.n_servers, config, n_vips=1, fault_mode="crash"
        )
        return result.interruption

    def _build_lan(self, seed):
        sim = Simulation(seed=seed, trace_enabled=False)
        lan = Lan(sim, "lan", SUBNET)
        hosts = []
        for index in range(self.n_servers):
            host = Host(sim, "srv{}".format(index + 1))
            host.add_nic(lan, "198.51.100.{}".format(10 + index))
            UdpEchoServer(host)
            hosts.append(host)
        client = Host(sim, "client")
        client.add_nic(lan, "198.51.100.200")
        return sim, lan, hosts, client

    def _measure(self, sim, hosts, client, owner_of_vip, settle, seed, warm_base=1.0):
        probe = ProbeClient(client, VIP, interval=self.probe_interval)
        probe.start()
        phase = RngRegistry(seed).stream("fault_phase").uniform(0.0, 1.0)
        sim.run_for(warm_base + phase)
        fault_time = sim.now
        victim = owner_of_vip()
        FaultInjector(sim).crash_host(victim)
        sim.run_for(settle)
        probe.stop_probing()
        return probe.failover_interruption(after=fault_time)

    def _vrrp(self, seed):
        sim, lan, hosts, client = self._build_lan(seed)
        instances = [
            VrrpRouter(host, lan, VIP, priority=110 - 10 * index)
            for index, host in enumerate(hosts)
        ]
        for instance in instances:
            instance.start()
        sim.run_for(8.0)
        return self._measure(
            sim, hosts, client, lambda: self._vip_owner(hosts), settle=15.0, seed=seed
        )

    def _hsrp(self, seed):
        sim, lan, hosts, client = self._build_lan(seed)
        instances = [
            HsrpRouter(host, lan, VIP, priority=110 - 10 * index)
            for index, host in enumerate(hosts)
        ]
        for instance in instances:
            instance.start()
        sim.run_for(25.0)
        return self._measure(
            sim, hosts, client, lambda: self._vip_owner(hosts), settle=30.0, seed=seed
        )

    def _fake(self, seed):
        sim, lan, hosts, client = self._build_lan(seed)
        main, backup = hosts[0], hosts[1]
        main.nics[0].bind_ip(VIP)
        FakeFailover.serve_probes(main)
        failover = FakeFailover(backup, lan, VIP, probe_target=main.nics[0].primary_ip)
        failover.start()
        sim.run_for(3.0)
        return self._measure(
            sim, hosts, client, lambda: main, settle=15.0, seed=seed
        )

    @staticmethod
    def _vip_owner(hosts):
        from repro.net.addresses import IPAddress

        vip = IPAddress(VIP)
        for host in hosts:
            if host.alive and host.owns_ip(vip):
                return host
        raise RuntimeError("no host owns the VIP")

    # ------------------------------------------------------------------

    def run(self):
        """{protocol: {mean, samples}} for all protocols."""
        results = {}
        for protocol in self.PROTOCOLS:
            samples = self.run_protocol(protocol)
            valid = [s for s in samples if s is not None]
            results[protocol] = {"samples": samples, "mean": mean(valid)}
        return results

    def format(self, results=None):
        results = results or self.run()
        rows = [
            [protocol, results[protocol]["mean"]]
            for protocol in self.PROTOCOLS
        ]
        return format_table(
            ["Protocol", "Mean interruption (s)"],
            rows,
            title="Fail-over interruption: Wackamole vs related protocols (crash fault)",
        )
