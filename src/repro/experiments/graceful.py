"""§6's voluntary-leave measurement.

"Also relevant is the availability interruption time when a Wackamole
daemon leaves voluntarily … our measurements suggest a conservative
upper bound of 250 milliseconds of availability interruption on our
experimental cluster; most of our measurements actually recorded an
interruption time as small as 10ms."

The short time comes from Spread's lightweight group leave (§4.1): no
failure detection, no discovery — the remaining members see a group
membership change within the message-ordering latency.
"""

from repro.experiments.report import format_table, mean
from repro.experiments.runner import run_failover_trial
from repro.gcs.config import SpreadConfig


class GracefulLeaveExperiment:
    """Measures voluntary hand-off interruption from the client."""

    UPPER_BOUND = 0.250

    def __init__(self, trials=10, cluster_size=4, n_vips=10, base_seed=7000,
                 spread_config=None):
        self.trials = trials
        self.cluster_size = cluster_size
        self.n_vips = n_vips
        self.base_seed = base_seed
        self.spread_config = spread_config or SpreadConfig.default()

    def run(self):
        """Interruption samples for graceful shutdowns."""
        samples = []
        phase_samples = {}
        for trial in range(self.trials):
            result = run_failover_trial(
                self.base_seed + trial,
                self.cluster_size,
                self.spread_config,
                n_vips=self.n_vips,
                fault_mode="shutdown",
                settle_margin=2.0,
            )
            if result.interruption is not None:
                samples.append(result.interruption)
            episode = result.failover_episode()
            if episode is not None:
                for phase, duration in episode.phase_durations().items():
                    if duration is not None:
                        phase_samples.setdefault(phase, []).append(duration)
        return {
            "samples": samples,
            "mean": mean(samples),
            "max": max(samples) if samples else None,
            "within_bound": all(s <= self.UPPER_BOUND for s in samples),
            "phase_means": {
                phase: mean(values) for phase, values in sorted(phase_samples.items())
            },
        }

    def format(self, results=None):
        results = results or self.run()
        rows = [
            ["trials", len(results["samples"])],
            ["mean interruption (s)", results["mean"]],
            ["max interruption (s)", results["max"]],
            ["paper bound (s)", self.UPPER_BOUND],
            ["all within bound", results["within_bound"]],
        ]
        for phase, value in results.get("phase_means", {}).items():
            rows.append(["mean {} phase (s)".format(phase), round(value, 6)])
        return format_table(
            ["Metric", "Value"], rows, title="Voluntary leave availability interruption"
        )
