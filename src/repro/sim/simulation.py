"""The Simulation facade: scheduler + rng + trace + metrics in one handle.

Every component in the reproduction receives a Simulation instance; it
is the single source of time, randomness, logging and measurement for a
run.
"""

from repro.obs.metrics import MetricsRegistry
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.sim.trace import TraceLog


class Simulation:
    """One self-contained simulated world."""

    def __init__(
        self,
        seed=0,
        trace_enabled=True,
        trace_capacity=None,
        trace_categories=None,
        metrics_enabled=True,
    ):
        self.scheduler = Scheduler()
        self.rng = RngRegistry(seed)
        self.trace = TraceLog(
            enabled=trace_enabled,
            capacity=trace_capacity,
            categories=trace_categories,
        )
        self.trace.bind_clock(lambda: self.scheduler.now)
        self.metrics = MetricsRegistry(
            clock=lambda: self.scheduler.now, enabled=metrics_enabled
        )
        if metrics_enabled:
            self.scheduler.bind_metrics(self.metrics)
        self._sequences = {}

    def sequence(self, name, start=0):
        """Next value of the named per-simulation monotonic counter.

        Identity allocation (MAC addresses, connection ids, …) must
        hang off the Simulation, never off module state: two fresh
        Simulations — in one process or across shard workers — then
        hand out identical sequences, keeping replay a pure function
        of (seed, schedule).
        """
        value = self._sequences.get(name, start)
        self._sequences[name] = value + 1
        return value

    @property
    def now(self):
        """Current simulated time in seconds."""
        return self.scheduler.now

    def after(self, delay, callback, *args):
        """Schedule a callback after ``delay`` seconds."""
        return self.scheduler.after(delay, callback, *args)

    def at(self, time, callback, *args):
        """Schedule a callback at absolute simulated ``time``."""
        return self.scheduler.at(time, callback, *args)

    def run(self, until=None, max_events=None):
        """Advance the simulation; see :meth:`Scheduler.run`."""
        return self.scheduler.run(until=until, max_events=max_events)

    def run_for(self, duration, max_events=None):
        """Advance the simulation by ``duration`` seconds."""
        return self.scheduler.run(until=self.now + duration, max_events=max_events)

    def run_until_idle(self, max_events=10_000_000):
        """Run until the event queue drains."""
        return self.scheduler.run_until_idle(max_events=max_events)
