"""The discrete-event scheduler.

A binary-heap event queue over (time, sequence) keys. The sequence
number makes execution order deterministic for events scheduled at the
same simulated instant: they run in scheduling order (FIFO), which is
what message-passing protocols expect.
"""

import heapq

from repro.sim.errors import SchedulerError
from repro.sim.events import Event


class Scheduler:
    """Priority queue of timed callbacks driving simulated time forward."""

    def __init__(self, start_time=0.0):
        self._now = float(start_time)
        self._seq = 0
        self._heap = []
        self._running = False
        self._events_fired = 0
        self._m_events = None
        self._m_depth = None

    def bind_metrics(self, registry):
        """Attach event-loop instruments (fired count, queue depth).

        Left unbound — e.g. when the owning Simulation disables metrics
        — the run loop pays a single ``is None`` test per event. The
        queue-depth series is sampled every 64th event (plus once per
        ``run`` call) to keep the per-event cost to a counter add.
        """
        self._m_events = registry.counter("sim.events_fired", node="scheduler")
        self._m_depth = registry.timeseries("sim.queue_depth", node="scheduler")

    @property
    def now(self):
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_count(self):
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._heap)

    @property
    def events_fired(self):
        """Total number of callbacks executed so far."""
        return self._events_fired

    def at(self, time, callback, *args):
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SchedulerError(
                "cannot schedule at {:.6f}, now is {:.6f}".format(time, self._now)
            )
        event = Event(float(time), self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def after(self, delay, callback, *args):
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SchedulerError("negative delay: {}".format(delay))
        return self.at(self._now + delay, callback, *args)

    def run(self, until=None, max_events=None):
        """Execute events in order.

        Stops when the queue drains, when simulated time would pass
        ``until`` (the clock is then advanced exactly to ``until``), or
        after ``max_events`` callbacks. Returns the number of callbacks
        executed during this call.
        """
        if self._running:
            raise SchedulerError("scheduler is already running (reentrant run call)")
        self._running = True
        fired = 0
        try:
            while self._heap:
                if max_events is not None and fired >= max_events:
                    break
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                event.fire()
                fired += 1
                self._events_fired += 1
                if self._m_events is not None:
                    self._m_events.inc()
                    if not self._events_fired & 63:
                        self._m_depth.observe(len(self._heap))
        finally:
            self._running = False
        if fired and self._m_depth is not None:
            self._m_depth.observe(len(self._heap))
        if until is not None and self._now < until:
            self._now = float(until)
        return fired

    def run_until_idle(self, max_events=10_000_000):
        """Run until no events remain; guard against runaway loops."""
        fired = self.run(max_events=max_events)
        if self._heap and self._live_events_remain():
            raise SchedulerError(
                "run_until_idle exceeded max_events={} with events pending".format(max_events)
            )
        return fired

    def _live_events_remain(self):
        return any(not event.cancelled for event in self._heap)

    def next_event_time(self):
        """Time of the next live event, or None if the queue is idle."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time
