"""The discrete-event scheduler.

A binary-heap event queue over (time, sequence) keys. The sequence
number makes execution order deterministic for events scheduled at the
same simulated instant: they run in scheduling order (FIFO), which is
what message-passing protocols expect.

Cancellation is lazy — a cancelled event stays in the heap with a flag
set — but the scheduler tracks the dead-entry count and compacts the
heap in bulk once cancelled entries dominate. Timer-heavy protocols
(GCS heartbeat refreshes cancel a timeout per message received) would
otherwise grow the heap with corpses that every push and pop pays log
time for. Compaction filters the backing list in place and re-heapifies;
because (time, seq) is a total order, the pop sequence — and therefore
every trace, verdict, and metric — is byte-identical with or without it.

Heap entries are ``(time, seq, event)`` tuples rather than bare events:
seq is unique, so sift comparisons are decided by the first two fields
and run entirely as C tuple comparisons instead of calling back into
``Event.__lt__`` — the single hottest call in timer-churn profiles.
"""

import heapq

from repro.sim.errors import SchedulerError
from repro.sim.events import Event

# Compact when the dead-entry count reaches ``max(64, live // 8)``.
# The absolute floor keeps tiny simulations from re-heapifying
# constantly; the adaptive term bounds wasted heap space (and
# per-operation log cost) at 12.5% of the live size on large-N shard
# queues while keeping compaction amortized O(1): each O(live + dead)
# rebuild is paid for by at least live/8 preceding cancels.
_COMPACT_MIN_CANCELLED = 64


class Scheduler:
    """Priority queue of timed callbacks driving simulated time forward."""

    def __init__(self, start_time=0.0):
        self._now = float(start_time)
        self._seq = 0
        self._heap = []
        self._cancelled = 0  # dead entries currently in the heap
        self._running = False
        self._events_fired = 0
        self._m_events = None
        self._m_depth = None

    def bind_metrics(self, registry):
        """Attach event-loop instruments (fired count, queue depth).

        Left unbound — e.g. when the owning Simulation disables metrics
        — the run loop pays a single ``is None`` test per event. The
        queue-depth series reports *live* (non-cancelled) depth and is
        sampled every 64th event (plus once per ``run`` call) to keep
        the per-event cost to a comparison.
        """
        self._m_events = registry.counter("sim.events_fired", node="scheduler")
        self._m_depth = registry.timeseries("sim.queue_depth", node="scheduler")

    @property
    def now(self):
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_count(self):
        """Number of live (non-cancelled) events still in the queue.

        Cancelled-but-not-yet-compacted heap entries are excluded, so
        this is the real backlog a ``run`` call would execute.
        """
        return len(self._heap) - self._cancelled

    @property
    def events_fired(self):
        """Total number of callbacks executed so far."""
        return self._events_fired

    def at(self, time, callback, *args):
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SchedulerError(
                "cannot schedule at {:.6f}, now is {:.6f}".format(time, self._now)
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(float(time), seq, callback, args, self)
        heapq.heappush(self._heap, (event.time, seq, event))
        return event

    def after(self, delay, callback, *args):
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SchedulerError("negative delay: {}".format(delay))
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, args, self)
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def reschedule(self, event, delay, callback, *args):
        """Re-arm a fired event object ``delay`` seconds from now.

        Allocation-free fast path for repeating and restartable timers:
        the returned handle is ``event`` itself, re-keyed with a fresh
        sequence number, so execution order is identical to scheduling
        a brand-new event. Only an event that has already fired may be
        reused — a pending or cancelled one is still a live heap entry
        and reusing it would corrupt the queue.
        """
        if delay < 0:
            raise SchedulerError("negative delay: {}".format(delay))
        if event.callback is not None:
            raise SchedulerError(
                "cannot reschedule an event still in the queue: {!r}".format(event)
            )
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        event.time = time
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event.owner = self
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def _note_cancel(self):
        # Called by Event.cancel for live heap entries. Once corpses
        # reach the adaptive threshold, rebuild the heap without them —
        # in place, so a running loop's local alias stays valid.
        self._cancelled += 1
        live = len(self._heap) - self._cancelled
        if (
            self._cancelled >= _COMPACT_MIN_CANCELLED
            and self._cancelled * 8 >= live
        ):
            heap = self._heap
            heap[:] = [entry for entry in heap if not entry[2].cancelled]
            heapq.heapify(heap)
            self._cancelled = 0

    def run(self, until=None, max_events=None, inclusive=True):
        """Execute events in order.

        Stops when the queue drains, when simulated time would pass
        ``until`` (the clock is then advanced exactly to ``until``), or
        after ``max_events`` callbacks. Returns the number of callbacks
        executed during this call.

        ``inclusive`` controls the boundary: by default an event
        scheduled exactly at ``until`` fires during this call. With
        ``inclusive=False`` the run covers the half-open interval
        ``[now, until)`` — events at exactly ``until`` stay queued (and
        :meth:`next_event_time` reports them) while the clock still
        advances to ``until``. Barrier-stepped shard kernels rely on
        this: a frame injected for delivery exactly at an epoch
        boundary must fire in the epoch that *starts* there.
        """
        if self._running:
            raise SchedulerError("scheduler is already running (reentrant run call)")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        m_depth = self._m_depth
        base = self._events_fired
        fired = 0
        exclusive = not inclusive
        try:
            while heap:
                if max_events is not None and fired >= max_events:
                    break
                time, _seq, event = heap[0]
                if event.cancelled:
                    pop(heap)
                    self._cancelled -= 1
                    continue
                if until is not None and (
                    time > until or (exclusive and time == until)
                ):
                    break
                pop(heap)
                self._now = time
                event.fire()
                fired += 1
                if m_depth is not None and not (base + fired) & 63:
                    m_depth.observe(len(heap) - self._cancelled)
        finally:
            self._running = False
            self._events_fired = base + fired
            if fired and self._m_events is not None:
                self._m_events.inc(fired)
        if fired and m_depth is not None:
            m_depth.observe(len(heap) - self._cancelled)
        if until is not None and self._now < until:
            self._now = float(until)
        return fired

    def run_until_idle(self, max_events=10_000_000):
        """Run until no events remain; guard against runaway loops."""
        fired = self.run(max_events=max_events)
        if self._live_events_remain():
            raise SchedulerError(
                "run_until_idle exceeded max_events={} with events pending".format(max_events)
            )
        return fired

    def _live_events_remain(self):
        # O(1): the cancelled count makes the live size arithmetic.
        return len(self._heap) > self._cancelled

    def next_event_time(self):
        """Time of the next live event, or None if the queue is idle."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        if not heap:
            return None
        return heap[0][0]
