"""Discrete-event simulation kernel.

Everything in the reproduction runs on top of this kernel: protocol
daemons, the simulated network, fault injection, and measurement probes
are all callbacks scheduled on a single :class:`Scheduler` that advances
a simulated clock. Runs are fully deterministic given a seed, which makes
the second-scale timeout behaviour of the paper measurable in
microseconds of CPU time.
"""

from repro.sim.errors import SchedulerError, SimulationError
from repro.sim.events import Event
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.sim.simulation import Simulation
from repro.sim.timers import PeriodicTimer, Timer
from repro.sim.trace import TraceLog, TraceRecord

__all__ = [
    "Event",
    "PeriodicTimer",
    "Process",
    "RngRegistry",
    "Scheduler",
    "SchedulerError",
    "Simulation",
    "SimulationError",
    "Timer",
    "TraceLog",
    "TraceRecord",
]
