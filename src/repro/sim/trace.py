"""Structured trace log for simulation runs.

Protocols append records instead of printing; tests and the experiment
harness query the log to reconstruct timelines (e.g. "when did daemon 3
install view 7", "when did the client first hear from the new owner").
"""


class TraceRecord:
    """One trace entry: time, category, source component, event, details."""

    __slots__ = ("time", "category", "source", "event", "details")

    def __init__(self, time, category, source, event, details):
        self.time = time
        self.category = category
        self.source = source
        self.event = event
        self.details = details

    def __repr__(self):
        return "[{:10.4f}] {:<10} {:<18} {} {}".format(
            self.time, self.category, self.source, self.event, self.details or ""
        )


class TraceLog:
    """Append-only event log with simple filtering helpers.

    Two bounded-resource behaviours are intended semantics (tests pin
    them):

    * ``capacity`` — when set, only the most recent ``capacity``
      records are retained, oldest trimmed first; per-(category, event)
      counters keep counting every emit, so :meth:`count` reports
      totals over the whole run even after trimming.
    * ``enabled=False`` — records are dropped entirely (``emit``
      returns None) but the counters still increment: cheap soak runs
      keep aggregate statistics without storing per-event records.
    """

    def __init__(self, clock=None, enabled=True, capacity=None):
        self._clock = clock
        self.enabled = enabled
        self.capacity = capacity
        self.records = []
        self._counts = {}

    def bind_clock(self, clock):
        """Attach the callable returning current simulated time."""
        self._clock = clock

    def emit(self, category, source, event, **details):
        """Record one event; drops silently when tracing is disabled."""
        key = (category, event)
        self._counts[key] = self._counts.get(key, 0) + 1
        if not self.enabled:
            return None
        time = self._clock() if self._clock is not None else 0.0
        record = TraceRecord(time, category, source, event, details)
        self.records.append(record)
        if self.capacity is not None and len(self.records) > self.capacity:
            del self.records[: len(self.records) - self.capacity]
        return record

    def count(self, category, event=None):
        """Number of emits for a category (optionally a specific event)."""
        if event is not None:
            return self._counts.get((category, event), 0)
        return sum(n for (cat, _), n in self._counts.items() if cat == category)

    def select(self, category=None, source=None, event=None, since=None):
        """Return records matching all supplied filters, in time order."""
        out = []
        for record in self.records:
            if category is not None and record.category != category:
                continue
            if source is not None and record.source != source:
                continue
            if event is not None and record.event != event:
                continue
            if since is not None and record.time < since:
                continue
            out.append(record)
        return out

    def tail(self, n):
        """The most recent ``n`` records, oldest first."""
        if n <= 0:
            return []
        return list(self.records[-n:])

    def last(self, category=None, source=None, event=None):
        """Most recent matching record, or None."""
        matches = self.select(category=category, source=source, event=event)
        return matches[-1] if matches else None

    def clear(self):
        """Drop all records and counters."""
        self.records.clear()
        self._counts.clear()

    def format(self, category=None, source=None, event=None):
        """Human-readable dump of matching records (for debugging)."""
        lines = [repr(r) for r in self.select(category=category, source=source, event=event)]
        return "\n".join(lines)
