"""Structured trace log for simulation runs.

Protocols append records instead of printing; tests and the experiment
harness query the log to reconstruct timelines (e.g. "when did daemon 3
install view 7", "when did the client first hear from the new owner").
"""


class TraceRecord:
    """One trace entry: time, category, source component, event, details."""

    __slots__ = ("time", "category", "source", "event", "details")

    def __init__(self, time, category, source, event, details):
        self.time = time
        self.category = category
        self.source = source
        self.event = event
        self.details = details

    def __repr__(self):
        return "[{:10.4f}] {:<10} {:<18} {} {}".format(
            self.time, self.category, self.source, self.event, self.details or ""
        )


class TraceLog:
    """Append-only event log with simple filtering helpers.

    Three bounded-resource behaviours are intended semantics (tests pin
    them):

    * ``capacity`` — when set, only the most recent ``capacity``
      records are retained, oldest trimmed first; per-(category, event)
      counters keep counting every emit, so :meth:`count` reports
      totals over the whole run even after trimming. Trimming is
      amortized: internally the backing list keeps a dead prefix and
      compacts it in bulk, so ``emit`` stays O(1) instead of shifting
      ``capacity`` records on every append. :attr:`records` always
      shows exactly the retained window.
    * ``enabled=False`` — records are dropped entirely (``emit``
      returns None) but the counters still increment: cheap soak runs
      keep aggregate statistics without storing per-event records.
    * ``categories`` — when set (an iterable of category names), only
      records in those categories are stored; everything else is
      dropped after counting, exactly like the disabled path. This is
      the fast path for runs that only care about, say, ``episode``
      and ``gcs`` records.
    """

    def __init__(self, clock=None, enabled=True, capacity=None, categories=None):
        self._clock = clock
        self.enabled = enabled
        self.capacity = capacity
        self._records = []
        self._start = 0  # dead-prefix length of _records (amortized trim)
        self._counts = {}
        self._categories = frozenset(categories) if categories is not None else None

    def bind_clock(self, clock):
        """Attach the callable returning current simulated time."""
        self._clock = clock

    @property
    def records(self):
        """The retained records, oldest first."""
        if self._start:
            return self._records[self._start:]
        return self._records

    @property
    def categories(self):
        """The category filter (frozenset), or None when unfiltered."""
        return self._categories

    def filter_categories(self, categories):
        """Store only these categories from now on (None clears the filter)."""
        self._categories = frozenset(categories) if categories is not None else None

    def emit(self, category, source, event, **details):
        """Record one event; drops silently when tracing is disabled."""
        key = (category, event)
        counts = self._counts
        counts[key] = counts.get(key, 0) + 1
        if not self.enabled:
            return None
        categories = self._categories
        if categories is not None and category not in categories:
            return None
        clock = self._clock
        record = TraceRecord(
            clock() if clock is not None else 0.0, category, source, event, details
        )
        records = self._records
        records.append(record)
        capacity = self.capacity
        if capacity is not None and len(records) - self._start > capacity:
            start = self._start + 1
            if start >= capacity:
                del records[:start]
                start = 0
            self._start = start
        return record

    def count(self, category, event=None):
        """Number of emits for a category (optionally a specific event)."""
        if event is not None:
            return self._counts.get((category, event), 0)
        return sum(n for (cat, _), n in self._counts.items() if cat == category)

    def select(self, category=None, source=None, event=None, since=None):
        """Return records matching all supplied filters, in time order."""
        out = []
        for record in self.records:
            if category is not None and record.category != category:
                continue
            if source is not None and record.source != source:
                continue
            if event is not None and record.event != event:
                continue
            if since is not None and record.time < since:
                continue
            out.append(record)
        return out

    def tail(self, n):
        """The most recent ``n`` records, oldest first."""
        if n <= 0:
            return []
        records = self._records
        start = max(self._start, len(records) - n)
        return records[start:]

    def last(self, category=None, source=None, event=None):
        """Most recent matching record, or None."""
        matches = self.select(category=category, source=source, event=event)
        return matches[-1] if matches else None

    def clear(self):
        """Drop all records and counters."""
        self._records = []
        self._start = 0
        self._counts.clear()

    def format(self, category=None, source=None, event=None):
        """Human-readable dump of matching records (for debugging)."""
        lines = [repr(r) for r in self.select(category=category, source=source, event=event)]
        return "\n".join(lines)
