"""Deterministic merge of per-shard artifacts into one run artifact.

The merge rule is ``(time, cell, per-cell appearance order)``: each
cell's trace is an ordered stream (its world appended records in fire
order), and because a cell's event timeline is identical under every
shard grouping, sorting the union by that key yields the same sequence
whether the run used one world or eight. Counters merge by summation
in sorted key order; both reductions are exact (integer or
repr-preserved float), so the merged artifact — serialized with sorted
keys — is byte-identical across groupings, which the parity suite and
the CI ``shard-parity`` job compare with ``cmp``.

World artifact input shape (produced by e.g.
``repro.apps.scalecluster.ScaleShardWorld.artifacts``)::

    {
      "events_fired": int,
      "now": float,
      "cells": {cell_id: {...json-stable cell summary...}},
      "trace": {cell_id: [(time, line), ...]},
      "metrics": {counter_name: int},     # counter totals, {} if disabled
    }
"""

import hashlib
import json

ARTIFACT_FORMAT = "repro-shard/1"


def view_digest(members):
    """Short stable digest of a sorted member tuple (view identity)."""
    return hashlib.sha256(",".join(members).encode("utf-8")).hexdigest()[:16]


def merge_trace(trace_by_cell):
    """Flatten per-cell ``(time, line)`` streams into one ordered list.

    Ties on ``time`` break by cell id, then by each cell's own append
    order — all three components are grouping-invariant.
    """
    entries = []
    for cell in sorted(trace_by_cell):
        for index, (time, line) in enumerate(trace_by_cell[cell]):
            entries.append((time, cell, index, line))
    entries.sort(key=lambda entry: entry[:3])
    return [entry[3] for entry in entries]


def _merge_flow(cell_summaries):
    """Sum per-cell flow totals; None when no cell ran a flow engine."""
    merged = None
    for summary in cell_summaries:
        totals = summary.get("flow")
        if totals is None:
            continue
        if merged is None:
            merged = {"ticks": 0, "users": 0, "offered": 0, "served": 0,
                      "lost": 0, "lost_by_reason": {}}
        for field in ("ticks", "users", "offered", "served", "lost"):
            merged[field] += totals[field]
        for reason, count in totals["lost_by_reason"].items():
            merged["lost_by_reason"][reason] = (
                merged["lost_by_reason"].get(reason, 0) + count
            )
    if merged is not None:
        merged["lost_by_reason"] = {
            reason: merged["lost_by_reason"][reason]
            for reason in sorted(merged["lost_by_reason"])
        }
    return merged


def merge_artifacts(world_artifacts, meta=None):
    """Combine per-shard world artifacts into the run artifact dict.

    ``meta`` must only carry grouping-independent parameters (seed,
    sizes, horizon, fault schedule — never the shard or worker count):
    the whole point of the artifact is that serial and sharded runs
    produce identical bytes.
    """
    cells = {}
    trace_by_cell = {}
    metrics = {}
    events_fired = 0
    sim_time = 0.0
    for artifact in world_artifacts:
        events_fired += artifact["events_fired"]
        sim_time = max(sim_time, artifact["now"])
        for cell, summary in artifact["cells"].items():
            cells[int(cell)] = summary
        for cell, records in artifact["trace"].items():
            trace_by_cell[int(cell)] = records
        for name, value in artifact["metrics"].items():
            metrics[name] = metrics.get(name, 0) + value

    cell_summaries = [cells[cell] for cell in sorted(cells)]
    lines = merge_trace(trace_by_cell)
    trace_sha = hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()

    live = sorted(name for summary in cell_summaries for name in summary["live"])
    views = sorted({tuple(view) for summary in cell_summaries
                    for view in summary["views"]})
    coverage_clean = all(
        summary["uncovered"] == 0 and summary["duplicated"] == 0
        for summary in cell_summaries
    )
    converged = (
        coverage_clean
        and len(views) == 1
        and views[0][1] == view_digest(tuple(live))
    )

    return {
        "format": ARTIFACT_FORMAT,
        "meta": dict(meta or {}),
        "sim_time": repr(sim_time),
        "events_fired": events_fired,
        "converged": bool(converged),
        "views": [list(view) for view in views],
        "n_live": len(live),
        "cells": {"{:02d}".format(cell): cells[cell] for cell in sorted(cells)},
        "flow": _merge_flow(cell_summaries),
        "metrics": {name: metrics[name] for name in sorted(metrics)},
        "trace": {"records": len(lines), "sha256": trace_sha},
    }


def artifact_bytes(artifact):
    """Canonical byte serialization (what parity compares and CI cmps)."""
    return json.dumps(artifact, sort_keys=True, indent=2).encode("utf-8")
