"""The epoch-barrier kernel driving sharded simulation worlds.

Conservative-lookahead PDES, barrier-synchronous flavour: with ``L``
the minimum inter-cell link latency (the *lookahead*), a frame sent at
time ``s`` cannot affect any other cell before ``s + L``. The kernel
therefore advances all worlds in lock-step epochs::

    B_{k+1} = min(horizon, max(B_k, E_k) + L)

where ``E_k`` is the earliest pending activity across every world —
the minimum over per-world next-event times and not-yet-injected
envelope delivery times. Any send during epoch ``k`` happens inside an
event at ``s >= E_k``, so its delivery lands at ``s + L >= B_{k+1}``:
collecting outbound envelopes at the barrier and injecting them before
the next epoch never delivers into the past.

Epochs run the half-open interval ``[B_k, B_{k+1})`` (the scheduler's
``inclusive=False`` mode) so a frame delivering exactly at a barrier
fires in the epoch that starts there; the final epoch closes inclusive
at the horizon, matching a plain ``run(until=horizon)``.

Determinism: barriers are computed from a *global* minimum, so the
epoch sequence — and with it the barrier-relative order in which
deliveries are scheduled — is identical for every shard grouping,
including the one-world serial run. Combined with envelope sort order
(:func:`repro.net.partition.envelope_key`) this makes same-instant
event ties resolve identically everywhere, which is what the parity
suite pins down to the byte.

Worlds are built from a picklable ``(params, shard_id)`` spec by a
factory referenced as ``"module:attribute"`` — workers rebuild their
world after the fork instead of unpickling live object graphs — and
must provide the small duck-typed protocol the runners call:
``next_event_time()``, ``inject(envelopes)``,
``advance(until, inclusive)``, ``drain_outbound()``, ``artifacts()``.
"""

import importlib

from repro.net.partition import envelope_key


def resolve_factory(factory_ref):
    """Resolve a ``"module:attribute"`` world-factory reference."""
    module_name, _, attribute = factory_ref.partition(":")
    if not module_name or not attribute:
        raise ValueError(
            "factory reference must look like 'module:attribute', got {!r}".format(
                factory_ref
            )
        )
    return getattr(importlib.import_module(module_name), attribute)


class InProcessRunner:
    """Serial execution of every world inside the calling process."""

    def __init__(self, factory_ref, params, shard_ids):
        factory = resolve_factory(factory_ref)
        self._worlds = [factory(params, shard_id) for shard_id in shard_ids]

    def start(self):
        return [world.next_event_time() for world in self._worlds]

    def advance_all(self, until, inclusive, batches):
        replies = []
        for world, batch in zip(self._worlds, batches):
            world.inject(batch)
            world.advance(until, inclusive)
            replies.append((world.drain_outbound(), world.next_event_time()))
        return replies

    def collect(self):
        return [world.artifacts() for world in self._worlds]

    def close(self):
        pass


class ShardedKernel:
    """Drives one sharded run: build, epoch loop, artifact collection.

    ``workers`` counts worker *processes*: 0 (or a single-shard plan)
    runs every world in-process — the transparent serial fallback,
    byte-identical by construction — while ``workers >= 2`` forks one
    warm worker per shard (capped at the shard count). Worker processes
    require the ``fork`` start method; platforms without it fall back
    to in-process execution rather than risking a divergent spawn path.
    """

    def __init__(self, plan, factory_ref, params, workers=0):
        self.plan = plan
        self.factory_ref = factory_ref
        self.params = params
        self.workers_requested = int(workers)
        self.workers = 0
        self.now = 0.0
        self.epochs = 0
        self._runner = None
        self._nexts = None

    def start(self):
        """Build every world (forking workers first when parallel)."""
        if self._runner is not None:
            raise RuntimeError("kernel already started")
        shard_ids = list(self.plan.shards())
        parallel = self.workers_requested >= 2 and self.plan.n_shards >= 2
        if parallel:
            from repro.sim.shard.pool import WorkerPoolRunner, fork_available

            if fork_available():
                self._runner = WorkerPoolRunner(self.factory_ref, self.params, shard_ids)
                self.workers = len(shard_ids)
        if self._runner is None:
            self._runner = InProcessRunner(self.factory_ref, self.params, shard_ids)
            self.workers = 0
        self._nexts = self._runner.start()
        return self

    def run(self, until):
        """Advance every world to ``until`` through lookahead epochs."""
        if self._runner is None:
            self.start()
        plan = self.plan
        lookahead = plan.lookahead
        until = float(until)
        n_shards = plan.n_shards
        pending = [[] for _ in range(n_shards)]
        while self.now < until:
            earliest = None
            for shard in range(n_shards):
                bound = self._nexts[shard]
                for envelope in pending[shard]:
                    if bound is None or envelope[0] < bound:
                        bound = envelope[0]
                if bound is not None and (earliest is None or bound < earliest):
                    earliest = bound
            if earliest is None:
                target, inclusive = until, True
            else:
                target = max(self.now, earliest) + lookahead
                if target >= until:
                    target, inclusive = until, True
                else:
                    inclusive = False
            batches = [sorted(batch, key=envelope_key) for batch in pending]
            replies = self._runner.advance_all(target, inclusive, batches)
            pending = [[] for _ in range(n_shards)]
            for shard, (outbound, next_time) in enumerate(replies):
                self._nexts[shard] = next_time
                for envelope in outbound:
                    pending[plan.shard_of(envelope[3])].append(envelope)
            self.now = target
            self.epochs += 1
        return self.now

    def collect(self):
        """Per-shard artifact dicts, in shard order."""
        return self._runner.collect()

    def close(self):
        """Shut worker processes down (no-op for in-process runs)."""
        if self._runner is not None:
            self._runner.close()
            self._runner = None
