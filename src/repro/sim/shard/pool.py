"""Warm worker-process pool for the sharded kernel.

Edge infrastructure, deliberately outside the deterministic substrate:
this is the only module under ``repro.sim`` allowed to touch real
processes and pipes (a scoped SIM001 allowance — see
``repro.analysis.engine.DEFAULT_SIM_EDGE``). Everything that crosses
the boundary is plain picklable data: the ``(params, shard_id)`` world
spec on the way in, envelope tuples and artifact dicts on the way out.
Simulated state never leaves its owning process.

Same shape as the ``repro.check`` campaign pool — ``fork`` start
method, workers built warm once and reused every epoch — but with a
persistent duplex pipe per worker instead of a task queue, because the
kernel's epoch loop is a synchronous broadcast/collect exchange, not a
bag of independent tasks. Commands:

* ``("advance", (until, inclusive, envelopes))`` → the worker injects
  the envelopes, runs its scheduler to the barrier, and replies
  ``("ok", (outbound_envelopes, next_event_time))``;
* ``("collect", None)`` → ``("ok", artifacts_dict)``;
* ``("close", None)`` → the worker exits.

Failures inside a worker are reported as ``("error", traceback_text)``
and re-raised in the parent, so a crashed shard fails the run loudly
instead of deadlocking the barrier.
"""

import multiprocessing
import traceback

from repro.sim.shard.kernel import resolve_factory


def fork_available():
    """True when the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def _shard_worker_main(conn, factory_ref, params, shard_id):
    try:
        world = resolve_factory(factory_ref)(params, shard_id)
        conn.send(("ok", world.next_event_time()))
    except BaseException:
        conn.send(("error", traceback.format_exc()))
        conn.close()
        return
    while True:
        command, payload = conn.recv()
        if command == "close":
            conn.close()
            return
        try:
            if command == "advance":
                until, inclusive, envelopes = payload
                world.inject(envelopes)
                world.advance(until, inclusive)
                reply = (world.drain_outbound(), world.next_event_time())
            elif command == "collect":
                reply = world.artifacts()
            else:
                raise ValueError("unknown shard worker command {!r}".format(command))
        except BaseException:
            conn.send(("error", traceback.format_exc()))
            conn.close()
            return
        conn.send(("ok", reply))


class WorkerPoolRunner:
    """One forked warm worker per shard, driven over persistent pipes."""

    def __init__(self, factory_ref, params, shard_ids):
        context = multiprocessing.get_context("fork")
        self._conns = []
        self._procs = []
        for shard_id in shard_ids:
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_shard_worker_main,
                args=(child_conn, factory_ref, params, shard_id),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(process)

    def _recv(self, conn):
        try:
            status, value = conn.recv()
        except EOFError:
            raise RuntimeError("shard worker died without a reply")
        if status != "ok":
            raise RuntimeError("shard worker failed:\n{}".format(value))
        return value

    def start(self):
        return [self._recv(conn) for conn in self._conns]

    def advance_all(self, until, inclusive, batches):
        # Broadcast first, then collect: every worker runs its epoch
        # concurrently while the parent blocks on the slowest reply.
        for conn, batch in zip(self._conns, batches):
            conn.send(("advance", (until, inclusive, batch)))
        return [self._recv(conn) for conn in self._conns]

    def collect(self):
        for conn in self._conns:
            conn.send(("collect", None))
        return [self._recv(conn) for conn in self._conns]

    def close(self):
        for conn in self._conns:
            try:
                conn.send(("close", None))
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for process in self._procs:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive cleanup
                process.terminate()
                process.join(timeout=5)
        self._conns = []
        self._procs = []
