"""The multi-core sharded simulation kernel.

A conservative-lookahead parallel discrete-event kernel: the topology
is partitioned into LAN-segment cells grouped onto shards, each shard
runs its own :class:`~repro.sim.simulation.Simulation` (on a worker
process when parallel), and cross-shard frames are exchanged at epoch
barriers bounded by the inter-segment link latency. The merge rule —
``(time, cell, per-cell order)`` — makes every observable artifact
byte-identical to the one-world serial run. See DESIGN.md §10.
"""

from repro.sim.shard.kernel import ShardedKernel
from repro.sim.shard.merge import merge_artifacts, merge_trace

__all__ = ["ShardedKernel", "merge_artifacts", "merge_trace"]
