"""Base class for simulated components (daemons, hosts, probes).

A Process owns a handle to the :class:`~repro.sim.simulation.Simulation`
and gets convenience methods for timers, tracing and randomness. It also
carries an ``alive`` flag: once stopped (crashed), all of its pending
timers are cancelled and late callbacks become no-ops, mirroring a
process that has been killed.
"""

from repro.sim.timers import PeriodicTimer, Timer


class Process:
    """A named simulated component with managed timers and trace access."""

    def __init__(self, sim, name):
        self.sim = sim
        self.name = name
        self.alive = True
        self.time_scale = 1.0
        self._timers = []

    @property
    def now(self):
        """Current simulated time."""
        return self.sim.now

    def trace(self, category, event, **details):
        """Emit a trace record attributed to this process."""
        self.sim.trace.emit(category, self.name, event, **details)

    def rng(self, purpose="default"):
        """Deterministic random stream scoped to this process."""
        return self.sim.rng.stream("{}/{}".format(self.name, purpose))

    def timer(self, callback, name=""):
        """Create a managed one-shot timer; guarded by ``alive``.

        Delays are stretched by ``time_scale`` (a slowed host's local
        clock runs late — the gray-failure slowdown injection).
        """
        timer = Timer(
            self.sim.scheduler, self._guard(callback), name=name, scale=self._scale
        )
        self._timers.append(timer)
        return timer

    def periodic(self, callback, interval, name=""):
        """Create a managed periodic timer; guarded by ``alive``."""
        timer = PeriodicTimer(
            self.sim.scheduler,
            self._guard(callback),
            interval,
            name=name,
            scale=self._scale,
        )
        self._timers.append(timer)
        return timer

    def after(self, delay, callback, *args):
        """One-shot scheduled call guarded by ``alive`` (also scaled)."""
        return self.sim.scheduler.after(
            delay * self.time_scale, self._guard(callback), *args
        )

    def _scale(self):
        return self.time_scale

    def stop(self):
        """Kill the process: cancel every managed timer, drop callbacks."""
        self.alive = False
        for timer in self._timers:
            if isinstance(timer, Timer):
                timer.cancel()
            else:
                timer.stop()

    def restart(self):
        """Mark the process alive again (timers must be re-armed by caller)."""
        self.alive = True

    def _guard(self, callback):
        def guarded(*args):
            if self.alive:
                callback(*args)

        return guarded

    def __repr__(self):
        return "{}({!r}, {})".format(
            type(self).__name__, self.name, "alive" if self.alive else "stopped"
        )
