"""Cancellable one-shot and periodic timers built on the scheduler.

Protocol code (heartbeats, fault-detection timeouts, balance timers)
uses these instead of raw scheduler events so that restarting or
cancelling a timeout is a one-line operation.

Both timer classes recycle their Event objects through
:meth:`Scheduler.reschedule` where possible: a periodic timer reuses
the event that just ticked for the next tick, and a one-shot timer
keeps its last fired event as a spare for the next ``start``. Events
cancelled while still pending cannot be recycled (they remain lazily
in the scheduler's heap), so refresh-heavy timeouts fall back to a
fresh allocation — the scheduler's heap compaction keeps that pattern
cheap.
"""


class Timer:
    """A restartable one-shot timer.

    ``start`` (re)arms the timer; a second ``start`` cancels the first
    deadline, which is how protocol timeouts are refreshed.

    ``scale`` is an optional zero-argument callable returning a time
    multiplier sampled at each ``start``; a slowed host (gray-failure
    injection) stretches every local timeout through it. The default is
    no callable at all, so unscaled timers pay nothing.
    """

    def __init__(self, scheduler, callback, name="", scale=None):
        self._scheduler = scheduler
        self._callback = callback
        self._event = None
        self._spare = None
        self._scale = scale
        self.name = name

    @property
    def armed(self):
        """True when a deadline is currently pending."""
        return self._event is not None and self._event.pending

    @property
    def deadline(self):
        """Absolute time of the pending deadline, or None."""
        if not self.armed:
            return None
        return self._event.time

    def start(self, delay):
        """Arm (or re-arm) the timer to fire after ``delay`` seconds."""
        self.cancel()
        if self._scale is not None:
            delay *= self._scale()
        spare = self._spare
        if spare is None:
            self._event = self._scheduler.after(delay, self._fire)
        else:
            self._spare = None
            self._event = self._scheduler.reschedule(spare, delay, self._fire)

    def cancel(self):
        """Disarm the timer if it is pending."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self):
        self._spare = self._event
        self._event = None
        self._callback()


class PeriodicTimer:
    """A repeating timer; fires every ``interval`` seconds until stopped."""

    def __init__(self, scheduler, callback, interval, name="", scale=None):
        if interval <= 0:
            raise ValueError("interval must be positive, got {}".format(interval))
        self._scheduler = scheduler
        self._callback = callback
        self.interval = float(interval)
        self._event = None
        self._scale = scale
        self.name = name

    @property
    def running(self):
        """True while ticks are being scheduled."""
        return self._event is not None and self._event.pending

    def start(self, first_delay=None):
        """Begin ticking; first tick after ``first_delay`` (default: interval)."""
        self.stop()
        delay = self.interval if first_delay is None else first_delay
        if self._scale is not None:
            delay *= self._scale()
        self._event = self._scheduler.after(delay, self._tick)

    def stop(self):
        """Stop ticking; safe to call when not running."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self):
        # The event that just fired is dead; recycle it for the next
        # tick instead of allocating one per interval.
        interval = self.interval
        if self._scale is not None:
            interval *= self._scale()
        self._event = self._scheduler.reschedule(self._event, interval, self._tick)
        self._callback()
