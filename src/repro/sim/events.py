"""Scheduled events.

An :class:`Event` is the handle returned by the scheduler for every
scheduled callback. Holders can cancel it; the scheduler skips cancelled
events cheaply instead of removing them from the heap, and compacts the
heap in bulk once dead entries dominate (see ``Scheduler._note_cancel``).
"""


class Event:
    """A single scheduled callback, cancellable by its holder."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "owner")

    def __init__(self, time, seq, callback, args, owner=None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.owner = owner

    def cancel(self):
        """Prevent the callback from running; safe to call repeatedly.

        Cancelling a live (not yet fired) event tells the owning
        scheduler, which tracks the dead-entry count for O(1) idle
        checks and periodic heap compaction.
        """
        if not self.cancelled:
            self.cancelled = True
            if self.callback is not None and self.owner is not None:
                self.owner._note_cancel()

    @property
    def pending(self):
        """True while the event has neither fired nor been cancelled."""
        return not self.cancelled and self.callback is not None

    def fire(self):
        """Run the callback once and release references to it."""
        if self.cancelled or self.callback is None:
            return
        callback, args = self.callback, self.args
        self.callback = None
        self.args = None
        callback(*args)

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending" if self.pending else "fired"
        return "Event(t={:.6f}, seq={}, {})".format(self.time, self.seq, state)
