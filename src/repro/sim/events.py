"""Scheduled events.

An :class:`Event` is the handle returned by the scheduler for every
scheduled callback. Holders can cancel it; the scheduler skips cancelled
events cheaply instead of removing them from the heap.
"""


class Event:
    """A single scheduled callback, cancellable by its holder."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time, seq, callback, args):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self):
        """Prevent the callback from running; safe to call repeatedly."""
        self.cancelled = True

    @property
    def pending(self):
        """True while the event has neither fired nor been cancelled."""
        return not self.cancelled and self.callback is not None

    def fire(self):
        """Run the callback once and release references to it."""
        if self.cancelled or self.callback is None:
            return
        callback, args = self.callback, self.args
        self.callback = None
        self.args = None
        callback(*args)

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending" if self.pending else "fired"
        return "Event(t={:.6f}, seq={}, {})".format(self.time, self.seq, state)
