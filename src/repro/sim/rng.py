"""Named deterministic random streams.

Each component draws from its own stream keyed by (seed, name), so the
network's latency jitter, the fault injector's schedule, and workload
timing are independent: changing one component's randomness consumption
never perturbs another's, keeping regression comparisons meaningful.
"""

import hashlib
import random


class RngRegistry:
    """Factory for per-component ``random.Random`` streams."""

    def __init__(self, seed=0):
        self.seed = int(seed)
        self._streams = {}

    def stream(self, name):
        """Return the stream for ``name``, creating it deterministically."""
        if name not in self._streams:
            digest = hashlib.sha256(
                "{}/{}".format(self.seed, name).encode("utf-8")
            ).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, salt):
        """Derive an independent registry (e.g. one per experiment trial)."""
        digest = hashlib.sha256(
            "{}/fork/{}".format(self.seed, salt).encode("utf-8")
        ).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))

    def stream_names(self):
        """Names of streams created so far (sorted, for introspection)."""
        return sorted(self._streams)
