"""Exception types raised by the simulation kernel."""


class SimulationError(Exception):
    """Base class for all errors raised by the simulation packages."""


class SchedulerError(SimulationError):
    """An event was scheduled or executed in an invalid way.

    Typical causes: scheduling in the past, or running a scheduler that
    has already been stopped.
    """
