"""The Figure 4 layout: N-way fail-over for routers.

Multiple physical routers act as one *virtual router* present on three
networks (external, visible/web, private/db). The virtual router's
addresses — one per network — form an indivisible VIP group that
Wackamole moves as a unit, so whichever physical router holds them can
route between all three networks.

Three routing modes reproduce §5.2:

* ``static`` — no dynamic routing anywhere; pure fail-over cost.
* ``naive`` — only the active router participates in the dynamic
  routing protocol; after a fail-over the new active router must wait
  for the next advertisement round (~30 s with RIP defaults) before it
  can forward off-link traffic.
* ``advertise_all`` — every physical router participates continuously
  and advertises the internal networks, so a fail-over costs only the
  Wackamole reconfiguration.
"""

from repro.apps.routing import RipSpeaker
from repro.apps.workload import ProbeClient, UdpEchoServer
from repro.flow import ArpViewResolver, FlowEngine, FlowPool
from repro.core.audit import CoverageAuditor
from repro.core.config import VipGroup, WackamoleConfig
from repro.core.daemon import WackamoleDaemon
from repro.gcs.config import SpreadConfig
from repro.gcs.daemon import SpreadDaemon
from repro.net.fault import FaultInjector
from repro.net.host import Host
from repro.net.lan import Lan
from repro.net.router import Router
from repro.sim.process import Process
from repro.sim.simulation import Simulation

VIRTUAL_ROUTER_SLOT = "virtual-router"

EXTERNAL_SUBNET = "198.51.100.0/24"
VISIBLE_SUBNET = "203.0.113.0/24"
PRIVATE_SUBNET = "192.168.0.0/24"
INTERNET_SUBNET = "8.8.8.0/24"

EXTERNAL_VIP = "198.51.100.1"
VISIBLE_VIP = "203.0.113.101"
PRIVATE_VIP = "192.168.0.1"


class _OwnershipController(Process):
    """Couples RIP listening to virtual-router ownership (naive mode)."""

    def __init__(self, wack, speakers, poll_interval=0.25):
        super().__init__(wack.sim, "ripctl@{}".format(wack.host.name))
        self.wack = wack
        self.speakers = speakers
        wack.host.register_service(self)
        self._poll = self.periodic(self._check, poll_interval, name="poll")

    def start(self):
        self._poll.start(first_delay=0.0)

    def _check(self):
        active = self.wack.iface.owns(VIRTUAL_ROUTER_SLOT)
        for speaker in self.speakers:
            speaker.set_listening(active)


def _routable_gate(routing_mode):
    """Service gate for router flow pools: the owner must route off-link.

    Static mode always has its routes; the dynamic modes only serve
    once the owning router has learned a path to the probed internet
    host — the same readiness predicate ``run_until_stable`` uses.
    """
    if routing_mode == "static":
        return None

    def routable(owner):
        return owner.lookup_route("8.8.8.8") is not None

    return routable


class RouterClusterScenario:
    """Builds and runs one virtual-router deployment."""

    def __init__(
        self,
        seed=0,
        n_routers=2,
        routing_mode="static",
        spread_config=None,
        wackamole_overrides=None,
        placement_strategy=None,
        rip_interval=30.0,
        probe_interval=0.010,
        flow_users=0,
        flow_rate=1.0,
        flow_tick=0.05,
        flow_use_numpy=None,
        trace_enabled=True,
        arp_share=False,
    ):
        if routing_mode not in ("static", "naive", "advertise_all"):
            raise ValueError("unknown routing mode {!r}".format(routing_mode))
        self.routing_mode = routing_mode
        self.sim = Simulation(seed=seed, trace_enabled=trace_enabled)
        self.spread_config = spread_config or SpreadConfig.tuned()
        self.faults = FaultInjector(self.sim)

        self.external = Lan(self.sim, "external", EXTERNAL_SUBNET)
        self.visible = Lan(self.sim, "visible", VISIBLE_SUBNET)
        self.private = Lan(self.sim, "private", PRIVATE_SUBNET)
        self.internet = Lan(self.sim, "internet", INTERNET_SUBNET)

        # Upstream router: the organisation's border toward the internet.
        self.upstream = Router(self.sim, "upstream")
        self.upstream.add_nic(self.external, "198.51.100.254")
        self.upstream.add_nic(self.internet, "8.8.8.1")

        # The machine "on the internet" running the probed service.
        self.internet_host = Host(self.sim, "internet-host")
        self.internet_host.add_nic(self.internet, "8.8.8.8")
        self.internet_host.set_default_gateway("8.8.8.1")
        self.echo = UdpEchoServer(self.internet_host)

        # Internal hosts on the two served networks.
        self.web_host = Host(self.sim, "web-host")
        self.web_host.add_nic(self.visible, "203.0.113.10")
        self.web_host.set_default_gateway(VISIBLE_VIP)
        self.db_host = Host(self.sim, "db-host")
        self.db_host.add_nic(self.private, "192.168.0.10")
        self.db_host.set_default_gateway(PRIVATE_VIP)

        self.probe_interval = probe_interval
        self.rip_interval = rip_interval
        overrides = dict(wackamole_overrides or {})
        overrides.setdefault("balance_enabled", False)
        if placement_strategy is not None:
            overrides["placement_strategy"] = placement_strategy
        if arp_share:
            # §5.2: daemons periodically exchange their ARP caches so a
            # new owner can notify exactly the hosts that resolved the
            # virtual router's MAC, instead of broadcasting.
            overrides.setdefault("arp_share_interval", 5.0)
        vip_group = VipGroup(
            VIRTUAL_ROUTER_SLOT, [EXTERNAL_VIP, VISIBLE_VIP, PRIVATE_VIP]
        )
        self.wackamole_config = WackamoleConfig([vip_group], **overrides)

        self.routers = []
        self.spreads = []
        self.wacks = []
        self.speakers = []
        self.controllers = []
        for index in range(n_routers):
            router = Router(self.sim, "router{}".format(index + 1))
            router.add_nic(self.external, "198.51.100.{}".format(2 + index))
            router.add_nic(self.visible, "203.0.113.{}".format(102 + index))
            router.add_nic(self.private, "192.168.0.{}".format(2 + index))
            spread = SpreadDaemon(router, self.private, self.spread_config)
            wack = WackamoleDaemon(router, spread, self.wackamole_config)
            self.routers.append(router)
            self.spreads.append(spread)
            self.wacks.append(wack)
            self._setup_routing(router)

        self._setup_upstream_routing()
        self.auditor = CoverageAuditor(self.wacks)
        self.probe = None

        # The flow plane: internal populations behind each served LAN
        # aim at their gateway VIP through that LAN's own ARP viewpoint;
        # the ``require`` gate additionally demands the owning router
        # can actually route off-link (§5.2's naive-mode stall shows up
        # as ``no_route`` loss even while the VIP itself is answered).
        self.flow_engine = None
        self.flow_hosts = []
        if flow_users:
            self.flow_engine = FlowEngine(
                self.sim, tick=flow_tick, name="router", use_numpy=flow_use_numpy
            )
            routable = _routable_gate(self.routing_mode)
            share = int(flow_users) // 2
            for pool_name, lan, address, vip, users in (
                ("web-pool", self.visible, "203.0.113.200", VISIBLE_VIP, int(flow_users) - share),
                ("db-pool", self.private, "192.168.0.200", PRIVATE_VIP, share),
            ):
                if not users:
                    continue
                client = Host(self.sim, "flow-{}".format(lan.name))
                client.add_nic(lan, address)
                client.set_default_gateway(vip)
                self.flow_hosts.append(client)
                resolver = ArpViewResolver(lan, client, self.routers)
                self.flow_engine.add_pool(
                    FlowPool(
                        pool_name,
                        vip,
                        users,
                        rate=flow_rate,
                        require=routable,
                        resolver=resolver,
                    )
                )

    # ------------------------------------------------------------------
    # routing plumbing

    def _setup_routing(self, router):
        if self.routing_mode == "static":
            router.add_route(INTERNET_SUBNET, "198.51.100.254")
            return
        originate = (
            (VISIBLE_SUBNET, PRIVATE_SUBNET)
            if self.routing_mode == "advertise_all"
            else ()
        )
        speaker = RipSpeaker(
            router,
            self.external,
            originate=originate,
            interval=self.rip_interval,
            listening=(self.routing_mode == "advertise_all"),
        )
        self.speakers.append(speaker)
        if self.routing_mode == "naive":
            controller = _OwnershipController(
                self.wacks[self.routers.index(router)], [speaker]
            )
            self.controllers.append(controller)

    def _setup_upstream_routing(self):
        if self.routing_mode == "advertise_all":
            # The border router learns the internal networks dynamically
            # from whichever physical routers are alive.
            self.upstream_speaker = RipSpeaker(
                self.upstream,
                self.external,
                originate=(INTERNET_SUBNET,),
                interval=self.rip_interval,
                listening=True,
            )
        else:
            self.upstream.add_route(VISIBLE_SUBNET, EXTERNAL_VIP)
            self.upstream.add_route(PRIVATE_SUBNET, EXTERNAL_VIP)
            if self.routing_mode == "naive":
                self.upstream_speaker = RipSpeaker(
                    self.upstream,
                    self.external,
                    originate=(INTERNET_SUBNET,),
                    interval=self.rip_interval,
                    listening=False,
                )
            else:
                self.upstream_speaker = None

    # ------------------------------------------------------------------

    def start(self, stagger=0.05):
        """Boot every daemon (GCS, Wackamole, routing, controllers)."""
        for index, (spread, wack) in enumerate(zip(self.spreads, self.wacks)):
            self.sim.after(stagger * index, spread.start)
            self.sim.after(stagger * index + 0.01, wack.start)
        for speaker in self.speakers:
            self.sim.after(0.02, speaker.start)
        if self.upstream_speaker is not None:
            self.sim.after(0.02, self.upstream_speaker.start)
        for controller in self.controllers:
            self.sim.after(0.03, controller.start)
        if self.flow_engine is not None:
            self.flow_engine.start()
        return self

    def start_probe(self, source="db", interval=None):
        """Probe the internet service from an internal host (§5.2 path)."""
        host = self.db_host if source == "db" else self.web_host
        if interval is None:
            interval = self.probe_interval
        self.probe = ProbeClient(host, "8.8.8.8", interval=interval)
        self.probe.start()
        return self.probe

    def run_until_stable(self, timeout=120.0, extra=0.5):
        """Run until the virtual router is owned once and all RUN."""
        from repro.core.state import RUN

        deadline = self.sim.now + timeout
        step = max(self.spread_config.heartbeat_timeout / 2.0, 0.1)
        while self.sim.now < deadline:
            self.sim.run_for(step)
            live = [w for w in self.wacks if w.alive]
            if (
                live
                and all(w.machine.state == RUN and w.mature for w in live)
                and not self.auditor.check()
                and self._routing_ready()
            ):
                self.sim.run_for(extra)
                return True
        return False

    def _routing_ready(self):
        active = self.active_router()
        if active is None:
            return False
        if self.routing_mode == "static":
            return True
        router = active.host
        return router.lookup_route("8.8.8.8") is not None

    # ------------------------------------------------------------------

    def active_router(self):
        """The Wackamole daemon currently holding the virtual router."""
        for wack in self.wacks:
            if wack.alive and wack.iface.owns(VIRTUAL_ROUTER_SLOT):
                return wack
        return None

    def fail_active(self, mode="crash"):
        """Fail the active physical router; returns the victim."""
        active = self.active_router()
        if active is None:
            raise RuntimeError("no active virtual router")
        if mode == "crash":
            self.faults.crash_host(active.host)
        elif mode == "shutdown":
            active.shutdown()
        else:
            raise ValueError("unknown fault mode {!r}".format(mode))
        return active
