"""Simplified distance-vector dynamic routing (the OSPF/RIP stand-in).

§5.2: a fail-over router using a dynamic routing protocol "needs to be
updated with the current state of the relevant dynamic routing tables
before it is able to route messages properly. This usually takes
around 30 seconds." That delay comes from the advertisement period —
RIP's default is 30 s — which this module reproduces: speakers
broadcast their routes periodically; a router that just became active
(naive setup) must wait for the next advertisement round before it can
forward off-link traffic.

The alternate setup ("all the participating fail-over routers act as
separate entities in the dynamic routing protocol") maps to keeping
``listening`` permanently enabled on every physical router.
"""

from repro.net.addresses import Subnet
from repro.sim.process import Process

RIP_PORT = 520


class RouteAdvertisement:
    """One periodic routing update: (subnet, metric) pairs."""

    __slots__ = ("sender", "routes")

    def __init__(self, sender, routes):
        self.sender = sender
        self.routes = tuple(routes)

    def __repr__(self):
        return "RouteAdvertisement({}, {} routes)".format(self.sender, len(self.routes))


class RipSpeaker(Process):
    """One routing-protocol instance on one router interface."""

    INFINITY = 16

    def __init__(
        self,
        router,
        lan,
        originate=(),
        interval=30.0,
        route_ttl=90.0,
        listening=True,
        propagate=False,
    ):
        super().__init__(router.sim, "rip@{}.{}".format(router.name, lan.name))
        self.router = router
        self.lan = lan
        self.originate = tuple(Subnet(s) for s in originate)
        self.interval = float(interval)
        self.route_ttl = float(route_ttl)
        self.listening = listening
        self.propagate = propagate
        self._learned = {}
        router.register_service(self)
        self._socket = router.open_udp(RIP_PORT, self._on_advertisement)
        self._advert_timer = self.periodic(self._advertise, self.interval, name="advert")
        self._gc_timer = self.periodic(self._expire_routes, self.route_ttl / 3.0, name="gc")
        self.advertisements_sent = 0
        self.routes_learned = 0

    @property
    def source_tag(self):
        """Route-table source label for entries this speaker installs."""
        return "rip:{}".format(self.name)

    def start(self):
        """Begin advertising and (if listening) learning."""
        self._advert_timer.start(first_delay=0.0)
        self._gc_timer.start()

    def set_listening(self, listening):
        """Enable/disable route learning (the naive §5.2 setup toggles
        this with virtual-router ownership); disabling flushes state."""
        if self.listening == listening:
            return
        self.listening = listening
        if not listening:
            self._learned.clear()
            self.router.remove_routes_from(self.source_tag)
        self.trace("rip", "listening", enabled=listening)

    # ------------------------------------------------------------------

    def _advertise(self):
        routes = [(str(subnet), 1) for subnet in self.originate]
        if self.propagate:
            routes.extend(
                (str(subnet), metric + 1)
                for subnet, (metric, _, _) in sorted(
                    self._learned.items(), key=lambda item: str(item[0])
                )
                if metric + 1 < self.INFINITY
            )
        if not routes:
            return
        self.advertisements_sent += 1
        self.router.send_udp(
            RouteAdvertisement(self.router.name, routes),
            self.lan.subnet.broadcast_address,
            RIP_PORT,
            src_port=RIP_PORT,
        )

    def _on_advertisement(self, advert, src, dst):
        if not self.alive or not self.listening:
            return
        if not isinstance(advert, RouteAdvertisement):
            return
        if advert.sender == self.router.name:
            return
        gateway = src[0]
        for subnet_text, metric in advert.routes:
            subnet = Subnet(subnet_text)
            if metric >= self.INFINITY:
                continue
            known = self._learned.get(subnet)
            if known is None or metric <= known[0]:
                self._learned[subnet] = (metric, gateway, self.now)
                self.router.add_route(subnet, gateway, source=self.source_tag)
                self.routes_learned += 1

    def _expire_routes(self):
        expired = [
            subnet
            for subnet, (_, _, learned_at) in self._learned.items()
            if self.now - learned_at > self.route_ttl
        ]
        for subnet in expired:
            del self._learned[subnet]
            self.router.remove_route(subnet)

    def learned_subnets(self):
        """Subnets currently held from advertisements."""
        return sorted(str(subnet) for subnet in self._learned)
