"""The §6 measurement workload.

"We place a simple server process on each computer using Wackamole.
The server responds to UDP packets by sending a packet containing its
hostname. A client process on another computer is instructed to
continuously access a specific virtual address by sending UDP request
packets at a specified interval, and record the hostname of the server
that responds as well as the time since the last response was
received. For our experiments, we used a 10ms interval."
"""

from repro.net.addresses import IPAddress
from repro.sim.process import Process

ECHO_PORT = 8080


class UdpEchoServer:
    """The experimental server: replies with its hostname.

    Replies are sent *from the virtual address the request targeted*,
    so the client's reply path exercises the same ARP state a real
    service would.
    """

    def __init__(self, host, port=ECHO_PORT):
        self.host = host
        self.port = port
        self.requests_served = 0
        self.requests_malformed = 0
        self._m_served = host.sim.metrics.counter(
            "workload.requests_served", node=host.name
        )
        self._m_malformed = host.sim.metrics.counter(
            "workload.requests_malformed", node=host.name
        )
        self._socket = host.open_udp(port, self._respond)

    def _respond(self, payload, src, dst):
        if (
            not isinstance(payload, tuple)
            or len(payload) < 2
            or payload[0] != "req"
        ):
            # A malformed datagram must not vanish silently: the
            # flow-vs-prober reconciliation counts every request, so an
            # invisible drop here would skew it.
            self.requests_malformed += 1
            self._m_malformed.inc()
            return
        self.requests_served += 1
        self._m_served.inc()
        seq = payload[1]
        self.host.send_udp(
            ("resp", seq, self.host.name),
            src[0],
            src[1],
            src_port=self.port,
            src_ip=dst[0],
        )

    def close(self):
        """Stop serving."""
        self._socket.close()


class ProbeResponse:
    """One recorded reply: arrival time, probe sequence, responding host."""

    __slots__ = ("time", "seq", "server")

    def __init__(self, time, seq, server):
        self.time = time
        self.seq = seq
        self.server = server

    def __repr__(self):
        return "ProbeResponse(t={:.4f}, seq={}, {})".format(self.time, self.seq, self.server)


class ProbeClient(Process):
    """The experimental client probing one virtual address.

    The measured quantity — the *availability interruption time* — is
    "the time elapsed between the receipt of the last response from
    the disabled computer and the first response from the new server"
    and is an upper bound on the actual interruption (granularity: one
    probe interval).
    """

    CLIENT_PORT = 8081

    def __init__(self, host, target, interval=0.010, port=ECHO_PORT, client_port=None):
        super().__init__(host.sim, "probe@{}:{}".format(host.name, target))
        self.host = host
        self.target = IPAddress(target)
        self.interval = float(interval)
        self.port = port
        self.requests_sent = 0
        self.responses = []
        host.register_service(self)
        if client_port is None:
            client_port = self._free_port(host, self.CLIENT_PORT)
        self.client_port = client_port
        self._socket = host.open_udp(self.client_port, self._on_response)
        self._send_timer = self.periodic(self._send_probe, self.interval, name="probe")
        self._seq = 0
        self._last_server = None
        metrics = host.sim.metrics
        self._m_sent = metrics.counter("workload.probes_sent", node=self.name)
        self._m_responses = metrics.counter("workload.responses_received", node=self.name)
        self._m_changes = metrics.counter("workload.server_changes", node=self.name)

    def start(self):
        """Begin probing every ``interval`` seconds."""
        self._send_timer.start(first_delay=0.0)

    def stop_probing(self):
        """Stop sending (keeps recorded responses)."""
        self._send_timer.stop()

    @staticmethod
    def _free_port(host, start):
        """First unbound port at or above ``start`` (several probes may
        share one client host, e.g. one per VIP)."""
        bound = {socket.port for socket in host._sockets}
        port = start
        while port in bound:
            port += 1
        return port

    def _send_probe(self):
        self._seq += 1
        self.requests_sent += 1
        self._m_sent.inc()
        self.host.send_udp(
            ("req", self._seq), self.target, self.port, src_port=self.client_port
        )

    def _on_response(self, payload, src, dst):
        if not self.alive or not isinstance(payload, tuple) or payload[0] != "resp":
            return
        _, seq, server = payload
        self.responses.append(ProbeResponse(self.now, seq, server))
        self._m_responses.inc()
        if server != self._last_server:
            if self._last_server is not None:
                self._m_changes.inc()
                self.trace(
                    "workload",
                    "server_change",
                    target=str(self.target),
                    old=self._last_server,
                    new=server,
                )
            self._last_server = server

    # ------------------------------------------------------------------
    # measurement

    def servers_seen(self):
        """Distinct responding hostnames, in first-seen order."""
        seen = []
        for response in self.responses:
            if response.server not in seen:
                seen.append(response.server)
        return seen

    def failover_interruption(self, after=0.0):
        """Interruption across the first server change following ``after``.

        Returns the gap in seconds between the last reply from the old
        server and the first reply from its successor, or None if no
        server change is observed.
        """
        previous = None
        for response in self.responses:
            if previous is not None and response.time > after:
                if response.server != previous.server:
                    return response.time - previous.time
            previous = response
        return None

    def longest_gap(self, after=0.0, until=None):
        """The longest silence between consecutive replies after ``after``."""
        longest = 0.0
        previous = None
        for response in self.responses:
            if until is not None and response.time > until:
                break
            if previous is not None and response.time > after:
                longest = max(longest, response.time - previous.time)
            previous = response
        return longest

    def response_rate(self):
        """Fraction of probes answered so far."""
        if self.requests_sent == 0:
            return 0.0
        return len(self.responses) / self.requests_sent
