"""Practical applications of the fail-over infrastructure (§5).

* :mod:`repro.apps.workload` — the §6 measurement workload: a UDP echo
  server answering with its hostname, and a probe client sampling one
  virtual address every 10 ms.
* :mod:`repro.apps.webcluster` — the Figure 3 layout: a router in
  front of N web servers sharing a pool of virtual addresses.
* :mod:`repro.apps.routing` — a simplified RIP-style dynamic routing
  protocol (the OSPF/RIP stand-in for §5.2's convergence analysis).
* :mod:`repro.apps.routercluster` — the Figure 4 layout: physical
  routers on three networks acting as one virtual router, in both the
  naive and the advertise-all dynamic-routing setups.
"""

from repro.apps.routercluster import RouterClusterScenario
from repro.apps.routing import RipSpeaker, RouteAdvertisement
from repro.apps.webcluster import WebClusterScenario
from repro.apps.workload import ProbeClient, UdpEchoServer

__all__ = [
    "ProbeClient",
    "RipSpeaker",
    "RouteAdvertisement",
    "RouterClusterScenario",
    "UdpEchoServer",
    "WebClusterScenario",
]
