"""The Figure 3 layout: N-way fail-over for a web cluster.

One router fronts a LAN of web servers. Every server runs a GCS daemon
and a Wackamole daemon managing a shared pool of virtual addresses;
an echo service stands in for the web server; a probe client on the
same segment measures availability exactly as in §6.
"""

from repro.apps.workload import ProbeClient, UdpEchoServer
from repro.flow import ArpViewResolver, FlowEngine, FlowPool
from repro.core.audit import CoverageAuditor
from repro.core.config import WackamoleConfig
from repro.core.daemon import WackamoleDaemon
from repro.gcs.config import SpreadConfig
from repro.gcs.daemon import SpreadDaemon
from repro.net.fault import FaultInjector
from repro.net.host import Host
from repro.net.lan import Lan
from repro.net.router import Router
from repro.sim.simulation import Simulation


class WebClusterScenario:
    """Builds and runs one simulated web cluster."""

    SUBNET = "198.51.100.0/24"

    def __init__(
        self,
        seed=0,
        n_servers=3,
        n_vips=10,
        spread_config=None,
        wackamole_overrides=None,
        placement_strategy=None,
        probe_interval=0.010,
        flow_users=0,
        flow_rate=1.0,
        flow_tick=0.05,
        flow_use_numpy=None,
        trace_enabled=True,
        trace_capacity=None,
        metrics_enabled=True,
        sim=None,
    ):
        self.sim = sim if sim is not None else Simulation(
            seed=seed,
            trace_enabled=trace_enabled,
            trace_capacity=trace_capacity,
            metrics_enabled=metrics_enabled,
        )
        self.lan = Lan(self.sim, "cluster", self.SUBNET)
        self.spread_config = spread_config or SpreadConfig.default()
        self.faults = FaultInjector(self.sim)

        self.router = Router(self.sim, "router")
        self.router.add_nic(self.lan, "198.51.100.1")

        self.vips = ["198.51.100.{}".format(150 + i) for i in range(n_vips)]
        overrides = dict(wackamole_overrides or {})
        overrides.setdefault("notify_ips", ("198.51.100.1",))
        if placement_strategy is not None:
            # Rendezvous placement makes a membership change remap only
            # the departed server's VIPs; the default stays the paper's
            # linear levelling pass.
            overrides["placement_strategy"] = placement_strategy
        self.wackamole_config = WackamoleConfig.for_vips(self.vips, **overrides)

        self.hosts = []
        self.spreads = []
        self.wacks = []
        self.echo_servers = []
        for index in range(n_servers):
            host = Host(self.sim, "web{}".format(index + 1))
            host.add_nic(self.lan, "198.51.100.{}".format(10 + index))
            host.set_default_gateway("198.51.100.1")
            spread = SpreadDaemon(host, self.lan, self.spread_config)
            wack = WackamoleDaemon(host, spread, self.wackamole_config)
            self.hosts.append(host)
            self.spreads.append(spread)
            self.wacks.append(wack)
            self.echo_servers.append(UdpEchoServer(host))

        self.client_host = Host(self.sim, "client")
        self.client_host.add_nic(self.lan, "198.51.100.200")
        self.client_host.set_default_gateway("198.51.100.1")
        self.probe = None
        self.probe_interval = probe_interval
        self.auditor = CoverageAuditor(self.wacks)

        # The flow plane: ``flow_users`` aggregate clients spread evenly
        # across the VIPs, resolved through a dedicated client host's
        # ARP view (so spoofed announcements repair their path exactly
        # as they repair the prober's).
        self.flow_engine = None
        self.flow_host = None
        if flow_users:
            self.flow_host = Host(self.sim, "flowclients")
            self.flow_host.add_nic(self.lan, "198.51.100.201")
            self.flow_host.set_default_gateway("198.51.100.1")
            resolver = ArpViewResolver(self.lan, self.flow_host, self.hosts)
            self.flow_engine = FlowEngine(
                self.sim,
                resolver=resolver,
                tick=flow_tick,
                name="web",
                use_numpy=flow_use_numpy,
            )
            share, remainder = divmod(int(flow_users), len(self.vips))
            for index, vip in enumerate(self.vips):
                users = share + (1 if index < remainder else 0)
                if users:
                    self.flow_engine.add_pool(
                        FlowPool("pool-{}".format(index), vip, users, rate=flow_rate)
                    )

    # ------------------------------------------------------------------

    def start(self, stagger=0.05):
        """Boot daemons with a small start stagger (like real init)."""
        for index, (spread, wack) in enumerate(zip(self.spreads, self.wacks)):
            self.sim.after(stagger * index, spread.start)
            self.sim.after(stagger * index + 0.01, wack.start)
        if self.flow_engine is not None:
            self.flow_engine.start()
        return self

    def start_probe(self, vip=None, interval=None):
        """Attach the §6 probe client to one virtual address."""
        target = vip if vip is not None else self.vips[0]
        if interval is None:
            interval = self.probe_interval
        self.probe = ProbeClient(self.client_host, target, interval=interval)
        self.probe.start()
        return self.probe

    def run_until_stable(self, timeout=60.0, extra=0.5):
        """Run until every daemon reaches RUN and coverage is complete."""
        from repro.core.state import RUN

        deadline = self.sim.now + timeout
        step = max(self.spread_config.heartbeat_timeout / 2.0, 0.1)
        while self.sim.now < deadline:
            self.sim.run_for(step)
            live = [w for w in self.wacks if w.alive]
            if (
                live
                and all(w.machine.state == RUN and w.mature for w in live)
                and not self.auditor.check()
            ):
                self.sim.run_for(extra)
                return True
        return False

    # ------------------------------------------------------------------
    # convenience accessors

    def owner_of(self, vip):
        """The Wackamole daemon currently binding ``vip``, or None."""
        for wack in self.wacks:
            if wack.alive and wack.host.owns_ip(vip):
                return wack
        return None

    def coverage(self):
        """{vip: [host names binding it]} over live servers."""
        result = {}
        for vip in self.vips:
            result[vip] = [
                w.host.name for w in self.wacks if w.alive and w.host.owns_ip(vip)
            ]
        return result

    def kill_owner_of(self, vip, mode="nic_down"):
        """Inject the §6 fault against the current owner of ``vip``.

        ``nic_down`` disconnects the interface (the paper's fault);
        ``crash`` fail-stops the whole host; ``shutdown`` leaves
        gracefully. Returns the victim daemon.
        """
        owner = self.owner_of(vip)
        if owner is None:
            raise RuntimeError("no live owner for {}".format(vip))
        if mode == "nic_down":
            self.faults.nic_down(owner.host.nic_on(self.lan))
        elif mode == "crash":
            self.faults.crash_host(owner.host)
        elif mode == "shutdown":
            owner.shutdown()
        else:
            raise ValueError("unknown fault mode {!r}".format(mode))
        return owner
