"""The scale tier: a 256–1024-host cluster on segmented membership.

The Figure-3 scenarios (:mod:`repro.apps.webcluster`) run the paper's
full stack — Spread ring, Wackamole state machine, ARP spoofing — which
is faithful but O(N²) in broadcast fan-out and unusable past a few
dozen hosts. This scenario swaps both layers for the scale designs:

* membership comes from :mod:`repro.gcs.segments` (unicast heartbeats
  aggregated by segment leaders, digest exchange, deterministic merge);
* placement comes from a single shared
  :class:`repro.core.placement.RendezvousMap` — every node derives its
  own VIP share from the global view by pure computation, so there is
  no allocation protocol at all: agreement on the view IS agreement on
  the allocation (the same Lemma-2 argument as the paper's
  deterministic Reallocate_IPs, applied to HRW).

Each host runs a :class:`ScaleVipManager` that binds exactly its HRW
share on every adopted view. The manager is deliberately lean — it
binds interfaces and counts moves; the ARP-spoofing/notification
machinery stays in the faithful tier where clients are modeled.
"""

import functools
import hashlib

from repro.core.placement import RendezvousMap
from repro.flow import DirectResolver, FlowEngine, FlowPool
from repro.gcs.segments import Fleet, SegmentConfig, SegmentNode
from repro.net.addresses import IPAddress
from repro.net.fault import FaultInjector
from repro.net.host import Host
from repro.net.lan import Lan
from repro.net.partition import (
    DEFAULT_INTER_LATENCY,
    SegmentUplink,
    ShardPlan,
    UplinkHost,
)
from repro.sim.process import Process
from repro.sim.shard import ShardedKernel, merge_artifacts
from repro.sim.shard.merge import view_digest
from repro.sim.simulation import Simulation


class ScaleVipManager(Process):
    """Binds one host's rendezvous share of the VIP pool.

    On every adopted :class:`~repro.gcs.segments.GlobalView` the manager
    looks up its slot set in the shared placement map and diffs it
    against the interface: new slots are bound, lost slots released. A
    node absent from the view (declared dead while actually alive)
    releases everything — the scale-tier analogue of the paper's rule
    that a partitioned minority must drop its addresses.
    """

    def __init__(self, host, lan, placement, member_scope=None):
        super().__init__(host.sim, "svip@{}".format(host.name))
        self.host = host
        self.nic = host.nic_on(lan)
        self.placement = placement
        # When set, HRW candidates are the view members inside this
        # scope only — the sharded tier scopes each placement map to
        # its segment so a VIP never leaves its cell (membership still
        # travels the whole fleet; only placement is local).
        self.member_scope = frozenset(member_scope) if member_scope is not None else None
        self.bound = set()
        self.binds = 0
        self.unbinds = 0
        self.view = None
        host.register_service(self)

    def apply_view(self, view):
        """Rebind to the HRW share implied by ``view``."""
        if not self.alive:
            return
        self.view = view
        members = view.members
        if self.member_scope is not None:
            members = tuple(name for name in members if name in self.member_scope)
        if self.host.name in members:
            owned = set(self.placement.owned_index_for(members).get(self.host.name, ()))
        else:
            owned = set()
        for vip in sorted(self.bound - owned):
            self.nic.unbind_ip(vip)
            self.unbinds += 1
        for vip in sorted(owned - self.bound):
            self.nic.bind_ip(vip)
            self.binds += 1
        self.bound = owned

    def reset_counters(self):
        self.binds = 0
        self.unbinds = 0


class ScaleClusterScenario:
    """Builds and drives one segmented scale-tier cluster."""

    SUBNET = "10.32.0.0/16"

    def __init__(
        self,
        seed=0,
        n_hosts=256,
        n_vips=2048,
        segment_size=32,
        segment_config=None,
        flow_users=0,
        flow_rate=1.0,
        flow_tick=0.05,
        flow_use_numpy=None,
        trace_enabled=False,
        trace_capacity=None,
        metrics_enabled=False,
        sim=None,
    ):
        if n_hosts > 4096:
            raise ValueError("n_hosts exceeds the /16 host-address plan")
        self.sim = sim if sim is not None else Simulation(
            seed=seed,
            trace_enabled=trace_enabled,
            trace_capacity=trace_capacity,
            metrics_enabled=metrics_enabled,
        )
        self.lan = Lan(self.sim, "scale", self.SUBNET)
        self.faults = FaultInjector(self.sim)
        self.segment_config = segment_config or SegmentConfig(segment_size=segment_size)

        # Address plan: hosts fill 10.32.1.x upward, VIPs fill
        # 10.32.128.x upward; .0 and .255 are never used.
        entries = [
            (self._host_name(index), self._host_ip(index)) for index in range(n_hosts)
        ]
        self.fleet = Fleet(entries, self.segment_config.segment_size)
        self.vips = [self._vip_ip(index) for index in range(n_vips)]
        self.placement = RendezvousMap(self.vips)

        self.hosts = []
        self.nodes = []
        self.managers = []
        for index, (name, ip) in enumerate(entries):
            host = Host(self.sim, name)
            host.add_nic(self.lan, ip)
            self.hosts.append(host)
            self._attach(index)

        # The flow plane, scale tier: clients are not modeled at this
        # size, so pools resolve through a DirectResolver over the live
        # managers' bound sets — a VIP serves iff some live manager
        # currently binds it.
        self.flow_engine = None
        if flow_users:
            resolver = DirectResolver(self._flow_bindings, lan=self.lan)
            self.flow_engine = FlowEngine(
                self.sim,
                resolver=resolver,
                tick=flow_tick,
                name="scale",
                use_numpy=flow_use_numpy,
            )
            share, remainder = divmod(int(flow_users), n_vips)
            for index, vip in enumerate(self.vips):
                users = share + (1 if index < remainder else 0)
                if users:
                    self.flow_engine.add_pool(
                        FlowPool("pool-{:04d}".format(index), vip, users, rate=flow_rate)
                    )

    def _flow_bindings(self):
        """(vip, owner host) pairs over live managers, for the resolver."""
        for manager in self.managers:
            if manager.alive:
                for vip in manager.bound:
                    yield vip, manager.host

    @staticmethod
    def _host_name(index):
        return "node{:04d}".format(index)

    @staticmethod
    def _host_ip(index):
        return "10.32.{}.{}".format(1 + index // 250, 1 + index % 250)

    @staticmethod
    def _vip_ip(index):
        return "10.32.{}.{}".format(128 + index // 250, 1 + index % 250)

    def _attach(self, index):
        """Create (or re-create after revival) a host's daemon pair."""
        host = self.hosts[index]
        manager = ScaleVipManager(host, self.lan, self.placement)
        node = SegmentNode(
            host,
            self.lan,
            index,
            self.fleet,
            self.segment_config,
            on_global_view=manager.apply_view,
        )
        if index < len(self.nodes):
            self.nodes[index] = node
            self.managers[index] = manager
        else:
            self.nodes.append(node)
            self.managers.append(manager)
        return node, manager

    # ------------------------------------------------------------------
    # lifecycle

    def start(self):
        """Boot every node (heartbeat phases are per-node jittered)."""
        for node in self.nodes:
            node.start()
        if self.flow_engine is not None:
            self.flow_engine.start()
        return self

    def settle(self, timeout=30.0, step=0.5):
        """Run until :meth:`converged`, or until ``timeout`` elapses."""
        deadline = self.sim.now + timeout
        while self.sim.now < deadline:
            self.sim.run_for(step)
            if self.converged():
                return True
        return self.converged()

    # ------------------------------------------------------------------
    # faults

    def kill(self, index):
        """Fail-stop one host."""
        self.faults.crash_host(self.hosts[index])

    def revive(self, index):
        """Reboot a crashed host and restart its daemons."""
        host = self.hosts[index]
        self.faults.recover_host(host)
        node, _manager = self._attach(index)
        node.start()

    # ------------------------------------------------------------------
    # inspection

    def live_nodes(self):
        return [node for node in self.nodes if node.alive]

    def live_views(self):
        """The set of distinct global views held by live nodes."""
        return {node.global_view for node in self.nodes if node.alive}

    def bindings(self):
        """Sorted (vip, host) pairs over live managers' bound sets."""
        pairs = []
        for manager in self.managers:
            if manager.alive:
                for vip in manager.bound:
                    pairs.append((vip, manager.host.name))
        return sorted(pairs)

    def coverage_violations(self):
        """(uncovered vips, duplicated vips) among live managers."""
        owners = {}
        for vip, name in self.bindings():
            owners.setdefault(vip, []).append(name)
        uncovered = sorted(vip for vip in self.vips if vip not in owners)
        duplicated = sorted(vip for vip, names in owners.items() if len(names) > 1)
        return uncovered, duplicated

    def converged(self):
        """One shared view naming exactly the live hosts, full single-owner coverage."""
        views = self.live_views()
        if len(views) != 1:
            return False
        view = next(iter(views))
        live = sorted(host.name for host in self.hosts if host.alive)
        if list(view.members) != live:
            return False
        uncovered, duplicated = self.coverage_violations()
        return not uncovered and not duplicated

    def moved_vips(self):
        """Total rebinds since the last :meth:`reset_move_counters`."""
        return sum(m.binds for m in self.managers if m.alive)

    def reset_move_counters(self):
        for manager in self.managers:
            manager.reset_counters()

    def fingerprint(self):
        """A JSON-stable digest of converged cluster state (for replay tests)."""
        views = sorted(
            {(v.version, v.members) for v in self.live_views()},
        )
        return {
            "time": round(self.sim.now, 9),
            "views": [
                {"version": version, "n_members": len(members)}
                for version, members in views
            ],
            "bindings": self.bindings(),
        }


# ----------------------------------------------------------------------
# the sharded tier: the same cluster, partitioned for the parallel kernel


#: Parameter defaults for :class:`ScaleShardWorld` /
#: :class:`ShardedScaleScenario`. Everything is a plain JSON-able
#: scalar or (time, index) pair list so the dict pickles cheaply to
#: shard workers and embeds verbatim in artifact metadata.
SHARD_SCALE_DEFAULTS = {
    "seed": 0,
    "n_hosts": 256,
    "n_vips": 2048,
    "segment_size": 32,
    "shards": 1,
    "inter_latency": DEFAULT_INTER_LATENCY,
    "horizon": 12.0,
    "flow_users": 0,
    "flow_rate": 1.0,
    "flow_tick": 0.05,
    "flow_use_numpy": None,
    "trace_enabled": True,
    "metrics_enabled": False,
    "kills": (),
    "revives": (),
}

#: Trace categories retained by shard worlds. Deliberately excludes
#: per-frame plumbing (``arp``, ``ip``) whose details mention
#: world-local identities like MAC numbers; everything kept here names
#: only cell-local sources, so records attribute cleanly to cells and
#: the merged trace is grouping-invariant.
SHARD_TRACE_CATEGORIES = ("segments", "host", "flow")


def _segment_count(n_hosts, segment_size):
    return (int(n_hosts) + int(segment_size) - 1) // int(segment_size)


def _vip_slice(n_vips, n_segments, cell):
    """(start_index, count) of ``cell``'s contiguous VIP share."""
    base, extra = divmod(int(n_vips), int(n_segments))
    start = cell * base + min(cell, extra)
    return start, base + (1 if cell < extra else 0)


def build_scale_shard_world(params, shard_id):
    """World factory for :class:`repro.sim.shard.ShardedKernel`."""
    return ScaleShardWorld(params, shard_id)


class ScaleShardWorld:
    """One shard's slice of the partitioned scale cluster.

    Each *cell* is a full LAN segment: its own :class:`Lan` (name
    ``segNN``), its hosts, their membership daemons, a cell-scoped
    rendezvous placement over the cell's contiguous VIP share, and —
    when traffic is on — a cell-local flow engine. Membership is still
    fleet-wide (leader digests cross cells over the uplink); placement
    and traffic never leave the cell.

    Everything observable is a pure function of ``params`` and the
    cell id, never of the shard grouping: RNG streams are keyed by
    component names, trace categories exclude world-local identities,
    and all cross-cell frames ride barrier-scheduled envelopes.
    """

    def __init__(self, params, shard_id):
        merged = dict(SHARD_SCALE_DEFAULTS)
        merged.update(params)
        self.params = merged
        self.shard_id = int(shard_id)
        n_hosts = int(merged["n_hosts"])
        n_vips = int(merged["n_vips"])
        segment_size = int(merged["segment_size"])
        n_segments = _segment_count(n_hosts, segment_size)
        self.plan = ShardPlan(n_segments, merged["shards"], merged["inter_latency"])
        self.cells = self.plan.cells_of(self.shard_id)
        trace_enabled = bool(merged["trace_enabled"])
        self.sim = Simulation(
            seed=merged["seed"],
            trace_enabled=trace_enabled,
            trace_capacity=None,
            trace_categories=SHARD_TRACE_CATEGORIES if trace_enabled else None,
            metrics_enabled=bool(merged["metrics_enabled"]),
        )
        entries = [
            (ScaleClusterScenario._host_name(index), ScaleClusterScenario._host_ip(index))
            for index in range(n_hosts)
        ]
        self.fleet = Fleet(entries, segment_size)
        self.config = SegmentConfig(segment_size=segment_size)
        self.uplink = SegmentUplink(
            self.sim,
            merged["inter_latency"],
            {
                IPAddress(ip): self.fleet.segment_of_index(index)
                for index, (_name, ip) in enumerate(entries)
            },
        )
        all_vips = [ScaleClusterScenario._vip_ip(index) for index in range(n_vips)]

        self._hosts = {}
        self._nodes = {}
        self._managers = {}
        self._cell_indexes = {}
        self._cell_lan = {}
        self._cell_placement = {}
        self._cell_scope = {}
        self._cell_vips = {}
        self._cell_engine = {}
        self._source_cell = {}

        kills = [(float(t), int(i)) for t, i in merged["kills"]]
        revives = [(float(t), int(i)) for t, i in merged["revives"]]

        for cell in self.cells:
            lan = Lan(self.sim, "seg{:02d}".format(cell), ScaleClusterScenario.SUBNET)
            members = self.fleet.segment_members(cell)
            scope = frozenset(members)
            start, count = _vip_slice(n_vips, n_segments, cell)
            cell_vips = all_vips[start : start + count]
            placement = RendezvousMap(cell_vips)
            indexes = []
            self._cell_lan[cell] = lan
            self._cell_scope[cell] = scope
            self._cell_placement[cell] = placement
            self._cell_vips[cell] = cell_vips
            for name in members:
                index = self.fleet.index_of[name]
                indexes.append(index)
                host = UplinkHost(self.sim, name, self.uplink, cell)
                host.add_nic(lan, self.fleet.ip_of[name])
                self.uplink.attach_host(host, self.fleet.ip_of[name])
                self._hosts[index] = host
                self._attach(index)
                self._source_cell[name] = cell
                self._source_cell["seg@" + name] = cell
                self._source_cell["svip@" + name] = cell
            self._cell_indexes[cell] = tuple(indexes)

            engine = None
            if merged["flow_users"]:
                resolver = DirectResolver(
                    functools.partial(self._iter_cell_bindings, cell), lan=lan
                )
                engine = FlowEngine(
                    self.sim,
                    resolver=resolver,
                    tick=merged["flow_tick"],
                    name="seg{:02d}".format(cell),
                    use_numpy=merged["flow_use_numpy"],
                )
                share, remainder = divmod(int(merged["flow_users"]), n_vips)
                for offset, vip in enumerate(cell_vips):
                    global_index = start + offset
                    users = share + (1 if global_index < remainder else 0)
                    if users:
                        engine.add_pool(
                            FlowPool(
                                "pool-{:04d}".format(global_index),
                                vip,
                                users,
                                rate=merged["flow_rate"],
                            )
                        )
                self._source_cell[engine.name] = cell
            self._cell_engine[cell] = engine

            # Faults are pre-scheduled at build time (the fixed-horizon
            # script keeps run control grouping-invariant), per cell in
            # (time, index) order so sequence numbers are too.
            for time, index in sorted(k for k in kills if self._cell_of_index(k[1]) == cell):
                self.sim.at(time, self._kill, index)
            for time, index in sorted(r for r in revives if self._cell_of_index(r[1]) == cell):
                self.sim.at(time, self._revive, index)

        for cell in self.cells:
            for index in self._cell_indexes[cell]:
                self._nodes[index].start()
            if self._cell_engine[cell] is not None:
                self._cell_engine[cell].start()

    def _cell_of_index(self, index):
        return self.fleet.segment_of_index(int(index))

    def _attach(self, index):
        host = self._hosts[index]
        cell = self._cell_of_index(index)
        manager = ScaleVipManager(
            host,
            self._cell_lan[cell],
            self._cell_placement[cell],
            member_scope=self._cell_scope[cell],
        )
        node = SegmentNode(
            host,
            self._cell_lan[cell],
            index,
            self.fleet,
            self.config,
            on_global_view=manager.apply_view,
        )
        self._managers[index] = manager
        self._nodes[index] = node
        return node

    def _iter_cell_bindings(self, cell):
        for index in self._cell_indexes[cell]:
            manager = self._managers[index]
            if manager.alive:
                for vip in manager.bound:
                    yield vip, manager.host

    def _kill(self, index):
        self._hosts[index].crash()

    def _revive(self, index):
        self._hosts[index].recover()
        self._attach(index).start()

    # ------------------------------------------------------------------
    # the kernel's world protocol

    def next_event_time(self):
        return self.sim.scheduler.next_event_time()

    def advance(self, until, inclusive):
        return self.sim.scheduler.run(until=until, inclusive=inclusive)

    def inject(self, envelopes):
        self.uplink.inject(envelopes)

    def drain_outbound(self):
        return self.uplink.drain_outbound()

    def artifacts(self):
        """This world's share of the run artifact (see shard.merge)."""
        cells_out = {}
        for cell in self.cells:
            indexes = self._cell_indexes[cell]
            live_nodes = [
                self._nodes[index] for index in indexes if self._nodes[index].alive
            ]
            bindings = []
            binds = unbinds = 0
            for index in indexes:
                manager = self._managers[index]
                if manager.alive:
                    binds += manager.binds
                    unbinds += manager.unbinds
                    for vip in manager.bound:
                        bindings.append((str(vip), manager.host.name))
            bindings.sort()
            owners = {}
            for vip, name in bindings:
                owners.setdefault(vip, []).append(name)
            cell_vips = [str(vip) for vip in self._cell_vips[cell]]
            engine = self._cell_engine[cell]
            cells_out[cell] = {
                "live": sorted(node.node_name for node in live_nodes),
                "views": [
                    list(view)
                    for view in sorted(
                        {
                            (node.global_view.version, view_digest(node.global_view.members))
                            for node in live_nodes
                        }
                    )
                ],
                "n_vips": len(cell_vips),
                "uncovered": sum(1 for vip in cell_vips if vip not in owners),
                "duplicated": sum(1 for names in owners.values() if len(names) > 1),
                "binds": binds,
                "unbinds": unbinds,
                "bindings_sha256": hashlib.sha256(
                    ";".join("=".join(pair) for pair in bindings).encode("utf-8")
                ).hexdigest(),
                "flow": engine.totals() if engine is not None else None,
                "uplink": self.uplink.counters(cell),
            }
        trace_out = {cell: [] for cell in self.cells}
        for record in self.sim.trace.records:
            cell = self._source_cell[record.source]
            details = ",".join(
                "{}={!r}".format(key, record.details[key])
                for key in sorted(record.details)
            )
            trace_out[cell].append(
                (
                    record.time,
                    "{!r}|{}|{}|{}|{}".format(
                        record.time, record.category, record.source, record.event, details
                    ),
                )
            )
        metrics = self.sim.metrics.totals() if self.params["metrics_enabled"] else {}
        return {
            "events_fired": self.sim.scheduler.events_fired,
            "now": self.sim.now,
            "cells": cells_out,
            "trace": trace_out,
            "metrics": metrics,
        }


class ShardedScaleScenario:
    """Boot+faults+settle on the partitioned cluster, serial or sharded.

    A fixed-horizon script: faults are scheduled up front and the run
    always ends exactly at ``horizon`` — no adaptive settle polling,
    so run control never depends on the shard grouping. ``shards``
    picks the partition width (1 = one world, the serial kernel);
    ``workers`` ≥ 2 forks one warm worker process per shard. The
    returned artifact is byte-identical for every (shards, workers)
    choice — :meth:`run` of a ``shards=1, workers=0`` scenario is the
    reference the parity suite compares against.
    """

    FACTORY = "repro.apps.scalecluster:build_scale_shard_world"

    def __init__(self, workers=0, **params):
        merged = dict(SHARD_SCALE_DEFAULTS)
        unknown = set(params) - set(SHARD_SCALE_DEFAULTS)
        if unknown:
            raise TypeError("unknown parameters: {}".format(sorted(unknown)))
        merged.update(params)
        n_hosts = int(merged["n_hosts"])
        if n_hosts > 4096:
            raise ValueError("n_hosts exceeds the /16 host-address plan")
        n_segments = _segment_count(n_hosts, merged["segment_size"])
        horizon = float(merged["horizon"])
        merged["kills"] = sorted((float(t), int(i)) for t, i in merged["kills"])
        merged["revives"] = sorted((float(t), int(i)) for t, i in merged["revives"])
        for time, index in merged["kills"] + merged["revives"]:
            if not 0.0 < time < horizon:
                raise ValueError("fault time {} outside (0, horizon)".format(time))
            if not 0 <= index < n_hosts:
                raise ValueError("fault host index {} out of range".format(index))
        self.params = merged
        self.horizon = horizon
        self.workers = int(workers)
        self.plan = ShardPlan(n_segments, merged["shards"], merged["inter_latency"])
        self.artifact = None
        self.epochs = 0
        self.workers_used = 0

    def run(self):
        """Execute the script; returns the merged run artifact."""
        kernel = ShardedKernel(self.plan, self.FACTORY, self.params, workers=self.workers)
        try:
            kernel.start()
            kernel.run(self.horizon)
            worlds = kernel.collect()
        finally:
            kernel.close()
        self.epochs = kernel.epochs
        self.workers_used = kernel.workers
        meta = {
            key: self.params[key]
            for key in (
                "seed",
                "n_hosts",
                "n_vips",
                "segment_size",
                "inter_latency",
                "horizon",
                "flow_users",
                "flow_rate",
                "flow_tick",
                "trace_enabled",
                "metrics_enabled",
            )
        }
        # The fault script is part of the artifact's identity; the
        # shard/worker split deliberately is not — parity means those
        # knobs cannot show up in the bytes.
        meta["kills"] = [list(pair) for pair in self.params["kills"]]
        meta["revives"] = [list(pair) for pair in self.params["revives"]]
        self.artifact = merge_artifacts(worlds, meta=meta)
        return self.artifact
