"""The scale tier: a 256–1024-host cluster on segmented membership.

The Figure-3 scenarios (:mod:`repro.apps.webcluster`) run the paper's
full stack — Spread ring, Wackamole state machine, ARP spoofing — which
is faithful but O(N²) in broadcast fan-out and unusable past a few
dozen hosts. This scenario swaps both layers for the scale designs:

* membership comes from :mod:`repro.gcs.segments` (unicast heartbeats
  aggregated by segment leaders, digest exchange, deterministic merge);
* placement comes from a single shared
  :class:`repro.core.placement.RendezvousMap` — every node derives its
  own VIP share from the global view by pure computation, so there is
  no allocation protocol at all: agreement on the view IS agreement on
  the allocation (the same Lemma-2 argument as the paper's
  deterministic Reallocate_IPs, applied to HRW).

Each host runs a :class:`ScaleVipManager` that binds exactly its HRW
share on every adopted view. The manager is deliberately lean — it
binds interfaces and counts moves; the ARP-spoofing/notification
machinery stays in the faithful tier where clients are modeled.
"""

from repro.core.placement import RendezvousMap
from repro.flow import DirectResolver, FlowEngine, FlowPool
from repro.gcs.segments import Fleet, SegmentConfig, SegmentNode
from repro.net.fault import FaultInjector
from repro.net.host import Host
from repro.net.lan import Lan
from repro.sim.process import Process
from repro.sim.simulation import Simulation


class ScaleVipManager(Process):
    """Binds one host's rendezvous share of the VIP pool.

    On every adopted :class:`~repro.gcs.segments.GlobalView` the manager
    looks up its slot set in the shared placement map and diffs it
    against the interface: new slots are bound, lost slots released. A
    node absent from the view (declared dead while actually alive)
    releases everything — the scale-tier analogue of the paper's rule
    that a partitioned minority must drop its addresses.
    """

    def __init__(self, host, lan, placement):
        super().__init__(host.sim, "svip@{}".format(host.name))
        self.host = host
        self.nic = host.nic_on(lan)
        self.placement = placement
        self.bound = set()
        self.binds = 0
        self.unbinds = 0
        self.view = None
        host.register_service(self)

    def apply_view(self, view):
        """Rebind to the HRW share implied by ``view``."""
        if not self.alive:
            return
        self.view = view
        if self.host.name in view.members:
            owned = set(self.placement.owned_index_for(view.members).get(self.host.name, ()))
        else:
            owned = set()
        for vip in sorted(self.bound - owned):
            self.nic.unbind_ip(vip)
            self.unbinds += 1
        for vip in sorted(owned - self.bound):
            self.nic.bind_ip(vip)
            self.binds += 1
        self.bound = owned

    def reset_counters(self):
        self.binds = 0
        self.unbinds = 0


class ScaleClusterScenario:
    """Builds and drives one segmented scale-tier cluster."""

    SUBNET = "10.32.0.0/16"

    def __init__(
        self,
        seed=0,
        n_hosts=256,
        n_vips=2048,
        segment_size=32,
        segment_config=None,
        flow_users=0,
        flow_rate=1.0,
        flow_tick=0.05,
        flow_use_numpy=None,
        trace_enabled=False,
        trace_capacity=None,
        metrics_enabled=False,
        sim=None,
    ):
        if n_hosts > 4096:
            raise ValueError("n_hosts exceeds the /16 host-address plan")
        self.sim = sim if sim is not None else Simulation(
            seed=seed,
            trace_enabled=trace_enabled,
            trace_capacity=trace_capacity,
            metrics_enabled=metrics_enabled,
        )
        self.lan = Lan(self.sim, "scale", self.SUBNET)
        self.faults = FaultInjector(self.sim)
        self.segment_config = segment_config or SegmentConfig(segment_size=segment_size)

        # Address plan: hosts fill 10.32.1.x upward, VIPs fill
        # 10.32.128.x upward; .0 and .255 are never used.
        entries = [
            (self._host_name(index), self._host_ip(index)) for index in range(n_hosts)
        ]
        self.fleet = Fleet(entries, self.segment_config.segment_size)
        self.vips = [self._vip_ip(index) for index in range(n_vips)]
        self.placement = RendezvousMap(self.vips)

        self.hosts = []
        self.nodes = []
        self.managers = []
        for index, (name, ip) in enumerate(entries):
            host = Host(self.sim, name)
            host.add_nic(self.lan, ip)
            self.hosts.append(host)
            self._attach(index)

        # The flow plane, scale tier: clients are not modeled at this
        # size, so pools resolve through a DirectResolver over the live
        # managers' bound sets — a VIP serves iff some live manager
        # currently binds it.
        self.flow_engine = None
        if flow_users:
            resolver = DirectResolver(self._flow_bindings, lan=self.lan)
            self.flow_engine = FlowEngine(
                self.sim,
                resolver=resolver,
                tick=flow_tick,
                name="scale",
                use_numpy=flow_use_numpy,
            )
            share, remainder = divmod(int(flow_users), n_vips)
            for index, vip in enumerate(self.vips):
                users = share + (1 if index < remainder else 0)
                if users:
                    self.flow_engine.add_pool(
                        FlowPool("pool-{:04d}".format(index), vip, users, rate=flow_rate)
                    )

    def _flow_bindings(self):
        """(vip, owner host) pairs over live managers, for the resolver."""
        for manager in self.managers:
            if manager.alive:
                for vip in manager.bound:
                    yield vip, manager.host

    @staticmethod
    def _host_name(index):
        return "node{:04d}".format(index)

    @staticmethod
    def _host_ip(index):
        return "10.32.{}.{}".format(1 + index // 250, 1 + index % 250)

    @staticmethod
    def _vip_ip(index):
        return "10.32.{}.{}".format(128 + index // 250, 1 + index % 250)

    def _attach(self, index):
        """Create (or re-create after revival) a host's daemon pair."""
        host = self.hosts[index]
        manager = ScaleVipManager(host, self.lan, self.placement)
        node = SegmentNode(
            host,
            self.lan,
            index,
            self.fleet,
            self.segment_config,
            on_global_view=manager.apply_view,
        )
        if index < len(self.nodes):
            self.nodes[index] = node
            self.managers[index] = manager
        else:
            self.nodes.append(node)
            self.managers.append(manager)
        return node, manager

    # ------------------------------------------------------------------
    # lifecycle

    def start(self):
        """Boot every node (heartbeat phases are per-node jittered)."""
        for node in self.nodes:
            node.start()
        if self.flow_engine is not None:
            self.flow_engine.start()
        return self

    def settle(self, timeout=30.0, step=0.5):
        """Run until :meth:`converged`, or until ``timeout`` elapses."""
        deadline = self.sim.now + timeout
        while self.sim.now < deadline:
            self.sim.run_for(step)
            if self.converged():
                return True
        return self.converged()

    # ------------------------------------------------------------------
    # faults

    def kill(self, index):
        """Fail-stop one host."""
        self.faults.crash_host(self.hosts[index])

    def revive(self, index):
        """Reboot a crashed host and restart its daemons."""
        host = self.hosts[index]
        self.faults.recover_host(host)
        node, _manager = self._attach(index)
        node.start()

    # ------------------------------------------------------------------
    # inspection

    def live_nodes(self):
        return [node for node in self.nodes if node.alive]

    def live_views(self):
        """The set of distinct global views held by live nodes."""
        return {node.global_view for node in self.nodes if node.alive}

    def bindings(self):
        """Sorted (vip, host) pairs over live managers' bound sets."""
        pairs = []
        for manager in self.managers:
            if manager.alive:
                for vip in manager.bound:
                    pairs.append((vip, manager.host.name))
        return sorted(pairs)

    def coverage_violations(self):
        """(uncovered vips, duplicated vips) among live managers."""
        owners = {}
        for vip, name in self.bindings():
            owners.setdefault(vip, []).append(name)
        uncovered = sorted(vip for vip in self.vips if vip not in owners)
        duplicated = sorted(vip for vip, names in owners.items() if len(names) > 1)
        return uncovered, duplicated

    def converged(self):
        """One shared view naming exactly the live hosts, full single-owner coverage."""
        views = self.live_views()
        if len(views) != 1:
            return False
        view = next(iter(views))
        live = sorted(host.name for host in self.hosts if host.alive)
        if list(view.members) != live:
            return False
        uncovered, duplicated = self.coverage_violations()
        return not uncovered and not duplicated

    def moved_vips(self):
        """Total rebinds since the last :meth:`reset_move_counters`."""
        return sum(m.binds for m in self.managers if m.alive)

    def reset_move_counters(self):
        for manager in self.managers:
            manager.reset_counters()

    def fingerprint(self):
        """A JSON-stable digest of converged cluster state (for replay tests)."""
        views = sorted(
            {(v.version, v.members) for v in self.live_views()},
        )
        return {
            "time": round(self.sim.now, 9),
            "views": [
                {"version": version, "n_members": len(members)}
                for version, members in views
            ],
            "bindings": self.bindings(),
        }
