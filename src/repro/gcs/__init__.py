"""A Spread-like group communication system (the paper's substrate).

Wackamole's correctness rests on three guarantees the Spread toolkit
provides (§3.1, §4.1): *Virtual Synchrony* (daemons advancing together
between two memberships deliver an identical set of messages in the
first), *Agreed delivery* (messages delivered in the same total order
everywhere), and a *membership service* handing every member an
identically ordered participant list.

This package implements a complete daemon/client GCS with those
guarantees over the simulated LAN:

* heartbeat-based failure detection with the paper's Table 1 timeouts
  (distributed heartbeat, fault detection, discovery),
* a membership protocol (GATHER -> FORM -> ACK -> INSTALL) with
  virtual-synchrony message recovery across view changes,
* agreed (totally ordered) multicast within each installed view,
* client sessions and named process groups with lightweight join/leave
  (a graceful client leave does not trigger daemon reconfiguration —
  the optimisation §4.1 credits for fast voluntary hand-off).
"""

from repro.gcs.client import SpreadClient
from repro.gcs.config import SpreadConfig
from repro.gcs.daemon import SpreadDaemon
from repro.gcs.messages import GroupView, SpreadMessage
from repro.gcs.views import DaemonView, ViewId

__all__ = [
    "DaemonView",
    "GroupView",
    "SpreadClient",
    "SpreadConfig",
    "SpreadDaemon",
    "SpreadMessage",
    "ViewId",
]
