"""The Spread-like daemon: glue between network, membership, ordering,
groups, and client sessions.

One daemon runs per host (client-daemon architecture, §4.1). It owns a
UDP socket on the Spread port, broadcasts heartbeats, runs the
membership engine and the per-view orderer, maintains the process-group
map, and serves local client sessions with a small IPC latency.
"""

from repro.gcs.client import SpreadClient, SpreadConnectionError
from repro.gcs.config import SpreadConfig
from repro.gcs.failure import FailureDetector
from repro.gcs.membership import MembershipEngine
from repro.gcs.messages import (
    AckMsg,
    AruMsg,
    FormMsg,
    GroupView,
    Heartbeat,
    InstallMsg,
    JoinMsg,
    LeaveNotice,
    NackMsg,
    OrderedMsg,
    RecoveryDigest,
    SpreadMessage,
    SubmitMsg,
)
from repro.gcs.ordering import ViewOrderer
from repro.gcs.views import DaemonView
from repro.sim.process import Process


class SpreadDaemon(Process):
    """One group-communication daemon on one host."""

    def __init__(self, host, lan, config=None, daemon_id=None, realtime=False):
        self.daemon_id = daemon_id or host.name
        super().__init__(host.sim, "spread@{}".format(self.daemon_id))
        self.host = host
        self.lan = lan
        self.realtime = realtime
        self.config = config or SpreadConfig.default()
        host.register_service(self)
        # Clients connect to "the daemon on this host" (localhost in the
        # real system), so the host tracks its current daemon.
        host.spread_daemon = self
        # §6: on loaded machines the daemon should run with real-time
        # priority so scheduling delay cannot fake a network failure.
        self._socket = host.open_udp(
            self.config.port, self._on_datagram, realtime=realtime
        )
        self._addr_book = {}
        self._clients = {}
        self._local_joins = {}
        self._msg_counter = 0
        self._future_ordered = []
        self.groups = {}
        self._group_intra = {}
        self.orderer = None
        self.fd = FailureDetector(self, self._on_suspect)
        self.membership = MembershipEngine(self)
        self._heartbeat_timer = self.periodic(
            self._send_heartbeat, self.config.heartbeat_timeout, name="heartbeat"
        )
        self._stabilize_timer = None
        if self.config.stabilization.enabled:
            self._stabilize_timer = self.periodic(
                self._stabilize_audit,
                self.config.stabilization.interval,
                name="stabilize",
            )
        self.stabilize_repairs = 0
        self.started = False
        # Gray fault: a wedged daemon is alive (port bound, process
        # scheduled) but neither receives nor sends protocol traffic —
        # the deadlocked-event-loop failure a fail-stop crash cannot
        # model. Peers see silence; local clients see nothing at all.
        self.wedged = False
        self.messages_sent = 0
        metrics = self.sim.metrics
        self._m_sent = metrics.counter("gcs.messages_sent", node=self.daemon_id)
        self._m_received = metrics.counter("gcs.datagrams_received", node=self.daemon_id)
        self._m_delivered = metrics.counter("gcs.messages_delivered", node=self.daemon_id)
        self._m_heartbeats = metrics.counter("gcs.heartbeats_sent", node=self.daemon_id)

    # ------------------------------------------------------------------
    # lifecycle

    def start(self):
        """Boot the daemon: begin heartbeats and look for peers."""
        if self.started:
            raise RuntimeError("daemon {} already started".format(self.daemon_id))
        self.started = True
        first_beat = self.rng("heartbeat").uniform(0.0, self.config.heartbeat_timeout)
        self._heartbeat_timer.start(first_delay=first_beat)
        if self._stabilize_timer is not None:
            self._stabilize_timer.start(
                first_delay=self.config.stabilization.interval + first_beat
            )
        self.membership.start()
        self.trace("daemon", "start")

    def shutdown(self):
        """Voluntary exit: announce the leave so peers reconfigure at once."""
        if not self.alive:
            return
        self.broadcast(LeaveNotice(self.daemon_id))
        self.trace("daemon", "shutdown")
        self.crash(cause="shutdown")

    def crash(self, cause="crash"):
        """Stop abruptly; local client sessions see a broken connection."""
        if not self.alive:
            return
        self.trace("daemon", "stopped", cause=cause)
        self.stop()

    def stop(self):
        """Full teardown; also invoked by the host when it crashes."""
        if not self.alive:
            return
        if self.orderer is not None:
            self.orderer.freeze()
        self.membership.shutdown()
        self.fd.stop()
        super().stop()
        self._socket.close()
        for client_name in sorted(self._clients):
            client = self._clients[client_name]
            self.sim.after(self.config.client_ipc_latency, client._handle_disconnect)
        self._clients.clear()
        self._local_joins.clear()

    @property
    def current_view(self):
        """The installed daemon membership view."""
        return self.membership.view

    @property
    def operational(self):
        """True when a view is installed and ordering is live."""
        from repro.gcs.membership import OPERATIONAL

        return self.membership.state == OPERATIONAL

    # ------------------------------------------------------------------
    # transport

    def broadcast(self, message):
        """Send a daemon message to the whole segment."""
        if not self.alive or self.wedged:
            return
        self.messages_sent += 1
        self._m_sent.inc()
        self.host.send_udp(
            message,
            self.lan.subnet.broadcast_address,
            self.config.port,
            src_port=self.config.port,
        )

    def unicast(self, daemon_id, message):
        """Send to one daemon; falls back to broadcast if address unknown."""
        if not self.alive or self.wedged:
            return
        address = self._addr_book.get(daemon_id)
        if address is None:
            self.broadcast(message)
            return
        self.messages_sent += 1
        self._m_sent.inc()
        self.host.send_udp(message, address, self.config.port, src_port=self.config.port)

    def _send_heartbeat(self):
        view_id, top_seq, aru = None, 0, 0
        if self.orderer is not None and not self.orderer.frozen:
            view_id = self.orderer.view_id
            top_seq = self.orderer.top_seq()
            aru = self.orderer.recv_aru
        self._m_heartbeats.inc()
        self.broadcast(Heartbeat(self.daemon_id, view_id, top_seq, aru))

    def next_msg_id(self):
        """Globally unique message id for originated submissions."""
        self._msg_counter += 1
        return (self.daemon_id, self._msg_counter)

    # ------------------------------------------------------------------
    # inbound dispatch

    def _on_datagram(self, message, src, dst):
        # Wire messages are plain final classes, so dispatch on exact
        # type — this is the single busiest protocol function and the
        # isinstance chain it replaces showed up at the top of campaign
        # profiles.
        if not self.alive or not self.started or self.wedged:
            return
        self._m_received.inc()
        kind = type(message)
        if kind is not OrderedMsg:
            # OrderedMsg carries the *originator*, not the broadcaster
            # (the sequencer); it must not feed the address book.
            sender = self._sender_of(message)
            if sender is not None and sender != self.daemon_id:
                self._addr_book[sender] = src[0]
                self.fd.heard_from(sender)
        if kind is Heartbeat:
            self.membership.on_foreign_traffic(message.sender)
            if message.view_id is not None:
                self.orderer.on_top_seq(message.view_id, message.top_seq)
                self.orderer.on_aru(message.view_id, message.sender, message.aru)
        elif kind is AruMsg:
            self.orderer.on_aru(message.view_id, message.sender, message.aru)
        elif kind is JoinMsg:
            self.membership.on_join(message)
        elif kind is FormMsg:
            self.membership.on_form(message)
        elif kind is AckMsg:
            self.membership.on_ack(message)
        elif kind is InstallMsg:
            self.membership.on_install(message)
        elif kind is LeaveNotice:
            self.membership.on_leave_notice(message)
        elif kind is SubmitMsg:
            self.orderer.on_submit(message)
        elif kind is NackMsg:
            self.orderer.on_nack(message)
        elif kind is OrderedMsg:
            self._on_ordered(message)

    @staticmethod
    def _sender_of(message):
        sender = getattr(message, "sender", None)
        if sender is not None:
            return sender
        sender = getattr(message, "rep", None)
        if sender is not None:
            return sender
        return getattr(message, "origin", None)

    def _on_ordered(self, message):
        if message.view_id == self.orderer.view_id:
            self.orderer.on_ordered(message)
        elif self.membership.view.view_id < message.view_id:
            self._future_ordered.append(message)

    def _on_suspect(self, peer):
        if self.alive:
            self.trace("daemon", "suspect", peer=peer)
            self.membership.on_suspect(peer)

    # ------------------------------------------------------------------
    # self-stabilization (docs/FAULTS.md, "State corruption")

    def _stabilize_audit(self):
        """Periodic local invariant audit over ordering and membership.

        Collects the layer audits (:meth:`ViewOrderer.stabilize_audit`,
        :meth:`MembershipEngine.stabilize_audit`), traces every locally
        applied repair, and — when configured — escalates findings that
        only a view change can fix into a membership GATHER, whose
        recovery digests rebuild the delivery state.
        """
        if not self.alive or not self.started or self.wedged:
            return
        repairs = []
        escalations = []
        if self.orderer is not None:
            fixed, escalate = self.orderer.stabilize_audit()
            repairs.extend(fixed)
            if escalate is not None:
                escalations.append("ordering: {}".format(escalate))
        fixed, escalate = self.membership.stabilize_audit()
        repairs.extend(fixed)
        if escalate is not None:
            escalations.append("membership: {}".format(escalate))
        for invariant, was, now in repairs:
            self.stabilize_repairs += 1
            self.trace("stabilize", "repair", invariant=invariant, was=was, now=now)
        if escalations and self.config.stabilization.escalate:
            self.stabilize_repairs += 1
            self.trace("stabilize", "repair", invariant="gather", reason=escalations[0])
            self.membership.trigger_gather("stabilize: {}".format(escalations[0]))

    # ------------------------------------------------------------------
    # membership engine hooks

    def install_initial_view(self, view):
        """Create the boot-time singleton view's orderer."""
        self.orderer = ViewOrderer(self, view)

    def on_leave_operational(self):
        """Freeze ordering while a view change is negotiated."""
        self.orderer.freeze()
        self.fd.stop()

    def make_digest(self):
        """Snapshot for the membership ACK (Virtual Synchrony input)."""
        local_groups = {}
        for client_name in sorted(self._local_joins):
            for group in sorted(self._local_joins[client_name]):
                local_groups.setdefault(group, []).append(client_name)
        return RecoveryDigest(
            self.orderer.view_id,
            self.orderer.log,
            self.orderer.delivered_aru,
            local_groups,
        )

    def apply_install(self, install, old_view):
        """Recover old-view messages, install the new view, notify clients."""
        old_orderer = self.orderer
        old_orderer.freeze()
        union = install.recovery.get(old_orderer.view_id, {})
        for seq in sorted(union):
            message = union[seq]
            if message.origin == self.daemon_id:
                old_orderer.mark_recovered(message.msg_id)
            if old_orderer.absorb_recovered(seq):
                self.apply_ordered(message)
        pending = old_orderer.pending_submissions()

        self.groups = {group: set(members) for group, members in install.groups.items()}
        self._group_intra = {}
        new_view = DaemonView(install.view_id, install.members)
        self.orderer = ViewOrderer(self, new_view)

        buffered = [m for m in self._future_ordered if m.view_id == install.view_id]
        self._future_ordered = [
            m for m in self._future_ordered if install.view_id < m.view_id
        ]

        for client_name in sorted(self._local_joins):
            client = self._clients.get(client_name)
            for group in sorted(self._local_joins[client_name]):
                view = GroupView(
                    group,
                    self._group_view_id(group),
                    tuple(sorted(self.groups.get(group, ()))),
                    "network",
                )
                self._deliver_to_client(client, "_deliver_group_view", view)

        for submission in pending:
            self.orderer.submit(
                submission.kind,
                submission.group,
                submission.payload,
                msg_id=submission.msg_id,
            )
        for message in buffered:
            self.orderer.on_ordered(message)
        self.fd.watch(new_view.members)

    # ------------------------------------------------------------------
    # agreed delivery application

    def apply_ordered(self, message):
        """Apply one totally ordered message (data or group event)."""
        self._m_delivered.inc()
        if message.kind == OrderedMsg.DATA:
            sender_name, payload = message.payload
            spread_message = SpreadMessage(message.group, sender_name, payload, message.view_id)
            for client in self._local_members(message.group):
                self._deliver_to_client(client, "_deliver_message", spread_message)
        elif message.kind == OrderedMsg.JOIN_GROUP:
            self._apply_join(message.group, message.payload)
        elif message.kind == OrderedMsg.LEAVE_GROUP:
            member_name, cause = message.payload
            self._apply_leave(message.group, member_name, cause)

    def _apply_join(self, group, member_name):
        members = self.groups.setdefault(group, set())
        if member_name in members:
            return
        members.add(member_name)
        self._notify_group(group, "join")

    def _apply_leave(self, group, member_name, cause):
        members = self.groups.get(group)
        if members is None or member_name not in members:
            return
        members.discard(member_name)
        if not members:
            del self.groups[group]
        self._notify_group(group, cause)

    def _notify_group(self, group, cause):
        self._group_intra[group] = self._group_intra.get(group, 0) + 1
        view = GroupView(
            group,
            self._group_view_id(group),
            tuple(sorted(self.groups.get(group, ()))),
            cause,
        )
        for client in self._local_members(group):
            self._deliver_to_client(client, "_deliver_group_view", view)

    def _group_view_id(self, group):
        view_id = self.membership.view.view_id
        return (view_id.counter, view_id.rep, self._group_intra.get(group, 0))

    def _local_members(self, group):
        members = []
        for client_name in sorted(self._local_joins):
            if group in self._local_joins[client_name]:
                client = self._clients.get(client_name)
                if client is not None:
                    members.append(client)
        return members

    def _deliver_to_client(self, client, method, item):
        if client is None or not client.connected:
            return
        self.sim.after(self.config.client_ipc_latency, getattr(client, method), item)

    # ------------------------------------------------------------------
    # client session API

    def connect(self, client_name):
        """Open a client session; raises if the daemon is down."""
        if not self.alive or not self.started:
            raise SpreadConnectionError(
                "daemon {} is not accepting connections".format(self.daemon_id)
            )
        client = SpreadClient(self, client_name)
        if client.private_name in self._clients:
            raise SpreadConnectionError(
                "client name {} already connected".format(client.private_name)
            )
        self._clients[client.private_name] = client
        self._local_joins[client.private_name] = set()
        return client

    def client_join(self, client, group):
        self._local_joins[client.private_name].add(group)
        self.orderer.submit(OrderedMsg.JOIN_GROUP, group, client.private_name)

    def client_leave(self, client, group, cause):
        self._local_joins[client.private_name].discard(group)
        self.orderer.submit(OrderedMsg.LEAVE_GROUP, group, (client.private_name, cause))

    def client_multicast(self, client, group, payload, service=OrderedMsg.AGREED):
        self.orderer.submit(
            OrderedMsg.DATA, group, (client.private_name, payload), service=service
        )

    def client_disconnected(self, client, cause):
        groups = self._local_joins.pop(client.private_name, set())
        for group in sorted(groups):
            self.orderer.submit(
                OrderedMsg.LEAVE_GROUP, group, (client.private_name, cause)
            )
        self._clients.pop(client.private_name, None)
        client.connected = False

    def __repr__(self):
        return "SpreadDaemon({}, view={})".format(self.daemon_id, self.membership.view)
