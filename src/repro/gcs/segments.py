"""Segmented daemon membership: the 256–1024-host scale tier.

The flat Totem-style protocol in :mod:`repro.gcs.daemon` broadcasts
every heartbeat to every daemon — O(N²) frames per interval — and was
built for the paper's handful of hosts. This module implements the
hierarchical scheme of the "Scalable Group Management" line of work:

* the fleet is statically partitioned into *segments* of
  ``segment_size`` consecutive hosts;
* each segment elects a deterministic *leader* (the lowest-index
  member believed alive); members unicast heartbeats to their leader
  only, and the leader aggregates them into a per-segment liveness
  set with a monotonically increasing *epoch*;
* leaders gossip their full digest map — one ``SegmentDigest`` per
  believed peer leader per interval, S·(S-1) unicasts total (S =
  segment count) — and merge the record set into a
  :class:`GlobalView` with :func:`merge_digests`, a pure,
  order-independent function, so any two leaders holding the same
  digests install the identical view. Records carry the believed
  leader of every segment, so leadership changes propagate
  transitively: a freshly promoted leader only needs one live peer
  to become reachable by all of them;
* leaders push the merged view to their members inside the periodic
  ``LeaderBeacon``, which doubles as the leader-liveness signal and
  carries the segment's alive set so every member can compute the
  same deterministic successor when the leader goes silent.

Steady-state message load is therefore O(N) unicasts per interval
(member heartbeats + leader beacons) plus O(S²) digests — at 1024
hosts in 32 segments, ~2 100 frames per interval instead of the flat
protocol's ~1 000 000.

The roster is a static :class:`Fleet`: the scale tier models a fixed
machine population whose *liveness* changes (the data-centre case),
not an elastic membership. Whole-segment failure is detected by digest
silence (the segment's members drop out of the merged view); a
recovering node rejoins by heartbeating its leader, whose next sweep
bumps the epoch and re-propagates.

Views are observational, not virtually synchronous: the scale tier
pairs them with rendezvous-hash placement
(:mod:`repro.core.placement`), which needs no agreed message stream —
any node holding the same view computes the same VIP allocation.
"""

from repro.sim.process import Process
from repro.stabilization import StabilizationConfig

#: Default UDP port for the segment membership plane.
SEGMENT_PORT = 4810


class SegmentConfig:  # repro: not-wire (local configuration, never dispatched)
    """Timing knobs for the segmented membership plane."""

    def __init__(
        self,
        segment_size=32,
        heartbeat_interval=0.5,
        member_timeout=1.6,
        beacon_interval=0.5,
        leader_timeout=1.6,
        digest_interval=0.5,
        digest_timeout=2.5,
        port=SEGMENT_PORT,
        stabilization=None,
    ):
        if int(segment_size) < 1:
            raise ValueError("segment_size must be >= 1, got {}".format(segment_size))
        if member_timeout <= heartbeat_interval:
            raise ValueError("member_timeout must exceed heartbeat_interval")
        if leader_timeout <= beacon_interval:
            raise ValueError("leader_timeout must exceed beacon_interval")
        if digest_timeout <= digest_interval:
            raise ValueError("digest_timeout must exceed digest_interval")
        self.segment_size = int(segment_size)
        self.heartbeat_interval = float(heartbeat_interval)
        self.member_timeout = float(member_timeout)
        self.beacon_interval = float(beacon_interval)
        self.leader_timeout = float(leader_timeout)
        self.digest_interval = float(digest_interval)
        self.digest_timeout = float(digest_timeout)
        self.port = int(port)
        # Self-stabilization: a leader periodically audits its own
        # digest entry against its live epoch/alive state and the
        # adopted view version, re-minting epochs past any regression.
        # interval 0 (default) disables the audit — historical behaviour.
        if stabilization is not None and not isinstance(stabilization, StabilizationConfig):
            raise TypeError("stabilization must be a StabilizationConfig or None")
        self.stabilization = stabilization or StabilizationConfig()


class Fleet:  # repro: not-wire (static roster shared by reference, never sent)
    """The static roster: node names, addresses, segment assignment."""

    def __init__(self, entries, segment_size):
        """``entries`` is the index-ordered list of (name, ip) pairs."""
        self.names = tuple(name for name, _ip in entries)
        self.ips = tuple(ip for _name, ip in entries)
        if len(set(self.names)) != len(self.names):
            raise ValueError("duplicate node names in fleet")
        self.segment_size = int(segment_size)
        self.index_of = {name: index for index, name in enumerate(self.names)}
        self.ip_of = {name: ip for name, ip in entries}
        self.n_segments = (len(self.names) + segment_size - 1) // segment_size

    def __len__(self):
        return len(self.names)

    def segment_of(self, name):
        """Segment id of a node name."""
        return self.index_of[name] // self.segment_size

    def segment_of_index(self, index):
        return index // self.segment_size

    def segment_members(self, segment):
        """Index-ordered tuple of node names in ``segment``."""
        start = segment * self.segment_size
        return self.names[start : start + self.segment_size]

    def initial_leader(self, segment):
        """The boot-time leader: the segment's lowest-index node."""
        return self.names[segment * self.segment_size]

    def segments(self):
        """All segment ids."""
        return tuple(range(self.n_segments))


class GlobalView:  # repro: not-wire (carried inside LeaderBeacon fields, not dispatched)
    """One merged fleet-wide liveness view.

    ``version`` is the sum of all segment epochs — strictly increasing
    under any segment change, so observers can adopt by simple
    version comparison. ``members`` is the sorted tuple of live node
    names.
    """

    __slots__ = ("version", "members")

    def __init__(self, version, members):
        self.version = version
        self.members = tuple(members)

    def __eq__(self, other):
        return (
            isinstance(other, GlobalView)
            and self.version == other.version
            and self.members == other.members
        )

    def __hash__(self):
        return hash((self.version, self.members))

    def __repr__(self):
        return "GlobalView(v{}, {} members)".format(self.version, len(self.members))


def merge_digests(digests):
    """Merge ``{segment: (epoch, alive_tuple)}`` into a :class:`GlobalView`.

    Pure and order-independent: the view is a function of the digest
    *set*, so any two nodes holding equal digests install identical
    views (the agreement property the test suite asserts). The merged
    member list contains exactly the union of the alive tuples — no
    phantom members — and the version is the epoch sum, which any
    digest update strictly increases (epochs are monotonic).
    """
    version = 0
    members = []
    for segment in sorted(digests):
        epoch, alive = digests[segment]
        version += epoch
        members.extend(alive)
    return GlobalView(version, tuple(sorted(members)))


# ----------------------------------------------------------------------
# wire messages (plain final classes; exact-type dispatch)


class SegHeartbeat:
    """Member → segment leader: "I am alive"."""

    __slots__ = ("sender", "segment")

    def __init__(self, sender, segment):
        self.sender = sender
        self.segment = segment


class LeaderBeacon:
    """Leader → segment members: liveness lease + current global view."""

    __slots__ = ("segment", "leader", "epoch", "alive", "view_version", "view_members")

    def __init__(self, segment, leader, epoch, alive, view_version, view_members):
        self.segment = segment
        self.leader = leader
        self.epoch = epoch
        self.alive = alive
        self.view_version = view_version
        self.view_members = view_members


class SegmentDigest:
    """Leader → peer leader: full gossip of the sender's digest map.

    ``records`` is a tuple of ``(segment, leader, epoch, alive)`` —
    one per segment, carrying the sender's believed leader so routing
    survives leadership changes the receiver has not observed.
    """

    __slots__ = ("sender", "records")

    def __init__(self, sender, records):
        self.sender = sender
        self.records = records


# ----------------------------------------------------------------------


class SegmentNode(Process):
    """One host's segmented-membership daemon (member and/or leader).

    Boot is optimistic: every node starts believing the whole static
    fleet is alive (view version 0), so a cleanly booting cluster
    installs full coverage without N view changes. Deaths are detected
    by the responsible leader's sweep and propagate as epoch bumps.
    """

    def __init__(self, host, lan, index, fleet, config=None, on_global_view=None):
        self.fleet = fleet
        self.index = index
        self.node_name = fleet.names[index]
        super().__init__(host.sim, "seg@{}".format(self.node_name))
        self.host = host
        self.lan = lan
        self.config = config or SegmentConfig()
        self.segment = fleet.segment_of_index(index)
        self.peers = fleet.segment_members(self.segment)
        self.on_global_view = on_global_view
        host.register_service(self)
        host.segment_node = self
        self._socket = host.open_udp(self.config.port, self._on_datagram)
        self.messages_sent = 0
        metrics = self.sim.metrics
        self._m_sent = metrics.counter("gcs.seg_messages_sent", node=self.node_name)
        self._m_views = metrics.counter("gcs.seg_views_adopted", node=self.node_name)

        # Member-side state.
        self._leader = fleet.initial_leader(self.segment)
        self._seg_alive = tuple(self.peers)
        self._seg_epoch = 0
        self._last_beacon = 0.0
        self._suspect_leaders = set()

        # Leader-side state (used only while leading).
        self.is_leader = False
        self._last_heard = {}
        self._digests = {
            segment: (0, fleet.segment_members(segment))
            for segment in fleet.segments()
        }
        self._digest_heard = {}
        self._peer_leaders = {
            segment: fleet.initial_leader(segment) for segment in fleet.segments()
        }

        self.global_view = merge_digests(self._digests)
        self.views_adopted = 0

        self._heartbeat_timer = self.periodic(
            self._send_heartbeat, self.config.heartbeat_interval, name="seg_heartbeat"
        )
        self._leader_watch_timer = self.periodic(
            self._check_leader, self.config.beacon_interval, name="seg_leader_watch"
        )
        self._sweep_timer = self.periodic(
            self._leader_sweep, self.config.heartbeat_interval, name="seg_sweep"
        )
        self._beacon_timer = self.periodic(
            self._send_beacons, self.config.beacon_interval, name="seg_beacon"
        )
        self._digest_timer = self.periodic(
            self._send_digests, self.config.digest_interval, name="seg_digest"
        )
        self._stabilize_timer = None
        if self.config.stabilization.enabled:
            self._stabilize_timer = self.periodic(
                self._stabilize_audit,
                self.config.stabilization.interval,
                name="seg_stabilize",
            )
        self.stabilize_repairs = 0
        self.started = False

    # ------------------------------------------------------------------
    # lifecycle

    def start(self):
        """Boot the node; the fleet's initial leaders assume duty at once."""
        if self.started:
            raise RuntimeError("segment node {} already started".format(self.node_name))
        self.started = True
        self._last_beacon = self.now
        jitter = self.rng("seg").uniform(0.0, self.config.heartbeat_interval)
        self._heartbeat_timer.start(first_delay=jitter)
        self._leader_watch_timer.start(first_delay=self.config.leader_timeout + jitter)
        if self.node_name == self.fleet.initial_leader(self.segment):
            self._assume_leadership(initial=True)
        if self._stabilize_timer is not None:
            self._stabilize_timer.start(first_delay=self.config.stabilization.interval + jitter)
        if self.on_global_view is not None:
            self.on_global_view(self.global_view)
        self.trace("segments", "start", segment=self.segment)

    def stop(self):
        if not self.alive:
            return
        super().stop()
        self._socket.close()

    # ------------------------------------------------------------------
    # transport

    def _unicast(self, peer_name, message):
        if not self.alive:
            return
        self.messages_sent += 1
        self._m_sent.inc()
        self.host.send_udp(
            message,
            self.fleet.ip_of[peer_name],
            self.config.port,
            src_port=self.config.port,
        )

    def _send_heartbeat(self):
        if self.is_leader:
            return
        self._unicast(self._leader, SegHeartbeat(self.node_name, self.segment))

    # ------------------------------------------------------------------
    # inbound dispatch

    def _on_datagram(self, message, src, dst):
        if not self.alive or not self.started:
            return
        kind = type(message)
        if kind is SegHeartbeat:
            self._on_heartbeat(message)
        elif kind is LeaderBeacon:
            self._on_beacon(message)
        elif kind is SegmentDigest:
            self._on_digest(message)

    def _on_heartbeat(self, message):
        if message.segment != self.segment:
            return
        if self.is_leader:
            self._last_heard[message.sender] = self.now
        elif message.sender == self._leader:
            # The node we defer to is heartbeating someone else — both
            # of us believe a lower-index node leads; nothing to do.
            pass

    def _on_beacon(self, message):
        if message.segment != self.segment:
            return
        sender_index = self.fleet.index_of[message.leader]
        if self.is_leader:
            if sender_index < self.index:
                # A lower-index member (recovered original leader, or a
                # rebooted predecessor) is leading again: abdicate.
                self._abdicate(message.leader)
            else:
                return
        self._leader = message.leader
        self._last_beacon = self.now
        self._seg_alive = message.alive
        self._seg_epoch = message.epoch
        self._suspect_leaders.discard(message.leader)
        if message.view_version > self.global_view.version:
            self._adopt_view(GlobalView(message.view_version, message.view_members))

    def _on_digest(self, message):
        if not self.is_leader:
            return
        sender_segment = self.fleet.segment_of(message.sender)
        if sender_segment != self.segment:
            # The sender speaks for its own segment: learn it as that
            # segment's leader and refresh the silence detector.
            self._peer_leaders[sender_segment] = message.sender
            self._digest_heard[sender_segment] = self.now
        changed = False
        minted = False
        for segment, leader, epoch, alive in message.records:
            if segment == self.segment:
                if epoch > self._seg_epoch:
                    # Epoch handoff: an abdicating predecessor (or a
                    # peer that outlived our crash) holds later epochs
                    # of our own segment. Fast-forward past them —
                    # otherwise the fleet would reject our records as
                    # stale.
                    self._seg_epoch = epoch + 1
                    merged = set(alive)
                    merged.add(self.node_name)
                    self._seg_alive = tuple(
                        sorted(merged, key=lambda name: self.fleet.index_of[name])
                    )
                    now = self.now
                    for name in self._seg_alive:
                        self._last_heard.setdefault(name, now)
                    minted = True
                elif epoch == self._seg_epoch and set(alive) != set(self._seg_alive):
                    # Same epoch, different story (a peer's silence
                    # bump raced our own bump). We are authoritative:
                    # mint a fresh epoch so our record dominates.
                    self._seg_epoch += 1
                    minted = True
                continue
            stored_epoch, _stored_alive = self._digests[segment]
            if epoch > stored_epoch:
                self._digests[segment] = (epoch, alive)
                self._peer_leaders[segment] = leader
                changed = True
        if minted:
            self._digests[self.segment] = (self._seg_epoch, self._seg_alive)
        if changed or minted:
            self._refresh_view()
        if minted:
            self._send_digests()
            self._send_beacons()

    # ------------------------------------------------------------------
    # member duties: leader liveness

    def _check_leader(self):
        if self.is_leader:
            return
        if self.now - self._last_beacon <= self.config.leader_timeout:
            return
        # The leader's lease expired. Every member of the segment holds
        # the same last beacon (same alive set, same suspects after the
        # same silent leases), so all compute the same successor.
        self._suspect_leaders.add(self._leader)
        candidates = [
            name
            for name in self._seg_alive
            if name not in self._suspect_leaders
        ]
        if not candidates:
            candidates = [self.node_name]
        successor = min(candidates, key=lambda name: self.fleet.index_of[name])
        self.trace(
            "segments", "leader_timeout", leader=self._leader, successor=successor
        )
        if successor == self.node_name:
            self._assume_leadership()
        else:
            self._leader = successor
            self._last_beacon = self.now  # grace for the successor's first beacon

    # ------------------------------------------------------------------
    # leader duties

    def _assume_leadership(self, initial=False):
        self.is_leader = True
        self._leader = self.node_name
        alive = [
            name
            for name in self._seg_alive
            if name == self.node_name or name not in self._suspect_leaders
        ]
        if self.node_name not in alive:
            alive.append(self.node_name)
        epoch = self._seg_epoch if initial else self._seg_epoch + 1
        self._seg_alive = tuple(sorted(alive, key=lambda name: self.fleet.index_of[name]))
        self._seg_epoch = epoch
        now = self.now
        self._last_heard = {name: now for name in self._seg_alive}
        self._digest_heard = {
            segment: now for segment in self.fleet.segments() if segment != self.segment
        }
        self._digests[self.segment] = (epoch, self._seg_alive)
        self._peer_leaders[self.segment] = self.node_name
        self._sweep_timer.start(first_delay=self.config.heartbeat_interval)
        self._beacon_timer.start(first_delay=0.0)
        self._digest_timer.start(first_delay=0.0)
        self.trace("segments", "lead", segment=self.segment, epoch=epoch)
        self._refresh_view()

    def _abdicate(self, to_leader):
        self.is_leader = False
        self._leader = to_leader
        self._sweep_timer.stop()
        self._beacon_timer.stop()
        self._digest_timer.stop()
        self.trace("segments", "abdicate", to=to_leader)
        # Hand our digest map to the successor so it can fast-forward
        # past the epochs we minted and keep our peer-leader routing.
        self._unicast(to_leader, self._gossip_message())
        self._peer_leaders[self.segment] = to_leader

    def _leader_sweep(self):
        """Recompute the segment's alive set from heartbeat freshness."""
        if not self.is_leader:
            return
        now = self.now
        horizon = self.config.member_timeout
        alive = tuple(
            name
            for name in self.peers
            if name == self.node_name
            or now - self._last_heard.get(name, -horizon) < horizon
        )
        changed = alive != self._seg_alive
        if changed:
            self._seg_epoch += 1
            self._seg_alive = alive
            self._digests[self.segment] = (self._seg_epoch, alive)
            self.trace(
                "segments", "epoch", epoch=self._seg_epoch, alive=len(alive)
            )
        # Whole-segment silence: a peer segment whose digests stopped
        # (leader dead with no survivor to take over) drops out of the
        # merged view via a locally owned epoch bump.
        for segment in self.fleet.segments():
            if segment == self.segment:
                continue
            heard = self._digest_heard.get(segment, now)
            epoch, seg_alive = self._digests[segment]
            if seg_alive and now - heard > self.config.digest_timeout:
                self._digests[segment] = (epoch + 1, ())
                self._digest_heard[segment] = now
                changed = True
                self.trace("segments", "segment_silent", segment=segment)
        if changed:
            self._refresh_view()
            self._send_digests()
            self._send_beacons()

    def _send_beacons(self):
        if not self.is_leader:
            return
        view = self.global_view
        beacon = LeaderBeacon(
            self.segment,
            self.node_name,
            self._seg_epoch,
            self._seg_alive,
            view.version,
            view.members,
        )
        for name in self.peers:
            if name != self.node_name:
                self._unicast(name, beacon)

    def _gossip_message(self):
        records = tuple(
            (segment, self._peer_leaders[segment]) + self._digests[segment]
            for segment in self.fleet.segments()
        )
        return SegmentDigest(self.node_name, records)

    def _send_digests(self):
        if not self.is_leader:
            return
        digest = self._gossip_message()
        targets = sorted(
            {
                self._peer_leaders[segment]
                for segment in self.fleet.segments()
                if segment != self.segment
            }
            - {self.node_name}
        )
        for target in targets:
            self._unicast(target, digest)

    # ------------------------------------------------------------------
    # self-stabilization (docs/FAULTS.md, "State corruption")

    def _stabilize_audit(self):
        """Leader-side local invariant audit against epoch corruption.

        Two invariants a leader can check with purely local state:

        * its own digest entry must equal its live ``(epoch, alive)``
          pair — corruption of either side desynchronises what the
          leader believes from what it gossips;
        * the merge of its digest map must not fall below the view
          version it has already adopted (epochs only grow, so a lower
          sum means the digest map was regressed).

        Both repair by re-minting the segment epoch *past* the
        regression — the same monotonic-mint rule `_on_digest` uses for
        epoch handoff — and re-gossiping, so the fleet converges on the
        repaired record. Member-side epoch regression needs no audit:
        the next beacon overwrites it.
        """
        if not self.alive or not self.started or not self.is_leader:
            return
        repaired = None
        epoch, alive = self._digests[self.segment]
        if (epoch, alive) != (self._seg_epoch, self._seg_alive):
            self._seg_epoch = max(epoch, self._seg_epoch) + 1
            self._digests[self.segment] = (self._seg_epoch, self._seg_alive)
            repaired = "digest_desync"
        merged = merge_digests(self._digests)
        if merged.version < self.global_view.version:
            deficit = self.global_view.version - merged.version
            self._seg_epoch += deficit + 1
            self._digests[self.segment] = (self._seg_epoch, self._seg_alive)
            repaired = "epoch_regression"
        if repaired is not None:
            self.stabilize_repairs += 1
            self.trace(
                "stabilize", "repair", invariant=repaired, epoch=self._seg_epoch
            )
            self._refresh_view()
            self._send_digests()
            self._send_beacons()

    def _refresh_view(self):
        view = merge_digests(self._digests)
        if view.version > self.global_view.version:
            self._adopt_view(view)

    def _adopt_view(self, view):
        self.global_view = view
        self.views_adopted += 1
        self._m_views.inc()
        self.trace(
            "segments", "view", version=view.version, members=len(view.members)
        )
        if self.on_global_view is not None:
            self.on_global_view(view)
        if self.is_leader:
            # Push the new view to members ahead of the periodic beacon
            # so remaps start within one LAN latency, not one interval.
            self._send_beacons()

    def __repr__(self):
        return "SegmentNode({}, seg={}, {})".format(
            self.node_name, self.segment, "leader" if self.is_leader else "member"
        )
