"""GCS timing configuration — the knobs of the paper's Table 1.

Two presets reproduce the two experimental setups of §6:

* :meth:`SpreadConfig.default` — fault detection 5 s, distributed
  heartbeat 2 s, discovery 7 s. Failure notification therefore takes
  between 10 s and 12 s (detection in [fd - hb, fd] plus discovery).
* :meth:`SpreadConfig.tuned` — 1 s / 0.4 s / 1.4 s, for a notification
  window of 2 s to 2.4 s.

The remaining parameters are protocol internals (resend intervals,
client IPC latency) that the paper folds into the "minor overhead of
Spread's group membership procedure".
"""

from repro.stabilization import StabilizationConfig


class SpreadConfig:
    """Timeouts and ports for a cluster of Spread-like daemons."""

    def __init__(
        self,
        fault_detection_timeout=5.0,
        heartbeat_timeout=2.0,
        discovery_timeout=7.0,
        join_interval=0.05,
        form_timeout=1.0,
        install_timeout=1.0,
        resubmit_interval=0.2,
        gap_nack_delay=0.05,
        client_ipc_latency=0.0001,
        port=4803,
        suspicion_misses=1,
        stabilization=None,
    ):
        if heartbeat_timeout >= fault_detection_timeout:
            raise ValueError(
                "heartbeat timeout ({}) must be below fault detection timeout ({})".format(
                    heartbeat_timeout, fault_detection_timeout
                )
            )
        if int(suspicion_misses) < 1:
            raise ValueError(
                "suspicion_misses must be >= 1, got {}".format(suspicion_misses)
            )
        self.fault_detection_timeout = float(fault_detection_timeout)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.discovery_timeout = float(discovery_timeout)
        self.join_interval = float(join_interval)
        self.form_timeout = float(form_timeout)
        self.install_timeout = float(install_timeout)
        self.resubmit_interval = float(resubmit_interval)
        self.gap_nack_delay = float(gap_nack_delay)
        self.client_ipc_latency = float(client_ipc_latency)
        self.port = int(port)
        # Gray-failure hardening: a peer is suspected only after this
        # many consecutive detection-timer expiries without traffic.
        # Each miss beyond the first extends the deadline by one
        # heartbeat interval, so the total suspicion latency is
        # fault_detection + (K - 1) * heartbeat. K = 1 is the paper's
        # single-miss detector (byte-identical to the historical code);
        # K >= 2 rides out burst loss and slowed-but-alive hosts at the
        # cost of a wider detection window.
        self.suspicion_misses = int(suspicion_misses)
        # Self-stabilization: periodic local invariant audit over the
        # ordering counters and the installed membership view, repairing
        # corrupted state locally (counter clamps) or escalating to a
        # GATHER. interval 0 — the default — disables the audit timer
        # entirely (byte-identical to the historical daemon).
        if stabilization is not None and not isinstance(stabilization, StabilizationConfig):
            raise TypeError("stabilization must be a StabilizationConfig or None")
        self.stabilization = stabilization or StabilizationConfig()

    @classmethod
    def default(cls):
        """Table 1, 'Default Spread' column: 5 / 2 / 7 seconds."""
        return cls(
            fault_detection_timeout=5.0, heartbeat_timeout=2.0, discovery_timeout=7.0
        )

    @classmethod
    def tuned(cls):
        """Table 1, 'Tuned Spread' column: 1 / 0.4 / 1.4 seconds."""
        return cls(
            fault_detection_timeout=1.0, heartbeat_timeout=0.4, discovery_timeout=1.4
        )

    def detection_window(self):
        """(min, max) delay from failure to start of reconfiguration.

        With K-miss suspicion (``suspicion_misses`` > 1) each extra miss
        adds one heartbeat interval to both bounds.
        """
        extension = (self.suspicion_misses - 1) * self.heartbeat_timeout
        return (
            self.fault_detection_timeout - self.heartbeat_timeout + extension,
            self.fault_detection_timeout + extension,
        )

    def notification_window(self):
        """(min, max) delay from failure to membership notification.

        This is the paper's derived 10–12 s (default) / 2–2.4 s (tuned)
        range: detection plus the discovery phase, ignoring the minor
        overhead of the membership exchange itself.
        """
        lo, hi = self.detection_window()
        return (lo + self.discovery_timeout, hi + self.discovery_timeout)

    def describe(self):
        """Dict of the three Table 1 timeouts, in seconds."""
        return {
            "fault_detection_timeout": self.fault_detection_timeout,
            "heartbeat_timeout": self.heartbeat_timeout,
            "discovery_timeout": self.discovery_timeout,
        }

    def __repr__(self):
        return "SpreadConfig(fd={}, hb={}, disc={})".format(
            self.fault_detection_timeout, self.heartbeat_timeout, self.discovery_timeout
        )
