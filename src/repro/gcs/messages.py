"""Wire messages between daemons, and the client-facing message types.

Daemon-to-daemon messages travel as UDP payloads over the simulated
LAN. Client-facing :class:`SpreadMessage` / :class:`GroupView` objects
are what a connected application (Wackamole) actually receives.
All messages are treated as immutable once sent.
"""


# ----------------------------------------------------------------------
# daemon wire messages


class Heartbeat:
    """Periodic liveness announcement (the 'distributed heartbeat').

    Carries the sender's view and highest known sequence number so
    receivers can detect a lost *tail* broadcast (a gap after the last
    message, invisible to ordinary gap detection) and NACK it.
    """

    __slots__ = ("sender", "view_id", "top_seq", "aru")

    def __init__(self, sender, view_id=None, top_seq=0, aru=0):
        self.sender = sender
        self.view_id = view_id
        self.top_seq = top_seq
        self.aru = aru

    def __repr__(self):
        return "Heartbeat({}, top={}, aru={})".format(self.sender, self.top_seq, self.aru)


class JoinMsg:
    """Gather-phase announcement: 'I am reconfiguring; here is who I see'."""

    __slots__ = ("sender", "alive")

    def __init__(self, sender, alive):
        self.sender = sender
        self.alive = frozenset(alive)

    def __repr__(self):
        return "JoinMsg({}, alive={})".format(self.sender, sorted(self.alive))


class FormMsg:
    """Representative's membership proposal."""

    __slots__ = ("rep", "view_id", "members")

    def __init__(self, rep, view_id, members):
        self.rep = rep
        self.view_id = view_id
        self.members = tuple(sorted(members))

    def __repr__(self):
        return "FormMsg({}, {})".format(self.view_id, list(self.members))


class AckMsg:
    """Member's acceptance of a proposal, carrying its recovery digest.

    The digest is what makes Virtual Synchrony work: the member's old
    view id, every ordered message it holds from that view, how far it
    has delivered, and its local clients' group memberships.
    """

    __slots__ = ("sender", "view_id", "digest")

    def __init__(self, sender, view_id, digest):
        self.sender = sender
        self.view_id = view_id
        self.digest = digest

    def __repr__(self):
        return "AckMsg({} for {})".format(self.sender, self.view_id)


class RecoveryDigest:  # repro: not-wire (payload inside AckMsg, never dispatched)
    """Per-member state shipped inside an AckMsg."""

    __slots__ = ("old_view_id", "messages", "delivered_aru", "local_groups")

    def __init__(self, old_view_id, messages, delivered_aru, local_groups):
        self.old_view_id = old_view_id
        self.messages = dict(messages)
        self.delivered_aru = delivered_aru
        self.local_groups = {group: tuple(members) for group, members in local_groups.items()}

    def __repr__(self):
        return "RecoveryDigest(old={}, msgs={}, aru={})".format(
            self.old_view_id, len(self.messages), self.delivered_aru
        )


class InstallMsg:
    """Representative's commit of the new view.

    ``recovery`` maps old view id -> {seq: OrderedMsg} union over the
    digests of members arriving from that old view; ``groups`` is the
    authoritative group map for the new view.
    """

    __slots__ = ("rep", "view_id", "members", "recovery", "groups")

    def __init__(self, rep, view_id, members, recovery, groups):
        self.rep = rep
        self.view_id = view_id
        self.members = tuple(sorted(members))
        self.recovery = recovery
        self.groups = groups

    def __repr__(self):
        return "InstallMsg({}, {})".format(self.view_id, list(self.members))


class LeaveNotice:
    """Voluntary daemon shutdown; triggers immediate reconfiguration."""

    __slots__ = ("sender",)

    def __init__(self, sender):
        self.sender = sender

    def __repr__(self):
        return "LeaveNotice({})".format(self.sender)


class AruMsg:
    """Receipt acknowledgement: 'I hold everything up to aru'.

    Broadcast whenever a member's contiguous-receipt point advances
    past a pending SAFE message, so stability (receipt at *all*
    members) can be established quickly.
    """

    __slots__ = ("sender", "view_id", "aru")

    def __init__(self, sender, view_id, aru):
        self.sender = sender
        self.view_id = view_id
        self.aru = aru

    def __repr__(self):
        return "AruMsg({}, aru={})".format(self.sender, self.aru)


class SubmitMsg:
    """A member's request that the sequencer order one payload."""

    __slots__ = ("sender", "view_id", "msg_id", "kind", "group", "payload", "service")

    def __init__(self, sender, view_id, msg_id, kind, group, payload, service="agreed"):
        self.sender = sender
        self.view_id = view_id
        self.msg_id = msg_id
        self.kind = kind
        self.group = group
        self.payload = payload
        self.service = service

    def __repr__(self):
        return "SubmitMsg({} #{} {} to {})".format(
            self.sender, self.msg_id, self.kind, self.group
        )


class OrderedMsg:
    """A sequenced broadcast: the unit of agreed delivery.

    ``kind`` distinguishes application data from lightweight group
    join/leave events, which travel in the same total order so that all
    daemons apply group changes identically. ``service`` selects the
    delivery guarantee: ``agreed`` (default) delivers in total order;
    ``safe`` additionally withholds delivery until every view member
    is known to have received the message (and, because delivery is in
    sequence order, everything ordered after it waits too).
    """

    __slots__ = (
        "view_id", "seq", "origin", "msg_id", "kind", "group", "payload", "service",
    )

    DATA = "data"
    JOIN_GROUP = "join_group"
    LEAVE_GROUP = "leave_group"

    AGREED = "agreed"
    SAFE = "safe"

    def __init__(self, view_id, seq, origin, msg_id, kind, group, payload,
                 service=AGREED):
        self.view_id = view_id
        self.seq = seq
        self.origin = origin
        self.msg_id = msg_id
        self.kind = kind
        self.group = group
        self.payload = payload
        self.service = service

    def __repr__(self):
        return "OrderedMsg({} seq={} {} from {})".format(
            self.view_id, self.seq, self.kind, self.origin
        )


class NackMsg:
    """Gap report: ask the sequencer to retransmit missing sequences."""

    __slots__ = ("sender", "view_id", "missing")

    def __init__(self, sender, view_id, missing):
        self.sender = sender
        self.view_id = view_id
        self.missing = tuple(missing)

    def __repr__(self):
        return "NackMsg({} missing {})".format(self.sender, list(self.missing))


# ----------------------------------------------------------------------
# client-facing types


class SpreadMessage:  # repro: not-wire (client-facing, delivered not dispatched)
    """A regular (agreed-ordered) group message delivered to a client."""

    __slots__ = ("group", "sender", "payload", "view_id")

    def __init__(self, group, sender, payload, view_id):
        self.group = group
        self.sender = sender
        self.payload = payload
        self.view_id = view_id

    def __repr__(self):
        return "SpreadMessage({} from {} in {})".format(self.group, self.sender, self.view_id)


class GroupView:  # repro: not-wire (client-facing, delivered not dispatched)
    """A group membership notification delivered to a client.

    ``members`` is the identically ordered list of member names
    ('client@daemon') that the Wackamole algorithm's deterministic
    procedures rely on. ``caused_by`` records what changed ('network',
    'join', 'leave', 'disconnect').
    """

    __slots__ = ("group", "view_id", "members", "caused_by")

    def __init__(self, group, view_id, members, caused_by):
        self.group = group
        self.view_id = view_id
        self.members = tuple(members)
        self.caused_by = caused_by

    def __repr__(self):
        return "GroupView({} {} members={} by {})".format(
            self.group, self.view_id, list(self.members), self.caused_by
        )
