"""View identities and membership views.

A :class:`ViewId` totally orders daemon memberships; Wackamole tags its
STATE messages with the view they were initiated in and discards
messages from other views (Algorithm 2, line 1). A :class:`DaemonView`
carries the identically ordered member list the correctness proof
relies on.
"""


class ViewId:
    """Totally ordered identifier of one installed membership."""

    __slots__ = ("counter", "rep")

    def __init__(self, counter, rep):
        self.counter = int(counter)
        self.rep = rep

    def key(self):
        """Sort key; counter dominates, representative id breaks ties."""
        return (self.counter, self.rep)

    def __eq__(self, other):
        # Inlined key comparison: equality runs on every received
        # heartbeat/ordered message, and building two tuples per call
        # shows up in campaign profiles.
        return (
            isinstance(other, ViewId)
            and self.counter == other.counter
            and self.rep == other.rep
        )

    def __lt__(self, other):
        return self.key() < other.key()

    def __le__(self, other):
        return self.key() <= other.key()

    def __hash__(self):
        return hash(("ViewId",) + self.key())

    def __repr__(self):
        return "ViewId({}, rep={})".format(self.counter, self.rep)


class DaemonView:
    """One installed daemon membership: id plus uniquely ordered members."""

    __slots__ = ("view_id", "members")

    def __init__(self, view_id, members):
        self.view_id = view_id
        self.members = tuple(sorted(members))

    @property
    def representative(self):
        """The deterministically chosen first member."""
        return self.members[0]

    def __contains__(self, daemon_id):
        return daemon_id in self.members

    def __eq__(self, other):
        return (
            isinstance(other, DaemonView)
            and self.view_id == other.view_id
            and self.members == other.members
        )

    def __hash__(self):
        return hash(("DaemonView", self.view_id, self.members))

    def __repr__(self):
        return "DaemonView({}, members={})".format(self.view_id, list(self.members))
