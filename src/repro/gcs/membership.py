"""The daemon membership protocol.

State machine (one instance per daemon):

* **OPERATIONAL** — a view is installed; agreed delivery runs; the
  failure detector watches every other member.
* **GATHER** — triggered by a suspicion, a foreign daemon's traffic, a
  peer's JOIN, or a voluntary leave. The daemon broadcasts JOIN
  messages and collects the set of daemons it can currently hear.
  The *discovery timeout* (Table 1) bounds this phase; it restarts
  whenever a new daemon is discovered, so the phase lasts one quiet
  discovery interval.
* **FORM_SENT** — the deterministic representative (lowest daemon id
  among those gathered) proposes the membership and collects ACKs,
  each carrying a recovery digest.
* **ACK_SENT** — a non-representative accepted a proposal and awaits
  the INSTALL.

On INSTALL, every member first delivers — in sequence order — the
union of old-view messages known by the members arriving from its own
old view (Virtual Synchrony), then installs the identically ordered
member list and returns to OPERATIONAL. Any timeout or surprise along
the way falls back to GATHER, which makes the protocol robust to the
cascading faults the paper's algorithm is designed around.
"""

from repro.gcs.messages import AckMsg, FormMsg, InstallMsg, JoinMsg
from repro.gcs.views import DaemonView, ViewId

OPERATIONAL = "operational"
GATHER = "gather"
FORM_SENT = "form_sent"
ACK_SENT = "ack_sent"


class MembershipEngine:
    """Runs the membership state machine for one daemon."""

    def __init__(self, daemon):
        self.daemon = daemon
        self.config = daemon.config
        self.state = OPERATIONAL
        self.view = DaemonView(ViewId(0, daemon.daemon_id), [daemon.daemon_id])
        self.highest_counter = 0
        self.alive = set()
        self._proposal = None
        self._acks = {}
        self._acked_view_id = None
        self.views_installed = 0
        self.gathers_started = 0
        metrics = daemon.sim.metrics
        self._m_views = metrics.counter("gcs.views_installed", node=daemon.daemon_id)
        self._m_gathers = metrics.counter("gcs.gathers_started", node=daemon.daemon_id)

        self._join_timer = daemon.periodic(
            self._broadcast_join, self.config.join_interval, name="join"
        )
        self._discovery_timer = daemon.timer(self._on_discovery_timeout, name="discovery")
        self._form_wait_timer = daemon.timer(self._on_form_wait_timeout, name="form_wait")
        self._ack_wait_timer = daemon.timer(self._on_ack_wait_timeout, name="ack_wait")
        self._install_wait_timer = daemon.timer(
            self._on_install_wait_timeout, name="install_wait"
        )

    # ------------------------------------------------------------------
    # lifecycle

    def start(self):
        """Install the boot-time singleton view, then look for peers."""
        self.daemon.install_initial_view(self.view)
        self.trigger_gather("startup")

    def shutdown(self):
        """Stop all protocol timers (daemon is going away)."""
        self._cancel_all_timers()

    # ------------------------------------------------------------------
    # entering GATHER

    def trigger_gather(self, reason):
        """(Re)start membership discovery."""
        if self.state == OPERATIONAL:
            self.daemon.on_leave_operational()
        self._cancel_all_timers()
        self.state = GATHER
        self.gathers_started += 1
        self._m_gathers.inc()
        self._proposal = None
        self._acks = {}
        self._acked_view_id = None
        self.alive = {self.daemon.daemon_id}
        self.daemon.trace("membership", "gather", reason=reason)
        self._join_timer.start(first_delay=0.0)
        self._discovery_timer.start(self.config.discovery_timeout)

    def _broadcast_join(self):
        self.daemon.broadcast(JoinMsg(self.daemon.daemon_id, self.alive))

    # ------------------------------------------------------------------
    # message handlers (wired up by the daemon's dispatcher)

    def on_join(self, message):
        """A peer is reconfiguring; join the gather and note who we hear."""
        sender = message.sender
        if sender == self.daemon.daemon_id:
            return
        if self.state == OPERATIONAL:
            self.trigger_gather("join from {}".format(sender))
        if sender not in self.alive:
            self.alive.add(sender)
            if self.state in (FORM_SENT, ACK_SENT):
                self._revert_to_gather("new daemon {} during agreement".format(sender))
            self._discovery_timer.start(self.config.discovery_timeout)

    def on_foreign_traffic(self, sender):
        """Heartbeat or data from a daemon outside the current view."""
        if self.state == OPERATIONAL and sender not in self.view:
            self.trigger_gather("foreign daemon {}".format(sender))

    def on_suspect(self, peer):
        """The failure detector gave up on a view member."""
        if self.state == OPERATIONAL:
            self.trigger_gather("suspected {}".format(peer))

    def on_leave_notice(self, message):
        """A peer shut down voluntarily; reconfigure without waiting."""
        if message.sender == self.daemon.daemon_id:
            return
        if self.state == OPERATIONAL and message.sender in self.view:
            self.trigger_gather("voluntary leave of {}".format(message.sender))

    def _revert_to_gather(self, reason):
        self.state = GATHER
        self._proposal = None
        self._acks = {}
        self._acked_view_id = None
        self._form_wait_timer.cancel()
        self._ack_wait_timer.cancel()
        self._install_wait_timer.cancel()
        if not self._join_timer.running:
            self._join_timer.start(first_delay=0.0)
        self.daemon.trace("membership", "revert_gather", reason=reason)

    # ------------------------------------------------------------------
    # discovery complete -> propose or await proposal

    def _on_discovery_timeout(self):
        if self.state != GATHER:
            return
        members = sorted(self.alive)
        self._join_timer.stop()
        view_id = ViewId(self.highest_counter + 1, members[0])
        if members[0] == self.daemon.daemon_id:
            proposal = FormMsg(self.daemon.daemon_id, view_id, members)
            self._proposal = proposal
            self._acks = {self.daemon.daemon_id: self.daemon.make_digest()}
            self._acked_view_id = view_id
            self.state = FORM_SENT
            self.daemon.trace("membership", "form", view=repr(view_id), members=members)
            self.daemon.broadcast(proposal)
            self._ack_wait_timer.start(self.config.form_timeout)
            self._maybe_complete()
        else:
            self._form_wait_timer.start(self.config.form_timeout)

    def _on_form_wait_timeout(self):
        self.trigger_gather("no FORM from expected representative")

    def _on_ack_wait_timeout(self):
        missing = sorted(set(self._proposal.members) - set(self._acks)) if self._proposal else []
        self.trigger_gather("ACKs missing from {}".format(missing))

    def _on_install_wait_timeout(self):
        self.trigger_gather("no INSTALL received")

    # ------------------------------------------------------------------
    # proposal handling

    def on_form(self, message):
        """A representative proposed a membership."""
        self.highest_counter = max(self.highest_counter, message.view_id.counter)
        if self.daemon.daemon_id not in message.members:
            if self.state == OPERATIONAL:
                self.trigger_gather("excluded from FORM by {}".format(message.rep))
            return
        if self.state == OPERATIONAL:
            # We missed the gather, but the representative still counts us in.
            self.daemon.on_leave_operational()
            self.alive = set(message.members)
        if self._acked_view_id is not None and not self._acked_view_id < message.view_id:
            return
        self._join_timer.stop()
        self._discovery_timer.cancel()
        self._form_wait_timer.cancel()
        self._ack_wait_timer.cancel()
        self._proposal = None
        self._acked_view_id = message.view_id
        self.state = ACK_SENT
        digest = self.daemon.make_digest()
        self.daemon.unicast(message.rep, AckMsg(self.daemon.daemon_id, message.view_id, digest))
        self._install_wait_timer.start(self.config.install_timeout)

    def on_ack(self, message):
        """Collect a member's acceptance (representative only)."""
        if self.state != FORM_SENT or self._proposal is None:
            return
        if message.view_id != self._proposal.view_id:
            return
        if message.sender not in self._proposal.members:
            return
        self._acks[message.sender] = message.digest
        self._maybe_complete()

    def _maybe_complete(self):
        if self._proposal is None or set(self._acks) < set(self._proposal.members):
            return
        recovery = {}
        groups = {}
        # Sorted so the recovery/group union is built in member order,
        # not ACK-arrival order (the insertion order escapes into the
        # InstallMsg every member applies).
        for sender in sorted(self._acks):
            digest = self._acks[sender]
            bucket = recovery.setdefault(digest.old_view_id, {})
            bucket.update(digest.messages)
            for group, members in digest.local_groups.items():
                groups.setdefault(group, set()).update(members)
        install = InstallMsg(
            self.daemon.daemon_id,
            self._proposal.view_id,
            self._proposal.members,
            recovery,
            {group: tuple(sorted(members)) for group, members in groups.items()},
        )
        self._ack_wait_timer.cancel()
        self.daemon.broadcast(install)
        self._apply_install(install)

    # ------------------------------------------------------------------
    # installation

    def on_install(self, message):
        """The representative committed the new view."""
        self.highest_counter = max(self.highest_counter, message.view_id.counter)
        if self.daemon.daemon_id not in message.members:
            if self.state == OPERATIONAL:
                self.trigger_gather("excluded from INSTALL by {}".format(message.rep))
            return
        if not self.view.view_id < message.view_id:
            return
        if self._acked_view_id != message.view_id:
            # Our digest is not part of this view; rejoin cleanly instead.
            self.trigger_gather("INSTALL {} without matching ACK".format(message.view_id))
            return
        self._apply_install(message)

    def _apply_install(self, install):
        self._cancel_all_timers()
        old_view = self.view
        self.view = DaemonView(install.view_id, install.members)
        self.highest_counter = max(self.highest_counter, install.view_id.counter)
        self.state = OPERATIONAL
        self._proposal = None
        self._acks = {}
        self._acked_view_id = None
        self.alive = set()
        self.views_installed += 1
        self._m_views.inc()
        self.daemon.trace(
            "membership",
            "install",
            view=repr(install.view_id),
            members=list(install.members),
        )
        self.daemon.apply_install(install, old_view)

    # ------------------------------------------------------------------
    # self-stabilization (docs/FAULTS.md, "State corruption")

    def stabilize_audit(self):
        """Local sanity audit of the installed view and the counter.

        ``highest_counter`` must never fall below the installed view's
        counter (a regression would let a future gather mint an old
        ViewId that every peer rejects) — repaired by clamping. In
        OPERATIONAL, the view must contain this daemon and must agree
        with the failure detector's watch set: a phantom member is
        watched by nobody (no JOIN ever armed a timer for it) and a
        dropped member is watched without being in the view, so any
        disagreement means the view list was corrupted. That cannot be
        repaired locally — the true membership is a distributed fact —
        so it is returned as an escalation reason; the caller resolves
        it through :meth:`trigger_gather`, the protocol's universal
        recovery path.

        Returns ``(repairs, escalate_reason)`` where ``repairs`` is a
        list of ``(invariant, was, now)`` triples already applied.
        """
        repairs = []
        floor = self.view.view_id.counter
        if self.highest_counter < floor:
            repairs.append(("highest_counter", self.highest_counter, floor))
            self.highest_counter = floor
        escalate = None
        if self.state == OPERATIONAL:
            members = set(self.view.members)
            if self.daemon.daemon_id not in members:
                escalate = "self missing from installed view"
            else:
                expected = members - {self.daemon.daemon_id}
                if expected != set(self.daemon.fd.watched):
                    escalate = "view/detector disagreement"
        return repairs, escalate

    # ------------------------------------------------------------------

    def _cancel_all_timers(self):
        self._join_timer.stop()
        self._discovery_timer.cancel()
        self._form_wait_timer.cancel()
        self._ack_wait_timer.cancel()
        self._install_wait_timer.cancel()
