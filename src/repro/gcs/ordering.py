"""Agreed (totally ordered) delivery within one installed view.

The representative of the view doubles as sequencer: members unicast
submissions to it, it assigns consecutive sequence numbers and
broadcasts. Receivers deliver strictly in sequence, NACKing gaps. The
full per-view message log is retained so the membership protocol can
ship it in recovery digests — that log is what makes Virtual Synchrony
across view changes possible.
"""

from repro.gcs.messages import AruMsg, NackMsg, OrderedMsg, SubmitMsg
from repro.sim.timers import Timer


class PendingSubmission:
    """A locally originated message not yet seen back in the total order."""

    __slots__ = ("msg_id", "kind", "group", "payload", "service")

    def __init__(self, msg_id, kind, group, payload, service=OrderedMsg.AGREED):
        self.msg_id = msg_id
        self.kind = kind
        self.group = group
        self.payload = payload
        self.service = service


class ViewOrderer:
    """Sequencing, gap repair, and in-order delivery for one view."""

    def __init__(self, daemon, view):
        self._daemon = daemon
        self.view_id = view.view_id
        self.members = view.members
        self.sequencer = view.members[0]
        self.log = {}
        self.delivered_aru = 0
        self.advertised_top = 0
        self.frozen = False
        self._next_assign = 1
        self._seen_submits = set()
        self._pending = {}
        # SAFE-delivery bookkeeping: contiguous receipt point per member.
        self.recv_aru = 0
        self._member_arus = {member: 0 for member in view.members}
        self._announced_aru = 0
        self._resubmit_timer = Timer(
            daemon.sim.scheduler, self._resubmit_pending, name="resubmit"
        )
        self._nack_timer = Timer(daemon.sim.scheduler, self._send_nack, name="nack")

    @property
    def is_sequencer(self):
        """True when this daemon orders messages for the view."""
        return self._daemon.daemon_id == self.sequencer

    # ------------------------------------------------------------------
    # sending

    def submit(self, kind, group, payload, msg_id=None, service=OrderedMsg.AGREED):
        """Originate one message into the total order."""
        if msg_id is None:
            msg_id = self._daemon.next_msg_id()
        if self.frozen:
            self._pending[msg_id] = PendingSubmission(msg_id, kind, group, payload, service)
            return msg_id
        if self.is_sequencer:
            self._order(self._daemon.daemon_id, msg_id, kind, group, payload, service)
        else:
            self._pending[msg_id] = PendingSubmission(msg_id, kind, group, payload, service)
            self._unicast_submit(msg_id, kind, group, payload, service)
            if not self._resubmit_timer.armed:
                self._resubmit_timer.start(self._daemon.config.resubmit_interval)
        return msg_id

    def _unicast_submit(self, msg_id, kind, group, payload, service):
        message = SubmitMsg(
            self._daemon.daemon_id, self.view_id, msg_id, kind, group, payload, service
        )
        self._daemon.unicast(self.sequencer, message)

    def _resubmit_pending(self):
        if self.frozen or not self._daemon.alive or not self._pending:
            return
        for msg_id in sorted(self._pending):
            pending = self._pending[msg_id]
            self._unicast_submit(
                pending.msg_id, pending.kind, pending.group, pending.payload,
                pending.service,
            )
        self._resubmit_timer.start(self._daemon.config.resubmit_interval)

    # ------------------------------------------------------------------
    # sequencer side

    def on_submit(self, message):
        """Order a member's submission (idempotent under retries)."""
        if self.frozen or not self.is_sequencer or message.view_id != self.view_id:
            return
        key = (message.sender, message.msg_id)
        if key in self._seen_submits:
            return
        self._seen_submits.add(key)
        self._order(
            message.sender,
            message.msg_id,
            message.kind,
            message.group,
            message.payload,
            getattr(message, "service", OrderedMsg.AGREED),
        )

    def _order(self, origin, msg_id, kind, group, payload, service=OrderedMsg.AGREED):
        seq = self._next_assign
        # Self-stabilization guard: an uncorrupted sequencer never holds
        # its next assignment in the log, so this loop is a no-op in
        # every reachable state; after counter corruption it prevents a
        # silent overwrite of an already-broadcast sequence.
        while seq in self.log:
            seq += 1
        self._next_assign = seq + 1
        ordered = OrderedMsg(
            self.view_id, seq, origin, msg_id, kind, group, payload, service
        )
        self.log[seq] = ordered
        self._advance_recv_aru()
        self._daemon.broadcast(ordered)
        self._deliver_ready()

    def on_nack(self, message):
        """Retransmit sequences a member reports missing."""
        if not self.is_sequencer or message.view_id != self.view_id:
            return
        for seq in message.missing:
            ordered = self.log.get(seq)
            if ordered is not None:
                self._daemon.unicast(message.sender, ordered)

    # ------------------------------------------------------------------
    # receiver side

    def on_ordered(self, message):
        """Accept one sequenced broadcast for this view."""
        if self.frozen or message.view_id != self.view_id:
            return
        if message.seq in self.log:
            return
        self.log[message.seq] = message
        if message.origin == self._daemon.daemon_id:
            self._pending.pop(message.msg_id, None)
        self._advance_recv_aru()
        self._deliver_ready()
        if self._has_gap() and not self._nack_timer.armed:
            self._nack_timer.start(self._daemon.config.gap_nack_delay)

    def top_seq(self):
        """Highest sequence number known in this view."""
        highest = max(self.log) if self.log else 0
        return max(highest, self.delivered_aru, self.advertised_top)

    def on_top_seq(self, view_id, top_seq):
        """A peer advertised its top sequence (tail-loss detection)."""
        if self.frozen or view_id != self.view_id:
            return
        if top_seq > self.advertised_top:
            self.advertised_top = top_seq
        if self._has_gap() and not self._nack_timer.armed:
            self._nack_timer.start(self._daemon.config.gap_nack_delay)

    def _deliver_ready(self):
        while not self.frozen and (self.delivered_aru + 1) in self.log:
            head = self.log[self.delivered_aru + 1]
            if head.service == OrderedMsg.SAFE and not self._stable(head.seq):
                # Not yet received everywhere: SAFE delivery (and hence
                # everything ordered after it) waits for stability.
                break
            self.delivered_aru += 1
            self._daemon.apply_ordered(head)

    # ------------------------------------------------------------------
    # SAFE delivery: receipt tracking and stability

    def _advance_recv_aru(self):
        while (self.recv_aru + 1) in self.log:
            self.recv_aru += 1
        self._member_arus[self._daemon.daemon_id] = max(
            self._member_arus.get(self._daemon.daemon_id, 0), self.recv_aru
        )
        if self._safe_pending() and self.recv_aru > self._announced_aru:
            self._announced_aru = self.recv_aru
            self._daemon.broadcast(
                AruMsg(self._daemon.daemon_id, self.view_id, self.recv_aru)
            )

    def _safe_pending(self):
        for seq in range(self.delivered_aru + 1, self.recv_aru + 1):
            message = self.log.get(seq)
            if message is not None and message.service == OrderedMsg.SAFE:
                return True
        return False

    def _stable(self, seq):
        return all(aru >= seq for aru in self._member_arus.values())

    def on_aru(self, view_id, member, aru):
        """A peer acknowledged contiguous receipt up to ``aru``."""
        if self.frozen or view_id != self.view_id or member not in self._member_arus:
            return
        if aru > self._member_arus[member]:
            self._member_arus[member] = aru
            self._deliver_ready()

    def _has_gap(self):
        return self.top_seq() > self.delivered_aru

    def _send_nack(self):
        if self.frozen or not self._daemon.alive or not self._has_gap():
            return
        missing = [
            seq
            for seq in range(self.delivered_aru + 1, self.top_seq() + 1)
            if seq not in self.log
        ]
        if missing:
            self._daemon.unicast(
                self.sequencer, NackMsg(self._daemon.daemon_id, self.view_id, missing)
            )
        self._nack_timer.start(self._daemon.config.gap_nack_delay)

    # ------------------------------------------------------------------
    # self-stabilization (docs/FAULTS.md, "State corruption")

    def stabilize_audit(self):
        """Re-derive the receipt/assignment counters from the log.

        The log is the authoritative record: ``recv_aru`` must equal its
        contiguous prefix, the sequencer's next assignment must sit past
        its top, and the delivery point can never be negative. Each of
        those is repaired locally (the counters are pure derivations).
        A delivery point *ahead* of the contiguous prefix cannot be
        repaired locally — rolling it back would redeliver — so it is
        returned as an escalation reason for the daemon to resolve via a
        membership GATHER (the install's recovery digests rebuild the
        delivery state).

        Returns ``(repairs, escalate_reason)`` where ``repairs`` is a
        list of ``(invariant, was, now)`` triples already applied.
        """
        repairs = []
        if self.frozen:
            return repairs, None
        contiguous = 0
        while (contiguous + 1) in self.log:
            contiguous += 1
        if self.delivered_aru < 0:
            repairs.append(("delivered_aru", self.delivered_aru, 0))
            self.delivered_aru = 0
        if self.recv_aru != contiguous:
            repairs.append(("recv_aru", self.recv_aru, contiguous))
            self.recv_aru = contiguous
            self._member_arus[self._daemon.daemon_id] = contiguous
            if self._announced_aru > contiguous:
                self._announced_aru = contiguous
        if self.is_sequencer and self.log:
            top = max(self.log)
            if self._next_assign <= top:
                repairs.append(("next_assign", self._next_assign, top + 1))
                self._next_assign = top + 1
        escalate = None
        if self.delivered_aru > contiguous:
            escalate = "delivered_aru {} ahead of contiguous log {}".format(
                self.delivered_aru, contiguous
            )
        elif repairs:
            # Repaired counters may have been masking an unserviced gap.
            self._deliver_ready()
            if self._has_gap() and not self._nack_timer.armed:
                self._nack_timer.start(self._daemon.config.gap_nack_delay)
        return repairs, escalate

    # ------------------------------------------------------------------
    # view-change support

    def freeze(self):
        """Stop delivering and sending; the view is being torn down."""
        self.frozen = True
        self._resubmit_timer.cancel()
        self._nack_timer.cancel()

    def pending_submissions(self):
        """Messages originated here that never appeared in the order."""
        return [self._pending[msg_id] for msg_id in sorted(self._pending)]

    def mark_recovered(self, msg_id):
        """Drop a pending submission that surfaced during recovery."""
        self._pending.pop(msg_id, None)

    def absorb_recovered(self, seq):
        """Advance the delivery point past a recovered message.

        During installation the daemon replays the members' recovery
        union in sequence order; the orderer — not the caller — owns
        ``delivered_aru``, so it advances its own counter and reports
        whether ``seq`` was new (True: the caller should apply the
        message) or already delivered in this view (False: skip).
        """
        if seq <= self.delivered_aru:
            return False
        self.delivered_aru = seq
        return True
