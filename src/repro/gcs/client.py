"""Client sessions: the API an application sees.

Mirrors the Spread client library: connect to the local daemon, join
named groups, multicast with agreed delivery, and receive both regular
messages and group membership views through callbacks. Wackamole is a
client of this API and nothing more — it never touches daemon
internals, exactly as in the paper's architecture (Figure 1).
"""


class SpreadConnectionError(Exception):
    """Raised when connecting to (or using) a dead daemon session."""


class SpreadClient:
    """One application connection to a local Spread-like daemon.

    Callbacks (assign plain callables):

    * ``on_message(SpreadMessage)`` — an agreed-ordered group message;
    * ``on_group_view(GroupView)`` — a membership notification;
    * ``on_disconnect()`` — the daemon died or kicked the session.
    """

    def __init__(self, daemon, name):
        self.daemon = daemon
        self.name = name
        self.private_name = "{}@{}".format(name, daemon.daemon_id)
        self.connected = True
        self.on_message = None
        self.on_group_view = None
        self.on_disconnect = None
        self.messages_received = 0
        self.views_received = 0

    # ------------------------------------------------------------------
    # operations

    def join(self, group):
        """Join a process group; a membership view will follow."""
        self._require_connected()
        self.daemon.client_join(self, group)

    def leave(self, group):
        """Gracefully leave a group (lightweight — no daemon reconfiguration)."""
        self._require_connected()
        self.daemon.client_leave(self, group, cause="leave")

    def multicast(self, group, payload, service="agreed"):
        """Send ``payload`` to ``group``.

        ``service`` selects the delivery guarantee: ``"agreed"``
        (default, totally ordered) or ``"safe"`` (additionally
        withheld until every view member holds the message).
        """
        self._require_connected()
        if service not in ("agreed", "safe"):
            raise ValueError("unknown service level {!r}".format(service))
        self.daemon.client_multicast(self, group, payload, service=service)

    def disconnect(self):
        """Gracefully close the session, leaving all groups."""
        if self.connected:
            self.daemon.client_disconnected(self, cause="leave")

    def kill(self):
        """Abrupt application death; the daemon notices the broken session."""
        if self.connected:
            self.daemon.client_disconnected(self, cause="disconnect")

    # ------------------------------------------------------------------
    # delivery (called by the daemon)

    def _deliver_message(self, message):
        if not self.connected:
            return
        self.messages_received += 1
        if self.on_message is not None:
            self.on_message(message)

    def _deliver_group_view(self, view):
        if not self.connected:
            return
        self.views_received += 1
        if self.on_group_view is not None:
            self.on_group_view(view)

    def _handle_disconnect(self):
        if not self.connected:
            return
        self.connected = False
        if self.on_disconnect is not None:
            self.on_disconnect()

    def _require_connected(self):
        if not self.connected:
            raise SpreadConnectionError(
                "client {} is not connected".format(self.private_name)
            )

    def __repr__(self):
        return "SpreadClient({}, {})".format(
            self.private_name, "connected" if self.connected else "disconnected"
        )
