"""Heartbeat-driven failure detection.

Implements the timing model behind Table 1: every daemon broadcasts a
heartbeat each ``heartbeat_timeout``; a peer is suspected when nothing
has been heard from it for ``fault_detection_timeout``. Because the
failure can occur anywhere inside a heartbeat interval, the time from
failure to suspicion falls in
``[fault_detection - heartbeat, fault_detection]`` — the paper's
detection window.
"""

from repro.sim.timers import Timer


class FailureDetector:
    """Per-peer suspicion timers for the members of the current view."""

    def __init__(self, daemon, on_suspect):
        self._daemon = daemon
        self._on_suspect = on_suspect
        self._timers = {}
        self.suspicions = 0

    @property
    def watched(self):
        """The peers currently being monitored."""
        return frozenset(self._timers)

    def watch(self, peers):
        """Monitor exactly ``peers``; timers start fresh from now."""
        self.stop()
        timeout = self._daemon.config.fault_detection_timeout
        for peer in peers:
            if peer == self._daemon.daemon_id:
                continue
            timer = Timer(
                self._daemon.sim.scheduler,
                self._make_suspect(peer),
                name="fd:{}".format(peer),
            )
            timer.start(timeout)
            self._timers[peer] = timer

    def heard_from(self, peer):
        """Any traffic from a watched peer refreshes its timer."""
        timer = self._timers.get(peer)
        if timer is not None:
            timer.start(self._daemon.config.fault_detection_timeout)

    def stop(self):
        """Cancel all suspicion timers (during reconfiguration)."""
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()

    def _make_suspect(self, peer):
        def suspect():
            self.suspicions += 1
            self._timers.pop(peer, None)
            self._on_suspect(peer)

        return suspect
