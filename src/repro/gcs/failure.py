"""Heartbeat-driven failure detection.

Implements the timing model behind Table 1: every daemon broadcasts a
heartbeat each ``heartbeat_timeout``; a peer is suspected when nothing
has been heard from it for ``fault_detection_timeout``. Because the
failure can occur anywhere inside a heartbeat interval, the time from
failure to suspicion falls in
``[fault_detection - heartbeat, fault_detection]`` — the paper's
detection window.

Gray-failure hardening (``suspicion_misses`` = K > 1): the first timer
expiry is a *miss*, not a suspicion. Each miss extends the deadline by
one heartbeat interval; only K consecutive expiries with no traffic in
between raise the suspicion, so a burst-lossy link or a slowed host
that still gets the occasional heartbeat through never flaps the
membership. Total suspicion latency becomes
``fault_detection + (K - 1) * heartbeat``. K = 1 reproduces the
historical single-miss detector exactly — same timers, same firing
times.

Lifecycle contract: :meth:`heard_from` is a safe no-op for a peer that
is not watched — including after :meth:`stop` — and never creates or
resurrects a timer. Only :meth:`watch` arms timers.
"""

from repro.sim.timers import Timer


class FailureDetector:
    """Per-peer suspicion timers for the members of the current view."""

    def __init__(self, daemon, on_suspect):
        self._daemon = daemon
        self._on_suspect = on_suspect
        self._timers = {}
        self._misses = {}
        self.suspicions = 0
        self.misses_ridden_out = 0

    @property
    def watched(self):
        """The peers currently being monitored."""
        return frozenset(self._timers)

    def watch(self, peers):
        """Monitor exactly ``peers``; timers start fresh from now."""
        self.stop()
        timeout = self._daemon.config.fault_detection_timeout
        for peer in peers:
            if peer == self._daemon.daemon_id:
                continue
            timer = Timer(
                self._daemon.sim.scheduler,
                self._make_suspect(peer),
                name="fd:{}".format(peer),
            )
            timer.start(timeout)
            self._timers[peer] = timer

    def heard_from(self, peer):
        """Any traffic from a watched peer refreshes its timer.

        For an unwatched peer (never watched, already suspected, or
        after :meth:`stop`) this does nothing — in particular it must
        not re-create a timer that suspicion or reconfiguration tore
        down, which would leave an orphan firing into a stale view.
        """
        timer = self._timers.get(peer)
        if timer is None:
            return
        if self._misses.pop(peer, None) is not None:
            self.misses_ridden_out += 1
        timer.start(self._daemon.config.fault_detection_timeout)

    def stop(self):
        """Cancel all suspicion timers (during reconfiguration)."""
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        self._misses.clear()

    def _make_suspect(self, peer):
        def suspect():
            misses = self._misses.get(peer, 0) + 1
            if misses < self._daemon.config.suspicion_misses:
                # Grace miss: extend the deadline one heartbeat and keep
                # listening — any traffic in that window clears the count.
                self._misses[peer] = misses
                timer = self._timers.get(peer)
                if timer is not None:
                    timer.start(self._daemon.config.heartbeat_timeout)
                return
            self.suspicions += 1
            self._timers.pop(peer, None)
            self._misses.pop(peer, None)
            self._on_suspect(peer)

        return suspect
