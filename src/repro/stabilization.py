"""Self-stabilization knobs (shared by core, gcs, and segments).

"Practically-Self-Stabilizing Virtual Synchrony" (Dolev et al.) argues
that a membership/ordering stack should converge from *any* reachable
state, not just from the clean crash/partition faults the paper's
experiments induce. The repo's corruption repertoire
(:mod:`repro.net.fault`) perturbs protocol state directly — allocation
tables vs. NIC bindings, membership views, ordering counters, segment
epochs — and each protocol layer carries a periodic *local invariant
audit* that detects out-of-invariant state and repairs it through the
existing re-announcement and membership paths.

One :class:`StabilizationConfig` instance rides on each layer's config
(:class:`repro.core.config.WackamoleConfig`,
:class:`repro.gcs.config.SpreadConfig`,
:class:`repro.gcs.segments.SegmentConfig`). The default —
``interval=0`` — disables the audit entirely, reproducing historical
behaviour byte-for-byte; the check harness switches it on in
``--corrupt`` campaigns.
"""


class StabilizationConfig:
    """Periodic local-invariant audit knobs for one protocol layer.

    * ``interval`` — seconds between audits; 0 (the default) disables
      the audit timer entirely (historical behaviour).
    * ``escalate`` — whether an audit finding that cannot be repaired
      locally (delivery skipped past the log, view/detector
      disagreement) may escalate into the layer's heavyweight recovery
      path (a membership GATHER). Local counter clamps and binding
      repairs are always applied when the audit runs.
    """

    __slots__ = ("interval", "escalate")

    def __init__(self, interval=0.0, escalate=True):
        if float(interval) < 0:
            raise ValueError("interval must be >= 0, got {}".format(interval))
        self.interval = float(interval)
        self.escalate = bool(escalate)

    @property
    def enabled(self):
        """True when the periodic audit should run."""
        return self.interval > 0

    def __repr__(self):
        return "StabilizationConfig(interval={}, escalate={})".format(
            self.interval, self.escalate
        )
