"""The flow engine: batched, tick-driven aggregate traffic accounting.

One :class:`FlowEngine` advances every attached
:class:`~repro.flow.pool.FlowPool` on a coarse periodic tick. Per tick
the work is O(pools + distinct VIPs), never O(users) — a million
simulated clients cost exactly as much as their pool count — which is
what lets the flow plane coexist with the exact per-packet prober at
10^5–10^7 users without melting the event loop.

The per-tick inner loop (demand accrual, carry propagation, goodput
scaling) runs over parallel arrays and has two interchangeable
backends: a numpy-vectorized one and a pure-python fallback. Both
perform the *same float64 operations in the same element order*, so a
run's request totals — and therefore its fingerprints, metrics and
trace — are byte-identical whichever backend executed it (the
determinism suite asserts exactly that). All tick state hangs off the
engine instance, and the only randomness (optional per-tick demand
jitter) draws from the engine's own named stream, so two engines in
two Simulations never share state or couple their draw sequences.
"""

import math

from repro.sim.process import Process

try:
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised via use_numpy=False
    _numpy = None


class FlowEngine(Process):
    """Advances client pools in batches on scheduler ticks."""

    def __init__(self, sim, resolver=None, tick=0.05, name="clients",
                 jitter=0.0, use_numpy=None):
        super().__init__(sim, "flow@{}".format(name))
        if tick <= 0.0:
            raise ValueError("tick must be positive, got {}".format(tick))
        if use_numpy is None:
            use_numpy = _numpy is not None
        if use_numpy and _numpy is None:
            raise RuntimeError("use_numpy=True but numpy is not importable")
        self.resolver = resolver
        self.tick = float(tick)
        self.jitter = float(jitter)
        self.use_numpy = bool(use_numpy)
        self.pools = []
        self.ticks = 0
        self.requests_offered = 0
        self.requests_served = 0
        self.requests_lost = 0
        self.lost_by_reason = {}
        self._jitter_rng = None
        self._compiled = False
        self._timer = self.periodic(self._on_tick, self.tick, name="tick")
        metrics = sim.metrics
        self._m_ticks = metrics.counter("flow.ticks", node=self.name)
        self._m_offered = metrics.counter("flow.requests_offered", node=self.name)
        self._m_served = metrics.counter("flow.requests_served", node=self.name)
        self._m_lost = {}

    # ------------------------------------------------------------------
    # pool management

    def add_pool(self, pool):
        """Attach a pool; takes effect from the next tick."""
        if pool.resolver is None and self.resolver is None:
            raise ValueError("pool {} has no resolver and the engine has no default".format(pool.name))
        self.pools.append(pool)
        self._compiled = False
        return pool

    def total_users(self):
        """Sum of users across attached pools."""
        return sum(pool.users for pool in self.pools)

    def start(self):
        """Begin ticking every ``tick`` simulated seconds."""
        self.trace(
            "flow",
            "start",
            pools=len(self.pools),
            users=self.total_users(),
            tick=self.tick,
            backend="numpy" if self.use_numpy else "python",
        )
        self._timer.start(first_delay=self.tick)

    def stop_flow(self):
        """Stop ticking (totals and carries keep their values)."""
        self._timer.stop()

    # ------------------------------------------------------------------
    # compiled per-pool arrays

    def _compile(self):
        """(Re)build the parallel arrays and resolution groups."""
        self._flush_carry()
        n = len(self.pools)
        demand = [pool.users * pool.rate for pool in self.pools]
        carry = [pool.carry for pool in self.pools]
        # Resolution groups: one resolver.resolve call per distinct
        # (resolver, vip) pair per tick, shared by every pool aimed at it.
        self._resolvers = []
        self._group_keys = []
        group_index = {}
        pool_group = []
        for pool in self.pools:
            resolver = pool.resolver if pool.resolver is not None else self.resolver
            key = (id(resolver), pool.vip)
            index = group_index.get(key)
            if index is None:
                index = len(self._group_keys)
                group_index[key] = index
                self._group_keys.append((resolver, pool.vip))
                if resolver not in self._resolvers:
                    self._resolvers.append(resolver)
            pool_group.append(index)
        self._pool_group = pool_group
        if self.use_numpy:
            self._demand = _numpy.array(demand, dtype=_numpy.float64)
            self._carry = _numpy.array(carry, dtype=_numpy.float64)
            self._c_offered = _numpy.zeros(n, dtype=_numpy.int64)
            self._c_served = _numpy.zeros(n, dtype=_numpy.int64)
        else:
            self._demand = demand
            self._carry = list(carry)
            self._c_offered = [0] * n
            self._c_served = [0] * n
        self._base_offered = [pool.offered for pool in self.pools]
        self._base_served = [pool.served for pool in self.pools]
        self._compiled = True

    def _flush_carry(self):
        """Write array state back into the pool objects."""
        if not self._compiled:
            return
        for index, pool in enumerate(self.pools):
            pool.carry = float(self._carry[index])
            pool.offered = self._base_offered[index] + int(self._c_offered[index])
            pool.served = self._base_served[index] + int(self._c_served[index])
            pool.lost = pool.offered - pool.served

    # ------------------------------------------------------------------
    # the tick

    def _on_tick(self):
        if not self.pools:
            return
        if not self._compiled:
            self._compile()
        self.ticks += 1
        self._m_ticks.inc()
        factors, reasons = self._resolve_groups()
        jitters = self._draw_jitter()
        if self.use_numpy:
            offered, served = self._advance_numpy(factors, jitters)
        else:
            offered, served = self._advance_python(factors, jitters)
        self._account(offered, served, reasons)

    def _resolve_groups(self):
        """Per-pool (factor, reason) via one resolve per distinct VIP."""
        for resolver in self._resolvers:
            resolver.begin_tick()
        group_results = []
        for resolver, vip in self._group_keys:
            factor, reason, owner = resolver.resolve(vip)
            group_results.append((factor, reason, owner))
        factors = []
        reasons = []
        for pool, group in zip(self.pools, self._pool_group):
            factor, reason, owner = group_results[group]
            if factor > 0.0 and pool.require is not None:
                if owner is None or not pool.require(owner):
                    factor, reason = 0.0, "no_route"
            factors.append(factor)
            reasons.append(reason)
        return factors, reasons

    def _draw_jitter(self):
        """Per-pool demand multipliers; no draws when jitter is off."""
        if not self.jitter:
            return None
        if self._jitter_rng is None:
            self._jitter_rng = self.rng("demand")
        spread = self.jitter
        rng = self._jitter_rng
        return [1.0 + spread * (2.0 * rng.random() - 1.0) for _ in self.pools]

    def _advance_numpy(self, factors, jitters):
        raw = self._demand * self.tick
        if jitters is not None:
            raw = raw * _numpy.array(jitters, dtype=_numpy.float64)
        raw = raw + self._carry
        offered_f = _numpy.floor(raw)
        self._carry = raw - offered_f
        served_f = _numpy.floor(offered_f * _numpy.array(factors, dtype=_numpy.float64))
        offered = offered_f.astype(_numpy.int64)
        served = served_f.astype(_numpy.int64)
        self._c_offered += offered
        self._c_served += served
        return offered, served

    def _advance_python(self, factors, jitters):
        # The scalar mirror of _advance_numpy: identical float64 ops in
        # identical element order, so both backends produce bit-equal
        # carries and counts from the same seed.
        tick = self.tick
        carry = self._carry
        demand = self._demand
        c_offered = self._c_offered
        c_served = self._c_served
        offered = [0] * len(self.pools)
        served = [0] * len(self.pools)
        for index in range(len(self.pools)):
            raw = demand[index] * tick
            if jitters is not None:
                raw = raw * jitters[index]
            raw = raw + carry[index]
            offered_i = math.floor(raw)
            carry[index] = raw - offered_i
            served_i = math.floor(offered_i * factors[index])
            offered[index] = offered_i
            served[index] = served_i
            c_offered[index] += offered_i
            c_served[index] += served_i
        return offered, served

    def _account(self, offered, served, reasons):
        """Totals, per-reason metrics, and per-VIP loss trace records."""
        offered_total = 0
        served_total = 0
        lost_groups = {}
        group_totals = {}
        for index, group in enumerate(self._pool_group):
            offered_i = int(offered[index])
            if not offered_i:
                continue
            served_i = int(served[index])
            offered_total += offered_i
            served_total += served_i
            entry = group_totals.get(group)
            if entry is None:
                group_totals[group] = entry = [0, 0]
            entry[0] += offered_i
            entry[1] += served_i
            lost_i = offered_i - served_i
            if lost_i:
                reason = reasons[index]
                if reason is None:
                    reason = "degraded"
                self.lost_by_reason[reason] = (
                    self.lost_by_reason.get(reason, 0) + lost_i
                )
                pool = self.pools[index]
                pool.lost_by_reason[reason] = (
                    pool.lost_by_reason.get(reason, 0) + lost_i
                )
                counter = self._m_lost.get(reason)
                if counter is None:
                    counter = self.sim.metrics.counter(
                        "flow.requests_lost", node=self.name, reason=reason
                    )
                    self._m_lost[reason] = counter
                counter.inc(lost_i)
                lost_groups.setdefault(group, reason)
        self.requests_offered += offered_total
        self.requests_served += served_total
        self.requests_lost += offered_total - served_total
        if offered_total:
            self._m_offered.inc(offered_total)
        if served_total:
            self._m_served.inc(served_total)
        for group in sorted(lost_groups):
            group_offered, group_served = group_totals[group]
            _resolver, vip = self._group_keys[group]
            self.trace(
                "flow",
                "loss",
                vip=str(vip),
                offered=group_offered,
                served=group_served,
                lost=group_offered - group_served,
                reason=lost_groups[group],
            )

    # ------------------------------------------------------------------
    # read side

    def reset_counters(self):
        """Zero every request total (carries and tick phase survive).

        Call after the cluster settles to scope totals to the
        measurement window — boot-time churn loss is real but is not
        part of a failover's request bill.
        """
        self._flush_carry()
        self.ticks = 0
        self.requests_offered = 0
        self.requests_served = 0
        self.requests_lost = 0
        self.lost_by_reason = {}
        for pool in self.pools:
            pool.reset_counters()
        if self._compiled:
            n = len(self.pools)
            if self.use_numpy:
                self._c_offered = _numpy.zeros(n, dtype=_numpy.int64)
                self._c_served = _numpy.zeros(n, dtype=_numpy.int64)
            else:
                self._c_offered = [0] * n
                self._c_served = [0] * n
            self._base_offered = [0] * n
            self._base_served = [0] * n

    def goodput_pct(self):
        """Served fraction of offered requests so far, in percent."""
        if not self.requests_offered:
            return None
        return 100.0 * self.requests_served / self.requests_offered

    def totals(self):
        """JSON-stable engine totals (integers, sorted reasons)."""
        return {
            "ticks": self.ticks,
            "users": self.total_users(),
            "offered": self.requests_offered,
            "served": self.requests_served,
            "lost": self.requests_lost,
            "lost_by_reason": {
                reason: self.lost_by_reason[reason]
                for reason in sorted(self.lost_by_reason)
            },
        }

    def fingerprint(self):
        """Totals plus per-pool state — the replay-comparison artifact."""
        self._flush_carry()
        payload = self.totals()
        payload["tick"] = self.tick
        payload["pools"] = [pool.to_dict() for pool in self.pools]
        return payload

    def __repr__(self):
        return "FlowEngine({}, {} pools, {} users, tick={})".format(
            self.name, len(self.pools), self.total_users(), self.tick
        )
