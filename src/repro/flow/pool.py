"""Client pools: the aggregate demand unit of the flow engine.

One :class:`FlowPool` stands for ``users`` clients all targeting the
same virtual address at ``rate`` requests per second each. The pool
never materialises individual requests — it is a *rate counter* the
engine advances once per tick — so a million users cost the same per
tick as ten. Fractional demand carries over between ticks (the
``carry`` accumulator), which keeps long-run offered totals exact:
over T seconds a pool offers ``floor``-accurate ``users * rate * T``
requests regardless of the tick size.
"""

from repro.net.addresses import IPAddress

#: Loss-attribution reasons a resolution can produce (docs/TRAFFIC.md).
LOSS_REASONS = (
    "no_owner",      # the VIP is bound on no live, up interface anywhere
    "stale_arp",     # the client-side ARP binding points away from the live owner
    "dead_host",     # traffic lands on a crashed host / downed interface
    "partitioned",   # the owner is in another partition group
    "no_route",      # the owner answers but fails the pool's service gate
    "degraded",      # served at reduced goodput (burst loss, slowdown)
)


class FlowPool:
    """Aggregate clients: ``users`` × ``rate`` req/s against one VIP."""

    __slots__ = (
        "name",
        "vip",
        "users",
        "rate",
        "require",
        "resolver",
        "carry",
        "offered",
        "served",
        "lost",
        "lost_by_reason",
    )

    def __init__(self, name, vip, users, rate=1.0, require=None, resolver=None):
        if users < 0:
            raise ValueError("users must be >= 0, got {}".format(users))
        if rate < 0:
            raise ValueError("rate must be >= 0, got {}".format(rate))
        self.name = name
        self.vip = IPAddress(vip)
        self.users = int(users)
        self.rate = float(rate)
        # Optional service gate: ``require(owner_host) -> bool``; a pool
        # whose resolved owner fails the gate loses its tick as
        # ``no_route`` (the virtual-router pools use this to demand a
        # usable route behind the gateway VIP, not just a bound address).
        self.require = require
        # Optional per-pool resolver override; pools without one use the
        # engine's default (webcluster pools share the engine resolver,
        # the router scenario gives each internal LAN its own viewpoint).
        self.resolver = resolver
        self.carry = 0.0
        self.offered = 0
        self.served = 0
        self.lost = 0
        self.lost_by_reason = {}

    # ------------------------------------------------------------------

    def reset_counters(self):
        """Zero the request totals (the carry accumulator survives)."""
        self.offered = 0
        self.served = 0
        self.lost = 0
        self.lost_by_reason = {}

    def to_dict(self):
        """JSON-stable totals (sorted reasons, integers only)."""
        return {
            "name": self.name,
            "vip": str(self.vip),
            "users": self.users,
            "rate": self.rate,
            "offered": self.offered,
            "served": self.served,
            "lost": self.lost,
            "lost_by_reason": {
                reason: self.lost_by_reason[reason]
                for reason in sorted(self.lost_by_reason)
            },
        }

    def __repr__(self):
        return "FlowPool({}, {} users @ {}/s -> {}, served {}/{})".format(
            self.name, self.users, self.rate, self.vip, self.served, self.offered
        )
