"""Flow-level traffic plane: aggregate demand at 10^5–10^7 users.

The paper's prober (:mod:`repro.apps.workload`) measures *silence* —
one 10 ms probe stream per VIP tells you how long a failover kept the
address dark, but nothing about what the outage cost real traffic.
This package supplies the other axis: client populations modeled as
rate aggregates (:class:`FlowPool`), advanced in batches on coarse
scheduler ticks by a :class:`FlowEngine`, with every tick's requests
resolved against the live ARP/ownership state of the same simulated
cluster the prober runs in. The output is *requests lost per failover
episode* and *goodput under degradation* at populations the per-packet
plane could never carry — while the exact prober keeps the paper's
interruption-time methodology running alongside for cross-validation.

See ``docs/TRAFFIC.md`` for the model, the loss-attribution rules, and
the accuracy caveats relative to the exact prober.
"""

from repro.flow.engine import FlowEngine
from repro.flow.pool import LOSS_REASONS, FlowPool
from repro.flow.resolve import ArpViewResolver, DirectResolver, degradation_factor

__all__ = [
    "FlowEngine",
    "FlowPool",
    "LOSS_REASONS",
    "ArpViewResolver",
    "DirectResolver",
    "degradation_factor",
]
