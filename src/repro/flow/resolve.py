"""VIP resolution and loss attribution for the flow engine.

Where the exact prober sends a real packet and waits, the flow engine
asks a *resolver* what would happen to traffic aimed at a VIP right
now, once per tick per distinct address. Two implementations:

* :class:`ArpViewResolver` — the faithful tier. Resolution follows the
  same data path a real client's kernel follows: the client host's ARP
  cache decides which MAC the requests hit, and the frame only counts
  as served if that interface is up, its host alive, the VIP actually
  bound there, and the client's partition group can reach it. The
  cache is repaired by the same broadcast (spoofed) ARP announcements
  real clients see, so the loss window the engine reports closes at
  exactly the moment the paper's §5.1 repair mechanism fires.
* :class:`DirectResolver` — the scale tier, where clients are not
  modeled and placement is pure computation: a VIP is served iff some
  live manager currently binds it.

A resolution is ``(factor, reason, owner_host)``: ``factor`` is the
fraction of the tick's offered requests that are served (0.0 for a
blackhole, 1.0 for a healthy owner, in between for degraded modes) and
``reason`` labels whatever is lost (see
:data:`repro.flow.pool.LOSS_REASONS`). Resolvers are read-only against
the cluster — the single deliberate exception is the client-side ARP
cache entry stored on a successful cold lookup, which models the
request/reply ARP exchange a real first packet performs — and draw no
RNG: degraded modes scale by the *expected* loss of the installed link
model, so attaching a flow engine never perturbs the draw sequence of
the simulation it observes.
"""

from repro.net.addresses import IPAddress


class ArpViewResolver:
    """Faithful-tier resolution through a client host's ARP view.

    ``client_host`` supplies the viewpoint: its ARP cache (aged by its
    local clock, repointed by broadcast announcements) and its NIC's
    partition group. ``hosts`` is the server population scanned for
    live VIP bindings; the scan happens once per tick, not per pool.
    """

    def __init__(self, lan, client_host, hosts):
        self.lan = lan
        self.client_host = client_host
        self.hosts = hosts
        self._client_nic = client_host.nic_on(lan)
        if self._client_nic is None:
            raise ValueError(
                "client host {} has no NIC on LAN {}".format(client_host.name, lan.name)
            )
        self._owners = {}
        self._macs = {}

    def begin_tick(self):
        """Snapshot live bindings and the MAC index for this tick."""
        owners = {}
        for host in self.hosts:
            if not host.alive:
                continue
            for nic in host.nics:
                if nic.lan is self.lan and nic.up:
                    for ip in nic.bound_ips:
                        owners.setdefault(ip, nic)
        self._owners = owners
        self._macs = {nic.mac: nic for nic in self.lan.nics}

    def resolve(self, vip):
        """(factor, reason, owner_host) for traffic aimed at ``vip`` now."""
        vip = IPAddress(vip)
        owner_nic = self._owners.get(vip)
        mac = self.client_host.arp.cache.lookup(vip)
        if mac is None:
            # Cold cache: a real first request would ARP. If a live
            # owner answers, the exchange completes well inside one
            # coarse tick — store the binding and serve.
            if owner_nic is None:
                return 0.0, "no_owner", None
            if not self.lan.connected(self._client_nic, owner_nic):
                return 0.0, "partitioned", None
            self.client_host.arp.cache.store(vip, owner_nic.mac)
            return self._serve(owner_nic)
        # Warm cache: traffic goes wherever the binding points,
        # truthful or not — exactly the stale-ARP blackhole the
        # paper's spoofed announcements exist to repair.
        target = self._macs.get(mac)
        if target is None or not target.up or not target.host.alive:
            if owner_nic is not None and owner_nic is not target:
                return 0.0, "stale_arp", None
            return 0.0, "dead_host", None
        if not target.owns_ip(vip):
            # The interface answers ARP but the address is gone: the
            # kernel drops the datagram on the floor.
            if owner_nic is not None:
                return 0.0, "stale_arp", None
            return 0.0, "no_owner", None
        if not self.lan.connected(self._client_nic, target):
            return 0.0, "partitioned", None
        return self._serve(target)

    def _serve(self, nic):
        factor = degradation_factor(self.lan, nic.host)
        if factor >= 1.0:
            return 1.0, None, nic.host
        return factor, "degraded", nic.host


class DirectResolver:
    """Scale-tier resolution: live binding lookup, no client modeling.

    ``bindings`` is a zero-argument callable yielding ``(vip, host)``
    pairs over the live population (e.g. the scale cluster's manager
    bound-sets). Called once per tick; resolution is a dict lookup.
    """

    def __init__(self, bindings, lan=None):
        self.bindings = bindings
        self.lan = lan
        self._owners = {}

    def begin_tick(self):
        owners = {}
        for vip, host in self.bindings():
            owners.setdefault(IPAddress(vip), host)
        self._owners = owners

    def resolve(self, vip):
        owner = self._owners.get(IPAddress(vip))
        if owner is None or not owner.alive:
            return 0.0, "no_owner", None
        factor = degradation_factor(self.lan, owner)
        if factor >= 1.0:
            return 1.0, None, owner
        return factor, "degraded", owner


def degradation_factor(lan, host):
    """Goodput fraction for a served VIP under active gray modes.

    Deterministic closed forms, never RNG draws (drawing here would
    perturb the simulation's replay sequence):

    * burst loss / base loss — request and reply each cross the
      channel once, so goodput scales by ``(1 - p)²`` with ``p`` the
      (expected, for Gilbert–Elliott) per-frame loss probability;
    * slowdown — an owner running ``factor`` times slow answers an
      open-loop request stream at ``1/factor`` of the offered rate.
    """
    factor = 1.0
    if host is not None and host.time_scale > 1.0:
        factor /= host.time_scale
    if lan is not None:
        model = lan.link_model
        if model is not None:
            p = model.expected_loss()
            if p > 0.0:
                factor *= (1.0 - p) * (1.0 - p)
        if lan.loss:
            factor *= (1.0 - lan.loss) * (1.0 - lan.loss)
    return factor
