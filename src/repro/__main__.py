"""``python -m repro`` — the experiment command-line interface."""

import sys

from repro.cli import main

sys.exit(main())
