"""Benchmark workloads for the hot paths the experiments live on.

Every workload here is a pure simulation run — deterministic, seeded,
and free of wall-clock reads. The timing loop lives entirely in
:mod:`repro.bench.runner`; this module only defines *what* work a
bench performs and how many units of it were done, so the same
workloads can be reused by the pytest-benchmark harness under
``benchmarks/`` without duplicating setup code.

Each entry in :data:`BENCHES` maps a bench name to a factory:
``factory(scale) -> (run, unit)`` where ``run()`` executes the
workload once and returns the number of ``unit``\\ s processed.
Factories do their setup work eagerly so the timed call measures the
hot loop, not harness construction; campaign benches deliberately
include spec construction because that is part of real campaign cost.
"""

from repro.check.campaign import run_campaign_trials
from repro.net.host import Host
from repro.net.lan import Lan
from repro.sim.scheduler import Scheduler
from repro.sim.simulation import Simulation
from repro.sim.timers import PeriodicTimer, Timer

# Workload sizes per mode. "quick" keeps the whole suite under ~30s of
# wall time for CI; "full" is the committed-trajectory configuration.
SCALES = {
    "quick": {
        "kernel_events": {"n_events": 10_000},
        "kernel_timer_churn": {"n_timers": 24, "duration": 40.0},
        "lan_fanout": {"n_hosts": 10, "rounds": 60},
        "failover_trial": {"trials": 1},
        "campaign_serial": {"trials": 3, "horizon": 25.0, "workers": 1},
        "campaign_parallel": {"trials": 4, "horizon": 25.0, "workers": 2},
        "burst_loss_failover": {"trials": 1, "horizon": 25.0},
        "stabilize_after_corruption": {"trials": 1, "horizon": 25.0},
        "flow_engine_ticks": {"users": 100_000, "pools": 64, "duration": 30.0},
        "lint_full_project": {"subtree": "gcs"},
    },
    "full": {
        "kernel_events": {"n_events": 40_000},
        "kernel_timer_churn": {"n_timers": 32, "duration": 120.0},
        "lan_fanout": {"n_hosts": 10, "rounds": 200},
        "failover_trial": {"trials": 1},
        "campaign_serial": {"trials": 6, "horizon": 40.0, "workers": 1},
        "campaign_parallel": {"trials": 8, "horizon": 40.0, "workers": 2},
        "burst_loss_failover": {"trials": 2, "horizon": 25.0},
        "stabilize_after_corruption": {"trials": 2, "horizon": 25.0},
        "flow_engine_ticks": {"users": 1_000_000, "pools": 256, "duration": 60.0},
        "lint_full_project": {"subtree": None},
    },
    # The scale tier (segmented membership + rendezvous placement); run
    # via ``repro bench --scale``, never as part of quick/full.
    "scale": {
        "membership_change_n256": {
            "n_hosts": 256,
            "n_vips": 2048,
            "segment_size": 32,
            "kills": 2,
        },
        "balance_n1024": {"members": 1024, "slots": 4096, "changes": 8},
        # Serial-vs-sharded kernel pair: the same n256 boot+kill+settle
        # script on one scheduler and partitioned across 4 worker
        # processes. Identical workloads by construction (the sharded
        # run's merged artifact is byte-identical — `repro check
        # --shards` proves it), so their median ratio *is* the kernel
        # speedup. Single-sample wall times on a loaded CI box are
        # noisy; the 25% gate judges each bench against its own
        # trajectory, never the pair against each other.
        "kernel_serial_n256": {
            "n_hosts": 256,
            "n_vips": 2048,
            "segment_size": 32,
            "shards": 1,
            "workers": 0,
            "horizon": 10.0,
            "flow_users": 100_000,
        },
        "kernel_sharded_n256": {
            "n_hosts": 256,
            "n_vips": 2048,
            "segment_size": 32,
            "shards": 4,
            "workers": 4,
            "horizon": 10.0,
            "flow_users": 100_000,
        },
    },
}


def make_kernel_events(scale):
    """Raw event throughput: one-shot callbacks through the scheduler."""
    n_events = scale["n_events"]

    def run():
        scheduler = Scheduler()
        after = scheduler.after
        for index in range(n_events):
            after(index * 0.001, _noop)
        scheduler.run()
        return scheduler.events_fired

    return run, "events"


def make_kernel_timer_churn(scale):
    """Schedule/cancel-heavy workload mirroring GCS heartbeat refreshes.

    ``n_timers`` fault-detection timeouts (3 s deadline) are refreshed
    every 50 ms — the `heard_from` pattern — so nearly every scheduled
    event is cancelled long before it fires and the heap fills with
    dead entries. A few periodic heartbeat timers tick alongside.
    Units are scheduler operations (timer (re)starts + events fired).
    """
    n_timers = scale["n_timers"]
    duration = scale["duration"]
    refresh_interval = 0.05
    timeout = 3.0

    def run():
        scheduler = Scheduler()
        fired = [0]

        def on_timeout():
            fired[0] += 1

        timers = [Timer(scheduler, on_timeout) for _ in range(n_timers)]
        beats = [
            PeriodicTimer(scheduler, on_timeout, 0.5) for _ in range(4)
        ]
        for beat in beats:
            beat.start()
        restarts = [0]

        def refresh():
            for timer in timers:
                timer.start(timeout)
            restarts[0] += n_timers

        refresher = PeriodicTimer(scheduler, refresh, refresh_interval)
        refresher.start(first_delay=0.0)
        scheduler.run(until=duration)
        refresher.stop()
        for beat in beats:
            beat.stop()
        for timer in timers:
            timer.cancel()
        return restarts[0] + scheduler.events_fired

    return run, "events"


def make_lan_fanout(scale):
    """Per-frame LAN broadcast fan-out with the full UDP receive path."""
    n_hosts = scale["n_hosts"]
    rounds = scale["rounds"]

    def run():
        sim = Simulation(seed=0, trace_enabled=False)
        lan = Lan(sim, "lan", "10.0.0.0/24")
        hosts = []
        for index in range(n_hosts):
            host = Host(sim, "h{}".format(index))
            host.add_nic(lan, "10.0.0.{}".format(1 + index))
            host.open_udp(100, _udp_sink)
            hosts.append(host)
        for round_index in range(rounds):
            hosts[round_index % n_hosts].send_udp(
                round_index, "10.0.0.255", 100, src_port=1
            )
            sim.run_until_idle()
        return lan.frames_delivered

    return run, "frames"


def make_failover_trial(scale):
    """One full §6 fail-over trial (crash, detect, reallocate, recover)."""
    from repro.experiments.runner import run_failover_trial
    from repro.gcs.config import SpreadConfig

    trials = scale["trials"]

    def run():
        for index in range(trials):
            result = run_failover_trial(
                seed=9000 + index, cluster_size=4, spread_config=SpreadConfig.tuned()
            )
            if result.interruption is None:
                raise RuntimeError("fail-over trial did not complete")
        return trials

    return run, "trials"


def _make_campaign(scale):
    params = dict(
        base_seed=20260806,
        trials=scale["trials"],
        n_servers=4,
        n_vips=8,
        horizon=scale["horizon"],
        events_per_trial=8,
        fixture="standard",
    )
    workers = scale["workers"]

    def run():
        results = run_campaign_trials(params, workers=workers)
        verdicts = [result["verdict"] for result in results]
        if verdicts != ["pass"] * params["trials"]:
            raise RuntimeError("campaign bench produced {}".format(verdicts))
        return len(results)

    return run, "trials"


def make_campaign_serial(scale):
    """Campaign trial throughput, single process."""
    return _make_campaign(scale)


def make_campaign_parallel(scale):
    """Campaign trial throughput across warm worker processes."""
    return _make_campaign(scale)


def make_burst_loss_failover(scale):
    """Fail-over under Gilbert–Elliott burst loss, hardened cluster.

    A directed gray trial: the LAN turns bursty (80% BAD-state loss),
    a server crashes inside the loss window, and the trial only passes
    if the hardened cluster (K-miss detection, ARP announce retries,
    periodic re-announcement) still fails the crashed server's VIPs
    over and reconverges to exact coverage after everything heals.
    This prices the whole gray stack — link model draws, retry timers,
    supervisors — on the same trial machinery the campaigns use.
    """
    from repro.check.schedule import BURST_LOSS, CRASH, FaultEvent, FaultSchedule
    from repro.check.trial import make_spec, run_trial

    trials = scale["trials"]
    horizon = scale["horizon"]

    def run():
        for index in range(trials):
            schedule = FaultSchedule(
                [
                    FaultEvent(BURST_LOSS, 1.0, duration=12.0, param=0.8),
                    FaultEvent(CRASH, 4.0, host=1, duration=6.0),
                ],
                horizon=horizon,
            )
            result = run_trial(make_spec(31000 + index, schedule, gray=True))
            if result["verdict"] != "pass":
                raise RuntimeError(
                    "burst-loss fail-over bench produced {}".format(result["verdict"])
                )
        return trials

    return run, "trials"


def make_membership_change_n256(scale):
    """Scale-tier membership churn: boot n256, kill/revive, reconverge.

    Builds and settles a 256-host / 2048-VIP segmented cluster eagerly,
    then the timed run injects ``kills`` crash+reconverge cycles (the
    victim survives segment 0 so a leader death is always exercised)
    followed by revivals. Units are membership changes absorbed.
    """
    from repro.apps.scalecluster import ScaleClusterScenario

    scenario = ScaleClusterScenario(
        seed=42,
        n_hosts=scale["n_hosts"],
        n_vips=scale["n_vips"],
        segment_size=scale["segment_size"],
    )
    scenario.start()
    if not scenario.settle(timeout=30.0):
        raise RuntimeError("scale cluster failed to boot")
    kills = scale["kills"]
    victims = [0, scale["n_hosts"] // 2][:kills]

    def run():
        changes = 0
        for victim in victims:
            scenario.kill(victim)
            if not scenario.settle(timeout=30.0):
                raise RuntimeError("no reconvergence after kill")
            changes += 1
        for victim in victims:
            scenario.revive(victim)
            if not scenario.settle(timeout=30.0):
                raise RuntimeError("no reconvergence after revive")
            changes += 1
        return changes

    return run, "changes"


def make_balance_n1024(scale):
    """Pure placement throughput at n1024: HRW deltas over 4096 slots.

    The timed run walks ``changes`` single-host leaves and joins through
    a shared :class:`~repro.core.placement.RendezvousMap` — the exact
    computation every node performs per adopted view — and counts slot
    assignments produced. The first call from each membership exercises
    the incremental delta path; the memo is reset per repeat.
    """
    from repro.core.placement import RendezvousMap

    members = ["node{:04d}".format(index) for index in range(scale["members"])]
    slots = ["10.32.{}.{}".format(128 + i // 250, 1 + i % 250) for i in range(scale["slots"])]
    changes = scale["changes"]

    def run():
        placement = RendezvousMap(slots)
        produced = len(placement.allocation_for(members))
        for index in range(changes):
            without = members[: 1 + index] + members[2 + index :]
            produced += len(placement.allocation_for(without))
            produced += len(placement.allocation_for(members))
        return produced

    return run, "assignments"


def _make_shard_kernel(scale):
    """Shared body of the serial/sharded n256 kernel benches.

    One fixed-horizon segmented-cluster script — boot, one leader kill
    at t=4, revive at t=7, 100k flow users, settle to the horizon — run
    through :class:`~repro.apps.scalecluster.ShardedScaleScenario` with
    the shard/worker split the scale dict names. Build cost (the fork
    of warm workers included) is deliberately inside the timed run:
    that is the wall-clock a sharded campaign pays per scenario.
    """
    from repro.apps.scalecluster import ShardedScaleScenario

    params = dict(
        seed=11,
        n_hosts=scale["n_hosts"],
        n_vips=scale["n_vips"],
        segment_size=scale["segment_size"],
        shards=scale["shards"],
        horizon=scale["horizon"],
        flow_users=scale["flow_users"],
        kills=((4.0, 17),),
        revives=((7.0, 17),),
        trace_enabled=False,
        metrics_enabled=False,
    )
    workers = scale["workers"]

    def run():
        scenario = ShardedScaleScenario(workers=workers, **params)
        artifact = scenario.run()
        if not artifact["converged"]:
            raise RuntimeError("sharded kernel bench did not reconverge")
        return artifact["events_fired"]

    return run, "events"


def make_kernel_serial_n256(scale):
    """n256 boot+kill+settle on the serial kernel (the speedup baseline)."""
    return _make_shard_kernel(scale)


def make_kernel_sharded_n256(scale):
    """The same n256 script across 4 shard worker processes."""
    return _make_shard_kernel(scale)


def make_flow_engine_ticks(scale):
    """Flow-plane tick throughput at 10^5/10^6 users.

    ``pools`` client pools share ``users`` users and alternate between
    a served VIP and a blackholed one, so every tick pays resolution,
    the vectorized advance, and the loss-accounting path. Units are
    pool-ticks (pools x ticks): the engine's O(pools) per-tick cost is
    what the >25% regression gate defends, independent of user count.
    """
    from repro.flow import FlowEngine, FlowPool
    from repro.net.host import Host
    from repro.net.lan import Lan

    users = scale["users"]
    n_pools = scale["pools"]
    duration = scale["duration"]

    def run():
        sim = Simulation(seed=0, trace_enabled=False, metrics_enabled=False)
        lan = Lan(sim, "lan", "10.64.0.0/16")
        server = Host(sim, "s0")
        nic = server.add_nic(lan, "10.64.0.1")
        client = Host(sim, "client")
        client.add_nic(lan, "10.64.0.2")
        from repro.flow import ArpViewResolver

        resolver = ArpViewResolver(lan, client, [server])
        engine = FlowEngine(sim, resolver=resolver, tick=0.05)
        share = users // n_pools
        for index in range(n_pools):
            # Even pools hit a served VIP, odd pools a blackhole, so the
            # bench covers both accounting paths every tick.
            vip = "10.64.{}.{}".format(128 + (index % 2), 1 + index // 2)
            if index % 2 == 0:
                nic.bind_ip(vip)
            engine.add_pool(FlowPool("p{}".format(index), vip, share, rate=1.0))
        engine.start()
        sim.run(until=duration)
        totals = engine.totals()
        if totals["served"] == 0 or totals["lost"] == 0:
            raise RuntimeError("flow bench lost its served/blackhole split")
        return totals["ticks"] * n_pools

    return run, "pool-ticks"


def make_lint_full_project(scale):
    """Whole-project static analysis: the flow-aware lint engine.

    Times one complete ``Linter().run`` — parsing, symbol table, call
    graph, dataflow fixed point, state-machine extraction, and every
    registered rule — over the installed ``repro`` package (quick mode
    lints the ``gcs`` subtree to fit the CI budget). This is the cost
    the CI lint job pays on every push, so its trajectory gates the
    engine's own hot paths. Counts files linted.
    """
    import os

    import repro
    from repro.analysis import Baseline, LintConfig, Linter

    target = os.path.dirname(repro.__file__)
    if scale.get("subtree"):
        target = os.path.join(target, scale["subtree"])

    def run():
        result = Linter(LintConfig()).run([target], baseline=Baseline())
        return len(result.files)

    return run, "files"


def _noop():
    return None


def _udp_sink(payload, src, dst):
    return None


def make_stabilize_after_corruption(scale):
    """Self-stabilization round trip: corrupt, detect, repair, settle.

    A directed corruption trial: all four corruption kinds land on a
    stabilizing cluster (0.5s audit cadence) with a burst-loss window
    in the middle, and the trial only passes if every corruption is
    repaired — no persistent coverage violation, exact coverage at the
    end. This prices the audit timers, the invariant sweeps, and the
    repair paths (re-acquire, release, regather, counter re-derivation)
    on the same trial machinery the ``--corrupt`` campaigns use.
    """
    from repro.check.schedule import (
        BURST_LOSS,
        CORRUPT_EPOCH,
        CORRUPT_MEMBERSHIP,
        CORRUPT_SEQUENCE,
        CORRUPT_VIP_TABLE,
        FaultEvent,
        FaultSchedule,
    )
    from repro.check.trial import make_spec, run_trial

    trials = scale["trials"]
    horizon = scale["horizon"]

    def run():
        for index in range(trials):
            schedule = FaultSchedule(
                [
                    FaultEvent(CORRUPT_VIP_TABLE, 1.0, host=0),
                    FaultEvent(CORRUPT_MEMBERSHIP, 3.0, host=1),
                    FaultEvent(BURST_LOSS, 5.0, duration=6.0, param=0.7),
                    FaultEvent(CORRUPT_SEQUENCE, 8.0, host=2),
                    FaultEvent(CORRUPT_EPOCH, 11.0, host=3),
                ],
                horizon=horizon,
            )
            result = run_trial(make_spec(47000 + index, schedule, corrupt=True))
            if result["verdict"] != "pass":
                raise RuntimeError(
                    "corruption stabilize bench produced {}".format(result["verdict"])
                )
        return trials

    return run, "trials"


BENCHES = {
    "kernel_events": make_kernel_events,
    "kernel_timer_churn": make_kernel_timer_churn,
    "lan_fanout": make_lan_fanout,
    "failover_trial": make_failover_trial,
    "campaign_serial": make_campaign_serial,
    "campaign_parallel": make_campaign_parallel,
    "burst_loss_failover": make_burst_loss_failover,
    "stabilize_after_corruption": make_stabilize_after_corruption,
    "flow_engine_ticks": make_flow_engine_ticks,
    "lint_full_project": make_lint_full_project,
    "membership_change_n256": make_membership_change_n256,
    "balance_n1024": make_balance_n1024,
    "kernel_serial_n256": make_kernel_serial_n256,
    "kernel_sharded_n256": make_kernel_sharded_n256,
}


def bench_names(mode=None):
    """Bench names in canonical (sorted) order.

    With ``mode`` given, only the benches that mode defines — the scale
    benches exist solely in the ``scale`` mode, so quick/full suites
    are unaffected by their presence in :data:`BENCHES`.
    """
    if mode is None:
        return sorted(BENCHES)
    return sorted(SCALES[mode])


def build_workload(name, mode="quick", overrides=None):
    """Instantiate one bench: ``(run, unit, scale_dict)``.

    ``overrides`` (a dict) is merged over the mode's scale dict — how
    ``repro bench --shards N`` retargets the sharded kernel bench
    without touching the committed workload sizes.
    """
    scale = dict(SCALES[mode][name])
    if overrides:
        scale.update(overrides)
    run, unit = BENCHES[name](scale)
    return run, unit, scale
