"""Timing harness and trajectory file for ``repro bench``.

This is the one module in the bench subsystem allowed to read the real
clock (it is listed in the linter's wall-clock exemptions): workloads
themselves are pure virtual-time simulations defined in
:mod:`repro.bench.suite`; here they are repeated, their wall times
reduced to a median, and the result appended to a versioned trajectory
file (``BENCH_kernel.json``) whose schema is::

    {
      "format": "repro-bench/1",
      "runs": [
        {
          "rev": "<git short rev or 'unknown'>",
          "mode": "quick" | "full" | "scale",
          "host": {"cpus": 8},        # os.cpu_count() where the run ran
          "benches": {
            "<name>": {
              "median_s": 0.123456,   # median wall seconds per repeat
              "per_s": 162000.0,      # units processed per second
              "unit": "events",       # events | frames | trials
              "units": 20000,         # units per repeat
              "samples": [..],        # every repeat's wall seconds
              "workers": 4            # only for multi-process benches
            }, ...
          }
        }, ...
      ]
    }

The ``host.cpus`` / ``workers`` metadata makes parallel-kernel numbers
comparable across machines: a ``kernel_sharded_n256`` median from a
1-core container and one from an 8-core runner are different
experiments, and the trajectory now says which was which.

Comparison is always against the *most recent previous run with the
same mode* (quick numbers are never compared to full numbers): a bench
whose median slows down by more than the threshold is a regression and
``repro bench`` exits nonzero, which is what the CI bench job gates on.
"""

import json
import os
import time

from repro.bench.suite import SCALES, bench_names, build_workload

BENCH_FORMAT = "repro-bench/1"
DEFAULT_REPEATS = {"quick": 3, "full": 5, "scale": 3}
HISTORY_LIMIT = 40


def _git_rev():
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


class BenchRun:
    """One suite execution: per-bench medians plus run metadata."""

    def __init__(self, mode, rev, benches, host=None):
        self.mode = mode
        self.rev = rev
        self.benches = benches  # name -> result dict (schema above)
        self.host = dict(host) if host else {}

    def to_dict(self):
        return {
            "rev": self.rev,
            "mode": self.mode,
            "host": self.host,
            "benches": self.benches,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            data.get("mode", "full"),
            data.get("rev", "unknown"),
            data["benches"],
            host=data.get("host"),
        )

    def format(self):
        lines = [
            "repro bench [{}] rev={} cpus={}".format(
                self.mode, self.rev, self.host.get("cpus", "?")
            ),
            "  {:<22} {:>12} {:>16} {:>8}".format("bench", "median", "rate", "units"),
        ]
        for name in sorted(self.benches):
            result = self.benches[name]
            lines.append(
                "  {:<22} {:>10.4f}s {:>12,.0f}/s {:>8,}".format(
                    name, result["median_s"], result["per_s"], result["units"]
                )
            )
        return "\n".join(lines)


def run_bench(name, mode="quick", repeats=None, overrides=None):
    """Time one bench; returns its result dict."""
    repeats = repeats or DEFAULT_REPEATS[mode]
    samples = []
    units = 0
    scale = {}
    unit = None
    for _ in range(repeats):
        run, unit, scale = build_workload(name, mode, overrides=overrides)
        started = time.perf_counter()
        units = run()
        samples.append(round(time.perf_counter() - started, 6))
    median = _median(samples)
    per_s = units / median if median > 0 else 0.0
    result = {
        "median_s": round(median, 6),
        "per_s": round(per_s, 1),
        "unit": unit,
        "units": units,
        "samples": samples,
    }
    if "workers" in scale:
        # How many processes did the work — without it a parallel
        # median is meaningless next to host.cpus.
        result["workers"] = scale["workers"]
    return result


def run_suite(mode="quick", names=None, repeats=None, progress=None, overrides=None):
    """Run the whole suite (or ``names``); returns a :class:`BenchRun`.

    ``overrides`` maps bench name -> scale-dict overrides for that
    bench (see :func:`repro.bench.suite.build_workload`).
    """
    selected = list(names) if names else bench_names(mode)
    unknown = sorted(set(selected) - set(SCALES[mode]))
    if unknown:
        raise ValueError("unknown bench name(s): {}".format(unknown))
    benches = {}
    for name in selected:
        if progress is not None:
            progress("running {} ...".format(name))
        benches[name] = run_bench(
            name,
            mode=mode,
            repeats=repeats,
            overrides=(overrides or {}).get(name),
        )
    return BenchRun(mode, _git_rev(), benches, host={"cpus": os.cpu_count() or 1})


# ----------------------------------------------------------------------
# trajectory file


def load_trajectory(path):
    """Read a trajectory file; returns a list of :class:`BenchRun`."""
    try:
        with open(str(path)) as handle:
            data = json.load(handle)
    except FileNotFoundError:
        return []
    if data.get("format") != BENCH_FORMAT:
        raise ValueError(
            "not a repro-bench trajectory (format={!r})".format(data.get("format"))
        )
    return [BenchRun.from_dict(entry) for entry in data.get("runs", [])]


def save_trajectory(path, runs):
    """Write the trajectory file (most recent run last, history capped)."""
    payload = {
        "format": BENCH_FORMAT,
        "runs": [run.to_dict() for run in runs[-HISTORY_LIMIT:]],
    }
    with open(str(path), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def previous_run(runs, mode):
    """Most recent recorded run with the given mode, or None."""
    for run in reversed(runs):
        if run.mode == mode:
            return run
    return None


class BenchComparison:
    """New run vs. the previous same-mode run: speedups and regressions."""

    def __init__(self, baseline, current, threshold):
        self.baseline = baseline
        self.current = current
        self.threshold = threshold
        self.rows = []  # (name, old_s, new_s, speedup)
        self.regressions = []
        for name in sorted(current.benches):
            old = baseline.benches.get(name) if baseline else None
            if old is None:
                continue
            old_s, new_s = old["median_s"], current.benches[name]["median_s"]
            speedup = old_s / new_s if new_s > 0 else float("inf")
            self.rows.append((name, old_s, new_s, speedup))
            if new_s > old_s * (1.0 + threshold):
                self.regressions.append(name)

    @property
    def ok(self):
        return not self.regressions

    def format(self):
        if not self.rows:
            return "no previous {} run to compare against".format(
                self.current.mode
            )
        lines = [
            "vs rev={} (threshold {:.0%}):".format(
                self.baseline.rev, self.threshold
            )
        ]
        for name, old_s, new_s, speedup in self.rows:
            marker = " REGRESSION" if name in self.regressions else ""
            lines.append(
                "  {:<22} {:>10.4f}s -> {:>8.4f}s  x{:.2f}{}".format(
                    name, old_s, new_s, speedup, marker
                )
            )
        return "\n".join(lines)


def compare_runs(runs, current, threshold=0.25):
    """Compare ``current`` to the last same-mode entry of ``runs``."""
    return BenchComparison(previous_run(runs, current.mode), current, threshold)
