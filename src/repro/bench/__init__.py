"""Recorded performance trajectory for the hot paths.

``repro bench`` runs the kernel / LAN / trial / campaign
micro-benchmarks defined in :mod:`repro.bench.suite`, appends the
results to a versioned ``BENCH_kernel.json`` trajectory file, and
compares against the previous recorded run so perf regressions fail
loudly instead of accumulating silently. See ``docs/BENCHMARKS.md``.
"""

from repro.bench.runner import (
    BENCH_FORMAT,
    BenchComparison,
    BenchRun,
    compare_runs,
    load_trajectory,
    run_suite,
    save_trajectory,
)
from repro.bench.suite import BENCHES, bench_names

__all__ = [
    "BENCH_FORMAT",
    "BENCHES",
    "BenchComparison",
    "BenchRun",
    "bench_names",
    "compare_runs",
    "load_trajectory",
    "run_suite",
    "save_trajectory",
]
