"""A LAN segment: one broadcast domain with partition support.

Frames are delivered after a configurable latency (plus optional
jitter) to every attached, up interface in the same *partition group*
as the sender. Partitioning a LAN into groups models the switch
failures the paper mentions (§3.1 footnote); healing restores a single
group. Unicast frames reach the interface(s) owning the destination
MAC; broadcast frames reach everyone in the group.

Recipient sets are precomputed and cached — broadcast fan-out lists
per source NIC and a MAC index for unicast — and invalidated whenever
topology or partition groups change. The cached lists preserve attach
order (the order the old per-frame scan used), so the loss/jitter RNG
draw sequence, and with it every trace and verdict, is byte-identical
to the uncached path.
"""

from repro.net.addresses import Subnet

_NO_NICS = ()


class Lan:
    """One simulated broadcast domain."""

    def __init__(self, sim, name, subnet, latency=0.0002, jitter=0.0, loss=0.0):
        self.sim = sim
        self.name = name
        self.subnet = Subnet(subnet)
        self.latency = float(latency)
        self.jitter = float(jitter)
        self.loss = float(loss)
        self._nics = []
        self._groups = {}
        self._bcast_cache = {}  # src nic -> tuple of same-group recipients
        self._mac_index = None  # mac -> tuple of owning nics, attach order
        self._rng = sim.rng.stream("lan/{}".format(name))
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_lost = 0
        metrics = sim.metrics
        self._m_sent = metrics.counter("net.frames_sent", node=name)
        self._m_broadcast = metrics.counter("net.broadcasts", node=name)
        self._m_delivered = metrics.counter("net.frames_delivered", node=name)
        self._m_lost = metrics.counter("net.frames_lost", node=name)

    def attach(self, nic):
        """Register an interface on this segment (called by Nic)."""
        self._nics.append(nic)
        self._groups[nic] = 0
        self._invalidate()

    def detach(self, nic):
        """Remove an interface from the segment."""
        if nic in self._groups:
            self._nics.remove(nic)
            del self._groups[nic]
            self._invalidate()

    @property
    def nics(self):
        """All attached interfaces (tuple snapshot)."""
        return tuple(self._nics)

    def partition(self, groups):
        """Split the segment: ``groups`` is an iterable of NIC collections.

        Every listed NIC is placed in the group matching its position;
        NICs not listed keep group 0. Accepts hosts as well — all of a
        host's NICs on this LAN are then moved together.
        """
        assignment = {}
        for index, members in enumerate(groups, start=1):
            for member in members:
                for nic in self._nics_of(member):
                    assignment[nic] = index
        for nic in self._nics:
            self._groups[nic] = assignment.get(nic, 0)
        self._invalidate()
        self.sim.trace.emit(
            "lan", self.name, "partition", groups=sorted(self._groups.values())
        )

    def heal(self):
        """Merge all groups back into one broadcast domain."""
        for nic in self._nics:
            self._groups[nic] = 0
        self._invalidate()
        self.sim.trace.emit("lan", self.name, "heal")

    def group_of(self, nic):
        """Partition group currently containing ``nic``."""
        return self._groups[nic]

    def _nics_of(self, member):
        if hasattr(member, "nics"):
            return [nic for nic in member.nics if nic.lan is self]
        return [member]

    def _invalidate(self):
        # Any attach/detach/partition/heal drops the cached recipient
        # lists; they are rebuilt lazily on the next frame.
        self._bcast_cache.clear()
        self._mac_index = None

    def _broadcast_recipients(self, src_nic):
        group = self._groups[src_nic]
        groups = self._groups
        recipients = tuple(
            nic for nic in self._nics if nic is not src_nic and groups[nic] == group
        )
        self._bcast_cache[src_nic] = recipients
        return recipients

    def _build_mac_index(self):
        index = {}
        for nic in self._nics:
            index.setdefault(nic.mac, []).append(nic)
        index = {mac: tuple(nics) for mac, nics in index.items()}
        self._mac_index = index
        return index

    def connected(self, nic_a, nic_b):
        """True when two interfaces can currently exchange frames."""
        return self._groups[nic_a] == self._groups[nic_b]

    def transmit(self, frame, src_nic):
        """Deliver ``frame`` from ``src_nic`` per MAC addressing rules."""
        self.frames_sent += 1
        self._m_sent.inc()
        dst_mac = frame.dst_mac
        if dst_mac.is_broadcast:
            self._m_broadcast.inc()
            recipients = self._bcast_cache.get(src_nic)
            if recipients is None:
                recipients = self._broadcast_recipients(src_nic)
        else:
            index = self._mac_index
            if index is None:
                index = self._build_mac_index()
            owners = index.get(dst_mac, _NO_NICS)
            if not owners:
                return
            groups = self._groups
            src_group = groups[src_nic]
            recipients = [
                nic
                for nic in owners
                if nic is not src_nic and groups[nic] == src_group
            ]
        if not recipients:
            return
        after = self.sim.scheduler.after
        loss = self.loss
        jitter = self.jitter
        latency = self.latency
        rng = self._rng
        delivered = 0
        lost = 0
        for nic in recipients:
            if loss and rng.random() < loss:
                lost += 1
                continue
            delay = latency
            if jitter:
                delay += rng.uniform(0.0, jitter)
            delivered += 1
            after(delay, nic.deliver, frame)
        if lost:
            self.frames_lost += lost
            self._m_lost.inc(lost)
        if delivered:
            self.frames_delivered += delivered
            self._m_delivered.inc(delivered)

    def __repr__(self):
        return "Lan({}, {}, {} nics)".format(self.name, self.subnet, len(self._nics))
