"""A LAN segment: one broadcast domain with partition support.

Frames are delivered after a configurable latency (plus optional
jitter) to every attached, up interface in the same *partition group*
as the sender. Partitioning a LAN into groups models the switch
failures the paper mentions (§3.1 footnote); healing restores a single
group. Unicast frames reach the interface(s) owning the destination
MAC; broadcast frames reach everyone in the group.
"""

from repro.net.addresses import Subnet


class Lan:
    """One simulated broadcast domain."""

    def __init__(self, sim, name, subnet, latency=0.0002, jitter=0.0, loss=0.0):
        self.sim = sim
        self.name = name
        self.subnet = Subnet(subnet)
        self.latency = float(latency)
        self.jitter = float(jitter)
        self.loss = float(loss)
        self._nics = []
        self._groups = {}
        self._rng = sim.rng.stream("lan/{}".format(name))
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_lost = 0
        metrics = sim.metrics
        self._m_sent = metrics.counter("net.frames_sent", node=name)
        self._m_broadcast = metrics.counter("net.broadcasts", node=name)
        self._m_delivered = metrics.counter("net.frames_delivered", node=name)
        self._m_lost = metrics.counter("net.frames_lost", node=name)

    def attach(self, nic):
        """Register an interface on this segment (called by Nic)."""
        self._nics.append(nic)
        self._groups[nic] = 0

    def detach(self, nic):
        """Remove an interface from the segment."""
        if nic in self._groups:
            self._nics.remove(nic)
            del self._groups[nic]

    @property
    def nics(self):
        """All attached interfaces (tuple snapshot)."""
        return tuple(self._nics)

    def partition(self, groups):
        """Split the segment: ``groups`` is an iterable of NIC collections.

        Every listed NIC is placed in the group matching its position;
        NICs not listed keep group 0. Accepts hosts as well — all of a
        host's NICs on this LAN are then moved together.
        """
        assignment = {}
        for index, members in enumerate(groups, start=1):
            for member in members:
                for nic in self._nics_of(member):
                    assignment[nic] = index
        for nic in self._nics:
            self._groups[nic] = assignment.get(nic, 0)
        self.sim.trace.emit(
            "lan", self.name, "partition", groups=sorted(self._groups.values())
        )

    def heal(self):
        """Merge all groups back into one broadcast domain."""
        for nic in self._nics:
            self._groups[nic] = 0
        self.sim.trace.emit("lan", self.name, "heal")

    def group_of(self, nic):
        """Partition group currently containing ``nic``."""
        return self._groups[nic]

    def _nics_of(self, member):
        if hasattr(member, "nics"):
            return [nic for nic in member.nics if nic.lan is self]
        return [member]

    def connected(self, nic_a, nic_b):
        """True when two interfaces can currently exchange frames."""
        return self._groups[nic_a] == self._groups[nic_b]

    def transmit(self, frame, src_nic):
        """Deliver ``frame`` from ``src_nic`` per MAC addressing rules."""
        self.frames_sent += 1
        self._m_sent.inc()
        src_group = self._groups[src_nic]
        broadcast = frame.dst_mac.is_broadcast
        if broadcast:
            self._m_broadcast.inc()
        for nic in self._nics:
            if nic is src_nic:
                continue
            if self._groups[nic] != src_group:
                continue
            if not broadcast and nic.mac != frame.dst_mac:
                continue
            if self.loss and self._rng.random() < self.loss:
                self.frames_lost += 1
                self._m_lost.inc()
                continue
            delay = self.latency
            if self.jitter:
                delay += self._rng.uniform(0.0, self.jitter)
            self.frames_delivered += 1
            self._m_delivered.inc()
            self.sim.scheduler.after(delay, nic.deliver, frame)

    def __repr__(self):
        return "Lan({}, {}, {} nics)".format(self.name, self.subnet, len(self._nics))
