"""A LAN segment: one broadcast domain with partition and gray faults.

Frames are delivered after a configurable latency (plus optional
jitter) to every attached, up interface in the same *partition group*
as the sender. Partitioning a LAN into groups models the switch
failures the paper mentions (§3.1 footnote); healing restores a single
group. Unicast frames reach the interface(s) owning the destination
MAC; broadcast frames reach everyone in the group.

Recipient sets are precomputed and cached — broadcast fan-out lists
per source NIC and a MAC index for unicast — and invalidated whenever
topology or partition groups change. The cached lists preserve attach
order (the order the old per-frame scan used), so the loss/jitter RNG
draw sequence, and with it every trace and verdict, is byte-identical
to the uncached path.

Beyond fail-stop partitions the segment supports *gray* link faults
(see ``docs/FAULTS.md``): directed blocks (A→B dropped while B→A
flows), a Gilbert–Elliott burst-loss channel, and frame duplication /
reordering knobs. All gray draws come from a dedicated RNG stream
(``lan/<name>/gray``) consulted only while a gray knob is active, so
runs that never enable one replay the exact historical draw sequence.
"""

from repro.net.addresses import Subnet

_NO_NICS = ()


class Lan:
    """One simulated broadcast domain."""

    def __init__(self, sim, name, subnet, latency=0.0002, jitter=0.0, loss=0.0):
        self.sim = sim
        self.name = name
        self.subnet = Subnet(subnet)
        self.latency = float(latency)
        self.jitter = float(jitter)
        self.loss = float(loss)
        self._nics = []
        self._groups = {}
        self._bcast_cache = {}  # src nic -> tuple of same-group recipients
        self._mac_index = None  # mac -> tuple of owning nics, attach order
        self._rng = sim.rng.stream("lan/{}".format(name))
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_lost = 0
        self.frames_blocked = 0
        self.frames_burst_lost = 0
        self.frames_duplicated = 0
        self.frames_reordered = 0
        # Gray-fault state: directed (src_nic, dst_nic) blocks, an
        # optional burst-loss channel, and duplication/reordering
        # probabilities. ``_gray_active`` gates one attribute test on
        # the per-frame fast path; the dedicated RNG stream and the
        # gray metric instruments are created on first use so inactive
        # runs stay byte-identical (draws AND metric catalogs).
        self._blocked = set()
        self._link_model = None
        self.duplicate_prob = 0.0
        self.reorder_prob = 0.0
        self.reorder_window = 0.002
        self._gray_active = False
        self._gray_rng = None
        self._m_gray = None
        metrics = sim.metrics
        self._m_sent = metrics.counter("net.frames_sent", node=name)
        self._m_broadcast = metrics.counter("net.broadcasts", node=name)
        self._m_delivered = metrics.counter("net.frames_delivered", node=name)
        self._m_lost = metrics.counter("net.frames_lost", node=name)

    def attach(self, nic):
        """Register an interface on this segment (called by Nic)."""
        self._nics.append(nic)
        self._groups[nic] = 0
        self._invalidate()

    def detach(self, nic):
        """Remove an interface from the segment."""
        if nic in self._groups:
            self._nics.remove(nic)
            del self._groups[nic]
            self._invalidate()

    @property
    def nics(self):
        """All attached interfaces (tuple snapshot)."""
        return tuple(self._nics)

    def partition(self, groups):
        """Split the segment: ``groups`` is an iterable of NIC collections.

        Every listed NIC is placed in the group matching its position;
        NICs not listed keep group 0. Accepts hosts as well — all of a
        host's NICs on this LAN are then moved together.
        """
        assignment = {}
        for index, members in enumerate(groups, start=1):
            for member in members:
                for nic in self._nics_of(member):
                    assignment[nic] = index
        for nic in self._nics:
            self._groups[nic] = assignment.get(nic, 0)
        self._invalidate()
        self.sim.trace.emit(
            "lan", self.name, "partition", groups=sorted(self._groups.values())
        )

    def heal(self):
        """Merge all groups back into one broadcast domain."""
        for nic in self._nics:
            self._groups[nic] = 0
        self._invalidate()
        self.sim.trace.emit("lan", self.name, "heal")

    def group_of(self, nic):
        """Partition group currently containing ``nic``."""
        return self._groups[nic]

    def _nics_of(self, member):
        if hasattr(member, "nics"):
            return [nic for nic in member.nics if nic.lan is self]
        return [member]

    def _invalidate(self):
        # Any attach/detach/partition/heal drops the cached recipient
        # lists; they are rebuilt lazily on the next frame.
        self._bcast_cache.clear()
        self._mac_index = None

    def _broadcast_recipients(self, src_nic):
        group = self._groups[src_nic]
        groups = self._groups
        recipients = tuple(
            nic for nic in self._nics if nic is not src_nic and groups[nic] == group
        )
        self._bcast_cache[src_nic] = recipients
        return recipients

    def _build_mac_index(self):
        index = {}
        for nic in self._nics:
            index.setdefault(nic.mac, []).append(nic)
        index = {mac: tuple(nics) for mac, nics in index.items()}
        self._mac_index = index
        return index

    # ------------------------------------------------------------------
    # gray link faults (see docs/FAULTS.md)

    def _refresh_gray(self):
        self._gray_active = bool(
            self._blocked
            or self._link_model is not None
            or self.duplicate_prob
            or self.reorder_prob
        )
        if self._gray_active and self._gray_rng is None:
            self._gray_rng = self.sim.rng.stream("lan/{}/gray".format(self.name))
        if self._gray_active and self._m_gray is None:
            metrics = self.sim.metrics
            self._m_gray = {
                "blocked": metrics.counter("net.frames_blocked", node=self.name),
                "burst_lost": metrics.counter("net.frames_burst_lost", node=self.name),
                "duplicated": metrics.counter("net.frames_duplicated", node=self.name),
                "reordered": metrics.counter("net.frames_reordered", node=self.name),
            }

    def block_direction(self, src, dst):
        """Drop every frame flowing ``src`` → ``dst`` (one way only).

        ``src``/``dst`` accept NICs or hosts (all of a host's NICs on
        this LAN). The reverse direction keeps flowing — the classic
        one-way gray link. Blocks compose with partition groups.
        """
        for src_nic in self._nics_of(src):
            for dst_nic in self._nics_of(dst):
                if src_nic is not dst_nic:
                    self._blocked.add((src_nic, dst_nic))
        self._refresh_gray()
        self.sim.trace.emit(
            "lan", self.name, "block_direction", pairs=len(self._blocked)
        )

    def unblock_direction(self, src, dst):
        """Restore the ``src`` → ``dst`` direction."""
        for src_nic in self._nics_of(src):
            for dst_nic in self._nics_of(dst):
                self._blocked.discard((src_nic, dst_nic))
        self._refresh_gray()
        self.sim.trace.emit(
            "lan", self.name, "unblock_direction", pairs=len(self._blocked)
        )

    def clear_blocks(self):
        """Remove every directed block."""
        self._blocked.clear()
        self._refresh_gray()

    @property
    def blocked_pairs(self):
        """Number of directed (src, dst) NIC pairs currently blocked."""
        return len(self._blocked)

    @property
    def link_model(self):
        """The installed burst-loss channel model, or None."""
        return self._link_model

    def set_link_model(self, model):
        """Install (or with ``None`` remove) a burst-loss channel model."""
        self._link_model = model
        self._refresh_gray()
        self.sim.trace.emit(
            "lan",
            self.name,
            "link_model",
            params=model.describe() if model is not None else None,
        )

    @property
    def link_model(self):
        """The installed burst-loss model, or None."""
        return self._link_model

    def set_duplication(self, probability):
        """Per-delivery probability that a frame arrives twice."""
        self.duplicate_prob = float(probability)
        self._refresh_gray()

    def set_reordering(self, probability, window=None):
        """Per-delivery probability of an extra uniform(0, window) delay.

        A delayed frame is overtaken by later frames — UDP reordering.
        """
        self.reorder_prob = float(probability)
        if window is not None:
            self.reorder_window = float(window)
        self._refresh_gray()

    def connected(self, nic_a, nic_b):
        """True when two interfaces can currently exchange frames.

        Requires the *pair* to be healthy: same partition group and
        neither direction blocked. A one-way link therefore counts as
        disconnected for auditing purposes — coverage must converge per
        strongly-connected component, not per optimistic half-link.
        """
        if self._groups[nic_a] != self._groups[nic_b]:
            return False
        if self._blocked and (
            (nic_a, nic_b) in self._blocked or (nic_b, nic_a) in self._blocked
        ):
            return False
        return True

    def reaches(self, src_nic, dst_nic):
        """True when frames currently flow ``src`` → ``dst`` (one way).

        The optimistic half of :meth:`connected`: under nested
        asymmetric blocks a host may still *receive* from a peer it can
        no longer answer. The auditor uses this to recognise a stale
        singleton that is being repaired by traffic it can hear.
        """
        if self._groups[src_nic] != self._groups[dst_nic]:
            return False
        if self._blocked and (src_nic, dst_nic) in self._blocked:
            return False
        return True

    def transmit(self, frame, src_nic):
        """Deliver ``frame`` from ``src_nic`` per MAC addressing rules."""
        self.frames_sent += 1
        self._m_sent.inc()
        dst_mac = frame.dst_mac
        if dst_mac.is_broadcast:
            self._m_broadcast.inc()
            recipients = self._bcast_cache.get(src_nic)
            if recipients is None:
                recipients = self._broadcast_recipients(src_nic)
        else:
            index = self._mac_index
            if index is None:
                index = self._build_mac_index()
            owners = index.get(dst_mac, _NO_NICS)
            if not owners:
                return
            groups = self._groups
            src_group = groups[src_nic]
            recipients = [
                nic
                for nic in owners
                if nic is not src_nic and groups[nic] == src_group
            ]
        if not recipients:
            return
        after = self.sim.scheduler.after
        loss = self.loss
        jitter = self.jitter
        latency = self.latency
        rng = self._rng
        delivered = 0
        lost = 0
        if self._gray_active:
            delivered, lost = self._transmit_gray(
                frame, src_nic, recipients, after, loss, jitter, latency, rng
            )
        elif not (loss or jitter):
            # Every recipient gets the identical delay and no RNG draw
            # is consumed, so the per-recipient events can collapse into
            # one batched event. The batch fires at the same (time, seq)
            # slot the first per-recipient event would have held and
            # delivers in the same attach order, so the global delivery
            # sequence — and every downstream draw and trace — is
            # byte-identical to the unbatched path. At N recipients this
            # turns a broadcast from N scheduler events into one: the
            # O(N²) cost of a segment-wide ARP storm becomes O(N).
            delivered = len(recipients)
            if delivered == 1:
                after(latency, recipients[0].deliver, frame)
            else:
                after(latency, self._deliver_batch, frame, recipients)
        else:
            for nic in recipients:
                if loss and rng.random() < loss:
                    lost += 1
                    continue
                delay = latency
                if jitter:
                    delay += rng.uniform(0.0, jitter)
                delivered += 1
                after(delay, nic.deliver, frame)
        if lost:
            self.frames_lost += lost
            self._m_lost.inc(lost)
        if delivered:
            self.frames_delivered += delivered
            self._m_delivered.inc(delivered)

    @staticmethod
    def _deliver_batch(frame, recipients):
        """Deliver one frame to a frozen recipient list (batched event)."""
        for nic in recipients:
            nic.deliver(frame)

    def _transmit_gray(self, frame, src_nic, recipients, after, loss, jitter, latency, rng):
        """Delivery loop with the gray knobs consulted per recipient.

        The base loss/jitter draws keep their historical order (one
        pair per non-blocked recipient, from the base stream); every
        gray decision draws from the dedicated gray stream, so enabling
        a knob mid-run never perturbs the base sequence for frames that
        are delivered normally.
        """
        blocked = self._blocked
        model = self._link_model
        gray_rng = self._gray_rng
        counters = self._m_gray
        duplicate_prob = self.duplicate_prob
        reorder_prob = self.reorder_prob
        delivered = 0
        lost = 0
        for nic in recipients:
            if blocked and (src_nic, nic) in blocked:
                self.frames_blocked += 1
                counters["blocked"].inc()
                continue
            if loss and rng.random() < loss:
                lost += 1
                continue
            delay = latency
            if jitter:
                delay += rng.uniform(0.0, jitter)
            # The link model is a pure transition function with no stream
            # of its own: it draws from the LAN's dedicated gray stream
            # by design (see linkfault.py), so burst-loss decisions stay
            # attributable to this LAN's (seed, "lan/<name>/gray") pair.
            if model is not None and model.drops(gray_rng):  # repro: allow DET005 -- model draws from the owning LAN's gray stream by design
                self.frames_burst_lost += 1
                counters["burst_lost"].inc()
                lost += 1
                continue
            if reorder_prob and gray_rng.random() < reorder_prob:
                delay += gray_rng.uniform(0.0, self.reorder_window)
                self.frames_reordered += 1
                counters["reordered"].inc()
            delivered += 1
            after(delay, nic.deliver, frame)
            if duplicate_prob and gray_rng.random() < duplicate_prob:
                self.frames_duplicated += 1
                counters["duplicated"].inc()
                delivered += 1
                after(delay + gray_rng.uniform(0.0, latency), nic.deliver, frame)
        return delivered, lost

    def __repr__(self):
        return "Lan({}, {}, {} nics)".format(self.name, self.subnet, len(self._nics))
