"""Topology partitioning for the sharded simulation kernel.

The scale tier's cluster decomposes naturally along LAN segments: all
heavy traffic (heartbeats, beacons, ARP) stays inside a segment, and
the only inter-segment frames are the leaders' digest unicasts. The
sharded kernel (:mod:`repro.sim.shard`) exploits that structure by
giving every segment its own *cell* — a LAN plus its hosts — and
running groups of cells (*shards*) on separate worker processes.

Three pieces live here:

* :class:`ShardPlan` — the deterministic cell→shard assignment plus
  the lookahead bound (the fixed inter-segment link latency).
* frame envelopes — picklable tuples describing one cross-cell UDP
  datagram in flight, totally ordered by ``(deliver_time, src_cell,
  seq)`` where ``seq`` is a per-source-cell counter. Because a cell's
  event timeline is identical under every shard grouping, so are its
  envelope sequence numbers — the property that makes barrier-time
  injection order (and therefore every same-instant delivery tie)
  grouping-invariant.
* :class:`SegmentUplink` / :class:`UplinkHost` — the per-world router
  for cross-cell traffic. *Every* cross-cell frame becomes an
  envelope, even when source and destination cells live in the same
  world: deliveries are only ever scheduled at epoch barriers, in
  envelope sort order, so the serial (one-world) and sharded runs
  execute byte-identical event sequences.

Envelope layout (plain tuple, cheap to pickle across worker pipes)::

    (deliver_time, src_cell, seq, dst_cell,
     dst_ip, dst_port, src_ip, src_port, payload)
"""

from repro.net.addresses import IPAddress
from repro.net.host import Host
from repro.net.packet import IpPacket, UdpDatagram

#: Index of the envelope fields used as the total-order merge key.
ENVELOPE_KEY_FIELDS = 3

#: Default fixed latency of the inter-segment (routed) path, seconds.
#: Also the kernel's conservative lookahead bound: a frame sent at
#: time ``s`` cannot be observed before ``s + latency``.
DEFAULT_INTER_LATENCY = 0.025


def envelope_key(envelope):
    """The total-order sort key: ``(deliver_time, src_cell, seq)``."""
    return envelope[:ENVELOPE_KEY_FIELDS]


class ShardPlan:
    """Deterministic assignment of ``n_cells`` cells to ``n_shards`` shards.

    Cells are split into contiguous balanced runs (shard 0 gets the
    lowest-numbered cells). Contiguity keeps a shard's cells adjacent
    in the address plan; balance keeps worker load even.
    """

    def __init__(self, n_cells, n_shards, lookahead=DEFAULT_INTER_LATENCY):
        n_cells = int(n_cells)
        n_shards = int(n_shards)
        if n_cells < 1:
            raise ValueError("n_cells must be >= 1, got {}".format(n_cells))
        if not 1 <= n_shards <= n_cells:
            raise ValueError(
                "n_shards must be in [1, {}], got {}".format(n_cells, n_shards)
            )
        if lookahead <= 0:
            raise ValueError("lookahead must be positive, got {}".format(lookahead))
        self.n_cells = n_cells
        self.n_shards = n_shards
        self.lookahead = float(lookahead)
        base, extra = divmod(n_cells, n_shards)
        self._cells_of = []
        self._shard_of = {}
        start = 0
        for shard in range(n_shards):
            width = base + (1 if shard < extra else 0)
            cells = tuple(range(start, start + width))
            self._cells_of.append(cells)
            for cell in cells:
                self._shard_of[cell] = shard
            start += width

    def cells_of(self, shard):
        """Tuple of cell ids owned by ``shard``."""
        return self._cells_of[shard]

    def shard_of(self, cell):
        """The shard owning ``cell``."""
        return self._shard_of[cell]

    def shards(self):
        """All shard ids."""
        return tuple(range(self.n_shards))

    def __repr__(self):
        return "ShardPlan({} cells over {} shards, lookahead={})".format(
            self.n_cells, self.n_shards, self.lookahead
        )


class SegmentUplink:
    """One world's router for cross-cell frames.

    Sends never schedule delivery directly: they append an envelope to
    :attr:`outbound`, which the kernel drains at the end of each epoch
    and re-injects — sorted by :func:`envelope_key`, on whichever world
    owns the destination cell — at the start of the next one. The
    sort-order injection is what keeps same-instant delivery ties
    identical across shard groupings (see the module docstring).

    ``cell_of_ip`` maps every routable IP address to its cell id;
    addresses it does not know (broadcasts, foreign subnets) fall back
    to the host's normal LAN path.
    """

    def __init__(self, sim, latency, cell_of_ip):
        self.sim = sim
        self.latency = float(latency)
        self._cell_of_ip = dict(cell_of_ip)
        self._hosts_by_ip = {}  # IPAddress -> local Host
        self._seq = {}  # src_cell -> next envelope sequence number
        self.outbound = []
        self.frames_sent = {}  # src_cell -> count
        self.frames_delivered = {}  # dst_cell -> count
        self.frames_dropped = {}  # dst_cell -> count (dead destination)

    def attach_host(self, host, ip):
        """Register a local host as the endpoint for ``ip``."""
        self._hosts_by_ip[IPAddress(ip)] = host

    def cell_of(self, ip):
        """Cell id owning ``ip``, or None when the uplink has no route."""
        return self._cell_of_ip.get(ip)

    def send(self, src_cell, payload, dst_ip, dst_port, src_ip, src_port):
        """Queue one cross-cell datagram; delivery is barrier-scheduled."""
        dst_cell = self._cell_of_ip[dst_ip]
        seq = self._seq.get(src_cell, 0)
        self._seq[src_cell] = seq + 1
        self.frames_sent[src_cell] = self.frames_sent.get(src_cell, 0) + 1
        self.outbound.append(
            (
                self.sim.now + self.latency,
                src_cell,
                seq,
                dst_cell,
                str(dst_ip),
                int(dst_port),
                str(src_ip),
                int(src_port),
                payload,
            )
        )

    def drain_outbound(self):
        """Remove and return every queued outbound envelope."""
        out = self.outbound
        self.outbound = []
        return out

    def inject(self, envelopes):
        """Schedule delivery events for envelopes routed to this world.

        Callers pass envelopes already sorted by :func:`envelope_key`;
        scheduling in that order assigns ascending scheduler sequence
        numbers, so same-instant deliveries fire in key order in every
        shard grouping.
        """
        at = self.sim.at
        for envelope in envelopes:
            at(envelope[0], self._deliver, envelope)

    def _deliver(self, envelope):
        _time, _src_cell, _seq, dst_cell, dst_ip, dst_port, src_ip, src_port, payload = (
            envelope
        )
        dst_ip = IPAddress(dst_ip)
        host = self._hosts_by_ip.get(dst_ip)
        if host is None or not host.alive:
            self.frames_dropped[dst_cell] = self.frames_dropped.get(dst_cell, 0) + 1
            return
        self.frames_delivered[dst_cell] = self.frames_delivered.get(dst_cell, 0) + 1
        datagram = UdpDatagram(src_port, dst_port, payload)
        host._deliver_local(IpPacket(IPAddress(src_ip), dst_ip, datagram))

    def counters(self, cell):
        """JSON-stable per-cell uplink counters (parity artifact field)."""
        return {
            "sent": self.frames_sent.get(cell, 0),
            "delivered": self.frames_delivered.get(cell, 0),
            "dropped": self.frames_dropped.get(cell, 0),
        }


class UplinkHost(Host):
    """A host whose off-cell datagrams ride the segment uplink.

    Destination addresses the uplink maps to a *different* cell are
    enveloped instead of hitting the LAN (where ARP for a non-resident
    address would blackhole them); everything else — intra-cell
    unicasts, broadcasts, unroutable addresses — takes the inherited
    path unchanged.
    """

    def __init__(self, sim, name, uplink, cell, arp_cache_lifetime=60.0):
        super().__init__(sim, name, arp_cache_lifetime=arp_cache_lifetime)
        self.uplink = uplink
        self.cell = cell

    def send_udp(self, payload, dst_ip, dst_port, src_port=0, src_ip=None):
        if not self.alive:
            return
        if type(dst_ip) is not IPAddress:
            dst_ip = IPAddress(dst_ip)
        dst_cell = self.uplink.cell_of(dst_ip)
        if dst_cell is not None and dst_cell != self.cell:
            if src_ip is None:
                nics = self.nics
                src_ip = nics[0].primary_ip if nics else None
            if src_ip is None:
                self.packets_dropped += 1
                return
            self.uplink.send(
                self.cell, payload, dst_ip, dst_port, IPAddress(src_ip), src_port
            )
            return
        super().send_udp(payload, dst_ip, dst_port, src_port=src_port, src_ip=src_ip)
