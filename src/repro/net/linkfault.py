"""Gray-failure link models: burst loss, duplication, reordering.

Clean fail-stop faults (``nic_down``, crashes, partitions) are what the
paper's §6 induces; real segments mostly degrade instead of dying. This
module supplies the *link-quality* half of the gray repertoire:

* :class:`GilbertElliott` — the classic two-state burst-loss channel.
  The link flips between a GOOD state (low loss) and a BAD state (high
  loss) with per-frame transition probabilities, so losses arrive in
  bursts rather than independently — exactly the pattern that defeats
  naive single-miss failure detectors.
* frame duplication and reordering knobs live on :class:`~repro.net.lan.Lan`
  itself (``duplicate_prob`` / ``reorder_prob``) and draw from the same
  dedicated stream.

Determinism: every draw comes from a dedicated named stream of the
simulation's :class:`~repro.sim.rng.RngRegistry` (``lan/<name>/gray``),
never from the LAN's base loss/jitter stream. A run that never enables
a gray knob therefore consumes *exactly* the RNG sequence it consumed
before this module existed, which keeps the seed experiments and every
recorded check artifact byte-identical.
"""


class GilbertElliott:
    """Two-state Markov burst-loss model, advanced once per delivery.

    ``p_good_to_bad`` / ``p_bad_to_good`` are per-frame transition
    probabilities; ``loss_good`` / ``loss_bad`` are the drop
    probabilities inside each state. The state advances *before* the
    loss draw, so a model constructed mid-run behaves identically to
    one that idled in GOOD until that moment.
    """

    __slots__ = (
        "p_good_to_bad",
        "p_bad_to_good",
        "loss_good",
        "loss_bad",
        "bad",
        "transitions",
        "losses",
    )

    def __init__(self, p_good_to_bad=0.05, p_bad_to_good=0.25, loss_good=0.0, loss_bad=0.9):
        for name, value in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError("{} must be in [0, 1], got {}".format(name, value))
        self.p_good_to_bad = float(p_good_to_bad)
        self.p_bad_to_good = float(p_bad_to_good)
        self.loss_good = float(loss_good)
        self.loss_bad = float(loss_bad)
        self.bad = False
        self.transitions = 0
        self.losses = 0

    def drops(self, rng):
        """Advance the channel one frame and decide whether it is lost."""
        if self.bad:
            if rng.random() < self.p_bad_to_good:
                self.bad = False
                self.transitions += 1
        else:
            if rng.random() < self.p_good_to_bad:
                self.bad = True
                self.transitions += 1
        loss = self.loss_bad if self.bad else self.loss_good
        if loss and rng.random() < loss:
            self.losses += 1
            return True
        return False

    def expected_loss(self):
        """Steady-state per-frame loss probability (closed form, no RNG).

        The stationary distribution of the two-state chain puts
        ``π_bad = g2b / (g2b + b2g)`` weight on BAD; the expected loss
        is the state losses weighted by it. The flow engine uses this
        to scale goodput deterministically — averaging over the chain
        rather than sampling it keeps resolvers draw-free. Degenerate
        chains (both transition probabilities zero) never leave their
        current state, so the answer is that state's loss.
        """
        denom = self.p_good_to_bad + self.p_bad_to_good
        if denom <= 0.0:
            return self.loss_bad if self.bad else self.loss_good
        pi_bad = self.p_good_to_bad / denom
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good

    def describe(self):
        """JSON-compatible parameter dict (for traces and fault logs)."""
        return {
            "p_good_to_bad": self.p_good_to_bad,
            "p_bad_to_good": self.p_bad_to_good,
            "loss_good": self.loss_good,
            "loss_bad": self.loss_bad,
        }

    def __repr__(self):
        return "GilbertElliott(g2b={}, b2g={}, bad_loss={}, {})".format(
            self.p_good_to_bad,
            self.p_bad_to_good,
            self.loss_bad,
            "BAD" if self.bad else "GOOD",
        )
