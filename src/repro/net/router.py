"""IP routers: hosts with forwarding and a longest-prefix route table.

The web-cluster scenario (Fig. 3) has one router in front of the
servers; the virtual-router scenario (Fig. 4) runs Wackamole *on* a set
of these. Routes can be static or installed at runtime by the
simplified dynamic-routing protocol in :mod:`repro.apps.routing`.
"""

from repro.net.addresses import IPAddress, Subnet
from repro.net.host import Host


class StaticRoute:
    """One route table entry: destination subnet via gateway (or on-link)."""

    __slots__ = ("subnet", "gateway", "source")

    def __init__(self, subnet, gateway=None, source="static"):
        self.subnet = Subnet(subnet)
        self.gateway = IPAddress(gateway) if gateway is not None else None
        self.source = source

    def __repr__(self):
        via = str(self.gateway) if self.gateway else "on-link"
        return "StaticRoute({} via {}, {})".format(self.subnet, via, self.source)


class Router(Host):
    """A forwarding host with an explicit route table."""

    def __init__(self, sim, name, arp_cache_lifetime=60.0):
        super().__init__(sim, name, arp_cache_lifetime=arp_cache_lifetime)
        self.ip_forwarding = True
        self._routes = []

    def add_route(self, subnet, gateway=None, source="static"):
        """Install a route; replaces any same-subnet route from any source."""
        subnet = Subnet(subnet)
        self._routes = [r for r in self._routes if r.subnet != subnet]
        route = StaticRoute(subnet, gateway, source=source)
        self._routes.append(route)
        return route

    def remove_route(self, subnet):
        """Withdraw the route for ``subnet`` if present."""
        subnet = Subnet(subnet)
        self._routes = [r for r in self._routes if r.subnet != subnet]

    def remove_routes_from(self, source):
        """Withdraw every route installed by ``source`` (e.g. a protocol)."""
        self._routes = [r for r in self._routes if r.source != source]

    def routes(self):
        """Snapshot of the route table."""
        return list(self._routes)

    def lookup_route(self, dst_ip):
        """Longest-prefix match over connected subnets and the route table."""
        dst_ip = IPAddress(dst_ip)
        best = None
        best_prefix = -1
        for nic in self.nics:
            if nic.up and dst_ip in nic.lan.subnet and nic.lan.subnet.prefix > best_prefix:
                best = (nic, dst_ip)
                best_prefix = nic.lan.subnet.prefix
        for route in self._routes:
            if dst_ip in route.subnet and route.subnet.prefix > best_prefix:
                gateway = route.gateway
                nic = self._nic_toward(gateway) if gateway is not None else None
                if nic is not None:
                    best = (nic, gateway)
                    best_prefix = route.subnet.prefix
        return best

    def _nic_toward(self, gateway_ip):
        for nic in self.nics:
            if nic.up and gateway_ip in nic.lan.subnet:
                return nic
        return None

    def _route(self, dst_ip):
        match = self.lookup_route(dst_ip)
        if match is not None:
            return match
        return super()._route(dst_ip)

    def __repr__(self):
        return "Router({}, {} routes)".format(self.name, len(self._routes))
