"""Frame and packet types carried by the simulated LAN.

Layering matches the real stack closely enough for the protocols under
study: Ethernet frames carry either ARP packets or IP packets; IP
packets carry UDP datagrams whose payload is an arbitrary (conceptually
immutable) Python object standing in for wire bytes.
"""

ARP_ETHERTYPE = 0x0806
IP_ETHERTYPE = 0x0800


class EthernetFrame:
    """A link-layer frame delivered by MAC address on one LAN segment."""

    __slots__ = ("src_mac", "dst_mac", "ethertype", "payload")

    def __init__(self, src_mac, dst_mac, ethertype, payload):
        self.src_mac = src_mac
        self.dst_mac = dst_mac
        self.ethertype = ethertype
        self.payload = payload

    def __repr__(self):
        return "EthernetFrame({} -> {}, type=0x{:04x}, {!r})".format(
            self.src_mac, self.dst_mac, self.ethertype, self.payload
        )


class ArpOp:
    """ARP operation codes."""

    REQUEST = 1
    REPLY = 2


class ArpPacket:
    """An ARP request or reply.

    Spoofed replies — the mechanism Wackamole uses to repoint the
    router at a VIP's new owner — are ordinary ArpPackets whose
    ``sender_mac`` belongs to the spoofing host.
    """

    __slots__ = ("op", "sender_ip", "sender_mac", "target_ip", "target_mac")

    def __init__(self, op, sender_ip, sender_mac, target_ip, target_mac=None):
        self.op = op
        self.sender_ip = sender_ip
        self.sender_mac = sender_mac
        self.target_ip = target_ip
        self.target_mac = target_mac

    @property
    def is_gratuitous(self):
        """True when sender and target IP match (unsolicited announce)."""
        return self.sender_ip == self.target_ip

    def __repr__(self):
        kind = "REQUEST" if self.op == ArpOp.REQUEST else "REPLY"
        return "Arp{}(sender {}@{}, target {})".format(
            kind, self.sender_ip, self.sender_mac, self.target_ip
        )


class IpPacket:
    """A network-layer packet routed by IP address."""

    __slots__ = ("src_ip", "dst_ip", "ttl", "payload")

    DEFAULT_TTL = 64

    def __init__(self, src_ip, dst_ip, payload, ttl=DEFAULT_TTL):
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.ttl = ttl
        self.payload = payload

    def forwarded_copy(self):
        """A copy with decremented TTL, as produced by a router hop."""
        return IpPacket(self.src_ip, self.dst_ip, self.payload, ttl=self.ttl - 1)

    def __repr__(self):
        return "IpPacket({} -> {}, ttl={}, {!r})".format(
            self.src_ip, self.dst_ip, self.ttl, self.payload
        )


class UdpDatagram:
    """A transport-layer datagram addressed by port."""

    __slots__ = ("src_port", "dst_port", "payload")

    def __init__(self, src_port, dst_port, payload):
        self.src_port = src_port
        self.dst_port = dst_port
        self.payload = payload

    def __repr__(self):
        return "UdpDatagram({} -> {}, {!r})".format(self.src_port, self.dst_port, self.payload)
