"""UDP socket endpoints.

A socket is bound to a port (and optionally one local IP). The handler
receives the payload plus full addressing information — servers in the
paper's experiment reply *from the virtual IP they were addressed at*,
so the destination address is part of the delivery.
"""

from repro.net.addresses import IPAddress


class UdpSocket:
    """One bound UDP endpoint on a host.

    ``realtime`` marks the owning process as running with real-time
    scheduling priority (§6's production recommendation): its
    deliveries bypass the host's load-induced scheduling delay.
    """

    __slots__ = ("host", "port", "handler", "bind_ip", "realtime", "closed",
                 "received", "sent")

    def __init__(self, host, port, handler, bind_ip=None, realtime=False):
        self.host = host
        self.port = int(port)
        self.handler = handler
        self.bind_ip = IPAddress(bind_ip) if bind_ip is not None else None
        self.realtime = bool(realtime)
        self.closed = False
        self.received = 0
        self.sent = 0

    def matches(self, dst_ip, dst_port):
        """True when a datagram addressed to (dst_ip, dst_port) lands here."""
        if self.closed or dst_port != self.port:
            return False
        return self.bind_ip is None or self.bind_ip == dst_ip

    def deliver(self, payload, src_ip, src_port, dst_ip):
        """Hand an incoming datagram to the application handler."""
        if self.closed:
            return
        self.received += 1
        self.handler(payload, (src_ip, src_port), (dst_ip, self.port))

    def sendto(self, payload, dst_ip, dst_port, src_ip=None):
        """Send a datagram; source IP defaults to the outbound NIC's primary."""
        if self.closed:
            raise RuntimeError("socket on port {} is closed".format(self.port))
        self.sent += 1
        self.host.send_udp(
            payload,
            dst_ip,
            dst_port,
            src_port=self.port,
            src_ip=src_ip if src_ip is not None else self.bind_ip,
        )

    def close(self):
        """Unbind; pending deliveries are dropped."""
        self.closed = True
        self.host.release_socket(self)

    def __repr__(self):
        bind = str(self.bind_ip) if self.bind_ip else "*"
        return "UdpSocket({}:{} on {})".format(bind, self.port, self.host.name)
