"""Simulated local-area network substrate.

This package stands in for the physical 100 Mbit Ethernet LAN, the
kernel network stack, and the ARP machinery that the paper's testbed
used. It models exactly the observable behaviour the fail-over
protocols depend on:

* NICs that can bind and release multiple IP addresses (virtual IPs),
* a broadcast domain with configurable latency/jitter/loss and
  partition support,
* per-host ARP caches that go stale when a VIP moves and are refreshed
  by (possibly spoofed) ARP replies,
* UDP sockets, and IP forwarding for router hosts.
"""

from repro.net.addresses import (
    BROADCAST_MAC,
    IPAddress,
    MACAddress,
    Subnet,
)
from repro.net.arp import ArpCache, ArpEntry, ArpService
from repro.net.capture import CapturedFrame, PacketCapture
from repro.net.fault import FaultInjector
from repro.net.host import Host
from repro.net.lan import Lan
from repro.net.nic import Nic
from repro.net.packet import (
    ARP_ETHERTYPE,
    IP_ETHERTYPE,
    ArpOp,
    ArpPacket,
    EthernetFrame,
    IpPacket,
    UdpDatagram,
)
from repro.net.router import Router, StaticRoute
from repro.net.sockets import UdpSocket

__all__ = [
    "ARP_ETHERTYPE",
    "ArpCache",
    "ArpEntry",
    "ArpOp",
    "ArpPacket",
    "ArpService",
    "BROADCAST_MAC",
    "CapturedFrame",
    "EthernetFrame",
    "FaultInjector",
    "Host",
    "IPAddress",
    "IP_ETHERTYPE",
    "IpPacket",
    "Lan",
    "MACAddress",
    "Nic",
    "PacketCapture",
    "Router",
    "StaticRoute",
    "Subnet",
    "UdpDatagram",
    "UdpSocket",
]
