"""Network interface cards.

A NIC belongs to one host, attaches to one LAN segment, and holds a
*mutable set of bound IP addresses*: the primary (stationary) address
plus any virtual addresses currently acquired by a fail-over protocol.
Binding and unbinding stand in for the platform-specific interface
management code of the real Wackamole.
"""

from repro.net.addresses import IPAddress, MACAddress

#: First locally-administered MAC handed out in every simulation.
MAC_BASE = 0x020000000001


def allocate_mac(sim):
    """Hand out a fresh locally-administered MAC address.

    The counter is per-simulation (``Simulation.sequence``), so MAC
    assignment is a pure function of NIC creation order within one
    simulated world: two fresh Simulations allocate identical
    sequences, regardless of what else ran in the process before.
    """
    return MACAddress(MAC_BASE + sim.sequence("net.mac"))


class Nic:
    """One interface: MAC identity, bound IPs, and an up/down state."""

    def __init__(self, host, lan, primary_ip, name=None, mac=None):
        self.host = host
        self.lan = lan
        self.mac = mac if mac is not None else allocate_mac(host.sim)
        self.name = name or "{}.{}".format(host.name, lan.name)
        self.primary_ip = IPAddress(primary_ip) if primary_ip is not None else None
        self._bound = set()
        if self.primary_ip is not None:
            if self.primary_ip not in lan.subnet:
                raise ValueError(
                    "{} not in subnet {} of LAN {}".format(primary_ip, lan.subnet, lan.name)
                )
            self._bound.add(self.primary_ip)
        self.up = True
        metrics = host.sim.metrics
        self._m_rx = metrics.counter("net.nic_rx_frames", node=self.name)
        self._m_tx = metrics.counter("net.nic_tx_frames", node=self.name)
        self._m_dropped = metrics.counter("net.nic_dropped_frames", node=self.name)
        lan.attach(self)

    @property
    def bound_ips(self):
        """Frozen view of every IP currently bound to this interface."""
        return frozenset(self._bound)

    @property
    def virtual_ips(self):
        """Bound IPs other than the primary (the fail-over managed set)."""
        extras = set(self._bound)
        extras.discard(self.primary_ip)
        return frozenset(extras)

    def bind_ip(self, address):
        """Acquire ``address`` on this interface (idempotent)."""
        address = IPAddress(address)
        if address not in self.lan.subnet:
            raise ValueError(
                "cannot bind {}: outside subnet {}".format(address, self.lan.subnet)
            )
        self._bound.add(address)

    def unbind_ip(self, address):
        """Release ``address``; the primary address cannot be released."""
        address = IPAddress(address)
        if address == self.primary_ip:
            raise ValueError("cannot unbind the primary address {}".format(address))
        self._bound.discard(address)

    def owns_ip(self, address):
        """True when ``address`` is currently bound here."""
        if type(address) is not IPAddress:
            address = IPAddress(address)
        return address in self._bound

    def set_up(self, up):
        """Administratively raise or lower the interface."""
        self.up = bool(up)

    def reset(self):
        """Reboot semantics: drop every virtual address, come back up."""
        self._bound = {self.primary_ip} if self.primary_ip is not None else set()
        self.up = True

    def transmit(self, frame):
        """Send a frame onto the LAN; silently dropped if the NIC is down."""
        if not self.up:
            self._m_dropped.inc()
            return
        self._m_tx.inc()
        self.lan.transmit(frame, self)

    def deliver(self, frame):
        """Called by the LAN when a frame arrives for this NIC."""
        if not self.up or not self.host.alive:
            self._m_dropped.inc()
            return
        self._m_rx.inc()
        self.host.handle_frame(self, frame)

    def __repr__(self):
        return "Nic({}, mac={}, ips={}, {})".format(
            self.name,
            self.mac,
            sorted(str(ip) for ip in self._bound),
            "up" if self.up else "down",
        )
