"""Fault injection: the experiment section's failure repertoire.

§6 induces faults "by disconnecting the interface through which Spread,
Wackamole, and the experimental server access the network" — that is
:meth:`FaultInjector.nic_down`. Crashes, graceful recovery, and switch
partitions/merges (§3.1) are also provided, both immediately and as
scheduled events for scripted fault timelines.

Beyond those fail-stop faults the injector carries the *gray* repertoire
(``docs/FAULTS.md``): one-way link blocks, Gilbert–Elliott burst loss,
frame duplication/reordering, per-host slowdown, bounded clock skew, and
daemon wedging — faults where the component degrades without dying, the
regime the paper's clean disconnects never exercise.

Every injection appends a :class:`FaultRecord` to :attr:`FaultInjector.log`;
records iterate as the historical ``(time, kind, target)`` triple and
serialise via :meth:`FaultRecord.to_dict` into check artifacts, so a
trial's exact fault timeline rides along with its verdict.
"""


class FaultRecord:
    """One injected fault: when, what, against which target.

    Unpacks as the legacy ``(time, kind, target)`` triple; ``param``
    carries an optional fault magnitude (loss probability, slowdown
    factor, skew offset) and appears in :meth:`to_dict` only when set.
    """

    __slots__ = ("time", "kind", "target", "param")

    def __init__(self, time, kind, target, param=None):
        self.time = time
        self.kind = kind
        self.target = target
        self.param = param

    def __iter__(self):
        return iter((self.time, self.kind, self.target))

    def to_dict(self):
        record = {"time": self.time, "kind": self.kind, "target": self.target}
        if self.param is not None:
            record["param"] = self.param
        return record

    def __repr__(self):
        extra = "" if self.param is None else ", param={}".format(self.param)
        return "FaultRecord(t={:.4f}, {}, {}{})".format(
            self.time, self.kind, self.target, extra
        )


class FaultInjector:
    """Applies (and optionally schedules) faults against hosts and LANs."""

    def __init__(self, sim):
        self.sim = sim
        self.log = []

    def _record(self, kind, target, param=None):
        self.log.append(FaultRecord(self.sim.now, kind, target, param))
        if param is None:
            self.sim.trace.emit("fault", "injector", kind, target=target)
        else:
            self.sim.trace.emit("fault", "injector", kind, target=target, param=param)

    def log_as_dicts(self):
        """The fault timeline as JSON-compatible dicts (artifact form)."""
        return [record.to_dict() for record in self.log]

    # ------------------------------------------------------------------
    # immediate faults

    def crash_host(self, host):
        """Fail-stop the host (timers die, NICs stop responding)."""
        self._record("crash", host.name)
        host.crash()

    def recover_host(self, host):
        """Bring a crashed host back (protocol daemons must restart themselves)."""
        self._record("recover", host.name)
        host.recover()

    def nic_down(self, nic):
        """Disconnect one interface — the paper's §6 fault."""
        self._record("nic_down", nic.name)
        nic.set_up(False)

    def nic_up(self, nic):
        """Reconnect a disconnected interface."""
        self._record("nic_up", nic.name)
        nic.set_up(True)

    def partition(self, lan, groups):
        """Split a LAN into isolated groups of hosts/NICs."""
        self._record("partition", lan.name)
        lan.partition(groups)

    def heal(self, lan):
        """Merge a partitioned LAN back into one segment."""
        self._record("heal", lan.name)
        lan.heal()

    # ------------------------------------------------------------------
    # gray faults (see docs/FAULTS.md)

    def asym_partition(self, lan, deaf_hosts):
        """Make ``deaf_hosts`` stop *hearing* the rest of the segment.

        Frames from every other NIC toward a deaf host are dropped while
        the deaf host's own transmissions still flow — the classic
        one-way gray link that symmetric partitions cannot model. The
        deaf side keeps claiming VIPs it can no longer defend, which is
        exactly the duplicate-claim scenario conflict resolution must
        clean up after :meth:`asym_heal`.
        """
        deaf = sorted(set(deaf_hosts), key=lambda host: host.name)
        deaf_set = set(deaf)
        self._record(
            "asym_partition",
            "{}:{}".format(lan.name, ",".join(host.name for host in deaf)),
        )
        deaf_nics = [nic for host in deaf for nic in lan._nics_of(host)]
        for nic in lan.nics:
            if nic.host in deaf_set:
                continue
            for victim in deaf_nics:
                lan.block_direction(nic, victim)

    def asym_heal(self, lan):
        """Remove every directed block on ``lan``."""
        self._record("asym_heal", lan.name)
        lan.clear_blocks()

    def burst_loss_on(self, lan, model):
        """Install a burst-loss channel (e.g. :class:`GilbertElliott`)."""
        self._record("burst_loss_on", lan.name, param=model.describe())
        lan.set_link_model(model)

    def burst_loss_off(self, lan):
        """Remove the burst-loss channel."""
        self._record("burst_loss_off", lan.name)
        lan.set_link_model(None)

    def set_duplication(self, lan, probability):
        """Set the per-delivery frame-duplication probability."""
        self._record("duplication", lan.name, param=float(probability))
        lan.set_duplication(probability)

    def set_reordering(self, lan, probability, window=None):
        """Set the per-delivery reordering probability (and window)."""
        self._record("reordering", lan.name, param=float(probability))
        lan.set_reordering(probability, window=window)

    def slow_host(self, host, factor):
        """Stretch a host's timers by ``factor`` (wedged-but-alive box)."""
        self._record("slow_host", host.name, param=float(factor))
        host.set_slowdown(factor)

    def unslow_host(self, host):
        """Restore a slowed host to normal speed."""
        self._record("unslow_host", host.name)
        host.set_slowdown(1.0, delivery_lag=0.0)

    def skew_clock(self, host, offset):
        """Offset a host's local clock reading by ``offset`` seconds."""
        self._record("clock_skew", host.name, param=float(offset))
        host.set_clock_skew(offset)

    def unskew_clock(self, host):
        """Remove a host's clock skew."""
        self._record("clock_unskew", host.name)
        host.set_clock_skew(0.0)

    def wedge_daemon(self, daemon):
        """Wedge a daemon: alive, socket open, but deaf and mute.

        The host keeps answering ARP and the process keeps its port, so
        nothing fail-stop happens — peers just stop hearing heartbeats.
        This is the supervisor's detection target.
        """
        self._record("daemon_wedge", daemon.name)
        daemon.wedged = True

    def unwedge_daemon(self, daemon):
        """Un-wedge a wedged daemon (it resumes where it left off)."""
        self._record("daemon_unwedge", daemon.name)
        daemon.wedged = False

    def kill_daemon(self, daemon):
        """Kill one daemon process without touching its host.

        For a GCS client (a Wackamole daemon) the process death also
        breaks its IPC session, so the local GCS daemon notices and
        evicts it from its groups — without that, a zombie group member
        would wedge every future GATHER.
        """
        self._record("daemon_kill", daemon.name)
        client = getattr(daemon, "client", None)
        daemon.stop()
        if (
            client is not None
            and client.connected
            and client.daemon.alive
        ):
            client.kill()

    # ------------------------------------------------------------------
    # scheduled faults

    def at(self, time, action, *args):
        """Schedule any injector method at an absolute simulated time."""
        return self.sim.at(time, action, *args)

    def after(self, delay, action, *args):
        """Schedule any injector method after ``delay`` seconds."""
        return self.sim.after(delay, action, *args)
