"""Fault injection: the experiment section's failure repertoire.

§6 induces faults "by disconnecting the interface through which Spread,
Wackamole, and the experimental server access the network" — that is
:meth:`FaultInjector.nic_down`. Crashes, graceful recovery, and switch
partitions/merges (§3.1) are also provided, both immediately and as
scheduled events for scripted fault timelines.
"""


class FaultInjector:
    """Applies (and optionally schedules) faults against hosts and LANs."""

    def __init__(self, sim):
        self.sim = sim
        self.log = []

    def _record(self, kind, target):
        self.log.append((self.sim.now, kind, target))
        self.sim.trace.emit("fault", "injector", kind, target=target)

    # ------------------------------------------------------------------
    # immediate faults

    def crash_host(self, host):
        """Fail-stop the host (timers die, NICs stop responding)."""
        self._record("crash", host.name)
        host.crash()

    def recover_host(self, host):
        """Bring a crashed host back (protocol daemons must restart themselves)."""
        self._record("recover", host.name)
        host.recover()

    def nic_down(self, nic):
        """Disconnect one interface — the paper's §6 fault."""
        self._record("nic_down", nic.name)
        nic.set_up(False)

    def nic_up(self, nic):
        """Reconnect a disconnected interface."""
        self._record("nic_up", nic.name)
        nic.set_up(True)

    def partition(self, lan, groups):
        """Split a LAN into isolated groups of hosts/NICs."""
        self._record("partition", lan.name)
        lan.partition(groups)

    def heal(self, lan):
        """Merge a partitioned LAN back into one segment."""
        self._record("heal", lan.name)
        lan.heal()

    # ------------------------------------------------------------------
    # scheduled faults

    def at(self, time, action, *args):
        """Schedule any injector method at an absolute simulated time."""
        return self.sim.at(time, action, *args)

    def after(self, delay, action, *args):
        """Schedule any injector method after ``delay`` seconds."""
        return self.sim.after(delay, action, *args)
