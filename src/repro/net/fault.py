"""Fault injection: the experiment section's failure repertoire.

§6 induces faults "by disconnecting the interface through which Spread,
Wackamole, and the experimental server access the network" — that is
:meth:`FaultInjector.nic_down`. Crashes, graceful recovery, and switch
partitions/merges (§3.1) are also provided, both immediately and as
scheduled events for scripted fault timelines.

Beyond those fail-stop faults the injector carries the *gray* repertoire
(``docs/FAULTS.md``): one-way link blocks, Gilbert–Elliott burst loss,
frame duplication/reordering, per-host slowdown, bounded clock skew, and
daemon wedging — faults where the component degrades without dying, the
regime the paper's clean disconnects never exercise.

Beyond gray faults the injector carries *state corruption*: deterministic
mutations of protocol state itself (VIP allocation tables, membership
views, ordering counters, segment epochs) drawn from the dedicated
``fault/corrupt`` RNG stream. These model the arbitrary-state premise of
practically-self-stabilizing virtual synchrony — the cluster must
converge back to exactly-once coverage from *any* reachable state, not
just from clean crashes and partitions.

Every injection appends a :class:`FaultRecord` to :attr:`FaultInjector.log`;
records iterate as the historical ``(time, kind, target)`` triple and
serialise via :meth:`FaultRecord.to_dict` into check artifacts, so a
trial's exact fault timeline rides along with its verdict.
"""


def _serialize_param(value):
    """Normalise a fault param for deterministic JSON artifacts.

    Corruption params are dicts (mutation descriptors); emit them with
    sorted keys and tuples as lists so a JSON round trip compares equal
    to a fresh run byte-for-byte.
    """
    if isinstance(value, dict):
        return {key: _serialize_param(value[key]) for key in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [_serialize_param(item) for item in value]
    return value


class FaultRecord:
    """One injected fault: when, what, against which target.

    Unpacks as the legacy ``(time, kind, target)`` triple; ``param``
    carries an optional fault magnitude (loss probability, slowdown
    factor, skew offset) and appears in :meth:`to_dict` only when set.
    """

    __slots__ = ("time", "kind", "target", "param")

    def __init__(self, time, kind, target, param=None):
        self.time = time
        self.kind = kind
        self.target = target
        self.param = param

    def __iter__(self):
        return iter((self.time, self.kind, self.target))

    def to_dict(self):
        record = {"time": self.time, "kind": self.kind, "target": self.target}
        if self.param is not None:
            record["param"] = _serialize_param(self.param)
        return record

    def __repr__(self):
        extra = "" if self.param is None else ", param={}".format(self.param)
        return "FaultRecord(t={:.4f}, {}, {}{})".format(
            self.time, self.kind, self.target, extra
        )


class FaultInjector:
    """Applies (and optionally schedules) faults against hosts and LANs."""

    def __init__(self, sim):
        self.sim = sim
        self.log = []
        self._corrupt_stream = None
        self._ghost_counter = 0

    def _corrupt_rng(self):
        """The dedicated RNG stream behind every corruption draw.

        Lazily forked from the simulation registry so a trial that never
        injects corruption consumes no draws — schedules, replay, and
        ddmin shrinking of the fail-stop/gray repertoire are unchanged.
        """
        if self._corrupt_stream is None:
            self._corrupt_stream = self.sim.rng.stream("fault/corrupt")
        return self._corrupt_stream

    def _record(self, kind, target, param=None):
        self.log.append(FaultRecord(self.sim.now, kind, target, param))
        if param is None:
            self.sim.trace.emit("fault", "injector", kind, target=target)
        else:
            self.sim.trace.emit("fault", "injector", kind, target=target, param=param)

    def log_as_dicts(self):
        """The fault timeline as JSON-compatible dicts (artifact form)."""
        return [record.to_dict() for record in self.log]

    # ------------------------------------------------------------------
    # immediate faults

    def crash_host(self, host):
        """Fail-stop the host (timers die, NICs stop responding)."""
        self._record("crash", host.name)
        host.crash()

    def recover_host(self, host):
        """Bring a crashed host back (protocol daemons must restart themselves)."""
        self._record("recover", host.name)
        host.recover()

    def nic_down(self, nic):
        """Disconnect one interface — the paper's §6 fault."""
        self._record("nic_down", nic.name)
        nic.set_up(False)

    def nic_up(self, nic):
        """Reconnect a disconnected interface."""
        self._record("nic_up", nic.name)
        nic.set_up(True)

    def partition(self, lan, groups):
        """Split a LAN into isolated groups of hosts/NICs."""
        self._record("partition", lan.name)
        lan.partition(groups)

    def heal(self, lan):
        """Merge a partitioned LAN back into one segment."""
        self._record("heal", lan.name)
        lan.heal()

    # ------------------------------------------------------------------
    # gray faults (see docs/FAULTS.md)

    def asym_partition(self, lan, deaf_hosts):
        """Make ``deaf_hosts`` stop *hearing* the rest of the segment.

        Frames from every other NIC toward a deaf host are dropped while
        the deaf host's own transmissions still flow — the classic
        one-way gray link that symmetric partitions cannot model. The
        deaf side keeps claiming VIPs it can no longer defend, which is
        exactly the duplicate-claim scenario conflict resolution must
        clean up after :meth:`asym_heal`.
        """
        deaf = sorted(set(deaf_hosts), key=lambda host: host.name)
        deaf_set = set(deaf)
        self._record(
            "asym_partition",
            "{}:{}".format(lan.name, ",".join(host.name for host in deaf)),
        )
        deaf_nics = [nic for host in deaf for nic in lan._nics_of(host)]
        for nic in lan.nics:
            if nic.host in deaf_set:
                continue
            for victim in deaf_nics:
                lan.block_direction(nic, victim)

    def asym_heal(self, lan):
        """Remove every directed block on ``lan``."""
        self._record("asym_heal", lan.name)
        lan.clear_blocks()

    def burst_loss_on(self, lan, model):
        """Install a burst-loss channel (e.g. :class:`GilbertElliott`)."""
        self._record("burst_loss_on", lan.name, param=model.describe())
        lan.set_link_model(model)

    def burst_loss_off(self, lan):
        """Remove the burst-loss channel."""
        self._record("burst_loss_off", lan.name)
        lan.set_link_model(None)

    def set_duplication(self, lan, probability):
        """Set the per-delivery frame-duplication probability."""
        self._record("duplication", lan.name, param=float(probability))
        lan.set_duplication(probability)

    def set_reordering(self, lan, probability, window=None):
        """Set the per-delivery reordering probability (and window)."""
        self._record("reordering", lan.name, param=float(probability))
        lan.set_reordering(probability, window=window)

    def slow_host(self, host, factor):
        """Stretch a host's timers by ``factor`` (wedged-but-alive box)."""
        self._record("slow_host", host.name, param=float(factor))
        host.set_slowdown(factor)

    def unslow_host(self, host):
        """Restore a slowed host to normal speed."""
        self._record("unslow_host", host.name)
        host.set_slowdown(1.0, delivery_lag=0.0)

    def skew_clock(self, host, offset):
        """Offset a host's local clock reading by ``offset`` seconds."""
        self._record("clock_skew", host.name, param=float(offset))
        host.set_clock_skew(offset)

    def unskew_clock(self, host):
        """Remove a host's clock skew."""
        self._record("clock_unskew", host.name)
        host.set_clock_skew(0.0)

    def wedge_daemon(self, daemon):
        """Wedge a daemon: alive, socket open, but deaf and mute.

        The host keeps answering ARP and the process keeps its port, so
        nothing fail-stop happens — peers just stop hearing heartbeats.
        This is the supervisor's detection target.
        """
        self._record("daemon_wedge", daemon.name)
        daemon.wedged = True

    def unwedge_daemon(self, daemon):
        """Un-wedge a wedged daemon (it resumes where it left off)."""
        self._record("daemon_unwedge", daemon.name)
        daemon.wedged = False

    def kill_daemon(self, daemon):
        """Kill one daemon process without touching its host.

        For a GCS client (a Wackamole daemon) the process death also
        breaks its IPC session, so the local GCS daemon notices and
        evicts it from its groups — without that, a zombie group member
        would wedge every future GATHER.
        """
        self._record("daemon_kill", daemon.name)
        client = getattr(daemon, "client", None)
        daemon.stop()
        if (
            client is not None
            and client.connected
            and client.daemon.alive
        ):
            client.kill()

    # ------------------------------------------------------------------
    # state corruption (see docs/FAULTS.md, "State corruption")
    #
    # These mutate protocol state directly — the arbitrary-state premise
    # of practically-self-stabilizing virtual synchrony. Every mutation
    # choice draws from the dedicated ``fault/corrupt`` stream and the
    # exact mutation applied is recorded in the FaultRecord's param dict
    # (serialised with sorted keys), so a trial's corruption timeline
    # replays byte-identically.

    def corrupt_vip_table(self, wack, mutation=None):
        """Corrupt a Wackamole daemon's VIP allocation vs. its bindings.

        Mutations (chosen from the corrupt stream when not forced):

        * ``drop`` — unbind a held VIP group while the agreed table
          still assigns it here (a lost binding: coverage hole until the
          stabilization audit re-acquires);
        * ``duplicate`` — force-bind a VIP group the table assigns to
          another member (a physical duplicate the audit must release);
        * ``poison_arp`` — plant a foreign MAC for a VIP in the host's
          ARP cache (a client-side stale route the owner's periodic
          re-announcement repairs).
        """
        rng = self._corrupt_rng()
        table = getattr(wack, "table", None)
        candidates = []
        droppable = duplicable = ()
        if table is not None and table.slots:
            droppable = tuple(
                slot
                for slot in table.slots
                if table.owner(slot) == wack.member_name and wack.iface.owns(slot)
            )
            duplicable = tuple(
                slot
                for slot in table.slots
                if table.owner(slot) not in (None, wack.member_name)
                and not wack.iface.owns(slot)
            )
            if droppable:
                candidates.append("drop")
            if duplicable:
                candidates.append("duplicate")
            candidates.append("poison_arp")
        if mutation is None:
            mutation = rng.choice(candidates) if candidates else "noop"
        if mutation == "drop":
            slot = droppable[rng.randrange(len(droppable))]
            param = {"mutation": "drop", "slot": slot}
            self._record("corrupt_vip_table", wack.name, param=param)
            wack.iface.release(slot)
        elif mutation == "duplicate":
            slot = duplicable[rng.randrange(len(duplicable))]
            param = {"mutation": "duplicate", "slot": slot}
            self._record("corrupt_vip_table", wack.name, param=param)
            wack.iface.acquire(slot)
        elif mutation == "poison_arp":
            from repro.net.addresses import MACAddress

            slots = table.slots
            slot = slots[rng.randrange(len(slots))]
            address = wack.config.group(slot).addresses[0]
            bogus = MACAddress(0xDEAD00000000 | rng.randrange(1, 0xFFFF))
            param = {"mutation": "poison_arp", "slot": slot, "mac": str(bogus)}
            self._record("corrupt_vip_table", wack.name, param=param)
            wack.host.arp.cache.store(address, bogus)
        else:
            self._record("corrupt_vip_table", wack.name, param={"mutation": "noop"})

    def corrupt_membership(self, daemon, mutation=None):
        """Corrupt a GCS daemon's installed membership view.

        * ``phantom`` — splice a member that does not exist into the
          view list (nobody heartbeats for it, nothing watches it);
        * ``drop`` — erase a live member from the view list.

        Neither is locally repairable — the true membership is a
        distributed fact — so the stabilization audit detects the
        view/detector disagreement and escalates to a GATHER.
        """
        from repro.gcs.views import DaemonView

        rng = self._corrupt_rng()
        engine = daemon.membership
        members = list(engine.view.members)
        others = [member for member in members if member != daemon.daemon_id]
        candidates = ["phantom"]
        if others:
            candidates.append("drop")
        if mutation is None:
            mutation = candidates[rng.randrange(len(candidates))]
        if mutation == "drop" and others:
            victim = others[rng.randrange(len(others))]
            param = {"mutation": "drop", "member": victim}
            self._record("corrupt_membership", daemon.name, param=param)
            engine.view = DaemonView(
                engine.view.view_id,
                [member for member in members if member != victim],
            )
        else:
            self._ghost_counter += 1
            ghost = "ghost-{}".format(self._ghost_counter)
            param = {"mutation": "phantom", "member": ghost}
            self._record("corrupt_membership", daemon.name, param=param)
            engine.view = DaemonView(engine.view.view_id, members + [ghost])

    def corrupt_sequence(self, daemon, mutation=None):
        """Skew a GCS daemon's ordering counters.

        * ``recv_ahead`` / ``recv_behind`` — push the contiguous-receipt
          point off the log's true prefix (repaired by re-derivation);
        * ``delivered_ahead`` — skip the delivery point past messages
          never applied (only a view change can repair: escalated);
        * ``assign_regress`` — rewind the sequencer's next assignment
          under already-broadcast sequences (repaired by clamping).
        """
        rng = self._corrupt_rng()
        orderer = daemon.orderer
        if orderer is None or orderer.frozen:
            self._record("corrupt_sequence", daemon.name, param={"mutation": "noop"})
            return
        candidates = ["recv_ahead", "recv_behind", "delivered_ahead"]
        if orderer.is_sequencer:
            candidates.append("assign_regress")
        if mutation is None:
            mutation = candidates[rng.randrange(len(candidates))]
        amount = rng.randrange(1, 5)
        param = {"mutation": mutation, "amount": amount}
        self._record("corrupt_sequence", daemon.name, param=param)
        if mutation == "recv_ahead":
            orderer.recv_aru += amount
        elif mutation == "recv_behind":
            orderer.recv_aru = max(0, orderer.recv_aru - amount)
        elif mutation == "delivered_ahead":
            orderer.delivered_aru += amount
        elif mutation == "assign_regress":
            orderer._next_assign = max(1, orderer._next_assign - amount)

    def corrupt_epoch(self, node, amount=None):
        """Regress an epoch-like counter (scale tier or flat tier).

        For a :class:`repro.gcs.segments.SegmentNode` the segment epoch
        (and, on a leader, its own digest record) is rewound — peer
        leaders' gossip echoes the higher epoch back and the node
        re-mints past it; the leader's stabilization audit covers the
        single-segment case. For a flat-tier :class:`SpreadDaemon` the
        membership ``highest_counter`` is rewound below the installed
        view's counter, which would make the next gather mint a ViewId
        every peer rejects — the stabilization audit clamps it back.
        """
        rng = self._corrupt_rng()
        if amount is None:
            amount = rng.randrange(1, 5)
        if hasattr(node, "_seg_epoch"):
            was = node._seg_epoch
            node._seg_epoch = max(0, node._seg_epoch - amount)
            param = {
                "mutation": "segment_epoch",
                "amount": amount,
                "was": was,
                "now": node._seg_epoch,
            }
            self._record("corrupt_epoch", node.name, param=param)
            if node.is_leader:
                node._digests[node.segment] = (node._seg_epoch, node._seg_alive)
        else:
            engine = node.membership
            was = engine.highest_counter
            engine.highest_counter = max(0, engine.highest_counter - amount)
            param = {
                "mutation": "view_counter",
                "amount": amount,
                "was": was,
                "now": engine.highest_counter,
            }
            self._record("corrupt_epoch", node.name, param=param)

    # ------------------------------------------------------------------
    # scheduled faults

    def at(self, time, action, *args):
        """Schedule any injector method at an absolute simulated time."""
        return self.sim.at(time, action, *args)

    def after(self, delay, action, *args):
        """Schedule any injector method after ``delay`` seconds."""
        return self.sim.after(delay, action, *args)
