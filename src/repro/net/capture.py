"""Packet capture: a tcpdump-style observer for the simulated LAN.

Attach a :class:`PacketCapture` to a segment to record every frame
(optionally filtered) with a one-line decoded summary — the debugging
workflow the paper's authors would have used on the real wire.

    capture = PacketCapture(lan, predicate=lambda f: f.ethertype == ARP_ETHERTYPE)
    ...run the scenario...
    print(capture.format())
"""

from repro.net.packet import ARP_ETHERTYPE, IP_ETHERTYPE, ArpOp, IpPacket, UdpDatagram


class CapturedFrame:
    """One recorded frame with its decoded summary."""

    __slots__ = ("time", "src_mac", "dst_mac", "kind", "info")

    def __init__(self, time, src_mac, dst_mac, kind, info):
        self.time = time
        self.src_mac = src_mac
        self.dst_mac = dst_mac
        self.kind = kind
        self.info = info

    def __repr__(self):
        return "[{:10.4f}] {} > {} {}: {}".format(
            self.time, self.src_mac, self.dst_mac, self.kind, self.info
        )


class PacketCapture:
    """Records frames crossing one LAN segment."""

    def __init__(self, lan, predicate=None, capacity=10_000):
        self.lan = lan
        self.predicate = predicate
        self.capacity = capacity
        self.frames = []
        self.dropped = 0
        self._original_transmit = lan.transmit
        lan.transmit = self._tap
        self._running = True

    def stop(self):
        """Detach from the LAN (recorded frames are kept)."""
        if self._running:
            self.lan.transmit = self._original_transmit
            self._running = False

    def _tap(self, frame, src_nic):
        if self.predicate is None or self.predicate(frame):
            if len(self.frames) >= self.capacity:
                self.dropped += 1
            else:
                kind, info = decode_frame(frame)
                self.frames.append(
                    CapturedFrame(self.lan.sim.now, frame.src_mac, frame.dst_mac, kind, info)
                )
        self._original_transmit(frame, src_nic)

    # ------------------------------------------------------------------
    # analysis

    def select(self, kind=None, since=None):
        """Frames matching the filters, in capture order."""
        out = []
        for frame in self.frames:
            if kind is not None and frame.kind != kind:
                continue
            if since is not None and frame.time < since:
                continue
            out.append(frame)
        return out

    def summary(self):
        """{kind: count} over the capture."""
        counts = {}
        for frame in self.frames:
            counts[frame.kind] = counts.get(frame.kind, 0) + 1
        return counts

    def format(self, last=None):
        """tcpdump-ish text dump (optionally only the last N frames)."""
        frames = self.frames if last is None else self.frames[-last:]
        return "\n".join(repr(frame) for frame in frames)

    def __len__(self):
        return len(self.frames)


def decode_frame(frame):
    """(kind, one-line summary) for a frame's payload."""
    if frame.ethertype == ARP_ETHERTYPE:
        packet = frame.payload
        op = "request" if packet.op == ArpOp.REQUEST else "reply"
        if packet.is_gratuitous:
            op = "gratuitous-" + op
        return "arp", "{} who-has/is-at {} ({})".format(op, packet.target_ip, packet.sender_ip)
    if frame.ethertype == IP_ETHERTYPE and isinstance(frame.payload, IpPacket):
        packet = frame.payload
        datagram = packet.payload
        if isinstance(datagram, UdpDatagram):
            payload_type = type(datagram.payload).__name__
            return (
                "udp",
                "{}:{} > {}:{} {}".format(
                    packet.src_ip,
                    datagram.src_port,
                    packet.dst_ip,
                    datagram.dst_port,
                    payload_type,
                ),
            )
        return "ip", "{} > {} ttl={}".format(packet.src_ip, packet.dst_ip, packet.ttl)
    return "other", "ethertype=0x{:04x}".format(frame.ethertype)
