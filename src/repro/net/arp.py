"""Address Resolution Protocol with cache and spoofing support.

ARP is on the critical path of the paper's headline measurement: after
a VIP moves, traffic keeps flowing to the dead interface's MAC until
the new owner's (spoofed) ARP reply overwrites the stale cache entry on
the router/client. This module models the cache, request/reply
resolution with retries, and unsolicited (gratuitous or spoofed)
updates.

Simplification vs. real ARP: any received ARP packet refreshes the
receiver's cache entry for the sender (create-or-update). Real stacks
are choosier about creating entries from unsolicited packets, but the
behaviour that matters here — stale entries persisting until a spoofed
reply arrives — is identical.
"""

from repro.net.addresses import BROADCAST_MAC, IPAddress
from repro.net.packet import ARP_ETHERTYPE, ArpOp, ArpPacket, EthernetFrame


class ArpEntry:
    """One cached <IP, MAC> binding with its last refresh time."""

    __slots__ = ("mac", "updated_at")

    def __init__(self, mac, updated_at):
        self.mac = mac
        self.updated_at = updated_at

    def __repr__(self):
        return "ArpEntry({}, t={:.4f})".format(self.mac, self.updated_at)


class ArpCache:
    """Per-host ARP cache with entry lifetime."""

    def __init__(self, clock, lifetime=60.0):
        self._clock = clock
        self.lifetime = float(lifetime)
        self._entries = {}
        self.updates = 0

    def lookup(self, ip):
        """Return the cached MAC for ``ip``, or None if absent/expired."""
        ip = IPAddress(ip)
        entry = self._entries.get(ip)
        if entry is None:
            return None
        if self._clock() - entry.updated_at > self.lifetime:
            del self._entries[ip]
            return None
        return entry.mac

    def store(self, ip, mac):
        """Create or refresh the entry for ``ip``."""
        if type(ip) is not IPAddress:
            ip = IPAddress(ip)
        entry = self._entries.get(ip)
        if entry is None:
            self._entries[ip] = ArpEntry(mac, self._clock())
        else:
            # Refresh in place: every received ARP packet lands here on
            # every host, and the entry objects need not be reallocated.
            entry.mac = mac
            entry.updated_at = self._clock()
        self.updates += 1

    def drop(self, ip):
        """Remove the entry for ``ip`` if present."""
        self._entries.pop(IPAddress(ip), None)

    def snapshot(self):
        """Dict copy {ip: mac} of non-expired entries."""
        now = self._clock()
        return {
            ip: entry.mac
            for ip, entry in self._entries.items()
            if now - entry.updated_at <= self.lifetime
        }

    def known_ips(self):
        """IPs with a live entry (the set Wackamole's notify targets)."""
        return set(self.snapshot())

    def __len__(self):
        return len(self.snapshot())


class ArpService:
    """The ARP protocol engine for one host.

    Owns the cache, answers requests for locally bound addresses,
    resolves next-hop MACs (queueing outbound packets while a request
    is in flight), and can emit spoofed replies on behalf of a newly
    acquired virtual address.
    """

    REQUEST_TIMEOUT = 1.0
    MAX_RETRIES = 3

    def __init__(self, host, cache_lifetime=60.0):
        self.host = host
        self.cache = ArpCache(lambda: host.local_time, lifetime=cache_lifetime)
        self._pending = {}
        self.requests_sent = 0
        self.replies_sent = 0
        self.spoofs_sent = 0
        self.conflicts_seen = 0
        # Called as on_vip_conflict(ip, foreign_mac) when another node's
        # ARP traffic claims an address this host currently has bound —
        # the wire-level symptom of a duplicate VIP after an asymmetric
        # partition heals. Wackamole daemons hook this for resolution.
        self.on_vip_conflict = None

    def handle(self, nic, packet):
        """Process an incoming ARP packet on ``nic``."""
        sender_ip = packet.sender_ip
        sender_mac = packet.sender_mac
        if (
            sender_mac != nic.mac
            and self.host.owns_ip(sender_ip)
            and all(other.mac != sender_mac for other in self.host.nics)
        ):
            # Someone else is advertising an address we have bound:
            # duplicate-claim detection (always on; resolution is the
            # hook's business). Do NOT poison our own cache with the
            # foreign binding.
            self.conflicts_seen += 1
            # Note: the claimant MAC is deliberately not traced — MACs
            # are allocated from a process-global counter, so their
            # absolute values are not stable across replays.
            self.host.trace("arp", "conflict", ip=str(sender_ip))
            if self.on_vip_conflict is not None:
                self.on_vip_conflict(sender_ip, sender_mac)
        else:
            self.cache.store(sender_ip, sender_mac)
            self._flush_pending(sender_ip)
        if packet.op == ArpOp.REQUEST and nic.owns_ip(packet.target_ip):
            self._send_reply(nic, packet)

    def resolve_and_send(self, nic, next_hop_ip, ip_packet):
        """Send ``ip_packet`` out of ``nic`` toward ``next_hop_ip``.

        Transmits immediately on a cache hit; otherwise queues the
        packet and launches a (retried) ARP request. Packets are
        dropped if resolution fails after all retries.
        """
        next_hop_ip = IPAddress(next_hop_ip)
        mac = self.cache.lookup(next_hop_ip)
        if mac is not None:
            self._transmit_ip(nic, mac, ip_packet)
            return
        queue = self._pending.setdefault(next_hop_ip, [])
        queue.append((nic, ip_packet))
        if len(queue) == 1:
            self._send_request(nic, next_hop_ip, retries_left=self.MAX_RETRIES)

    def announce(self, nic, ip, target_macs=None):
        """Broadcast (or unicast) a spoofed/gratuitous ARP reply for ``ip``.

        This is the cache-repointing mechanism of §5.1: the reply claims
        ``ip`` is at ``nic.mac``. With ``target_macs`` the notification
        is unicast to specific hosts (§5.2's targeted router updates);
        otherwise it is broadcast to the whole segment.
        """
        packet = ArpPacket(ArpOp.REPLY, IPAddress(ip), nic.mac, IPAddress(ip), nic.mac)
        destinations = target_macs if target_macs else [BROADCAST_MAC]
        for mac in destinations:
            frame = EthernetFrame(nic.mac, mac, ARP_ETHERTYPE, packet)
            nic.transmit(frame)
            self.spoofs_sent += 1
        self.host.trace("arp", "announce", ip=str(ip), targets=len(destinations))

    def _send_request(self, nic, target_ip, retries_left):
        if self.cache.lookup(target_ip) is not None or target_ip not in self._pending:
            return
        source_ip = nic.primary_ip or IPAddress(0)
        packet = ArpPacket(ArpOp.REQUEST, source_ip, nic.mac, target_ip)
        frame = EthernetFrame(nic.mac, BROADCAST_MAC, ARP_ETHERTYPE, packet)
        nic.transmit(frame)
        self.requests_sent += 1
        if retries_left > 0:
            self.host.after(
                self.REQUEST_TIMEOUT, self._send_request, nic, target_ip, retries_left - 1
            )
        else:
            self.host.after(self.REQUEST_TIMEOUT, self._give_up, target_ip)

    def _give_up(self, target_ip):
        dropped = self._pending.pop(target_ip, [])
        if dropped:
            self.host.trace("arp", "resolution_failed", ip=str(target_ip), dropped=len(dropped))

    def _send_reply(self, nic, request):
        packet = ArpPacket(
            ArpOp.REPLY, request.target_ip, nic.mac, request.sender_ip, request.sender_mac
        )
        frame = EthernetFrame(nic.mac, request.sender_mac, ARP_ETHERTYPE, packet)
        nic.transmit(frame)
        self.replies_sent += 1

    def _flush_pending(self, ip):
        if not self._pending:
            return
        queue = self._pending.pop(IPAddress(ip), None)
        if not queue:
            return
        mac = self.cache.lookup(ip)
        for nic, ip_packet in queue:
            self._transmit_ip(nic, mac, ip_packet)

    def _transmit_ip(self, nic, dst_mac, ip_packet):
        from repro.net.packet import IP_ETHERTYPE

        frame = EthernetFrame(nic.mac, dst_mac, IP_ETHERTYPE, ip_packet)
        nic.transmit(frame)
